//! Property-based tests (proptest) on cross-crate invariants: safety of
//! the lock manager under arbitrary schedules, Merkle/ledger integrity,
//! ring-order totality, and convergence of the full RingBFT network under
//! randomized workloads.

use proptest::prelude::*;
use ringbft::core::testing::RingNet;
use ringbft::crypto::{verify_proof, MerkleTree};
use ringbft::ledger::{BlockBody, Ledger};
use ringbft::store::rmw_ops;
use ringbft::store::LockManager;
use ringbft::types::txn::Transaction;
use ringbft::types::{
    ClientId, ProtocolKind, ReplicaId, RingOrder, SeqNum, ShardId, SystemConfig, TxnId,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lock manager admits every committed transaction exactly once,
    /// in sequence order, regardless of commit/release interleaving.
    #[test]
    fn lock_manager_admits_in_order(
        // seqs 1..=n committed in a random order; keys from a small pool.
        order in proptest::sample::subsequence((1u64..=12).collect::<Vec<_>>(), 12),
        keys in proptest::collection::vec(0u64..6, 12),
    ) {
        let mut lm = LockManager::new();
        let mut admitted: Vec<u64> = Vec::new();
        for (i, &seq) in order.iter().enumerate() {
            let a = lm.commit(seq, vec![keys[i % keys.len()]]);
            admitted.extend(a.acquired);
        }
        // Release in admission order; collect the rest.
        let mut i = 0;
        while i < admitted.len() {
            let more = lm.release(admitted[i]);
            admitted.extend(more.acquired);
            i += 1;
        }
        // Admission order must be strictly increasing (sequence order).
        prop_assert!(admitted.windows(2).all(|w| w[0] < w[1]),
            "admission out of order: {admitted:?}");
        // No sequence admitted twice.
        let mut dedup = admitted.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), admitted.len());
    }

    /// Merkle proofs verify for every leaf and fail for every other leaf.
    #[test]
    fn merkle_proofs_sound_and_complete(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..32), 1..24),
    ) {
        let tree = MerkleTree::from_payloads(payloads.iter().map(|p| p.as_slice()));
        let root = tree.root();
        for i in 0..payloads.len() {
            let proof = tree.prove(i).unwrap();
            let leaf = ringbft::crypto::merkle::leaf_hash(&payloads[i]);
            prop_assert!(verify_proof(&root, &leaf, &proof));
            // The same proof must not verify a different (distinct) leaf.
            for j in 0..payloads.len() {
                if payloads[j] != payloads[i] {
                    let other = ringbft::crypto::merkle::leaf_hash(&payloads[j]);
                    prop_assert!(!verify_proof(&root, &other, &proof));
                }
            }
        }
    }

    /// A ledger built from arbitrary block bodies always verifies, and
    /// corrupting any non-genesis block breaks verification.
    #[test]
    fn ledger_tamper_evident(
        roots in proptest::collection::vec(any::<[u8; 32]>(), 1..12),
        corrupt_at in 0usize..12,
    ) {
        let mut ledger = Ledger::new(ShardId(0));
        for (i, root) in roots.iter().enumerate() {
            ledger.append(BlockBody {
                seq: SeqNum(i as u64 + 1),
                merkle_root: *root,
                proposer: ReplicaId::new(ShardId(0), 0),
                txn_count: 1,
                involved: vec![ShardId(0)],
            });
        }
        prop_assert!(ledger.verify().is_ok());
        let h = 1 + corrupt_at % roots.len();
        let original = ledger.block(h).unwrap().body.merkle_root;
        let tampered = [original[0] ^ 0xff; 32];
        ledger.block_mut(h).unwrap().body.merkle_root = tampered;
        if h < ledger.height() - 1 {
            prop_assert!(ledger.verify().is_err());
        }
    }

    /// Ring order is a total cyclic order: next/prev are inverse, first
    /// is minimal, and a full traversal visits every involved shard once.
    #[test]
    fn ring_order_total_and_cyclic(
        z in 1u32..20,
        raw in proptest::collection::btree_set(0u32..20, 1..10),
        offset in 0u32..20,
    ) {
        let involved: Vec<ShardId> =
            raw.iter().filter(|s| **s < z).map(|s| ShardId(*s)).collect();
        prop_assume!(!involved.is_empty());
        let ring = RingOrder::rotated(z, offset % z);
        let first = ring.first(&involved);
        let t = ring.traversal(&involved);
        prop_assert_eq!(t.len(), involved.len());
        prop_assert_eq!(t[0], first);
        for &s in &involved {
            prop_assert_eq!(ring.prev(&involved, ring.next(&involved, s)), s);
            prop_assert_eq!(ring.next(&involved, ring.prev(&involved, s)), s);
            prop_assert!(ring.position(first) <= ring.position(s));
        }
    }
}

proptest! {
    // Full-network convergence is expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under a random mix of conflicting single- and cross-shard
    /// transactions, the network confirms every client, converges within
    /// each shard, and leaks no locks (Def 4.1 + Theorem 6.2).
    #[test]
    fn randomized_workload_converges(
        picks in proptest::collection::vec((0u8..4, 0u64..5), 4..16),
    ) {
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
        cfg.num_keys = 60; // tiny → heavy conflicts
        cfg.batch_size = 2;
        let mut net = RingNet::new(cfg.clone());
        let mut id = 1u64;
        for (kind, key_off) in picks {
            let shards: Vec<u32> = match kind {
                0 => vec![0],
                1 => vec![1],
                2 => vec![0, 1],
                _ => vec![0, 1, 2],
            };
            let ops: Vec<(ShardId, u64)> = shards
                .iter()
                .map(|&s| (ShardId(s), cfg.key_range(ShardId(s)).start + key_off))
                .collect();
            let t = Transaction::new(TxnId(id), ClientId(id), rmw_ops(&ops));
            net.client_send(ClientId(id), t);
            id += 1;
        }
        net.settle();
        for c in 1..id {
            prop_assert_eq!(
                net.completed_digests(ClientId(c), 2).len(), 1,
                "client {} unconfirmed", c);
        }
        for s in 0..3u32 {
            let prints: Vec<u64> = net
                .replicas
                .values()
                .filter(|r| r.id().shard == ShardId(s))
                .map(|r| r.store().state_fingerprint())
                .collect();
            prop_assert!(prints.windows(2).all(|w| w[0] == w[1]),
                "shard {} diverged", s);
        }
        for r in net.replicas.values() {
            prop_assert_eq!(r.lock_manager().held_len(), 0);
            prop_assert_eq!(r.lock_manager().pending_len(), 0);
        }
    }
}
