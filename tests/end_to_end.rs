//! End-to-end integration tests across crates: the full RingBFT stack
//! (types → crypto → pbft → store → ledger → core) driven through both
//! the synchronous test network and the WAN simulator.

use ringbft::core::testing::RingNet;
use ringbft::sim::Scenario;
use ringbft::store::rmw_ops;
use ringbft::types::txn::{RemoteRead, Transaction};
use ringbft::types::{ClientId, ProtocolKind, ShardId, SystemConfig, TxnId};

fn small_cfg(z: usize, n: usize) -> SystemConfig {
    let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, z, n);
    cfg.num_keys = 100 * z as u64;
    cfg.batch_size = 2;
    cfg
}

fn cst(cfg: &SystemConfig, id: u64, shards: &[u32], offset: u64) -> Transaction {
    let ops: Vec<(ShardId, u64)> = shards
        .iter()
        .map(|&s| (ShardId(s), cfg.key_range(ShardId(s)).start + offset))
        .collect();
    Transaction::new(TxnId(id), ClientId(id), rmw_ops(&ops))
}

#[test]
fn five_shards_seven_replicas_full_mix() {
    // Bigger shards (f = 2) with a mixed workload: every client confirmed,
    // state converges, chains verify.
    let cfg = small_cfg(5, 7);
    let mut net = RingNet::new(cfg.clone());
    let mut id = 1u64;
    for round in 0..3u64 {
        for s in 0..5u32 {
            let key = cfg.key_range(ShardId(s)).start + 50 + round;
            net.client_send(
                ClientId(id),
                Transaction::new(TxnId(id), ClientId(id), rmw_ops(&[(ShardId(s), key)])),
            );
            id += 1;
        }
        net.client_send(ClientId(id), cst(&cfg, id, &[0, 2, 4], 60 + round));
        id += 1;
        net.client_send(ClientId(id), cst(&cfg, id, &[1, 3], 70 + round));
        id += 1;
    }
    net.settle();
    for c in 1..id {
        assert_eq!(
            net.completed_digests(ClientId(c), 3).len(), // f+1 = 3
            1,
            "client {c} unconfirmed"
        );
    }
    for s in 0..5u32 {
        let prints: Vec<u64> = net
            .replicas
            .values()
            .filter(|r| r.id().shard == ShardId(s))
            .map(|r| r.store().state_fingerprint())
            .collect();
        assert!(
            prints.windows(2).all(|w| w[0] == w[1]),
            "shard {s} diverged"
        );
    }
    for r in net.replicas.values() {
        r.ledger().verify().unwrap();
        assert_eq!(r.lock_manager().held_len(), 0);
        assert_eq!(r.lock_manager().pending_len(), 0);
    }
}

#[test]
fn unequal_shard_sizes_are_supported() {
    // §4.3.6: shards may have different sizes; the linear primitive folds
    // replica indices modulo the target shard's size.
    let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
    cfg.shards[1].n = 7; // f = 2
    cfg.shards[2].n = 10; // f = 3
    cfg.num_keys = 300;
    cfg.batch_size = 2;
    cfg.validate().unwrap();
    let mut net = RingNet::new(cfg.clone());
    net.client_send(ClientId(1), cst(&cfg, 1, &[0, 1, 2], 5));
    net.client_send(ClientId(2), cst(&cfg, 2, &[0, 1, 2], 6));
    net.settle();
    assert_eq!(net.completed_digests(ClientId(1), 2).len(), 1);
    assert_eq!(net.completed_digests(ClientId(2), 2).len(), 1);
    for r in net.replicas.values() {
        assert_eq!(r.lock_manager().held_len(), 0);
    }
}

#[test]
fn complex_cst_dependency_values_agree_across_shards() {
    // A complex cst whose shard-0 fragment reads a shard-2 key: all
    // shard-0 replicas must fold the same remote value into their state.
    let cfg = small_cfg(3, 4);
    let mut net = RingNet::new(cfg.clone());
    let dep_key = cfg.key_range(ShardId(2)).start + 10;
    for id in 1..=2u64 {
        let mut t = cst(&cfg, id, &[0, 1, 2], 20);
        t.remote_reads.push(RemoteRead {
            reader: ShardId(0),
            owner: ShardId(2),
            key: dep_key,
        });
        net.client_send(ClientId(id), t);
    }
    net.settle();
    assert_eq!(net.completed_digests(ClientId(1), 2).len(), 1);
    let prints: Vec<u64> = net
        .replicas
        .values()
        .filter(|r| r.id().shard == ShardId(0))
        .map(|r| r.store().state_fingerprint())
        .collect();
    assert!(prints.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn conflicting_csts_from_different_initiators_serialize() {
    // T1 over {0,1}, T2 over {1,2}: they conflict only at shard 1, whose
    // sequence numbers serialize them; replicas of shard 1 must converge.
    let cfg = small_cfg(3, 4);
    let hot = cfg.key_range(ShardId(1)).start + 3;
    let mut net = RingNet::new(cfg.clone());
    for id in 1..=4u64 {
        let shards: &[u32] = if id % 2 == 1 { &[0, 1] } else { &[1, 2] };
        let mut ops = vec![(
            ShardId(shards[0]),
            cfg.key_range(ShardId(shards[0])).start + id,
        )];
        ops.push((ShardId(1), hot)); // every txn hits the hot key
        if shards[1] != 1 {
            ops.push((
                ShardId(shards[1]),
                cfg.key_range(ShardId(shards[1])).start + id,
            ));
        }
        let t = Transaction::new(TxnId(id), ClientId(id), rmw_ops(&ops));
        net.client_send(ClientId(id), t);
    }
    net.settle();
    for c in 1..=4u64 {
        assert_eq!(net.completed_digests(ClientId(c), 2).len(), 1, "client {c}");
    }
    let prints: Vec<u64> = net
        .replicas
        .values()
        .filter(|r| r.id().shard == ShardId(1))
        .map(|r| r.store().state_fingerprint())
        .collect();
    assert!(prints.windows(2).all(|w| w[0] == w[1]), "shard 1 diverged");
    for r in net.replicas.values() {
        assert_eq!(r.lock_manager().held_len(), 0, "locks leak at {}", r.id());
    }
}

#[test]
fn wan_simulation_all_protocols_make_progress() {
    for kind in [
        ProtocolKind::RingBft,
        ProtocolKind::Sharper,
        ProtocolKind::Ahl,
    ] {
        let mut cfg = SystemConfig::uniform(kind, 3, 4);
        cfg.num_keys = 6_000;
        cfg.clients = 60;
        cfg.batch_size = 10;
        cfg.cross_shard_rate = 0.3;
        let r = Scenario::new(cfg, 5)
            .warmup_secs(1.0)
            .measure_secs(3.0)
            .run();
        assert!(r.completed_txns > 0, "{kind:?} stalled");
        assert!(
            r.avg_latency_s > 0.0 && r.avg_latency_s < 5.0,
            "{kind:?} latency {r:?}"
        );
    }
}

#[test]
fn open_loop_arrivals_drive_offered_load() {
    use ringbft::workload::arrivals::ArrivalProcess;
    let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 2, 4);
    cfg.num_keys = 2_000;
    cfg.clients = 40;
    cfg.batch_size = 5;
    cfg.cross_shard_rate = 0.2;
    let r = Scenario::new(cfg, 7)
        .warmup_secs(1.0)
        .measure_secs(4.0)
        .open_loop(ArrivalProcess::Poisson { rate_tps: 200.0 })
        .run();
    let ol = r.open_loop.expect("open-loop report");
    assert_eq!(ol.offered_tps, 200.0);
    // The realized offered load tracks the target: ~800 arrivals in a
    // 4 s window, Poisson-jittered.
    assert!(
        (600..=1000).contains(&(ol.issued_txns as i64)),
        "issued {}",
        ol.issued_txns
    );
    // Well under the knee, completions keep up with arrivals.
    assert!(
        r.completed_txns as f64 >= 0.7 * ol.issued_txns as f64,
        "only {} of {} completed",
        r.completed_txns,
        ol.issued_txns
    );
}

#[test]
fn adaptive_batching_cuts_partial_batches_when_pipe_is_idle() {
    // Two closed-loop clients against batch_size 50: the fixed policy
    // can only ship batches off the pool-flush timer, the adaptive
    // policy cuts immediately while the consensus pipe is idle. Same
    // seed, deterministic simulation — latency must drop, and the
    // controller's counter must show it fired.
    let base = {
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 2, 4);
        cfg.num_keys = 2_000;
        cfg.clients = 2;
        cfg.batch_size = 50;
        cfg.cross_shard_rate = 0.0;
        cfg
    };
    let fixed = Scenario::new(base.clone(), 11)
        .warmup_secs(1.0)
        .measure_secs(3.0)
        .run();
    let mut adaptive_cfg = base;
    adaptive_cfg.adaptive_batching = true;
    let adaptive = Scenario::new(adaptive_cfg, 11)
        .warmup_secs(1.0)
        .measure_secs(3.0)
        .run();
    assert!(fixed.completed_txns > 0 && adaptive.completed_txns > 0);
    assert_eq!(fixed.pipeline.batch_adaptive_flushes, 0);
    assert!(
        adaptive.pipeline.batch_adaptive_flushes > 0,
        "controller never fired"
    );
    assert!(
        adaptive.avg_latency_s < fixed.avg_latency_s,
        "adaptive {} >= fixed {}",
        adaptive.avg_latency_s,
        fixed.avg_latency_s
    );
}

#[test]
fn ring_order_invariance_under_shard_count() {
    // Same seed, growing ring: the system still completes work — sanity
    // across ring sizes (the rotation-hop count grows linearly).
    for z in [2usize, 4, 6] {
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, z, 4);
        cfg.num_keys = 1_000 * z as u64;
        cfg.clients = 40;
        cfg.batch_size = 5;
        cfg.cross_shard_rate = 1.0;
        cfg.involved_shards = z;
        let r = Scenario::new(cfg, 2)
            .warmup_secs(1.0)
            .measure_secs(4.0)
            .run();
        assert!(r.completed_txns > 0, "z={z} stalled");
    }
}
