//! # RingBFT — Resilient Consensus over Sharded Ring Topology
//!
//! A from-scratch Rust reproduction of *RingBFT: Resilient Consensus over
//! Sharded Ring Topology* (Rahnama, Gupta, Sogani, Krishnan, Sadoghi —
//! EDBT 2022).
//!
//! This facade crate re-exports the public API of every workspace crate:
//!
//! * [`types`] — identifiers, transactions, ring-order math, configuration.
//! * [`crypto`] — SHA-256, HMAC MACs, simulated digital signatures, Merkle
//!   trees.
//! * [`simnet`] — deterministic discrete-event WAN simulator (15 GCP
//!   regions).
//! * [`store`] — YCSB-style key-value store and the sequence-ordered lock
//!   manager with the paper's pending list `π`.
//! * [`ledger`] — hash-chained partial blockchains, one per shard.
//! * [`pbft`] — the intra-shard PBFT engine (pre-prepare / prepare /
//!   commit, checkpoints, view changes).
//! * [`protocols`] — single-shard baselines for Figure 1 (Zyzzyva, SBFT,
//!   PoE, HotStuff, RCC).
//! * [`core`] — the RingBFT meta-protocol: process, forward, re-transmit.
//! * [`recovery`] — checkpoint snapshots with agreed state digests, and
//!   the state-transfer machine that brings blank or in-dark replicas
//!   back into consensus.
//! * [`baselines`] — sharded baselines AHL and SharPer.
//! * [`workload`] — YCSB-style workload generation.
//! * [`sim`] — the scenario harness that wires protocol nodes into the
//!   simulator and measures throughput/latency.
//! * [`net`] — the real-network runtime: a length-prefixed binary codec,
//!   a TCP driver hosting the same sans-io nodes on real sockets with
//!   real clocks, the `ringbft-node` cluster binary, and an in-process
//!   loopback cluster harness.
//!
//! ## Quickstart
//!
//! ```
//! use ringbft::sim::{Scenario, ScenarioReport};
//! use ringbft::types::{ProtocolKind, SystemConfig};
//!
//! // Three shards of four replicas each, 30% cross-shard transactions.
//! let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
//! cfg.clients = 40;
//! let report: ScenarioReport = Scenario::new(cfg, 1)
//!     .warmup_secs(1.0)
//!     .measure_secs(2.0)
//!     .run();
//! assert!(report.throughput_tps > 0.0);
//! ```

pub use ringbft_baselines as baselines;
pub use ringbft_core as core;
pub use ringbft_crypto as crypto;
pub use ringbft_ledger as ledger;
pub use ringbft_net as net;
pub use ringbft_pbft as pbft;
pub use ringbft_protocols as protocols;
pub use ringbft_recovery as recovery;
pub use ringbft_sim as sim;
pub use ringbft_simnet as simnet;
pub use ringbft_store as store;
pub use ringbft_types as types;
pub use ringbft_workload as workload;
