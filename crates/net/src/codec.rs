//! Length-prefixed, MAC-authenticated binary framing for protocol
//! messages on real sockets.
//!
//! Every frame is a fixed 12-byte header, a 9-byte destination address,
//! a 32-byte HMAC-SHA256 authenticator, and a bincode-encoded
//! peer-independent body (sender + message + trace):
//!
//! ```text
//! +--------+---------+-------+----------+--------+-------+--------------------------+
//! | magic  | version | flags | body len | addr   | mac   | bincode(from, msg, trace)|
//! | u32 LE | u16 LE  | u16LE | u32 LE   | 9 B    | 32 B  | `body len` bytes         |
//! +--------+---------+-------+----------+--------+-------+--------------------------+
//! ```
//!
//! The header is versioned so future PRs can evolve the body encoding
//! (compression, signatures) without breaking running clusters mid-
//! upgrade: a decoder rejects frames whose `version` it does not speak
//! instead of misparsing them. Version 2 introduced the authenticator.
//!
//! Since v6 the destination is *not* part of the body: a broadcast
//! serializes its payload exactly once ([`encode_body`]) and stamps a
//! fresh fixed-size prefix — header, address, MAC — per destination
//! ([`frame_prefix`]). The encoded body bytes are shared (`Arc`) across
//! every peer queue, so an N-way fan-out pays one bincode encode
//! instead of N.
//!
//! The MAC implements the paper's §3 authenticated channels with the
//! pairwise keys of [`ringbft_crypto::KeyStore`]: a data frame is tagged
//! under the `{from, to}` pair key, a [`Hello`] under the
//! `{sender, receiver}` pair key. The address bytes are covered by the
//! MAC alongside the body, so per-peer addressing is authenticated even
//! though it sits outside the shared body. A frame whose MAC does not
//! verify is rejected ([`CodecError::BadMac`]) and the connection is
//! dropped — matching the simulator, which charges the same per-message
//! hash cost in its CPU model.
//!
//! The body length is bounded by [`MAX_FRAME_BYTES`]; the bound is
//! derived from the same size model the simulator charges for bandwidth
//! (`ringbft_types::wire`): the largest legitimate message is a Forward
//! carrying a full batch plus its certificate, so the cap leaves two
//! orders of magnitude of headroom above the paper's standard settings
//! while still refusing absurd allocations from corrupt peers.

use ringbft_crypto::KeyStore;
use ringbft_types::wire;
use ringbft_types::{ClientId, NodeId, ReplicaId, ShardId, TraceContext};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::sync::Arc;

/// Frame magic: `"RBFT"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"RBFT");

/// Current frame version (2 = MAC-authenticated frames; 3 = hole-fetch
/// messages added to the recovery vocabulary; 4 = delta state transfer —
/// `StateRequest` gained the requester's base, `StatePlan` replaced the
/// `StateDone` trailer, and `StateChunk` is chain-link framed; 5 =
/// causal tracing — the envelope gained an optional
/// [`TraceContext`](ringbft_types::TraceContext) and transactions carry
/// an optional trace field, so older peers must not decode v5 bodies;
/// 6 = serialize-once fan-out — the destination moved out of the body
/// into a fixed 9-byte address field between the header and the MAC, so
/// a broadcast's body bytes are identical for every destination).
pub const VERSION: u16 = 6;

/// Bytes of the fixed frame header (excluding address + authenticator).
pub const HEADER_BYTES: usize = 12;

/// Bytes of the destination address following the header (v6): a 1-byte
/// node-kind tag and an 8-byte payload (replica: shard + index as two
/// `u32` LE; client: one `u64` LE).
pub const ADDR_BYTES: usize = 9;

/// Bytes of the frame authenticator following the address.
pub const FRAME_MAC_BYTES: usize = 32;

/// Bytes of the complete per-destination frame prefix: header, address,
/// MAC. Everything before the (shared, peer-independent) body.
pub const PREFIX_BYTES: usize = HEADER_BYTES + ADDR_BYTES + FRAME_MAC_BYTES;

/// The channel authenticator: derives and checks per-frame HMACs from
/// the deployment's shared [`KeyStore`] seed (every process of one
/// cluster must use the same seed — the `auth_seed` cluster knob).
#[derive(Debug, Clone)]
pub struct FrameAuth {
    ks: KeyStore,
}

impl FrameAuth {
    /// An authenticator over the key-distribution oracle seeded with
    /// `seed`.
    pub fn from_seed(seed: u64) -> FrameAuth {
        FrameAuth {
            ks: KeyStore::from_seed(seed),
        }
    }

    /// MAC of a data frame exchanged between `from` and `to`, covering
    /// the destination address bytes and the shared body. The domain
    /// tag separates data from Hello MACs, so flipping the (otherwise
    /// unauthenticated) `FLAG_HELLO` header bit can never turn an
    /// authenticated data frame into an accepted route announcement.
    fn data_tag(&self, from: NodeId, to: NodeId, addr: &[u8; ADDR_BYTES], body: &[u8]) -> [u8; 32] {
        self.ks.mac_parts(from, to, &[b"rbft-data", addr, body]).0
    }

    /// MAC of a Hello frame sent by `node` to `receiver` (domain-tagged,
    /// see [`FrameAuth::data_tag`]; covers address + body like data).
    fn hello_tag(
        &self,
        node: NodeId,
        receiver: NodeId,
        addr: &[u8; ADDR_BYTES],
        body: &[u8],
    ) -> [u8; 32] {
        self.ks
            .mac_parts(node, receiver, &[b"rbft-hello", addr, body])
            .0
    }
}

/// Encodes a destination into the fixed v6 address field.
fn encode_addr(to: NodeId) -> [u8; ADDR_BYTES] {
    let mut a = [0u8; ADDR_BYTES];
    match to {
        NodeId::Replica(r) => {
            a[0] = 0;
            a[1..5].copy_from_slice(&r.shard.0.to_le_bytes());
            a[5..9].copy_from_slice(&r.index.to_le_bytes());
        }
        NodeId::Client(c) => {
            a[0] = 1;
            a[1..9].copy_from_slice(&c.0.to_le_bytes());
        }
    }
    a
}

/// Decodes the fixed v6 address field back into a destination.
fn decode_addr(addr: &[u8; ADDR_BYTES]) -> Result<NodeId, CodecError> {
    match addr[0] {
        0 => {
            let shard = u32::from_le_bytes(addr[1..5].try_into().expect("4 bytes"));
            let index = u32::from_le_bytes(addr[5..9].try_into().expect("4 bytes"));
            Ok(NodeId::Replica(ReplicaId::new(ShardId(shard), index)))
        }
        1 => {
            let id = u64::from_le_bytes(addr[1..9].try_into().expect("8 bytes"));
            Ok(NodeId::Client(ClientId(id)))
        }
        tag => Err(CodecError::Body(bincode::Error::from(
            serde::Error::invalid(&format!("bad address tag {tag}")),
        ))),
    }
}

/// Header flag: the body is a [`Hello`] control frame, not an
/// [`Envelope`].
pub const FLAG_HELLO: u16 = 1;

/// Upper bound on a frame body. Sized from the wire model: a Forward of
/// a 100 000-transaction batch with a 1000-strong certificate stays well
/// under this.
pub const MAX_FRAME_BYTES: u32 = {
    // forward_bytes(100_000, 1000), inlined because the wire model's
    // helpers are not `const fn`: preprepare + certificate.
    let huge_forward = (208 + wire::PER_TXN_BYTES * 100_000) + 131 + wire::ATTEST_BYTES * 1000;
    // The model counts logical bytes; real encodings carry ids and
    // lengths too, so allow 16× the modeled size.
    (huge_forward * 16) as u32
};

/// A routed protocol message as it travels on the wire.
///
/// `to` is carried explicitly because one listener can host several
/// logical nodes (a `ringbft-node` process hosting a whole shard, or a
/// client host serving thousands of logical clients behind aliases).
/// Since codec v6 it rides in the frame's fixed address field, not the
/// body: the body bytes (`from` + `msg` + `trace`) are identical for
/// every destination of a broadcast.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// The sending node.
    pub from: NodeId,
    /// The destination node (possibly an alias the receiver resolves).
    pub to: NodeId,
    /// The protocol message.
    pub msg: M,
    /// Causal trace context (codec v5): present when `msg` transports a
    /// sampled transaction, so frames can be correlated by trace id and
    /// ring hop without decoding the body. Covered by the frame MAC
    /// like every other body byte.
    pub trace: Option<TraceContext>,
}

/// Borrowing view of a frame body: everything in an [`Envelope`] except
/// the destination. Hand-written codec impls because the vendored serde
/// derive intentionally rejects generics.
struct BodyRef<'a, M> {
    from: NodeId,
    msg: &'a M,
    trace: &'a Option<TraceContext>,
}

impl<M: Serialize> Serialize for BodyRef<'_, M> {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.from.serialize(out);
        self.msg.serialize(out);
        self.trace.serialize(out);
    }
}

/// Owned counterpart of [`BodyRef`], produced by decoding.
struct BodyOwned<M> {
    from: NodeId,
    msg: M,
    trace: Option<TraceContext>,
}

impl<M: Deserialize> Deserialize for BodyOwned<M> {
    fn deserialize(r: &mut serde::Reader<'_>) -> Result<Self, serde::Error> {
        Ok(BodyOwned {
            from: Deserialize::deserialize(r)?,
            msg: Deserialize::deserialize(r)?,
            trace: Deserialize::deserialize(r)?,
        })
    }
}

/// Serializes the peer-independent half of a data frame exactly once.
/// The returned bytes are shared (`Arc`) by every destination of a
/// broadcast; [`frame_prefix`] stamps the per-peer header + address +
/// MAC in front of them.
pub fn encode_body<M: Serialize>(
    from: NodeId,
    msg: &M,
    trace: &Option<TraceContext>,
) -> Result<Arc<[u8]>, CodecError> {
    let body = bincode::serialize(&BodyRef { from, msg, trace }).map_err(CodecError::Body)?;
    if body.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(CodecError::Oversized(body.len() as u64));
    }
    Ok(Arc::from(body))
}

/// Builds the fixed-size per-destination prefix (header + address +
/// MAC) for a shared body previously produced by [`encode_body`]. No
/// allocation: an N-way broadcast is one `encode_body` plus N of these.
pub fn frame_prefix(from: NodeId, to: NodeId, body: &[u8], auth: &FrameAuth) -> [u8; PREFIX_BYTES] {
    let addr = encode_addr(to);
    let mac = auth.data_tag(from, to, &addr, body);
    let mut prefix = [0u8; PREFIX_BYTES];
    prefix[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    prefix[4..6].copy_from_slice(&VERSION.to_le_bytes());
    prefix[6..8].copy_from_slice(&0u16.to_le_bytes());
    prefix[8..12].copy_from_slice(&(body.len() as u32).to_le_bytes());
    prefix[HEADER_BYTES..HEADER_BYTES + ADDR_BYTES].copy_from_slice(&addr);
    prefix[HEADER_BYTES + ADDR_BYTES..].copy_from_slice(&mac);
    prefix
}

/// Connection-setup announcement: the first frame a peer sends on a
/// fresh connection.
///
/// Cluster config files list replica addresses, but client hosts join
/// dynamically (and may sit behind ephemeral ports), so replies would
/// have nowhere to go. The Hello closes the loop: it names the sending
/// node, the logical ids aliased to it, and the port its own listener
/// accepts on. The receiver combines that port with the connection's
/// source IP to learn a dial-back address.
///
/// Trust note: a Hello is accepted only when its HMAC verifies under
/// the pair key of the announced node and the receiving node, so route
/// announcements cannot be forged without that pair's secret.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// The node this connection belongs to.
    pub node: NodeId,
    /// Logical ids whose traffic should route to `node` (a client host
    /// serving many logical clients).
    pub aliases: Vec<NodeId>,
    /// The port `node`'s own listener accepts on (IP comes from the
    /// connection's source address).
    pub listen_port: u16,
}

/// Any frame a connection can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<M> {
    /// A routed protocol message.
    Data(Envelope<M>),
    /// A connection-setup announcement.
    Hello(Hello),
}

/// Decoding/encoding failures.
#[derive(Debug)]
pub enum CodecError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer sent a frame with the wrong magic.
    BadMagic(u32),
    /// The peer speaks a frame version we do not.
    BadVersion(u16),
    /// A frame body (inbound declared, or outbound encoded) exceeds
    /// [`MAX_FRAME_BYTES`].
    Oversized(u64),
    /// The frame's HMAC authenticator failed to verify (§3 authenticated
    /// channels): forged, corrupted, or sent under a different
    /// `auth_seed`.
    BadMac,
    /// The body failed to decode.
    Body(bincode::Error),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "frame i/o: {e}"),
            CodecError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            CodecError::Oversized(n) => write!(f, "frame body of {n} bytes exceeds cap"),
            CodecError::BadMac => write!(f, "frame authenticator rejected"),
            CodecError::Body(e) => write!(f, "frame body: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> CodecError {
        CodecError::Io(e)
    }
}

impl CodecError {
    /// True when the error is a clean end-of-stream (peer closed between
    /// frames) rather than corruption.
    pub fn is_clean_eof(&self) -> bool {
        matches!(self, CodecError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof)
    }
}

/// Decodes and MAC-verifies one complete frame body. Shared by the
/// blocking reader ([`read_any_frame`]) and the reactor's incremental
/// [`FrameAssembler`] so both paths enforce identical authentication.
fn decode_body<M: Deserialize>(
    flags: u16,
    addr: &[u8; ADDR_BYTES],
    mac: &[u8; FRAME_MAC_BYTES],
    body: &[u8],
    auth: &FrameAuth,
    local: NodeId,
) -> Result<Frame<M>, CodecError> {
    if flags & FLAG_HELLO != 0 {
        let hello: Hello = bincode::deserialize(body).map_err(CodecError::Body)?;
        if !ringbft_crypto::hmac::digest_eq(&auth.hello_tag(hello.node, local, addr, body), mac) {
            return Err(CodecError::BadMac);
        }
        Ok(Frame::Hello(hello))
    } else {
        let to = decode_addr(addr)?;
        let b: BodyOwned<M> = bincode::deserialize(body).map_err(CodecError::Body)?;
        if !ringbft_crypto::hmac::digest_eq(&auth.data_tag(b.from, to, addr, body), mac) {
            return Err(CodecError::BadMac);
        }
        Ok(Frame::Data(Envelope {
            from: b.from,
            to,
            msg: b.msg,
            trace: b.trace,
        }))
    }
}

/// A frame whose header passed validation but whose MAC check and body
/// decode are still pending.
///
/// This is the unit of work the verify/hash pipeline stage moves off
/// the reactor thread: extraction (cheap, needs the stream cursor) runs
/// on the reactor via [`FrameAssembler::next_raw_frame`]; verification
/// (HMAC + deserialize, the expensive part) runs wherever
/// [`decode_raw_frame`] is called — a worker pool under
/// `pipeline_workers > 0`, the reactor itself otherwise.
#[derive(Debug, Clone)]
pub struct RawFrame {
    /// Header flags ([`FLAG_HELLO`]).
    pub flags: u16,
    /// The destination address field (parsed but not yet MAC-checked).
    pub addr: [u8; ADDR_BYTES],
    /// The frame authenticator (not yet checked).
    pub mac: [u8; FRAME_MAC_BYTES],
    /// The encoded body (not yet decoded).
    pub body: Vec<u8>,
}

impl RawFrame {
    /// True when the body is a [`Hello`] control frame. The reactor
    /// verifies Hellos inline — they are rare (one per connection) and
    /// routing must not lag behind the verify queue.
    pub fn is_hello(&self) -> bool {
        self.flags & FLAG_HELLO != 0
    }
}

/// MAC-verifies and decodes an extracted frame: the deferred second
/// half of [`FrameAssembler::next_frame`], enforcing the exact same
/// authentication rules.
pub fn decode_raw_frame<M: Deserialize>(
    raw: &RawFrame,
    auth: &FrameAuth,
    local: NodeId,
) -> Result<Frame<M>, CodecError> {
    decode_body(raw.flags, &raw.addr, &raw.mac, &raw.body, auth, local)
}

/// Validates the fixed 12-byte header at the start of `bytes`,
/// returning `(flags, body_len)`.
fn parse_header(bytes: &[u8]) -> Result<(u16, usize), CodecError> {
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let flags = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(CodecError::Oversized(len as u64));
    }
    Ok((flags, len as usize))
}

/// Incremental frame reassembly for nonblocking sockets: bytes arrive
/// in arbitrary chunks (`extend`), frames come out whole (`next_frame`).
///
/// This is the reactor's read path: a nonblocking `read` may deliver
/// half a header, a header plus part of a body, or several frames at
/// once — the assembler buffers until a complete
/// `header + MAC + body` is present, then decodes and verifies it with
/// the exact same rules as the blocking [`read_any_frame`]. The header
/// is validated as soon as it is complete, so a corrupt peer is
/// rejected before its declared body length allocates anything.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily so a burst of small
    /// frames does not memmove the tail once per frame).
    pos: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `pos` is dead.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed (partial-frame residue).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extracts the next complete frame, or `Ok(None)` when more bytes
    /// are needed. A malformed header or failed MAC is an error: the
    /// stream is unrecoverable and the connection must be dropped.
    pub fn next_frame<M: Deserialize>(
        &mut self,
        auth: &FrameAuth,
        local: NodeId,
    ) -> Result<Option<Frame<M>>, CodecError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < PREFIX_BYTES {
            return Ok(None);
        }
        let (flags, len) = parse_header(avail)?;
        let total = PREFIX_BYTES + len;
        if avail.len() < total {
            return Ok(None);
        }
        let addr: [u8; ADDR_BYTES] = avail[HEADER_BYTES..HEADER_BYTES + ADDR_BYTES]
            .try_into()
            .expect("addr bytes");
        let mac: [u8; FRAME_MAC_BYTES] = avail[HEADER_BYTES + ADDR_BYTES..PREFIX_BYTES]
            .try_into()
            .expect("mac bytes");
        let body = &avail[PREFIX_BYTES..total];
        let frame = decode_body(flags, &addr, &mac, body, auth, local)?;
        self.pos += total;
        Ok(Some(frame))
    }

    /// Extracts the next complete frame *without* verifying or decoding
    /// it — only the header is validated. The MAC check and body decode
    /// happen later via [`decode_raw_frame`] (on a verify worker).
    /// Errors carry the same meaning as [`FrameAssembler::next_frame`]:
    /// the stream is unrecoverable and the connection must be dropped.
    pub fn next_raw_frame(&mut self) -> Result<Option<RawFrame>, CodecError> {
        let mut scratch = Vec::new();
        self.next_raw_frame_in(&mut scratch)
    }

    /// Like [`FrameAssembler::next_raw_frame`], but moves the body into
    /// `scratch` (cleared first) instead of a fresh allocation — the
    /// reactor feeds pooled buffers here so the steady-state offload
    /// path performs no per-frame allocs. On a complete frame, `scratch`
    /// is taken (left empty); on `Ok(None)` or error it is untouched and
    /// the caller keeps it for the next call.
    pub fn next_raw_frame_in(
        &mut self,
        scratch: &mut Vec<u8>,
    ) -> Result<Option<RawFrame>, CodecError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < PREFIX_BYTES {
            return Ok(None);
        }
        let (flags, len) = parse_header(avail)?;
        let total = PREFIX_BYTES + len;
        if avail.len() < total {
            return Ok(None);
        }
        let addr: [u8; ADDR_BYTES] = avail[HEADER_BYTES..HEADER_BYTES + ADDR_BYTES]
            .try_into()
            .expect("addr bytes");
        let mac: [u8; FRAME_MAC_BYTES] = avail[HEADER_BYTES + ADDR_BYTES..PREFIX_BYTES]
            .try_into()
            .expect("mac bytes");
        scratch.clear();
        scratch.extend_from_slice(&avail[PREFIX_BYTES..total]);
        self.pos += total;
        Ok(Some(RawFrame {
            flags,
            addr,
            mac,
            body: std::mem::take(scratch),
        }))
    }
}

fn frame_with(
    flags: u16,
    addr: [u8; ADDR_BYTES],
    mac: [u8; 32],
    body: Vec<u8>,
) -> Result<Vec<u8>, CodecError> {
    if body.len() as u64 > MAX_FRAME_BYTES as u64 {
        // Refuse rather than panic: the runtime drops-and-counts
        // unencodable messages, and a frozen replica would be worse
        // than a lost frame.
        return Err(CodecError::Oversized(body.len() as u64));
    }
    let mut frame = Vec::with_capacity(PREFIX_BYTES + body.len());
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    frame.extend_from_slice(&VERSION.to_le_bytes());
    frame.extend_from_slice(&flags.to_le_bytes());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&addr);
    frame.extend_from_slice(&mac);
    frame.extend_from_slice(&body);
    Ok(frame)
}

/// Encodes one data frame (header + address + MAC + body) into a fresh
/// contiguous buffer. Convenience for unicast/blocking paths and tests;
/// the reactor's broadcast path uses [`encode_body`] + [`frame_prefix`]
/// to share the body bytes across destinations.
pub fn encode_frame<M: Serialize>(
    env: &Envelope<M>,
    auth: &FrameAuth,
) -> Result<Vec<u8>, CodecError> {
    let body = bincode::serialize(&BodyRef {
        from: env.from,
        msg: &env.msg,
        trace: &env.trace,
    })
    .map_err(CodecError::Body)?;
    let addr = encode_addr(env.to);
    let mac = auth.data_tag(env.from, env.to, &addr, &body);
    frame_with(0, addr, mac, body)
}

/// Encodes a [`Hello`] control frame addressed to `receiver` (the peer
/// being dialled; Hello MACs bind the connection's two endpoints). The
/// address field names the receiver, mirroring data frames.
pub fn encode_hello_frame(
    hello: &Hello,
    auth: &FrameAuth,
    receiver: NodeId,
) -> Result<Vec<u8>, CodecError> {
    let body = bincode::serialize(hello).map_err(CodecError::Body)?;
    let addr = encode_addr(receiver);
    let mac = auth.hello_tag(hello.node, receiver, &addr, &body);
    frame_with(FLAG_HELLO, addr, mac, body)
}

/// Writes one frame to `w` (flushes).
pub fn write_frame<M: Serialize, W: Write>(
    w: &mut W,
    env: &Envelope<M>,
    auth: &FrameAuth,
) -> Result<usize, CodecError> {
    let frame = encode_frame(env, auth)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// Reads one frame (data or control) from `r`, blocking until a full
/// frame arrives, and verifies its authenticator. `local` is the
/// reading node's identity (Hello MACs bind to the receiver; data MACs
/// bind to the envelope's own endpoints).
pub fn read_any_frame<M: Deserialize, R: Read>(
    r: &mut R,
    auth: &FrameAuth,
    local: NodeId,
) -> Result<Frame<M>, CodecError> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    let (flags, len) = parse_header(&header)?;
    let mut addr = [0u8; ADDR_BYTES];
    r.read_exact(&mut addr)?;
    let mut mac = [0u8; FRAME_MAC_BYTES];
    r.read_exact(&mut mac)?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    decode_body(flags, &addr, &mac, &body, auth, local)
}

/// Reads one *data* frame from `r`; control frames are an error. Kept
/// for callers that only speak protocol traffic (tests, tools).
pub fn read_frame<M: Deserialize, R: Read>(
    r: &mut R,
    auth: &FrameAuth,
    local: NodeId,
) -> Result<Envelope<M>, CodecError> {
    match read_any_frame(r, auth, local)? {
        Frame::Data(env) => Ok(env),
        Frame::Hello(_) => Err(CodecError::Body(bincode::Error::from(
            serde::Error::invalid("unexpected control frame"),
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringbft_core::RingMsg;
    use ringbft_sim::AnyMsg;
    use ringbft_types::txn::{Operation, OperationKind, Transaction};
    use ringbft_types::{ClientId, ReplicaId, ShardId, TxnId};
    use std::sync::Arc;

    fn auth() -> FrameAuth {
        FrameAuth::from_seed(0)
    }

    fn receiver() -> NodeId {
        NodeId::Replica(ReplicaId::new(ShardId(0), 0))
    }

    fn sample_env() -> Envelope<AnyMsg> {
        let txn = Transaction::new(
            TxnId(7),
            ClientId(3),
            vec![Operation {
                shard: ShardId(0),
                key: 42,
                kind: OperationKind::ReadModifyWrite,
            }],
        );
        Envelope {
            from: NodeId::Client(ClientId(3)),
            to: receiver(),
            msg: AnyMsg::Ring(RingMsg::Request {
                txn: Arc::new(txn),
                relayed: false,
            }),
            trace: Some(TraceContext::new(ringbft_types::trace::trace_id_for(7))),
        }
    }

    #[test]
    fn frame_round_trips() {
        let env = sample_env();
        let frame = encode_frame(&env, &auth()).unwrap();
        let decoded: Envelope<AnyMsg> =
            read_frame(&mut frame.as_slice(), &auth(), receiver()).unwrap();
        assert_eq!(decoded, env);
    }

    #[test]
    fn header_is_versioned() {
        let env = sample_env();
        let mut frame = encode_frame(&env, &auth()).unwrap();
        frame[4] = 99; // version
        let err = read_frame::<AnyMsg, _>(&mut frame.as_slice(), &auth(), receiver()).unwrap_err();
        assert!(matches!(err, CodecError::BadVersion(99)));

        let mut frame = encode_frame(&env, &auth()).unwrap();
        frame[0] ^= 0xff; // magic
        let err = read_frame::<AnyMsg, _>(&mut frame.as_slice(), &auth(), receiver()).unwrap_err();
        assert!(matches!(err, CodecError::BadMagic(_)));
    }

    #[test]
    fn oversized_frames_rejected_before_allocation() {
        let env = sample_env();
        let mut frame = encode_frame(&env, &auth()).unwrap();
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame::<AnyMsg, _>(&mut frame.as_slice(), &auth(), receiver()).unwrap_err();
        assert!(matches!(err, CodecError::Oversized(_)));
    }

    #[test]
    fn tampered_body_or_mac_is_rejected() {
        let env = sample_env();
        // Flip one bit of the MAC.
        let mut frame = encode_frame(&env, &auth()).unwrap();
        frame[HEADER_BYTES + ADDR_BYTES] ^= 1;
        let err = read_frame::<AnyMsg, _>(&mut frame.as_slice(), &auth(), receiver()).unwrap_err();
        assert!(matches!(err, CodecError::BadMac));
        // Flip one bit of the destination address: the MAC covers it.
        let mut frame = encode_frame(&env, &auth()).unwrap();
        frame[HEADER_BYTES + 1] ^= 1;
        let err = read_frame::<AnyMsg, _>(&mut frame.as_slice(), &auth(), receiver()).unwrap_err();
        assert!(matches!(err, CodecError::BadMac | CodecError::Body(_)));
        // Flip one bit of the body.
        let mut frame = encode_frame(&env, &auth()).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 1;
        let err = read_frame::<AnyMsg, _>(&mut frame.as_slice(), &auth(), receiver()).unwrap_err();
        assert!(matches!(err, CodecError::BadMac | CodecError::Body(_)));
    }

    #[test]
    fn reflagging_a_data_frame_as_hello_is_rejected() {
        // The header flags are outside the MAC, but the MAC domain tag
        // makes a data tag useless for a Hello frame: an on-path
        // tamperer flipping FLAG_HELLO must not plant a route.
        let env = sample_env();
        let mut frame = encode_frame(&env, &auth()).unwrap();
        frame[6] |= FLAG_HELLO as u8;
        let err =
            read_any_frame::<AnyMsg, _>(&mut frame.as_slice(), &auth(), receiver()).unwrap_err();
        assert!(matches!(err, CodecError::BadMac | CodecError::Body(_)));
    }

    #[test]
    fn wrong_auth_seed_is_rejected() {
        let env = sample_env();
        let frame = encode_frame(&env, &FrameAuth::from_seed(1)).unwrap();
        let err = read_frame::<AnyMsg, _>(&mut frame.as_slice(), &auth(), receiver()).unwrap_err();
        assert!(matches!(err, CodecError::BadMac));
    }

    #[test]
    fn hello_macs_bind_the_receiver() {
        let hello = Hello {
            node: NodeId::Replica(ReplicaId::new(ShardId(1), 2)),
            aliases: vec![],
            listen_port: 4242,
        };
        let frame = encode_hello_frame(&hello, &auth(), receiver()).unwrap();
        let decoded = read_any_frame::<AnyMsg, _>(&mut frame.as_slice(), &auth(), receiver());
        assert!(matches!(decoded, Ok(Frame::Hello(h)) if h == hello));
        // A different receiver must not accept it (wrong pair key).
        let other = NodeId::Replica(ReplicaId::new(ShardId(2), 3));
        let err = read_any_frame::<AnyMsg, _>(&mut frame.as_slice(), &auth(), other).unwrap_err();
        assert!(matches!(err, CodecError::BadMac));
    }

    #[test]
    fn truncated_stream_is_clean_eof_between_frames() {
        let err = read_frame::<AnyMsg, _>(&mut [].as_slice(), &auth(), receiver()).unwrap_err();
        assert!(err.is_clean_eof());
    }

    #[test]
    fn assembler_reassembles_frames_across_split_reads() {
        let env = sample_env();
        let frame = encode_frame(&env, &auth()).unwrap();
        // Feed the frame one byte at a time: no prefix may yield a
        // frame, the final byte must yield exactly one.
        let mut asm = FrameAssembler::new();
        for (i, b) in frame.iter().enumerate() {
            asm.extend(std::slice::from_ref(b));
            let got = asm.next_frame::<AnyMsg>(&auth(), receiver()).unwrap();
            if i + 1 < frame.len() {
                assert!(got.is_none(), "frame surfaced early at byte {i}");
            } else {
                assert!(matches!(got, Some(Frame::Data(d)) if d == env));
            }
        }
        assert_eq!(asm.buffered(), 0);
        assert!(asm
            .next_frame::<AnyMsg>(&auth(), receiver())
            .unwrap()
            .is_none());
    }

    #[test]
    fn assembler_handles_two_frames_split_at_every_boundary() {
        let env = sample_env();
        let hello = Hello {
            node: NodeId::Replica(ReplicaId::new(ShardId(1), 2)),
            aliases: vec![NodeId::Client(ClientId(9))],
            listen_port: 4242,
        };
        let mut stream = encode_frame(&env, &auth()).unwrap();
        stream.extend_from_slice(&encode_hello_frame(&hello, &auth(), receiver()).unwrap());
        for cut in 0..=stream.len() {
            let mut asm = FrameAssembler::new();
            let mut frames = Vec::new();
            for chunk in [&stream[..cut], &stream[cut..]] {
                asm.extend(chunk);
                while let Some(f) = asm.next_frame::<AnyMsg>(&auth(), receiver()).unwrap() {
                    frames.push(f);
                }
            }
            assert_eq!(frames.len(), 2, "cut at {cut}");
            assert!(matches!(&frames[0], Frame::Data(d) if *d == env));
            assert!(matches!(&frames[1], Frame::Hello(h) if *h == hello));
            assert_eq!(asm.buffered(), 0);
        }
    }

    #[test]
    fn raw_extraction_defers_mac_and_decode() {
        let env = sample_env();
        let frame = encode_frame(&env, &auth()).unwrap();
        let mut asm = FrameAssembler::new();
        asm.extend(&frame);
        let raw = asm.next_raw_frame().unwrap().expect("complete frame");
        assert!(!raw.is_hello());
        assert_eq!(asm.buffered(), 0);
        // The deferred decode enforces the same authentication.
        let decoded = decode_raw_frame::<AnyMsg>(&raw, &auth(), receiver()).unwrap();
        assert!(matches!(decoded, Frame::Data(d) if d == env));

        // A tampered MAC passes extraction (header-only) but fails the
        // deferred verify — exactly the split the offload stage relies
        // on: corruption is caught before delivery, just off-thread.
        let mut tampered = raw.clone();
        tampered.mac[0] ^= 1;
        let err = decode_raw_frame::<AnyMsg>(&tampered, &auth(), receiver()).unwrap_err();
        assert!(matches!(err, CodecError::BadMac));
    }

    #[test]
    fn raw_extraction_validates_headers_eagerly() {
        let env = sample_env();
        let mut frame = encode_frame(&env, &auth()).unwrap();
        frame[4] = 99; // version
        let mut asm = FrameAssembler::new();
        asm.extend(&frame);
        let err = asm.next_raw_frame().unwrap_err();
        assert!(matches!(err, CodecError::BadVersion(99)));

        // A Hello extracts with the flag visible, so the reactor can
        // keep routing frames on the fast path.
        let hello = Hello {
            node: NodeId::Replica(ReplicaId::new(ShardId(1), 2)),
            aliases: vec![],
            listen_port: 4242,
        };
        let mut asm = FrameAssembler::new();
        asm.extend(&encode_hello_frame(&hello, &auth(), receiver()).unwrap());
        let raw = asm.next_raw_frame().unwrap().expect("complete frame");
        assert!(raw.is_hello());
        let decoded = decode_raw_frame::<AnyMsg>(&raw, &auth(), receiver()).unwrap();
        assert!(matches!(decoded, Frame::Hello(h) if h == hello));
    }

    #[test]
    fn assembler_rejects_corruption_without_waiting_for_the_body() {
        let env = sample_env();
        let mut frame = encode_frame(&env, &auth()).unwrap();
        frame[0] ^= 0xff; // magic
        let mut asm = FrameAssembler::new();
        // The frame prefix alone is enough to reject — the (possibly
        // huge) declared body never needs to arrive.
        asm.extend(&frame[..PREFIX_BYTES]);
        let err = asm.next_frame::<AnyMsg>(&auth(), receiver()).unwrap_err();
        assert!(matches!(err, CodecError::BadMagic(_)));

        let mut frame = encode_frame(&env, &auth()).unwrap();
        frame[HEADER_BYTES + ADDR_BYTES] ^= 1; // MAC bit
        let mut asm = FrameAssembler::new();
        asm.extend(&frame);
        let err = asm.next_frame::<AnyMsg>(&auth(), receiver()).unwrap_err();
        assert!(matches!(err, CodecError::BadMac));
    }

    #[test]
    fn shared_body_plus_prefix_equals_unicast_encoding() {
        // The serialize-once path (encode_body + frame_prefix per peer)
        // must emit byte-identical frames to the unicast encoder, so
        // every decoder accepts either interchangeably.
        let env = sample_env();
        let body = encode_body(env.from, &env.msg, &env.trace).unwrap();
        let prefix = frame_prefix(env.from, env.to, &body, &auth());
        let mut fanned = prefix.to_vec();
        fanned.extend_from_slice(&body);
        assert_eq!(fanned, encode_frame(&env, &auth()).unwrap());

        // A second destination reuses the same body bytes; only the
        // prefix differs, and both decode to their own destination.
        let other = NodeId::Replica(ReplicaId::new(ShardId(2), 3));
        let prefix2 = frame_prefix(env.from, other, &body, &auth());
        assert_ne!(prefix[HEADER_BYTES..], prefix2[HEADER_BYTES..]);
        let mut frame2 = prefix2.to_vec();
        frame2.extend_from_slice(&body);
        let decoded: Envelope<AnyMsg> =
            read_frame(&mut frame2.as_slice(), &auth(), receiver()).unwrap();
        assert_eq!(decoded.to, other);
        assert_eq!(decoded.msg, env.msg);
    }

    #[test]
    fn pooled_raw_extraction_takes_and_returns_scratch() {
        let env = sample_env();
        let frame = encode_frame(&env, &auth()).unwrap();
        let mut asm = FrameAssembler::new();
        // A partial frame leaves the scratch buffer with the caller.
        asm.extend(&frame[..PREFIX_BYTES]);
        let mut scratch = Vec::with_capacity(4096);
        assert!(asm.next_raw_frame_in(&mut scratch).unwrap().is_none());
        assert_eq!(scratch.capacity(), 4096);
        // The complete frame moves the scratch into the RawFrame body.
        asm.extend(&frame[PREFIX_BYTES..]);
        let raw = asm
            .next_raw_frame_in(&mut scratch)
            .unwrap()
            .expect("complete frame");
        assert!(scratch.is_empty());
        assert!(raw.body.capacity() >= 4096, "pooled capacity reused");
        let decoded = decode_raw_frame::<AnyMsg>(&raw, &auth(), receiver()).unwrap();
        assert!(matches!(decoded, Frame::Data(d) if d == env));
    }
}
