//! Length-prefixed binary framing for protocol messages on real sockets.
//!
//! Every frame is a fixed 12-byte header followed by a bincode-encoded
//! [`Envelope`]:
//!
//! ```text
//! +--------+---------+-------+-----------+----------------------+
//! | magic  | version | flags | body len  | bincode(Envelope<M>) |
//! | u32 LE | u16 LE  | u16LE | u32 LE    | `body len` bytes     |
//! +--------+---------+-------+-----------+----------------------+
//! ```
//!
//! The header is versioned so future PRs can evolve the body encoding
//! (compression, signatures) without breaking running clusters mid-
//! upgrade: a decoder rejects frames whose `version` it does not speak
//! instead of misparsing them.
//!
//! The body length is bounded by [`MAX_FRAME_BYTES`]; the bound is
//! derived from the same size model the simulator charges for bandwidth
//! (`ringbft_types::wire`): the largest legitimate message is a Forward
//! carrying a full batch plus its certificate, so the cap leaves two
//! orders of magnitude of headroom above the paper's standard settings
//! while still refusing absurd allocations from corrupt peers.

use ringbft_types::wire;
use ringbft_types::NodeId;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Frame magic: `"RBFT"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"RBFT");

/// Current frame version.
pub const VERSION: u16 = 1;

/// Bytes of the fixed frame header.
pub const HEADER_BYTES: usize = 12;

/// Header flag: the body is a [`Hello`] control frame, not an
/// [`Envelope`].
pub const FLAG_HELLO: u16 = 1;

/// Upper bound on a frame body. Sized from the wire model: a Forward of
/// a 100 000-transaction batch with a 1000-strong certificate stays well
/// under this.
pub const MAX_FRAME_BYTES: u32 = {
    // forward_bytes(100_000, 1000), inlined because the wire model's
    // helpers are not `const fn`: preprepare + certificate.
    let huge_forward = (208 + wire::PER_TXN_BYTES * 100_000) + 131 + wire::ATTEST_BYTES * 1000;
    // The model counts logical bytes; real encodings carry ids and
    // lengths too, so allow 16× the modeled size.
    (huge_forward * 16) as u32
};

/// A routed protocol message as it travels on the wire.
///
/// `to` is carried explicitly because one listener can host several
/// logical nodes (a `ringbft-node` process hosting a whole shard, or a
/// client host serving thousands of logical clients behind aliases).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// The sending node.
    pub from: NodeId,
    /// The destination node (possibly an alias the receiver resolves).
    pub to: NodeId,
    /// The protocol message.
    pub msg: M,
}

// `Envelope` is generic, so its codec impls are written out by hand (the
// vendored serde derive intentionally rejects generics).
impl<M: Serialize> Serialize for Envelope<M> {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.from.serialize(out);
        self.to.serialize(out);
        self.msg.serialize(out);
    }
}

impl<M: Deserialize> Deserialize for Envelope<M> {
    fn deserialize(r: &mut serde::Reader<'_>) -> Result<Self, serde::Error> {
        Ok(Envelope {
            from: Deserialize::deserialize(r)?,
            to: Deserialize::deserialize(r)?,
            msg: Deserialize::deserialize(r)?,
        })
    }
}

/// Connection-setup announcement: the first frame a peer sends on a
/// fresh connection.
///
/// Cluster config files list replica addresses, but client hosts join
/// dynamically (and may sit behind ephemeral ports), so replies would
/// have nowhere to go. The Hello closes the loop: it names the sending
/// node, the logical ids aliased to it, and the port its own listener
/// accepts on. The receiver combines that port with the connection's
/// source IP to learn a dial-back address.
///
/// Trust note: Hellos are taken at face value today, matching the
/// unauthenticated channel model of the rest of the transport; wiring
/// `ringbft-crypto` authenticators through the codec is a roadmap item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// The node this connection belongs to.
    pub node: NodeId,
    /// Logical ids whose traffic should route to `node` (a client host
    /// serving many logical clients).
    pub aliases: Vec<NodeId>,
    /// The port `node`'s own listener accepts on (IP comes from the
    /// connection's source address).
    pub listen_port: u16,
}

/// Any frame a connection can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<M> {
    /// A routed protocol message.
    Data(Envelope<M>),
    /// A connection-setup announcement.
    Hello(Hello),
}

/// Decoding/encoding failures.
#[derive(Debug)]
pub enum CodecError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer sent a frame with the wrong magic.
    BadMagic(u32),
    /// The peer speaks a frame version we do not.
    BadVersion(u16),
    /// A frame body (inbound declared, or outbound encoded) exceeds
    /// [`MAX_FRAME_BYTES`].
    Oversized(u64),
    /// The body failed to decode.
    Body(bincode::Error),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "frame i/o: {e}"),
            CodecError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            CodecError::Oversized(n) => write!(f, "frame body of {n} bytes exceeds cap"),
            CodecError::Body(e) => write!(f, "frame body: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> CodecError {
        CodecError::Io(e)
    }
}

impl CodecError {
    /// True when the error is a clean end-of-stream (peer closed between
    /// frames) rather than corruption.
    pub fn is_clean_eof(&self) -> bool {
        matches!(self, CodecError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof)
    }
}

fn frame_with(flags: u16, body: Vec<u8>) -> Result<Vec<u8>, CodecError> {
    if body.len() as u64 > MAX_FRAME_BYTES as u64 {
        // Refuse rather than panic: the runtime drops-and-counts
        // unencodable messages, and a frozen replica would be worse
        // than a lost frame.
        return Err(CodecError::Oversized(body.len() as u64));
    }
    let mut frame = Vec::with_capacity(HEADER_BYTES + body.len());
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    frame.extend_from_slice(&VERSION.to_le_bytes());
    frame.extend_from_slice(&flags.to_le_bytes());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    Ok(frame)
}

/// Encodes one data frame (header + body) into a fresh buffer.
pub fn encode_frame<M: Serialize>(env: &Envelope<M>) -> Result<Vec<u8>, CodecError> {
    let body = bincode::serialize(env).map_err(CodecError::Body)?;
    frame_with(0, body)
}

/// Encodes a [`Hello`] control frame.
pub fn encode_hello_frame(hello: &Hello) -> Result<Vec<u8>, CodecError> {
    let body = bincode::serialize(hello).map_err(CodecError::Body)?;
    frame_with(FLAG_HELLO, body)
}

/// Writes one frame to `w` (flushes).
pub fn write_frame<M: Serialize, W: Write>(
    w: &mut W,
    env: &Envelope<M>,
) -> Result<usize, CodecError> {
    let frame = encode_frame(env)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// Reads one frame (data or control) from `r`, blocking until a full
/// frame arrives.
pub fn read_any_frame<M: Deserialize, R: Read>(r: &mut R) -> Result<Frame<M>, CodecError> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let flags = u16::from_le_bytes(header[6..8].try_into().expect("2 bytes"));
    let len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(CodecError::Oversized(len as u64));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    if flags & FLAG_HELLO != 0 {
        Ok(Frame::Hello(
            bincode::deserialize(&body).map_err(CodecError::Body)?,
        ))
    } else {
        Ok(Frame::Data(
            bincode::deserialize(&body).map_err(CodecError::Body)?,
        ))
    }
}

/// Reads one *data* frame from `r`; control frames are an error. Kept
/// for callers that only speak protocol traffic (tests, tools).
pub fn read_frame<M: Deserialize, R: Read>(r: &mut R) -> Result<Envelope<M>, CodecError> {
    match read_any_frame(r)? {
        Frame::Data(env) => Ok(env),
        Frame::Hello(_) => Err(CodecError::Body(bincode::Error::from(
            serde::Error::invalid("unexpected control frame"),
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringbft_core::RingMsg;
    use ringbft_sim::AnyMsg;
    use ringbft_types::txn::{Operation, OperationKind, Transaction};
    use ringbft_types::{ClientId, ReplicaId, ShardId, TxnId};
    use std::sync::Arc;

    fn sample_env() -> Envelope<AnyMsg> {
        let txn = Transaction::new(
            TxnId(7),
            ClientId(3),
            vec![Operation {
                shard: ShardId(0),
                key: 42,
                kind: OperationKind::ReadModifyWrite,
            }],
        );
        Envelope {
            from: NodeId::Client(ClientId(3)),
            to: NodeId::Replica(ReplicaId::new(ShardId(0), 0)),
            msg: AnyMsg::Ring(RingMsg::Request {
                txn: Arc::new(txn),
                relayed: false,
            }),
        }
    }

    #[test]
    fn frame_round_trips() {
        let env = sample_env();
        let frame = encode_frame(&env).unwrap();
        let decoded: Envelope<AnyMsg> = read_frame(&mut frame.as_slice()).unwrap();
        assert_eq!(decoded, env);
    }

    #[test]
    fn header_is_versioned() {
        let env = sample_env();
        let mut frame = encode_frame(&env).unwrap();
        frame[4] = 99; // version
        let err = read_frame::<AnyMsg, _>(&mut frame.as_slice()).unwrap_err();
        assert!(matches!(err, CodecError::BadVersion(99)));

        let mut frame = encode_frame(&env).unwrap();
        frame[0] ^= 0xff; // magic
        let err = read_frame::<AnyMsg, _>(&mut frame.as_slice()).unwrap_err();
        assert!(matches!(err, CodecError::BadMagic(_)));
    }

    #[test]
    fn oversized_frames_rejected_before_allocation() {
        let env = sample_env();
        let mut frame = encode_frame(&env).unwrap();
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame::<AnyMsg, _>(&mut frame.as_slice()).unwrap_err();
        assert!(matches!(err, CodecError::Oversized(_)));
    }

    #[test]
    fn truncated_stream_is_clean_eof_between_frames() {
        let err = read_frame::<AnyMsg, _>(&mut [].as_slice()).unwrap_err();
        assert!(err.is_clean_eof());
    }
}
