//! The real-network driver: hosts one sans-io [`ProtocolNode`] on a TCP
//! listener with real clocks, real sockets and real kernels.
//!
//! The runtime is the second implementation of the driver contract the
//! discrete-event simulator defines (`ringbft_types::sansio`): the exact
//! same state machines (`RingReplica`, the PBFT baselines, `SimClient`)
//! run unchanged over loopback or a real WAN.
//!
//! ## Thread model
//!
//! Per hosted node: **exactly `reactor_shards` reactor threads**
//! (default one), independent of how many peers or clients are
//! connected. Each reactor (`crate::reactor`) multiplexes its share of
//! the node's sockets through one `epoll` instance: nonblocking
//! accept/read/write state machines per connection, per-peer outbound
//! byte queues with backpressure watermarks (when a peer cannot keep
//! up, new frames for it are dropped and counted rather than buffered
//! without bound — BFT retransmission timers provide recovery, the same
//! assumption the paper makes about unreliable channels), and the
//! protocol timer wheel folded into the `epoll_wait` timeout.
//!
//! The previous runtime spawned two OS threads per peer connection plus
//! a timer thread — at the paper's scale (428 nodes, 500 k clients)
//! that thread count is the bottleneck; the reactor keeps the thread
//! count a small constant.
//!
//! Timestamps handed to protocol nodes are nanoseconds since a shared
//! epoch (`Clock`), so all nodes of one process observe one timebase,
//! mirroring `Instant::ZERO` at simulation start.

use crate::codec::{Envelope, FrameAuth};
use crate::reactor::{self, EventFd, PeerQueue, TimerState};
use ringbft_core::WorkerPool;
use ringbft_types::sansio::ProtocolNode;
use ringbft_types::{Instant, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;

/// Marker for messages the runtime can carry: encodable, decodable, and
/// movable across the runtime's threads.
pub trait NetMsg: Serialize + Deserialize + Clone + Send + 'static {}

impl<T: Serialize + Deserialize + Clone + Send + 'static> NetMsg for T {}

/// Shared wall-clock epoch translating real time into the sans-io
/// `Instant` timeline.
#[derive(Debug, Clone)]
pub struct Clock {
    epoch: std::time::Instant,
}

impl Clock {
    /// A clock starting now.
    pub fn start() -> Clock {
        Clock {
            epoch: std::time::Instant::now(),
        }
    }

    /// Nanoseconds since the epoch, as the protocol-visible instant.
    pub fn now(&self) -> Instant {
        Instant(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// Routing state: where each peer listens, plus alias routing (many
/// logical client ids hosted by one client-host node, exactly like the
/// simulator's `World::add_alias`).
///
/// Clones share one underlying table, so registering a node after a
/// cluster is up (a client host joining, a replica being replaced) is
/// immediately visible to every runtime holding a clone.
#[derive(Debug, Clone, Default)]
pub struct PeerTable {
    inner: Arc<std::sync::RwLock<PeerTableInner>>,
}

#[derive(Debug, Default)]
struct PeerTableInner {
    addrs: HashMap<NodeId, SocketAddr>,
    aliases: HashMap<NodeId, NodeId>,
}

impl PeerTable {
    /// An empty table.
    pub fn new() -> PeerTable {
        PeerTable::default()
    }

    /// Registers `node` as listening on `addr`.
    pub fn insert(&self, node: NodeId, addr: SocketAddr) {
        self.inner
            .write()
            .expect("peer table")
            .addrs
            .insert(node, addr);
    }

    /// Registers `node` only if it has no address yet. Used for routes
    /// learned from Hello frames: a statically configured address (for
    /// example a replica's public interface from the cluster file) must
    /// never be clobbered by a connection's source IP, which can differ
    /// on multi-homed hosts.
    pub fn insert_if_absent(&self, node: NodeId, addr: SocketAddr) {
        self.inner
            .write()
            .expect("peer table")
            .addrs
            .entry(node)
            .or_insert(addr);
    }

    /// Routes traffic for `alias` to `target`'s listener.
    pub fn add_alias(&self, alias: NodeId, target: NodeId) {
        self.inner
            .write()
            .expect("peer table")
            .aliases
            .insert(alias, target);
    }

    /// Resolves an alias to its hosting node (identity for non-aliases).
    pub fn resolve(&self, node: NodeId) -> NodeId {
        self.inner
            .read()
            .expect("peer table")
            .aliases
            .get(&node)
            .copied()
            .unwrap_or(node)
    }

    /// The listener address of `node` (after alias resolution).
    pub fn addr_of(&self, node: NodeId) -> Option<SocketAddr> {
        let inner = self.inner.read().expect("peer table");
        let resolved = inner.aliases.get(&node).copied().unwrap_or(node);
        inner.addrs.get(&resolved).copied()
    }

    /// Snapshot of all registered `(node, addr)` pairs.
    pub fn entries(&self) -> Vec<(NodeId, SocketAddr)> {
        let inner = self.inner.read().expect("peer table");
        inner.addrs.iter().map(|(n, a)| (*n, *a)).collect()
    }

    /// All aliases currently routing to `target`.
    pub fn aliases_of(&self, target: NodeId) -> Vec<NodeId> {
        let inner = self.inner.read().expect("peer table");
        inner
            .aliases
            .iter()
            .filter(|(_, t)| **t == target)
            .map(|(a, _)| *a)
            .collect()
    }
}

/// Counters mirroring the simulator's `NetStats`, plus the transport-
/// level drop counter of the backpressure boundary.
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Frames handed to peer queues.
    pub messages_sent: AtomicU64,
    /// Actual encoded bytes handed to peer queues.
    pub bytes_sent: AtomicU64,
    /// Bytes the simulator's wire model would have charged for the same
    /// messages — kept so simulated and real runs report comparable
    /// bandwidth numbers.
    pub modeled_bytes_sent: AtomicU64,
    /// Frames dropped before enqueue (peer queue over its watermark,
    /// unknown peer, unencodable message).
    pub messages_dropped: AtomicU64,
    /// Frames accepted into a peer queue whose delivery then failed
    /// (peer unreachable past the retry budget). `messages_sent`
    /// already counted them, so sent − undeliverable ≈ on the wire.
    pub messages_undeliverable: AtomicU64,
    /// Timers fired (uncancelled).
    pub timers_fired: AtomicU64,
    /// Frames delivered to the hosted node.
    pub messages_delivered: AtomicU64,
    /// Inbound frames suppressed by a fault-injection filter
    /// ([`NodeRuntime::set_inbound_filter`]).
    pub messages_filtered: AtomicU64,
    /// Outbound dials beyond a peer's first attempt (reconnects after a
    /// failure or a dead connection).
    pub reconnects: AtomicU64,
    /// `SendMany` fan-outs staged (each encoded its payload once).
    pub broadcasts: AtomicU64,
    /// Payload serializations avoided by sharing one encoded body
    /// across a broadcast's destinations: a fan-out to `k` remote peers
    /// adds `k − 1` (the pre-v6 codec paid `k` full encodes).
    pub encodes_saved: AtomicU64,
}

/// A bounded free-list of reusable byte buffers shared by a runtime's
/// reactor shards: frame-reassembly scratch on the verify-offload read
/// path and per-connection egress staging buffers both cycle through
/// here instead of allocating per frame / per connection.
pub(crate) struct BufPool {
    free: Mutex<Vec<Vec<u8>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufPool {
    /// Buffers retained at most; excess returns simply drop.
    const MAX_POOLED: usize = 64;
    /// Fresh-buffer capacity on a pool miss (one comfortable frame).
    const MIN_CAPACITY: usize = 4 * 1024;
    /// Buffers that ballooned past this are dropped rather than
    /// retained, so one huge body cannot pin memory forever.
    const MAX_RETAINED_CAPACITY: usize = 1024 * 1024;

    fn new() -> BufPool {
        BufPool {
            free: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// An empty buffer, reused when the free list has one.
    pub(crate) fn take(&self) -> Vec<u8> {
        let pooled = self.free.lock().expect("buf pool").pop();
        match pooled {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(Self::MIN_CAPACITY)
            }
        }
    }

    /// Returns a buffer to the free list (cleared; oversized or
    /// capacity-less buffers are dropped).
    pub(crate) fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > Self::MAX_RETAINED_CAPACITY {
            return;
        }
        buf.clear();
        let mut free = self.free.lock().expect("buf pool");
        if free.len() < Self::MAX_POOLED {
            free.push(buf);
        }
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// A point-in-time copy of [`NetCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Frames handed to peer queues.
    pub messages_sent: u64,
    /// Actual encoded bytes handed to peer queues.
    pub bytes_sent: u64,
    /// Wire-model bytes for the same messages.
    pub modeled_bytes_sent: u64,
    /// Frames dropped at the backpressure boundary.
    pub messages_dropped: u64,
    /// Enqueued frames whose delivery failed (peer unreachable).
    pub messages_undeliverable: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Frames delivered to the node.
    pub messages_delivered: u64,
    /// Inbound frames suppressed by a fault-injection filter.
    pub messages_filtered: u64,
    /// Outbound dials beyond a peer's first attempt.
    pub reconnects: u64,
    /// `SendMany` fan-outs staged.
    pub broadcasts: u64,
    /// Payload serializations avoided by serialize-once fan-out.
    pub encodes_saved: u64,
}

/// Reactor-level instruments shared across a runtime's shards.
///
/// Counters that are touched on every frame stay lock-free atomics; the
/// epoll-wait histogram and the connection trace sit behind mutexes but
/// are only taken once per poll return / per lifecycle event.
pub(crate) struct NetObs {
    /// Nanoseconds spent inside each `epoll_wait` call.
    pub(crate) epoll_wait: Mutex<ringbft_obs::Histogram>,
    /// High-water mark of any single peer queue's buffered bytes.
    pub(crate) queue_hwm_bytes: AtomicU64,
    /// Frames rejected because a peer queue sat at its watermark.
    pub(crate) backpressure_hits: AtomicU64,
    /// Socket reads that ended with a partial frame still buffered in
    /// the reassembler (a frame split across reads — normal under load,
    /// but a sustained climb means undersized reads or a trickling
    /// peer).
    pub(crate) reassembly_stalls: AtomicU64,
    /// Connection-lifecycle trace (reconnect attempts), timestamped on
    /// the runtime clock.
    pub(crate) trace: Mutex<ringbft_obs::TraceRing>,
}

/// Retained connection-lifecycle events per runtime.
const NET_TRACE_CAPACITY: usize = 256;

impl Default for NetObs {
    fn default() -> NetObs {
        NetObs {
            epoll_wait: Mutex::new(ringbft_obs::Histogram::new()),
            queue_hwm_bytes: AtomicU64::new(0),
            backpressure_hits: AtomicU64::new(0),
            reassembly_stalls: AtomicU64::new(0),
            trace: Mutex::new(ringbft_obs::TraceRing::new(NET_TRACE_CAPACITY)),
        }
    }
}

/// An `Executed` record observed by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecEvent {
    /// When it happened (runtime timeline).
    pub at: Instant,
    /// Shard-local sequence number.
    pub seq: u64,
    /// Transactions in the executed batch.
    pub txns: u32,
}

/// A telemetry route handler: maps a request path (`"/metrics"`,
/// `"/trace"`) to `(content_type, body)`, or `None` for a 404.
///
/// Called from reactor shard 0 while it serves a scrape request, so it
/// must not block for long; locking the hosted node briefly (via
/// [`TelemetryHandle::with_node`]) is fine — the reactor never invokes
/// it while holding the node lock.
pub type TelemetryHandler = Box<dyn Fn(&str) -> Option<(String, String)> + Send>;

/// Telemetry endpoint state: a listener waiting for reactor shard 0 to
/// adopt it into its epoll set, and the installed route handler.
pub(crate) struct TelemetryState {
    pub(crate) pending_listener: Option<TcpListener>,
    pub(crate) handler: Option<TelemetryHandler>,
}

/// A frame that went through the off-thread verify stage.
pub(crate) enum VerifiedFrame<M> {
    /// Authenticated and decoded: deliver it to the hosted node.
    Ok { env: Envelope<M> },
    /// The MAC or decode failed: the connection is unrecoverable and
    /// the owning reactor must drop it (stale tokens are tolerated —
    /// the connection may already be gone by the time this lands).
    Corrupt { token: u64 },
}

/// The inbound verify/hash pipeline stage (`pipeline_workers > 0`).
///
/// Reactor shards extract header-validated [`RawFrame`]s and pin them
/// to a worker by connection token (per-connection FIFO order); the
/// worker runs the HMAC check and body decode, deposits the verdict in
/// the owning shard's mailbox, and wakes that shard's eventfd — the
/// same wake path every other cross-thread event uses. The hosted node
/// itself never sees a frame that has not been authenticated, exactly
/// as on the inline path.
///
/// [`RawFrame`]: crate::codec::RawFrame
pub(crate) struct VerifyStage<M> {
    /// The node's shared worker pool (the execution stage runs on the
    /// same pool, keeping the per-node thread budget at
    /// `reactor_shards + pipeline_workers`).
    pub(crate) pool: Arc<WorkerPool>,
    /// Per-reactor-shard mailboxes of verify verdicts.
    pub(crate) inbox: Vec<Mutex<VecDeque<VerifiedFrame<M>>>>,
    /// Frames submitted to the pool but not yet verified.
    pub(crate) queue_depth: AtomicU64,
    /// Frames verified off-thread.
    pub(crate) offloaded: AtomicU64,
    /// Frames verified on a reactor thread (Hellos, which must not lag
    /// the routing table behind the verify queue).
    pub(crate) inline: AtomicU64,
}

/// State shared between the public [`NodeRuntime`] handle and its
/// reactor shards.
pub(crate) struct Shared<M> {
    pub(crate) id: NodeId,
    pub(crate) clock: Clock,
    pub(crate) peers: PeerTable,
    /// Channel authenticator: every frame sent carries a pairwise HMAC,
    /// every frame received is verified before delivery (§3).
    pub(crate) auth: FrameAuth,
    /// Port our own listener accepts on (advertised in Hello frames).
    pub(crate) listen_port: u16,
    /// Protocol timer wheel; reactor shard 0 folds it into its
    /// `epoll_wait` timeout.
    pub(crate) timers: Mutex<TimerState>,
    pub(crate) counters: NetCounters,
    pub(crate) obs: NetObs,
    pub(crate) stop: AtomicBool,
    /// Reactor shard count (fixed at launch).
    pub(crate) nshards: usize,
    /// Per-shard eventfd wakeups (cross-shard sends, earlier timer
    /// deadlines, connection handoffs, shutdown poison).
    pub(crate) wakeups: Vec<EventFd>,
    /// Per-peer outbound byte queues (the backpressure boundary).
    pub(crate) outq: Mutex<HashMap<NodeId, PeerQueue>>,
    /// Per-shard sets of peers with freshly queued frames.
    pub(crate) dirty: Vec<Mutex<HashSet<NodeId>>>,
    /// Accepted connections awaiting adoption by their reactor shard.
    pub(crate) handoff: Vec<Mutex<VecDeque<TcpStream>>>,
    pub(crate) exec_log: Mutex<Vec<ExecEvent>>,
    pub(crate) view_log: Mutex<Vec<(Instant, u64)>>,
    /// Content-aware inbound fault injection: a frame for which the
    /// filter returns true is counted and discarded before delivery —
    /// the TCP twin of the simulator's `World::set_drop_filter`, used by
    /// fault-scenario tests to suppress targeted traffic (e.g. every
    /// Commit for one sequence) on a real-socket cluster.
    /// `inbound_filter_armed` is the hot-path guard: production runs
    /// never install a filter, and readers must not pay a shared mutex
    /// per frame for a test-only feature.
    #[allow(clippy::type_complexity)]
    pub(crate) inbound_filter: Mutex<Option<Box<dyn Fn(NodeId, &M) -> bool + Send>>>,
    pub(crate) inbound_filter_armed: AtomicBool,
    /// Live-scrape endpoint ([`NodeRuntime::serve_telemetry`]): the
    /// HTTP/1.0 listener reactor shard 0 serves, plus its route
    /// handler. `telemetry_armed` lets the shard skip the mutex on
    /// every loop iteration until an endpoint is installed.
    pub(crate) telemetry: Mutex<TelemetryState>,
    pub(crate) telemetry_armed: AtomicBool,
    /// The verify/hash offload stage, when `pipeline_workers > 0`.
    pub(crate) verify: Option<VerifyStage<M>>,
    /// Reusable buffers for frame reassembly and egress staging.
    pub(crate) bufs: BufPool,
}

impl<M> Shared<M> {
    /// Stable peer→reactor-shard assignment.
    pub(crate) fn peer_shard(&self, node: NodeId) -> usize {
        reactor::peer_shard_of(node, self.nshards)
    }

    /// Snapshot of the transport counters.
    pub(crate) fn stats_snapshot(&self) -> NetStatsSnapshot {
        let c = &self.counters;
        NetStatsSnapshot {
            messages_sent: c.messages_sent.load(Ordering::Relaxed),
            bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
            modeled_bytes_sent: c.modeled_bytes_sent.load(Ordering::Relaxed),
            messages_dropped: c.messages_dropped.load(Ordering::Relaxed),
            messages_undeliverable: c.messages_undeliverable.load(Ordering::Relaxed),
            timers_fired: c.timers_fired.load(Ordering::Relaxed),
            messages_delivered: c.messages_delivered.load(Ordering::Relaxed),
            messages_filtered: c.messages_filtered.load(Ordering::Relaxed),
            reconnects: c.reconnects.load(Ordering::Relaxed),
            broadcasts: c.broadcasts.load(Ordering::Relaxed),
            encodes_saved: c.encodes_saved.load(Ordering::Relaxed),
        }
    }

    /// Transport metrics as one stable JSON object (shared between the
    /// exit snapshot and the live scrape endpoint, so both report the
    /// exact same instruments).
    pub(crate) fn metrics_json(&self) -> String {
        let c = self.stats_snapshot();
        let mut cw = ringbft_obs::json::ObjectWriter::new();
        cw.field_u64("net.broadcasts", c.broadcasts)
            .field_u64("net.bytes_sent", c.bytes_sent)
            .field_u64("net.egress_pool_hits", self.bufs.hits())
            .field_u64("net.egress_pool_misses", self.bufs.misses())
            .field_u64("net.encodes_saved", c.encodes_saved)
            .field_u64("net.messages_delivered", c.messages_delivered)
            .field_u64("net.messages_dropped", c.messages_dropped)
            .field_u64("net.messages_filtered", c.messages_filtered)
            .field_u64("net.messages_sent", c.messages_sent)
            .field_u64("net.messages_undeliverable", c.messages_undeliverable)
            .field_u64("net.modeled_bytes_sent", c.modeled_bytes_sent)
            .field_u64(
                "net.backpressure_hits",
                self.obs.backpressure_hits.load(Ordering::Relaxed),
            )
            .field_u64(
                "net.reassembly_stalls",
                self.obs.reassembly_stalls.load(Ordering::Relaxed),
            )
            .field_u64("net.reconnects", c.reconnects)
            .field_u64("net.timers_fired", c.timers_fired);
        let (v_off, v_inline, v_depth) = match &self.verify {
            Some(v) => (
                v.offloaded.load(Ordering::Relaxed),
                v.inline.load(Ordering::Relaxed),
                v.queue_depth.load(Ordering::Relaxed),
            ),
            None => (0, 0, 0),
        };
        let pool_stats = self.verify.as_ref().map(|v| v.pool.stats());
        cw.field_u64("pipeline.verify_inline", v_inline)
            .field_u64("pipeline.verify_offloaded", v_off)
            .field_u64(
                "pipeline.worker_busy_ns",
                pool_stats.as_ref().map_or(0, |s| s.busy_ns),
            )
            .field_u64(
                "pipeline.worker_idle_ns",
                pool_stats.as_ref().map_or(0, |s| s.idle_ns),
            )
            .field_u64(
                "pipeline.worker_tasks",
                pool_stats.as_ref().map_or(0, |s| s.tasks),
            );
        let mut gw = ringbft_obs::json::ObjectWriter::new();
        gw.field_u64(
            "net.peer_queue_hwm_bytes",
            self.obs.queue_hwm_bytes.load(Ordering::Relaxed),
        )
        .field_u64("pipeline.verify_queue_depth", v_depth)
        .field_u64(
            "pipeline.workers",
            self.verify.as_ref().map_or(0, |v| v.pool.workers()) as u64,
        );
        let mut hw = ringbft_obs::json::ObjectWriter::new();
        {
            let h = self.obs.epoll_wait.lock().expect("epoll hist");
            hw.field_raw("net.epoll_wait_ns", &ringbft_obs::histogram_json(&h));
        }
        let mut w = ringbft_obs::json::ObjectWriter::new();
        w.field_raw("counters", &cw.finish())
            .field_raw("gauges", &gw.finish())
            .field_raw("histograms", &hw.finish());
        w.finish()
    }

    /// The connection-lifecycle event trace as JSON lines.
    pub(crate) fn trace_jsonl(&self) -> String {
        self.obs.trace.lock().expect("net trace").dump_jsonl()
    }
}

/// A weak handle for telemetry route handlers: grants a scrape request
/// access to the transport instruments and the hosted node without
/// keeping either alive — once the runtime shuts down, every accessor
/// returns `None`, so an installed handler can never block the node
/// from being handed back by [`NodeRuntime::shutdown`].
pub struct TelemetryHandle<M, N> {
    id: NodeId,
    shared: Weak<Shared<M>>,
    node: Weak<Mutex<N>>,
}

impl<M, N> Clone for TelemetryHandle<M, N> {
    fn clone(&self) -> Self {
        TelemetryHandle {
            id: self.id,
            shared: self.shared.clone(),
            node: self.node.clone(),
        }
    }
}

impl<M, N> TelemetryHandle<M, N> {
    /// The node id the runtime hosts.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The transport metrics JSON ([`NodeRuntime::metrics_json`]), or
    /// `None` after the runtime shut down.
    pub fn net_metrics_json(&self) -> Option<String> {
        Some(self.shared.upgrade()?.metrics_json())
    }

    /// The connection-lifecycle trace as JSON lines, or `None` after
    /// the runtime shut down.
    pub fn net_trace_jsonl(&self) -> Option<String> {
        Some(self.shared.upgrade()?.trace_jsonl())
    }

    /// Runs `f` with exclusive access to the hosted node (pauses event
    /// processing — keep it short), or `None` after shutdown.
    pub fn with_node<R>(&self, f: impl FnOnce(&mut N) -> R) -> Option<R> {
        let node = self.node.upgrade()?;
        let mut n = node.lock().expect("node lock");
        Some(f(&mut n))
    }
}

/// How long [`NodeRuntime::shutdown`] waits for the reactor threads to
/// acknowledge the stop flag before declaring the shutdown unclean.
/// Reactors never block (all I/O is nonblocking and every wait has a
/// bounded timeout), so in practice they exit within one poll
/// iteration; the bound guards against a wedged node state machine.
const SHUTDOWN_JOIN_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

/// Hosts one protocol node over TCP.
pub struct NodeRuntime<M: NetMsg, N: ProtocolNode<M> + Send + 'static> {
    shared: Arc<Shared<M>>,
    node: Arc<Mutex<N>>,
    local_addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    exited: Receiver<usize>,
}

impl<M, N> NodeRuntime<M, N>
where
    M: NetMsg + ringbft_simnet::SimMessage,
    N: ProtocolNode<M> + Send + 'static,
{
    /// Starts hosting `node` as `id` on `listener`, reaching peers via
    /// `peers`, authenticating every frame with `auth` (all processes of
    /// one cluster must share the authenticator's seed). The listener
    /// must already be bound (bind with port 0 to let the kernel pick,
    /// then collect `local_addr` into the table). Spawns exactly one
    /// reactor thread; see [`NodeRuntime::launch_with_shards`] for
    /// multi-core I/O scaling.
    pub fn launch(
        id: NodeId,
        node: N,
        listener: TcpListener,
        peers: PeerTable,
        clock: Clock,
        auth: FrameAuth,
    ) -> std::io::Result<NodeRuntime<M, N>> {
        Self::launch_with_shards(id, node, listener, peers, clock, auth, 1)
    }

    /// Like [`NodeRuntime::launch`], but multiplexes the node's sockets
    /// across `reactor_shards` reactor threads (peers are partitioned
    /// by a stable hash; shard 0 additionally owns the listener and the
    /// timer wheel). The thread count is fixed at launch and
    /// independent of how many peers or clients connect.
    pub fn launch_with_shards(
        id: NodeId,
        node: N,
        listener: TcpListener,
        peers: PeerTable,
        clock: Clock,
        auth: FrameAuth,
        reactor_shards: usize,
    ) -> std::io::Result<NodeRuntime<M, N>> {
        Self::launch_with_pipeline(id, node, listener, peers, clock, auth, reactor_shards, 0)
    }

    /// Like [`NodeRuntime::launch_with_shards`], but additionally runs a
    /// `pipeline_workers`-thread worker pool hosting the verify/hash
    /// stage: inbound frame MAC checks and body decodes run off the
    /// reactor threads, pinned per connection so frame order is
    /// preserved, feeding verified messages back through the reactor's
    /// eventfd wake path. The same pool is shared with an execution
    /// stage installed on the hosted node ([`NodeRuntime::exec_waker`]
    /// plus `RingReplica::install_pipeline`), so the per-node thread
    /// budget is exactly `reactor_shards + pipeline_workers`.
    /// `pipeline_workers = 0` keeps everything inline.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_with_pipeline(
        id: NodeId,
        node: N,
        listener: TcpListener,
        peers: PeerTable,
        clock: Clock,
        auth: FrameAuth,
        reactor_shards: usize,
        pipeline_workers: usize,
    ) -> std::io::Result<NodeRuntime<M, N>> {
        let nshards = reactor_shards.max(1);
        let verify = (pipeline_workers > 0).then(|| VerifyStage {
            pool: Arc::new(WorkerPool::new(&format!("{id}-pipe"), pipeline_workers)),
            inbox: (0..nshards).map(|_| Mutex::new(VecDeque::new())).collect(),
            queue_depth: AtomicU64::new(0),
            offloaded: AtomicU64::new(0),
            inline: AtomicU64::new(0),
        });
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let mut wakeups = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            wakeups.push(EventFd::new()?);
        }
        let shared = Arc::new(Shared {
            id,
            clock,
            peers,
            auth,
            listen_port: local_addr.port(),
            timers: Mutex::new(TimerState::new()),
            counters: NetCounters::default(),
            obs: NetObs::default(),
            stop: AtomicBool::new(false),
            nshards,
            wakeups,
            outq: Mutex::new(HashMap::new()),
            dirty: (0..nshards).map(|_| Mutex::new(HashSet::new())).collect(),
            handoff: (0..nshards).map(|_| Mutex::new(VecDeque::new())).collect(),
            exec_log: Mutex::new(Vec::new()),
            view_log: Mutex::new(Vec::new()),
            inbound_filter: Mutex::new(None),
            inbound_filter_armed: AtomicBool::new(false),
            telemetry: Mutex::new(TelemetryState {
                pending_listener: None,
                handler: None,
            }),
            telemetry_armed: AtomicBool::new(false),
            verify,
            bufs: BufPool::new(),
        });
        let node = Arc::new(Mutex::new(node));

        let (exit_tx, exited) = mpsc::channel();
        let mut threads = Vec::with_capacity(nshards);
        let mut listener = Some(listener);
        for i in 0..nshards {
            let shared = Arc::clone(&shared);
            let node = Arc::clone(&node);
            let listener = if i == 0 { listener.take() } else { None };
            let exit_tx = exit_tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{id}-reactor{i}"))
                    .spawn(move || {
                        // `run_shard` consumes the node handle, so the
                        // exit marker is only sent once this thread no
                        // longer holds a reference to the node —
                        // `shutdown` unwraps it after the marker.
                        reactor::run_shard(shared, node, i, listener);
                        let _ = exit_tx.send(i);
                    })
                    .expect("spawn reactor thread"),
            );
        }
        Ok(NodeRuntime {
            shared,
            node,
            local_addr,
            threads,
            exited,
        })
    }

    /// The node id this runtime hosts.
    pub fn id(&self) -> NodeId {
        self.shared.id
    }

    /// The bound listener address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The number of reactor threads this runtime runs (fixed at
    /// launch, independent of connection count).
    pub fn reactor_shards(&self) -> usize {
        self.shared.nshards
    }

    /// The number of pipeline worker threads (0 when the runtime was
    /// launched without an offload stage).
    pub fn pipeline_workers(&self) -> usize {
        self.shared.verify.as_ref().map_or(0, |v| v.pool.workers())
    }

    /// `(offloaded, inline)` frame-verification counts: how many
    /// inbound data frames were MAC-checked on the worker pool versus
    /// decoded inline on a reactor thread (Hello frames and the
    /// zero-worker path). Both zero without an offload stage.
    pub fn verify_stats(&self) -> (u64, u64) {
        match &self.shared.verify {
            Some(v) => (
                v.offloaded.load(Ordering::Relaxed),
                v.inline.load(Ordering::Relaxed),
            ),
            None => (0, 0),
        }
    }

    /// The shared worker pool hosting the verify stage, if one was
    /// launched. The execution stage of the hosted node should be
    /// installed on this same pool so one node never runs more than
    /// `reactor_shards + pipeline_workers` threads.
    pub fn worker_pool(&self) -> Option<Arc<WorkerPool>> {
        self.shared.verify.as_ref().map(|v| Arc::clone(&v.pool))
    }

    /// A waker for an asynchronous execution stage: when a worker
    /// finishes an execution job it calls this to nudge reactor shard 0,
    /// whose loop pumps the node and collects the finished results. The
    /// waker holds only a weak reference, so it never keeps a shut-down
    /// runtime alive.
    pub fn exec_waker(&self) -> Arc<dyn Fn() + Send + Sync> {
        let weak: Weak<Shared<M>> = Arc::downgrade(&self.shared);
        Arc::new(move || {
            if let Some(s) = weak.upgrade() {
                s.wakeups[0].wake();
            }
        })
    }

    /// Runs `f` with exclusive access to the hosted node (pauses event
    /// processing for the duration — keep it short).
    pub fn with_node<R>(&self, f: impl FnOnce(&mut N) -> R) -> R {
        f(&mut self.node.lock().expect("node lock"))
    }

    /// Installs (or replaces) a content-aware inbound drop rule: every
    /// received frame for which `filter(from, &msg)` returns true is
    /// counted in `messages_filtered` and never delivered to the node.
    /// Pass-through for Hello frames (routing must keep working).
    /// Intended for fault-scenario tests; `clear_inbound_filter`
    /// restores normal delivery.
    pub fn set_inbound_filter(&self, filter: impl Fn(NodeId, &M) -> bool + Send + 'static) {
        *self.shared.inbound_filter.lock().expect("filter lock") = Some(Box::new(filter));
        self.shared
            .inbound_filter_armed
            .store(true, Ordering::Release);
    }

    /// Removes an installed inbound drop rule.
    pub fn clear_inbound_filter(&self) {
        self.shared
            .inbound_filter_armed
            .store(false, Ordering::Release);
        *self.shared.inbound_filter.lock().expect("filter lock") = None;
    }

    /// Snapshot of the transport counters.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.shared.stats_snapshot()
    }

    /// Transport-layer metrics as one stable JSON object: the
    /// [`NetCounters`] plus reactor instrumentation (epoll-wait
    /// histogram, peer-queue high-water mark, backpressure hits,
    /// frame-reassembly stalls).
    pub fn metrics_json(&self) -> String {
        self.shared.metrics_json()
    }

    /// The connection-lifecycle event trace as JSON lines.
    pub fn trace_jsonl(&self) -> String {
        self.shared.trace_jsonl()
    }

    /// A weak telemetry handle for building scrape-route handlers; see
    /// [`TelemetryHandle`].
    pub fn telemetry_handle(&self) -> TelemetryHandle<M, N> {
        TelemetryHandle {
            id: self.shared.id,
            shared: Arc::downgrade(&self.shared),
            node: Arc::downgrade(&self.node),
        }
    }

    /// Starts serving a minimal HTTP/1.0 scrape endpoint on `listener`,
    /// directly off reactor shard 0's epoll loop (no extra thread).
    /// `handler` maps a request path to `(content_type, body)`; unknown
    /// paths get a 404, non-GET requests a 405. Returns the bound
    /// address. Build the handler from [`NodeRuntime::telemetry_handle`]
    /// so it does not keep the runtime alive.
    pub fn serve_telemetry(
        &self,
        listener: TcpListener,
        handler: impl Fn(&str) -> Option<(String, String)> + Send + 'static,
    ) -> std::io::Result<SocketAddr> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        {
            let mut t = self.shared.telemetry.lock().expect("telemetry lock");
            t.pending_listener = Some(listener);
            t.handler = Some(Box::new(handler));
        }
        self.shared.telemetry_armed.store(true, Ordering::Release);
        // Shard 0 adopts the listener on its next loop iteration.
        self.shared.wakeups[0].wake();
        Ok(addr)
    }

    /// Copy of the `Executed` log.
    pub fn exec_log(&self) -> Vec<ExecEvent> {
        self.shared.exec_log.lock().expect("exec log").clone()
    }

    /// Copy of the view-change log.
    pub fn view_log(&self) -> Vec<(Instant, u64)> {
        self.shared.view_log.lock().expect("view log").clone()
    }

    /// Stops the reactor threads and tears the node down, returning it.
    ///
    /// Fast path: the stop flag is set and every shard's eventfd is
    /// poisoned, so each reactor observes the flag on its very next
    /// poll return instead of waiting out a timeout. The join is
    /// bounded ([`SHUTDOWN_JOIN_TIMEOUT`]): a shard that fails to
    /// acknowledge in time (a wedged node state machine — reactor I/O
    /// itself never blocks) is abandoned and `None` is returned rather
    /// than hanging the caller, the failure mode the old runtime had
    /// when a writer thread wedged mid-`write`.
    pub fn shutdown(mut self) -> Option<N>
    where
        N: Send,
    {
        self.shared.stop.store(true, Ordering::SeqCst);
        for w in &self.shared.wakeups {
            w.wake();
        }
        let deadline = std::time::Instant::now() + SHUTDOWN_JOIN_TIMEOUT;
        let mut acked = 0;
        while acked < self.threads.len() {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            match self.exited.recv_timeout(left) {
                Ok(_) => acked += 1,
                Err(_) => break,
            }
        }
        if acked < self.threads.len() {
            // Unclean: a reactor never acknowledged. Abandon the
            // threads (they hold clones of the node Arc, so the node
            // cannot be handed back).
            self.threads.clear();
            return None;
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        match Arc::try_unwrap(self.node) {
            Ok(m) => m.into_inner().ok(),
            Err(_) => None,
        }
    }
}
