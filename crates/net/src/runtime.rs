//! The real-network driver: hosts one sans-io [`ProtocolNode`] on a TCP
//! listener with real clocks, real sockets and real kernels.
//!
//! The runtime is the second implementation of the driver contract the
//! discrete-event simulator defines (`ringbft_types::sansio`): the exact
//! same state machines (`RingReplica`, the PBFT baselines, `SimClient`)
//! run unchanged over loopback or a real WAN.
//!
//! ## Thread model
//!
//! Per hosted node:
//!
//! * **event loop** — owns the node; drains an mpsc of
//!   `Deliver`/`Timer` events, calls the state machine, and dispatches
//!   its [`Action`]s;
//! * **timer thread** — a monotonic-clock timer wheel for the four
//!   [`TimerKind`] classes, with generation counters so `CancelTimer`
//!   and re-arms behave exactly like the simulator's;
//! * **accept loop + per-connection readers** — decode frames and feed
//!   the event loop;
//! * **per-peer writers** — lazily connected, each draining a bounded
//!   queue (the backpressure boundary: when a peer cannot keep up, new
//!   frames for it are dropped and counted rather than buffered without
//!   bound — BFT retransmission timers provide recovery, the same
//!   assumption the paper makes about unreliable channels).
//!
//! Timestamps handed to protocol nodes are nanoseconds since a shared
//! epoch (`Clock`), so all nodes of one process observe one timebase,
//! mirroring `Instant::ZERO` at simulation start.

use crate::codec::{
    encode_frame, encode_hello_frame, read_any_frame, Envelope, Frame, FrameAuth, Hello,
};
use ringbft_types::sansio::ProtocolNode;
use ringbft_types::{Action, Duration, Instant, NodeId, TimerKind};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Marker for messages the runtime can carry: encodable, decodable, and
/// movable across the runtime's threads.
pub trait NetMsg: Serialize + Deserialize + Clone + Send + 'static {}

impl<T: Serialize + Deserialize + Clone + Send + 'static> NetMsg for T {}

/// Shared wall-clock epoch translating real time into the sans-io
/// `Instant` timeline.
#[derive(Debug, Clone)]
pub struct Clock {
    epoch: std::time::Instant,
}

impl Clock {
    /// A clock starting now.
    pub fn start() -> Clock {
        Clock {
            epoch: std::time::Instant::now(),
        }
    }

    /// Nanoseconds since the epoch, as the protocol-visible instant.
    pub fn now(&self) -> Instant {
        Instant(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// Routing state: where each peer listens, plus alias routing (many
/// logical client ids hosted by one client-host node, exactly like the
/// simulator's `World::add_alias`).
///
/// Clones share one underlying table, so registering a node after a
/// cluster is up (a client host joining, a replica being replaced) is
/// immediately visible to every runtime holding a clone.
#[derive(Debug, Clone, Default)]
pub struct PeerTable {
    inner: Arc<std::sync::RwLock<PeerTableInner>>,
}

#[derive(Debug, Default)]
struct PeerTableInner {
    addrs: HashMap<NodeId, SocketAddr>,
    aliases: HashMap<NodeId, NodeId>,
}

impl PeerTable {
    /// An empty table.
    pub fn new() -> PeerTable {
        PeerTable::default()
    }

    /// Registers `node` as listening on `addr`.
    pub fn insert(&self, node: NodeId, addr: SocketAddr) {
        self.inner
            .write()
            .expect("peer table")
            .addrs
            .insert(node, addr);
    }

    /// Registers `node` only if it has no address yet. Used for routes
    /// learned from Hello frames: a statically configured address (for
    /// example a replica's public interface from the cluster file) must
    /// never be clobbered by a connection's source IP, which can differ
    /// on multi-homed hosts.
    pub fn insert_if_absent(&self, node: NodeId, addr: SocketAddr) {
        self.inner
            .write()
            .expect("peer table")
            .addrs
            .entry(node)
            .or_insert(addr);
    }

    /// Routes traffic for `alias` to `target`'s listener.
    pub fn add_alias(&self, alias: NodeId, target: NodeId) {
        self.inner
            .write()
            .expect("peer table")
            .aliases
            .insert(alias, target);
    }

    /// Resolves an alias to its hosting node (identity for non-aliases).
    pub fn resolve(&self, node: NodeId) -> NodeId {
        self.inner
            .read()
            .expect("peer table")
            .aliases
            .get(&node)
            .copied()
            .unwrap_or(node)
    }

    /// The listener address of `node` (after alias resolution).
    pub fn addr_of(&self, node: NodeId) -> Option<SocketAddr> {
        let inner = self.inner.read().expect("peer table");
        let resolved = inner.aliases.get(&node).copied().unwrap_or(node);
        inner.addrs.get(&resolved).copied()
    }

    /// Snapshot of all registered `(node, addr)` pairs.
    pub fn entries(&self) -> Vec<(NodeId, SocketAddr)> {
        let inner = self.inner.read().expect("peer table");
        inner.addrs.iter().map(|(n, a)| (*n, *a)).collect()
    }

    /// All aliases currently routing to `target`.
    pub fn aliases_of(&self, target: NodeId) -> Vec<NodeId> {
        let inner = self.inner.read().expect("peer table");
        inner
            .aliases
            .iter()
            .filter(|(_, t)| **t == target)
            .map(|(a, _)| *a)
            .collect()
    }
}

/// Counters mirroring the simulator's `NetStats`, plus the transport-
/// level drop counter of the backpressure boundary.
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Frames handed to peer queues.
    pub messages_sent: AtomicU64,
    /// Actual encoded bytes handed to peer queues.
    pub bytes_sent: AtomicU64,
    /// Bytes the simulator's wire model would have charged for the same
    /// messages — kept so simulated and real runs report comparable
    /// bandwidth numbers.
    pub modeled_bytes_sent: AtomicU64,
    /// Frames dropped before enqueue (peer queue full, unknown peer,
    /// unencodable message).
    pub messages_dropped: AtomicU64,
    /// Frames accepted into a peer queue whose delivery then failed
    /// (peer unreachable past the retry budget). `messages_sent`
    /// already counted them, so sent − undeliverable ≈ on the wire.
    pub messages_undeliverable: AtomicU64,
    /// Timers fired (uncancelled).
    pub timers_fired: AtomicU64,
    /// Frames delivered to the hosted node.
    pub messages_delivered: AtomicU64,
    /// Inbound frames suppressed by a fault-injection filter
    /// ([`NodeRuntime::set_inbound_filter`]).
    pub messages_filtered: AtomicU64,
}

/// A point-in-time copy of [`NetCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Frames handed to peer queues.
    pub messages_sent: u64,
    /// Actual encoded bytes handed to peer queues.
    pub bytes_sent: u64,
    /// Wire-model bytes for the same messages.
    pub modeled_bytes_sent: u64,
    /// Frames dropped at the backpressure boundary.
    pub messages_dropped: u64,
    /// Enqueued frames whose delivery failed (peer unreachable).
    pub messages_undeliverable: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Frames delivered to the node.
    pub messages_delivered: u64,
    /// Inbound frames suppressed by a fault-injection filter.
    pub messages_filtered: u64,
}

/// An `Executed` record observed by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecEvent {
    /// When it happened (runtime timeline).
    pub at: Instant,
    /// Shard-local sequence number.
    pub seq: u64,
    /// Transactions in the executed batch.
    pub txns: u32,
}

enum Event<M> {
    Deliver {
        from: NodeId,
        msg: M,
    },
    Timer {
        kind: TimerKind,
        token: u64,
        gen: u64,
    },
    Stop,
}

/// Timer wheel guarded by one mutex; the timer thread sleeps on the
/// condvar until the earliest deadline or a re-arm.
struct TimerState {
    /// Min-heap of `(deadline, kind, token, gen)`.
    heap: BinaryHeap<std::cmp::Reverse<(u64, TimerKind, u64, u64)>>,
    /// Live generation per `(kind, token)`; stale heap entries whose
    /// generation no longer matches are cancelled or superseded.
    armed: HashMap<(TimerKind, u64), u64>,
    next_gen: u64,
    stopped: bool,
}

struct Shared<M> {
    id: NodeId,
    clock: Clock,
    peers: PeerTable,
    /// Channel authenticator: every frame sent carries a pairwise HMAC,
    /// every frame received is verified before delivery (§3).
    auth: FrameAuth,
    /// Port our own listener accepts on (advertised in Hello frames).
    listen_port: u16,
    events: Sender<Event<M>>,
    timers: Mutex<TimerState>,
    timers_cv: Condvar,
    counters: NetCounters,
    stop: AtomicBool,
    /// Per-peer frame queues; writers drain them.
    writers: Mutex<HashMap<NodeId, SyncSender<Vec<u8>>>>,
    exec_log: Mutex<Vec<ExecEvent>>,
    view_log: Mutex<Vec<(Instant, u64)>>,
    /// Content-aware inbound fault injection: a frame for which the
    /// filter returns true is counted and discarded before delivery —
    /// the TCP twin of the simulator's `World::set_drop_filter`, used by
    /// fault-scenario tests to suppress targeted traffic (e.g. every
    /// Commit for one sequence) on a real-socket cluster.
    /// `inbound_filter_armed` is the hot-path guard: production runs
    /// never install a filter, and readers must not pay a shared mutex
    /// per frame for a test-only feature.
    #[allow(clippy::type_complexity)]
    inbound_filter: Mutex<Option<Box<dyn Fn(NodeId, &M) -> bool + Send>>>,
    inbound_filter_armed: AtomicBool,
}

/// Capacity of each per-peer outbound queue (frames). Beyond it the
/// runtime drops (and counts) rather than buffering without bound.
const PEER_QUEUE_FRAMES: usize = 4096;

/// Modeled wire size of an outbound message, when the message type
/// supports the simulator's size model.
fn modeled_bytes<M: ringbft_simnet::SimMessage>(msg: &M) -> u64 {
    msg.wire_bytes()
}

/// Hosts one protocol node over TCP.
pub struct NodeRuntime<M: NetMsg, N: ProtocolNode<M> + Send + 'static> {
    shared: Arc<Shared<M>>,
    node: Arc<Mutex<N>>,
    local_addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl<M, N> NodeRuntime<M, N>
where
    M: NetMsg + ringbft_simnet::SimMessage,
    N: ProtocolNode<M> + Send + 'static,
{
    /// Starts hosting `node` as `id` on `listener`, reaching peers via
    /// `peers`, authenticating every frame with `auth` (all processes of
    /// one cluster must share the authenticator's seed). The listener
    /// must already be bound (bind with port 0 to let the kernel pick,
    /// then collect `local_addr` into the table).
    pub fn launch(
        id: NodeId,
        node: N,
        listener: TcpListener,
        peers: PeerTable,
        clock: Clock,
        auth: FrameAuth,
    ) -> std::io::Result<NodeRuntime<M, N>> {
        let local_addr = listener.local_addr()?;
        let (tx, rx) = mpsc::channel::<Event<M>>();
        let shared = Arc::new(Shared {
            id,
            clock,
            peers,
            auth,
            listen_port: local_addr.port(),
            events: tx,
            timers: Mutex::new(TimerState {
                heap: BinaryHeap::new(),
                armed: HashMap::new(),
                next_gen: 0,
                stopped: false,
            }),
            timers_cv: Condvar::new(),
            counters: NetCounters::default(),
            stop: AtomicBool::new(false),
            writers: Mutex::new(HashMap::new()),
            exec_log: Mutex::new(Vec::new()),
            view_log: Mutex::new(Vec::new()),
            inbound_filter: Mutex::new(None),
            inbound_filter_armed: AtomicBool::new(false),
        });
        let node = Arc::new(Mutex::new(node));

        let mut threads = Vec::new();
        threads.push(spawn_named(
            format!("{id}-events"),
            event_loop(Arc::clone(&shared), Arc::clone(&node), rx),
        ));
        threads.push(spawn_named(
            format!("{id}-timers"),
            timer_loop(Arc::clone(&shared)),
        ));
        threads.push(spawn_named(
            format!("{id}-accept"),
            accept_loop(Arc::clone(&shared), listener),
        ));
        Ok(NodeRuntime {
            shared,
            node,
            local_addr,
            threads,
        })
    }

    /// The node id this runtime hosts.
    pub fn id(&self) -> NodeId {
        self.shared.id
    }

    /// The bound listener address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs `f` with exclusive access to the hosted node (pauses event
    /// processing for the duration — keep it short).
    pub fn with_node<R>(&self, f: impl FnOnce(&mut N) -> R) -> R {
        f(&mut self.node.lock().expect("node lock"))
    }

    /// Installs (or replaces) a content-aware inbound drop rule: every
    /// received frame for which `filter(from, &msg)` returns true is
    /// counted in `messages_filtered` and never delivered to the node.
    /// Pass-through for Hello frames (routing must keep working).
    /// Intended for fault-scenario tests; `clear_inbound_filter`
    /// restores normal delivery.
    pub fn set_inbound_filter(&self, filter: impl Fn(NodeId, &M) -> bool + Send + 'static) {
        *self.shared.inbound_filter.lock().expect("filter lock") = Some(Box::new(filter));
        self.shared
            .inbound_filter_armed
            .store(true, Ordering::Release);
    }

    /// Removes an installed inbound drop rule.
    pub fn clear_inbound_filter(&self) {
        self.shared
            .inbound_filter_armed
            .store(false, Ordering::Release);
        *self.shared.inbound_filter.lock().expect("filter lock") = None;
    }

    /// Snapshot of the transport counters.
    pub fn stats(&self) -> NetStatsSnapshot {
        let c = &self.shared.counters;
        NetStatsSnapshot {
            messages_sent: c.messages_sent.load(Ordering::Relaxed),
            bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
            modeled_bytes_sent: c.modeled_bytes_sent.load(Ordering::Relaxed),
            messages_dropped: c.messages_dropped.load(Ordering::Relaxed),
            messages_undeliverable: c.messages_undeliverable.load(Ordering::Relaxed),
            timers_fired: c.timers_fired.load(Ordering::Relaxed),
            messages_delivered: c.messages_delivered.load(Ordering::Relaxed),
            messages_filtered: c.messages_filtered.load(Ordering::Relaxed),
        }
    }

    /// Copy of the `Executed` log.
    pub fn exec_log(&self) -> Vec<ExecEvent> {
        self.shared.exec_log.lock().expect("exec log").clone()
    }

    /// Copy of the view-change log.
    pub fn view_log(&self) -> Vec<(Instant, u64)> {
        self.shared.view_log.lock().expect("view log").clone()
    }

    /// Stops all threads and tears the node down, returning it.
    pub fn shutdown(mut self) -> N
    where
        N: Send,
    {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the event loop.
        let _ = self.shared.events.send(Event::Stop);
        // Wake the timer thread.
        {
            let mut t = self.shared.timers.lock().expect("timer lock");
            t.stopped = true;
            self.shared.timers_cv.notify_all();
        }
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        // Close writer queues so writer threads drain and exit.
        self.shared.writers.lock().expect("writers").clear();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        match Arc::try_unwrap(self.node) {
            Ok(m) => m.into_inner().expect("node lock"),
            Err(_) => unreachable!("all node users joined"),
        }
    }
}

fn spawn_named(name: String, f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(f)
        .expect("spawn runtime thread")
}

/// The node's event loop: start the machine, then drain events.
fn event_loop<M, N>(
    shared: Arc<Shared<M>>,
    node: Arc<Mutex<N>>,
    rx: Receiver<Event<M>>,
) -> impl FnOnce() + Send + 'static
where
    M: NetMsg + ringbft_simnet::SimMessage,
    N: ProtocolNode<M> + Send + 'static,
{
    move || {
        let actions = {
            let mut n = node.lock().expect("node lock");
            n.on_start(shared.clock.now())
        };
        apply_actions(&shared, actions);
        while let Ok(event) = rx.recv() {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let actions = match event {
                Event::Stop => break,
                Event::Deliver { from, msg } => {
                    shared
                        .counters
                        .messages_delivered
                        .fetch_add(1, Ordering::Relaxed);
                    let mut n = node.lock().expect("node lock");
                    n.on_message(shared.clock.now(), from, msg)
                }
                Event::Timer { kind, token, gen } => {
                    // Validate the generation under the timer lock so a
                    // cancel that raced the firing wins, matching the
                    // simulator's semantics.
                    {
                        let mut t = shared.timers.lock().expect("timer lock");
                        if t.armed.get(&(kind, token)) != Some(&gen) {
                            continue;
                        }
                        t.armed.remove(&(kind, token));
                    }
                    shared.counters.timers_fired.fetch_add(1, Ordering::Relaxed);
                    let mut n = node.lock().expect("node lock");
                    n.on_timer(shared.clock.now(), kind, token)
                }
            };
            apply_actions(&shared, actions);
        }
    }
}

fn apply_actions<M>(shared: &Arc<Shared<M>>, actions: Vec<Action<M>>)
where
    M: NetMsg + ringbft_simnet::SimMessage,
{
    for action in actions {
        match action {
            Action::Send { to, msg } => send(shared, to, msg),
            Action::SetTimer { kind, token, after } => set_timer(shared, kind, token, after),
            Action::CancelTimer { kind, token } => {
                let mut t = shared.timers.lock().expect("timer lock");
                t.armed.remove(&(kind, token));
                // Stale heap entries are skipped by the generation check.
            }
            Action::Executed { seq, txns } => {
                shared.exec_log.lock().expect("exec log").push(ExecEvent {
                    at: shared.clock.now(),
                    seq,
                    txns,
                });
            }
            Action::ViewChanged { view } => {
                shared
                    .view_log
                    .lock()
                    .expect("view log")
                    .push((shared.clock.now(), view));
            }
        }
    }
}

fn set_timer<M>(shared: &Arc<Shared<M>>, kind: TimerKind, token: u64, after: Duration) {
    let deadline = shared.clock.now().as_nanos() + after.as_nanos();
    let mut t = shared.timers.lock().expect("timer lock");
    t.next_gen += 1;
    let gen = t.next_gen;
    t.armed.insert((kind, token), gen);
    t.heap.push(std::cmp::Reverse((deadline, kind, token, gen)));
    shared.timers_cv.notify_all();
}

/// The timer thread: sleep until the earliest deadline, emit `Timer`
/// events for entries whose generation is still live.
fn timer_loop<M: NetMsg>(shared: Arc<Shared<M>>) -> impl FnOnce() + Send + 'static {
    move || {
        let mut guard = shared.timers.lock().expect("timer lock");
        loop {
            if guard.stopped {
                return;
            }
            let now = shared.clock.now().as_nanos();
            // Fire everything due.
            while let Some(std::cmp::Reverse((deadline, kind, token, gen))) =
                guard.heap.peek().copied()
            {
                if deadline > now {
                    break;
                }
                guard.heap.pop();
                if guard.armed.get(&(kind, token)) == Some(&gen) {
                    // The event loop re-validates under this same lock
                    // before dispatching, so a cancel can still win.
                    let _ = shared.events.send(Event::Timer { kind, token, gen });
                }
            }
            let wait = match guard.heap.peek() {
                Some(std::cmp::Reverse((deadline, ..))) => {
                    std::time::Duration::from_nanos(deadline.saturating_sub(now))
                }
                None => std::time::Duration::from_millis(250),
            };
            let (g, _) = shared
                .timers_cv
                .wait_timeout(guard, wait)
                .expect("timer wait");
            guard = g;
        }
    }
}

/// Queues a message for a peer, standing up the peer's writer on first
/// use. Self-sends bypass the network, exactly like the simulator.
fn send<M>(shared: &Arc<Shared<M>>, to: NodeId, msg: M)
where
    M: NetMsg + ringbft_simnet::SimMessage,
{
    let resolved = shared.peers.resolve(to);
    if resolved == shared.id {
        let _ = shared.events.send(Event::Deliver {
            from: shared.id,
            msg,
        });
        return;
    }
    if shared.peers.addr_of(resolved).is_none() {
        // Unknown peer: drop, as the simulator drops sends to
        // unregistered nodes. (A Hello may register it later; the
        // writer re-reads the table on every connect.)
        shared
            .counters
            .messages_dropped
            .fetch_add(1, Ordering::Relaxed);
        return;
    }
    let model = modeled_bytes(&msg);
    let env = Envelope {
        from: shared.id,
        to,
        msg,
    };
    let frame = match encode_frame(&env, &shared.auth) {
        Ok(f) => f,
        Err(_) => {
            shared
                .counters
                .messages_dropped
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let sender = {
        let mut writers = shared.writers.lock().expect("writers");
        writers
            .entry(resolved)
            .or_insert_with(|| {
                let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(PEER_QUEUE_FRAMES);
                let shared_for_writer = Arc::clone(shared);
                spawn_named(format!("{}-w-{resolved}", shared.id), move || {
                    writer_loop(shared_for_writer, resolved, rx)
                });
                tx
            })
            .clone()
    };
    let bytes = frame.len() as u64;
    match sender.try_send(frame) {
        Ok(()) => {
            shared
                .counters
                .messages_sent
                .fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .bytes_sent
                .fetch_add(bytes, Ordering::Relaxed);
            shared
                .counters
                .modeled_bytes_sent
                .fetch_add(model, Ordering::Relaxed);
        }
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
            shared
                .counters
                .messages_dropped
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Per-batch delivery attempts before a writer drops the batch. Keeps
/// a down peer from stalling the queue for more than a few seconds
/// while the protocol's retransmission timers cover the loss.
const WRITE_ATTEMPTS_PER_FRAME: u32 = 5;

/// Upper bound on how many bytes of queued frames a writer coalesces
/// into one `write` syscall. Keeps the latency of the first frame low
/// while cutting per-frame syscall overhead under load (a saturated
/// peer queue drains in ~16 frames per syscall at typical consensus
/// message sizes).
const COALESCE_BYTES: usize = 64 * 1024;

/// A peer writer: dial the peer's *current* address (re-read from the
/// peer table every connect, so Hello-driven refreshes take effect),
/// then drain the queue. Frames already queued behind the first one are
/// coalesced into a single `write` (up to [`COALESCE_BYTES`]), so a
/// bursty sender — a primary multicasting a batch, a donor streaming
/// state chunks — costs one syscall per burst instead of one per frame.
/// The thread lives as long as its queue: a batch that cannot be
/// delivered within a few attempts is dropped and counted, and the
/// writer moves on — delivery resumes as soon as the peer is reachable
/// again.
fn writer_loop<M: NetMsg>(shared: Arc<Shared<M>>, peer: NodeId, rx: Receiver<Vec<u8>>) {
    let mut stream: Option<TcpStream> = None;
    loop {
        let Ok(first) = rx.recv() else {
            return; // queue closed: shutdown
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // Coalesce whatever is already queued behind the first frame.
        let mut batch = first;
        let mut frames_in_batch = 1u64;
        while batch.len() < COALESCE_BYTES {
            match rx.try_recv() {
                Ok(frame) => {
                    batch.extend_from_slice(&frame);
                    frames_in_batch += 1;
                }
                Err(_) => break,
            }
        }
        let mut delivered = false;
        for attempt in 0..WRITE_ATTEMPTS_PER_FRAME {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            if stream.is_none() {
                stream = connect_and_hello(&shared, peer);
                if stream.is_none() {
                    std::thread::sleep(std::time::Duration::from_millis(
                        (20 * (attempt + 1)) as u64,
                    ));
                    continue;
                }
            }
            let s = stream.as_mut().expect("connected");
            match std::io::Write::write_all(s, &batch) {
                Ok(()) => {
                    delivered = true;
                    break;
                }
                Err(_) => {
                    // Broken pipe: re-dial on the next attempt. The
                    // whole batch is rewritten on the fresh connection;
                    // frames the peer already consumed arrive again,
                    // which BFT message handling absorbs (vote sets are
                    // idempotent), and a half-written trailing frame
                    // only kills the old connection's reader.
                    stream = None;
                }
            }
        }
        if !delivered {
            shared
                .counters
                .messages_undeliverable
                .fetch_add(frames_in_batch, Ordering::Relaxed);
        }
    }
}

/// Dials `peer` at its current peer-table address and introduces this
/// node, so the peer learns a dial-back route (essential for client
/// hosts that are not in the static config).
fn connect_and_hello<M: NetMsg>(shared: &Arc<Shared<M>>, peer: NodeId) -> Option<TcpStream> {
    let addr = shared.peers.addr_of(peer)?;
    let mut s = TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(500)).ok()?;
    let _ = s.set_nodelay(true);
    let hello = Hello {
        node: shared.id,
        aliases: shared.peers.aliases_of(shared.id),
        listen_port: shared.listen_port,
    };
    let frame = encode_hello_frame(&hello, &shared.auth, peer).ok()?;
    std::io::Write::write_all(&mut s, &frame).ok()?;
    Some(s)
}

/// Accept loop: one reader thread per inbound connection.
fn accept_loop<M: NetMsg>(
    shared: Arc<Shared<M>>,
    listener: TcpListener,
) -> impl FnOnce() + Send + 'static {
    move || {
        for conn in listener.incoming() {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let Ok(stream) = conn else { continue };
            let shared = Arc::clone(&shared);
            // Readers are detached: they exit on EOF (peers close their
            // write sides at shutdown) or on a codec error.
            let _ = std::thread::Builder::new()
                .name(format!("{}-read", shared.id))
                .spawn(move || reader_loop(shared, stream));
        }
    }
}

fn reader_loop<M: NetMsg>(shared: Arc<Shared<M>>, stream: TcpStream) {
    let peer_ip = stream.peer_addr().ok().map(|a| a.ip());
    let mut reader = BufReader::new(stream);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match read_any_frame::<M, _>(&mut reader, &shared.auth, shared.id) {
            Ok(Frame::Hello(hello)) => {
                // Learn the dial-back route for this peer: its
                // advertised listener port on the connection's source
                // IP. Client hosts may restart on a new ephemeral port,
                // so their route refreshes on every Hello; replica
                // routes from the cluster file are authoritative and
                // are only filled in when missing (a source IP can
                // differ from the configured interface on multi-homed
                // hosts). The codec already verified the Hello's HMAC
                // under the announced node's pair key, so the route
                // cannot be planted by a node not holding that key.
                if let Some(ip) = peer_ip {
                    let addr = SocketAddr::new(ip, hello.listen_port);
                    match hello.node {
                        NodeId::Client(_) => shared.peers.insert(hello.node, addr),
                        NodeId::Replica(_) => shared.peers.insert_if_absent(hello.node, addr),
                    }
                    for alias in hello.aliases {
                        shared.peers.add_alias(alias, hello.node);
                    }
                }
            }
            Ok(Frame::Data(env)) => {
                // Deliver only traffic addressed to (an alias of) us;
                // anything else indicates a stale peer table.
                if shared.peers.resolve(env.to) == shared.id {
                    // Fast path: the atomic keeps the no-filter case
                    // (every production run) free of the shared lock.
                    let filtered = shared.inbound_filter_armed.load(Ordering::Acquire)
                        && shared
                            .inbound_filter
                            .lock()
                            .expect("filter lock")
                            .as_ref()
                            .is_some_and(|f| f(env.from, &env.msg));
                    if filtered {
                        shared
                            .counters
                            .messages_filtered
                            .fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let _ = shared.events.send(Event::Deliver {
                        from: env.from,
                        msg: env.msg,
                    });
                }
            }
            Err(_) => {
                return; // EOF or corruption: close the connection
            }
        }
    }
}
