//! The epoll reactor: single-threaded (optionally N-sharded)
//! event-driven I/O replacing the old thread-per-connection runtime.
//!
//! One reactor thread multiplexes *every* socket its [`NodeRuntime`]
//! (`crate::runtime`) owns through one `epoll` instance:
//!
//! * **accept** — the listener is nonblocking; fresh connections are
//!   handed round-robin to the reactor shards;
//! * **read** — nonblocking reads feed the codec's incremental
//!   [`FrameAssembler`](crate::codec::FrameAssembler); complete frames
//!   are verified and delivered to the hosted node inline;
//! * **write** — per-peer outbound *byte* queues with backpressure
//!   watermarks replace the old channel-fed writer threads; drains
//!   keep the 64 KiB flush coalescing (one `write` per burst);
//! * **connect/hello** — outbound connections are nonblocking state
//!   machines (`EINPROGRESS` → `EPOLLOUT` → `SO_ERROR` check → Hello
//!   frame), with reconnect backoff tracked as reactor state instead of
//!   a blocking `connect_and_hello` call;
//! * **timers** — the protocol timer wheel is folded into the
//!   `epoll_wait` timeout: reactor shard 0 fires due `(kind, token)`
//!   entries (generation-checked, so cancels and re-arms behave exactly
//!   like the simulator's) between poll iterations.
//!
//! The kernel interface is a minimal raw-FFI [`sys`] module
//! (`epoll_create1`/`epoll_ctl`/`epoll_wait`/`eventfd`, plus
//! `socket`/`connect` for nonblocking dials) — this environment has no
//! crates.io, so no `libc`/`mio`; everything else goes through
//! `std::net` on the raw fds.
//!
//! With `reactor_shards = s`, peers are assigned to shards by a stable
//! hash; cross-shard sends enqueue bytes and wake the owning shard's
//! eventfd. The hosted node itself stays behind one mutex, so protocol
//! calls remain serialized exactly as the old event loop serialized
//! them — sharding scales the *I/O*, not the state machine.

use crate::codec::{
    decode_raw_frame, encode_body, encode_hello_frame, frame_prefix, Envelope, Frame,
    FrameAssembler, Hello, RawFrame, PREFIX_BYTES,
};
use crate::runtime::{Shared, VerifiedFrame};
use ringbft_types::sansio::ProtocolNode;
use ringbft_types::{Action, Duration, NodeId, TimerKind};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

/// Raw Linux syscall surface. Numeric constants are the x86-64/ABI-
/// stable values from the kernel headers; `epoll_event` is packed on
/// x86-64 (the kernel ABI) and naturally aligned elsewhere.
pub(crate) mod sys {
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;
    pub const AF_INET: c_int = 2;
    pub const AF_INET6: c_int = 10;
    pub const SOCK_STREAM: c_int = 1;
    pub const SOCK_NONBLOCK: c_int = 0o4000;
    pub const SOCK_CLOEXEC: c_int = 0o2000000;
    pub const EINPROGRESS: i32 = 115;

    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct SockAddrIn {
        pub family: u16,
        pub port_be: u16,
        pub addr_be: [u8; 4],
        pub zero: [u8; 8],
    }

    #[repr(C)]
    pub struct SockAddrIn6 {
        pub family: u16,
        pub port_be: u16,
        pub flowinfo: u32,
        pub addr: [u8; 16],
        pub scope_id: u32,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn connect(sockfd: c_int, addr: *const c_void, addrlen: u32) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// An `eventfd`-backed wakeup channel: threads outside a reactor shard
/// poke its `epoll_wait` (new outbound frames, an earlier timer
/// deadline, an accepted-connection handoff, shutdown poison).
#[derive(Debug)]
pub(crate) struct EventFd(RawFd);

impl EventFd {
    pub fn new() -> std::io::Result<EventFd> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(EventFd(fd))
    }

    pub fn raw(&self) -> RawFd {
        self.0
    }

    /// Makes the owning shard's next (or current) `epoll_wait` return.
    /// At shutdown this is the "poison" fast path: the stop flag is
    /// already set, so the woken shard exits its loop immediately
    /// instead of waiting out its poll timeout.
    pub fn wake(&self) {
        let one: u64 = 1;
        // EAGAIN (counter saturated) still leaves the fd readable, which
        // is all a wake needs.
        let _ = unsafe {
            sys::write(
                self.0,
                (&one as *const u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }

    /// Clears the counter so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut v: u64 = 0;
        let _ = unsafe {
            sys::read(
                self.0,
                (&mut v as *mut u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.0) };
    }
}

/// Thin `epoll` instance wrapper.
struct Epoll(RawFd);

impl Epoll {
    fn new() -> std::io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll(fd))
    }

    fn ctl(&self, op: std::os::raw::c_int, fd: RawFd, token: u64, interest: u32) -> bool {
        let mut ev = sys::EpollEvent {
            events: interest,
            data: token,
        };
        unsafe { sys::epoll_ctl(self.0, op, fd, &mut ev) == 0 }
    }

    /// Registers `fd`; false means the kernel refused (ENOSPC against
    /// `fs.epoll.max_user_watches`, ENOMEM). A connection whose ADD
    /// failed would never produce events — readable traffic silently
    /// blackholed forever — so callers must drop it instead of keeping
    /// it (the peer then sees the close and redials).
    #[must_use]
    fn add(&self, fd: RawFd, token: u64, interest: u32) -> bool {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    fn modify(&self, fd: RawFd, token: u64, interest: u32) {
        // MOD on a registered fd only fails on kernel memory pressure;
        // a missed interest change degrades to a spurious or delayed
        // event, which the level-triggered loop absorbs.
        let _ = self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest);
    }

    fn del(&self, fd: RawFd) {
        let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Waits for events; EINTR retries with the same timeout.
    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> usize {
        loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.0,
                    events.as_mut_ptr(),
                    events.len() as std::os::raw::c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return n as usize;
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return 0;
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { sys::close(self.0) };
    }
}

/// Starts a nonblocking TCP connect. Returns a stream whose handshake
/// is in flight: readiness (or failure) surfaces as `EPOLLOUT`, and
/// `TcpStream::take_error` reads the `SO_ERROR` verdict.
fn connect_nonblocking(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let domain = match addr {
        SocketAddr::V4(_) => sys::AF_INET,
        SocketAddr::V6(_) => sys::AF_INET6,
    };
    let fd = unsafe {
        sys::socket(
            domain,
            sys::SOCK_STREAM | sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC,
            0,
        )
    };
    if fd < 0 {
        return Err(std::io::Error::last_os_error());
    }
    // Wrap immediately so every failure path below closes the fd.
    let stream = unsafe { TcpStream::from_raw_fd(fd) };
    let rc = match addr {
        SocketAddr::V4(a) => {
            let sa = sys::SockAddrIn {
                family: sys::AF_INET as u16,
                port_be: a.port().to_be(),
                addr_be: a.ip().octets(),
                zero: [0; 8],
            };
            unsafe {
                sys::connect(
                    fd,
                    (&sa as *const sys::SockAddrIn).cast(),
                    std::mem::size_of::<sys::SockAddrIn>() as u32,
                )
            }
        }
        SocketAddr::V6(a) => {
            let sa = sys::SockAddrIn6 {
                family: sys::AF_INET6 as u16,
                port_be: a.port().to_be(),
                flowinfo: a.flowinfo(),
                addr: a.ip().octets(),
                scope_id: a.scope_id(),
            };
            unsafe {
                sys::connect(
                    fd,
                    (&sa as *const sys::SockAddrIn6).cast(),
                    std::mem::size_of::<sys::SockAddrIn6>() as u32,
                )
            }
        }
    };
    if rc == 0 {
        return Ok(stream); // loopback can complete synchronously
    }
    let err = std::io::Error::last_os_error();
    if err.raw_os_error() == Some(sys::EINPROGRESS) {
        Ok(stream)
    } else {
        Err(err)
    }
}

/// Upper bound on how many bytes of queued frames one `write` syscall
/// coalesces. Keeps first-frame latency low while cutting per-frame
/// syscall overhead under load (a saturated peer queue drains in ~16
/// frames per syscall at typical consensus message sizes).
pub(crate) const COALESCE_BYTES: usize = 64 * 1024;

/// Backpressure high watermark: once a peer's queued outbound bytes
/// reach this, new frames for it are dropped (and counted) instead of
/// buffered without bound — BFT retransmission timers provide recovery,
/// the same assumption the paper makes about unreliable channels.
pub(crate) const PEER_QUEUE_HIGH_BYTES: usize = 2 * 1024 * 1024;

/// Backpressure low watermark: a choked peer queue re-opens only after
/// draining below this, so a slow peer oscillating at the high mark
/// cannot flap between accept and drop on every frame.
pub(crate) const PEER_QUEUE_LOW_BYTES: usize = 512 * 1024;

/// Consecutive failed dials before the queued frames are flushed as
/// undeliverable (the old writer gave each batch the same number of
/// attempts before moving on).
const RECONNECT_FLUSH_ATTEMPTS: u32 = 5;

/// Watchdog on a nonblocking connect: a dial that is neither writable
/// nor failed by then is torn down and retried.
const CONNECT_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(500);

/// Poll timeout when nothing is scheduled (periodic stop-flag check).
const IDLE_POLL: std::time::Duration = std::time::Duration::from_millis(250);

/// One queued outbound frame in serialize-once form: a per-peer fixed
/// prefix (header ‖ address ‖ MAC) plus the body bytes shared (`Arc`)
/// with every other destination of the same broadcast. The bytes only
/// come together when staged into a connection's write buffer, so an
/// N-way fan-out holds one body allocation, not N; a unicast send is
/// simply the 1-reference case.
#[derive(Debug)]
pub(crate) struct EgressFrame {
    prefix: [u8; PREFIX_BYTES],
    body: Arc<[u8]>,
}

impl EgressFrame {
    fn len(&self) -> usize {
        PREFIX_BYTES + self.body.len()
    }

    fn copy_into(&self, wbuf: &mut Vec<u8>) {
        wbuf.extend_from_slice(&self.prefix);
        wbuf.extend_from_slice(&self.body);
    }
}

/// Per-peer outbound byte queue (the backpressure boundary).
#[derive(Debug, Default)]
pub(crate) struct PeerQueue {
    frames: VecDeque<EgressFrame>,
    bytes: usize,
    choked: bool,
}

impl PeerQueue {
    /// Offers one encoded frame; false = dropped at the watermark.
    fn offer(&mut self, frame: EgressFrame) -> bool {
        if self.choked {
            if self.bytes > PEER_QUEUE_LOW_BYTES {
                return false;
            }
            self.choked = false;
        }
        // An empty queue always accepts (a single frame larger than the
        // watermark must still be sendable).
        if !self.frames.is_empty() && self.bytes + frame.len() > PEER_QUEUE_HIGH_BYTES {
            self.choked = true;
            return false;
        }
        self.bytes += frame.len();
        self.frames.push_back(frame);
        true
    }

    /// Moves up to [`COALESCE_BYTES`] of whole frames into `wbuf`,
    /// returning how many frames moved.
    fn drain_into(&mut self, wbuf: &mut Vec<u8>) -> u64 {
        let mut moved = 0u64;
        while let Some(front) = self.frames.front() {
            if moved > 0 && wbuf.len() + front.len() > COALESCE_BYTES {
                break;
            }
            let frame = self.frames.pop_front().expect("front checked");
            self.bytes -= frame.len();
            frame.copy_into(wbuf);
            moved += 1;
        }
        if self.choked && self.bytes <= PEER_QUEUE_LOW_BYTES {
            self.choked = false;
        }
        moved
    }

    /// Discards everything queued, returning the frame count.
    fn flush(&mut self) -> u64 {
        let n = self.frames.len() as u64;
        self.frames.clear();
        self.bytes = 0;
        self.choked = false;
        n
    }

    fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Timer wheel shared between the public runtime API (arm/cancel) and
/// reactor shard 0 (expiry). Generation counters make cancels and
/// re-arms behave exactly like the simulator's: a stale heap entry
/// whose generation no longer matches is skipped at expiry.
pub(crate) struct TimerState {
    /// Min-heap of `(deadline_ns, kind, token, gen)`.
    pub heap: BinaryHeap<Reverse<(u64, TimerKind, u64, u64)>>,
    /// Live generation per `(kind, token)`.
    pub armed: HashMap<(TimerKind, u64), u64>,
    pub next_gen: u64,
}

impl TimerState {
    pub fn new() -> TimerState {
        TimerState {
            heap: BinaryHeap::new(),
            armed: HashMap::new(),
            next_gen: 0,
        }
    }
}

/// Arms `(kind, token)` to fire `after` from now. Shard 0 owns expiry,
/// so arming from any other thread wakes its poll loop (the new
/// deadline may be earlier than the one its timeout was computed from).
pub(crate) fn set_timer<M>(
    shared: &Shared<M>,
    from_shard: Option<usize>,
    kind: TimerKind,
    token: u64,
    after: Duration,
) {
    let deadline = shared.clock.now().as_nanos() + after.as_nanos();
    {
        let mut t = shared.timers.lock().expect("timer lock");
        t.next_gen += 1;
        let gen = t.next_gen;
        t.armed.insert((kind, token), gen);
        t.heap.push(Reverse((deadline, kind, token, gen)));
    }
    if from_shard != Some(0) {
        shared.wakeups[0].wake();
    }
}

const TOKEN_WAKE: u64 = 0;
const TOKEN_LISTEN: u64 = 1;
/// The telemetry scrape listener ([`NodeRuntime::serve_telemetry`]),
/// adopted by shard 0 once installed.
const TOKEN_TELEMETRY: u64 = 2;
const TOKEN_FIRST_CONN: u64 = 3;

/// Longest HTTP request a telemetry connection may send before it is
/// dropped (scrapes are one short GET line plus a few headers).
const TELEMETRY_MAX_REQUEST: usize = 4096;

/// Marker in a reconnect-heap entry for a scheduled *retry* (no dial in
/// flight) rather than a connect watchdog on a specific dial.
const DIAL_RETRY: u64 = 0;

enum ConnKind {
    /// Accepted connection: peers write frames to us on it.
    Inbound,
    /// Dialled connection: we write frames to `peer` on it.
    Outbound { peer: NodeId, connected: bool },
}

struct Conn {
    stream: TcpStream,
    kind: ConnKind,
    peer_ip: Option<IpAddr>,
    asm: FrameAssembler,
    /// Bytes staged for writing (whole frames, coalesced).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Frames represented in `wbuf` (undeliverable accounting on close).
    wframes: u64,
    interest: u32,
    /// Which dial this outbound connection came from: its connect
    /// watchdog only fires on a matching generation, so a stale
    /// watchdog from an earlier dial can never tear down a later one.
    dial_id: u64,
}

/// One HTTP/1.0 scrape connection on the telemetry listener: reads the
/// request head, serves one response, closes. Deliberately minimal —
/// no keep-alive, no chunking, no headers beyond what `curl` and
/// Prometheus-style scrapers need.
struct TelemetryConn {
    stream: TcpStream,
    /// Request bytes read so far (until the end of the request line).
    rbuf: Vec<u8>,
    /// Staged response bytes.
    wbuf: Vec<u8>,
    wpos: usize,
    /// True once the response is staged (the request side is done).
    responding: bool,
}

/// One reactor shard: an epoll loop owning a disjoint subset of the
/// runtime's connections (plus, on shard 0, the listener and the timer
/// wheel).
struct ReactorShard<M, N> {
    idx: usize,
    shared: Arc<Shared<M>>,
    node: Arc<Mutex<N>>,
    epoll: Epoll,
    listener: Option<TcpListener>,
    /// Telemetry scrape listener (shard 0, once adopted).
    telemetry: Option<TcpListener>,
    /// In-flight telemetry scrape connections by token.
    tconns: HashMap<u64, TelemetryConn>,
    conns: HashMap<u64, Conn>,
    /// Outbound connection (live or connecting) per assigned peer.
    by_peer: HashMap<NodeId, u64>,
    next_token: u64,
    /// Scheduled dials/watchdogs: `(deadline_ns, peer, dial_id)` where
    /// `dial_id` is [`DIAL_RETRY`] for a scheduled retry or the dialled
    /// connection's generation for its connect watchdog.
    reconnect: BinaryHeap<Reverse<(u64, NodeId, u64)>>,
    /// Dial generation counter (watchdog matching).
    next_dial: u64,
    /// Consecutive failed dials per peer (reset on success/flush).
    attempts: HashMap<NodeId, u32>,
    /// Peers whose next dial must wait for a backoff deadline.
    backoff_until: HashMap<NodeId, u64>,
    /// Round-robin cursor for handing accepted connections to shards.
    rr_next: usize,
}

/// Runs one reactor shard until the runtime's stop flag is set. Takes
/// its `node` handle by value so the handle drops before the caller
/// reports the thread's exit (bounded-join shutdown relies on that
/// ordering to hand the node back).
pub(crate) fn run_shard<M, N>(
    shared: Arc<Shared<M>>,
    node: Arc<Mutex<N>>,
    idx: usize,
    listener: Option<TcpListener>,
) where
    M: crate::runtime::NetMsg + ringbft_simnet::SimMessage,
    N: ProtocolNode<M> + Send + 'static,
{
    let epoll = match Epoll::new() {
        Ok(e) => e,
        Err(_) => return, // fd exhaustion at spawn: nothing to drive
    };
    if !epoll.add(shared.wakeups[idx].raw(), TOKEN_WAKE, sys::EPOLLIN) {
        return; // cannot be woken: the shard would be undriveable
    }
    if let Some(l) = &listener {
        if !epoll.add(l.as_raw_fd(), TOKEN_LISTEN, sys::EPOLLIN) {
            return; // cannot accept: the node would be unreachable
        }
    }
    let mut shard = ReactorShard {
        idx,
        shared,
        node,
        epoll,
        listener,
        telemetry: None,
        tconns: HashMap::new(),
        conns: HashMap::new(),
        by_peer: HashMap::new(),
        next_token: TOKEN_FIRST_CONN,
        reconnect: BinaryHeap::new(),
        next_dial: DIAL_RETRY + 1,
        attempts: HashMap::new(),
        backoff_until: HashMap::new(),
        rr_next: 0,
    };
    shard.run();
}

impl<M, N> ReactorShard<M, N>
where
    M: crate::runtime::NetMsg + ringbft_simnet::SimMessage,
    N: ProtocolNode<M> + Send + 'static,
{
    fn run(&mut self) {
        if self.idx == 0 {
            // The hosted node starts on the reactor, exactly as the old
            // event loop started it.
            let now = self.shared.clock.now();
            let actions = {
                let mut n = self.node.lock().expect("node lock");
                n.on_start(now)
            };
            let mut pending = VecDeque::new();
            self.apply_actions(actions, &mut pending);
            self.drain_pending(pending);
        }
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 256];
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                return;
            }
            self.take_handoffs();
            self.drain_verified();
            if self.idx == 0 {
                self.adopt_telemetry_listener();
                self.fire_due_timers();
                self.pump_node();
            }
            self.process_reconnects();
            // Flush *after* timers so a send produced by a timer
            // callback for a peer this shard itself owns goes out now,
            // not after the next poll wakeup (enqueue_send only wakes
            // the eventfd for *other* shards). Event-driven sends from
            // the previous iteration's handlers are covered too.
            self.flush_dirty_peers();
            if self.shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let timeout = self.poll_timeout();
            let wait_start = self.shared.clock.now();
            let n = self.epoll.wait(&mut events, timeout);
            // Time actually spent blocked in the kernel: the idle/busy
            // profile of the shard (near the poll timeout when idle,
            // near zero when saturated).
            {
                let waited = self.shared.clock.now().since(wait_start);
                let mut h = self.shared.obs.epoll_wait.lock().expect("epoll hist");
                h.record(waited.as_nanos());
            }
            for ev in events.iter().take(n) {
                let (token, bits) = (ev.data, ev.events);
                match token {
                    TOKEN_WAKE => self.shared.wakeups[self.idx].drain(),
                    TOKEN_LISTEN => self.accept_ready(),
                    TOKEN_TELEMETRY => self.telemetry_accept(),
                    tok if self.tconns.contains_key(&tok) => self.telemetry_ready(tok, bits),
                    tok => self.conn_ready(tok, bits),
                }
            }
        }
        // Dropping `conns`/`listener`/`epoll`/eventfd handles closes
        // every fd this shard owned.
    }

    /// The `epoll_wait` timeout: the earliest of the timer wheel (shard
    /// 0) and this shard's reconnect schedule, capped at the idle poll.
    fn poll_timeout(&self) -> i32 {
        let now = self.shared.clock.now().as_nanos();
        let mut next: u64 = now + IDLE_POLL.as_nanos() as u64;
        if self.idx == 0 {
            let t = self.shared.timers.lock().expect("timer lock");
            if let Some(Reverse((deadline, ..))) = t.heap.peek() {
                next = next.min(*deadline);
            }
        }
        if let Some(Reverse((deadline, ..))) = self.reconnect.peek() {
            next = next.min(*deadline);
        }
        // Round up to whole milliseconds so a due-in-200µs timer does
        // not spin through zero-timeout polls.
        (next.saturating_sub(now)).div_ceil(1_000_000) as i32
    }

    // ------------------------------------------------------------------
    // Node calls and actions
    // ------------------------------------------------------------------

    /// Delivers protocol messages to the node, draining any self-sends
    /// its actions produce (the simulator's loopback fast path).
    fn drain_pending(&mut self, mut pending: VecDeque<(NodeId, M)>) {
        while let Some((from, msg)) = pending.pop_front() {
            self.shared
                .counters
                .messages_delivered
                .fetch_add(1, Ordering::Relaxed);
            let now = self.shared.clock.now();
            let actions = {
                let mut n = self.node.lock().expect("node lock");
                n.on_message(now, from, msg)
            };
            self.apply_actions(actions, &mut pending);
        }
    }

    fn deliver(&mut self, from: NodeId, msg: M) {
        let mut pending = VecDeque::new();
        pending.push_back((from, msg));
        self.drain_pending(pending);
    }

    fn apply_actions(&mut self, actions: Vec<Action<M>>, pending: &mut VecDeque<(NodeId, M)>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => self.enqueue_send(to, msg, pending),
                Action::SendMany { tos, msg } => self.enqueue_send_many(tos, msg, pending),
                Action::SetTimer { kind, token, after } => {
                    set_timer(&self.shared, Some(self.idx), kind, token, after);
                }
                Action::CancelTimer { kind, token } => {
                    let mut t = self.shared.timers.lock().expect("timer lock");
                    t.armed.remove(&(kind, token));
                    // Stale heap entries are skipped by the generation
                    // check at expiry.
                }
                Action::Executed { seq, txns } => {
                    self.shared.exec_log.lock().expect("exec log").push(
                        crate::runtime::ExecEvent {
                            at: self.shared.clock.now(),
                            seq,
                            txns,
                        },
                    );
                }
                Action::ViewChanged { view } => {
                    self.shared
                        .view_log
                        .lock()
                        .expect("view log")
                        .push((self.shared.clock.now(), view));
                }
            }
        }
    }

    /// Queues a message for a peer (or loops it back for self-sends),
    /// marking the owning shard dirty so it drains the queue.
    fn enqueue_send(&mut self, to: NodeId, msg: M, pending: &mut VecDeque<(NodeId, M)>) {
        let shared = &self.shared;
        let resolved = shared.peers.resolve(to);
        if resolved == shared.id {
            pending.push_back((shared.id, msg));
            return;
        }
        if shared.peers.addr_of(resolved).is_none() {
            // Unknown peer: drop, as the simulator drops sends to
            // unregistered nodes. (A Hello may register it later; dials
            // re-read the table on every attempt.)
            shared
                .counters
                .messages_dropped
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        let model = msg.wire_bytes();
        let trace = msg.trace_context();
        let body = match encode_body(shared.id, &msg, &trace) {
            Ok(b) => b,
            Err(_) => {
                shared
                    .counters
                    .messages_dropped
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let prefix = frame_prefix(shared.id, to, &body, &shared.auth);
        self.stage_frame(resolved, EgressFrame { prefix, body }, model);
    }

    /// Queues one message for many peers, encoding the payload exactly
    /// once: every remote destination gets a per-peer frame prefix over
    /// the same shared body bytes. Self-sends loop back; unknown peers
    /// drop, each independently, exactly as N unicast sends would.
    fn enqueue_send_many(&mut self, tos: Vec<NodeId>, msg: M, pending: &mut VecDeque<(NodeId, M)>) {
        let shared = Arc::clone(&self.shared);
        let mut remotes = Vec::with_capacity(tos.len());
        for to in tos {
            let resolved = shared.peers.resolve(to);
            if resolved == shared.id {
                pending.push_back((shared.id, msg.clone()));
                continue;
            }
            if shared.peers.addr_of(resolved).is_none() {
                shared
                    .counters
                    .messages_dropped
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
            remotes.push((to, resolved));
        }
        if remotes.is_empty() {
            return;
        }
        let model = msg.wire_bytes();
        let trace = msg.trace_context();
        let body = match encode_body(shared.id, &msg, &trace) {
            Ok(b) => b,
            Err(_) => {
                shared
                    .counters
                    .messages_dropped
                    .fetch_add(remotes.len() as u64, Ordering::Relaxed);
                return;
            }
        };
        shared.counters.broadcasts.fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .encodes_saved
            .fetch_add(remotes.len() as u64 - 1, Ordering::Relaxed);
        for (to, resolved) in remotes {
            let prefix = frame_prefix(shared.id, to, &body, &shared.auth);
            let frame = EgressFrame {
                prefix,
                body: Arc::clone(&body),
            };
            self.stage_frame(resolved, frame, model);
        }
    }

    /// Offers one egress frame to `resolved`'s queue and, when accepted,
    /// books the send counters and marks the owning shard dirty.
    fn stage_frame(&self, resolved: NodeId, frame: EgressFrame, model: u64) {
        let shared = &self.shared;
        let bytes = frame.len() as u64;
        let (accepted, depth) = {
            let mut outq = shared.outq.lock().expect("outq");
            let q = outq.entry(resolved).or_default();
            let accepted = q.offer(frame);
            (accepted, q.bytes as u64)
        };
        if !accepted {
            shared
                .counters
                .messages_dropped
                .fetch_add(1, Ordering::Relaxed);
            shared.obs.backpressure_hits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        shared
            .obs
            .queue_hwm_bytes
            .fetch_max(depth, Ordering::Relaxed);
        shared
            .counters
            .messages_sent
            .fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .bytes_sent
            .fetch_add(bytes, Ordering::Relaxed);
        shared
            .counters
            .modeled_bytes_sent
            .fetch_add(model, Ordering::Relaxed);
        let owner = shared.peer_shard(resolved);
        shared.dirty[owner]
            .lock()
            .expect("dirty set")
            .insert(resolved);
        if owner != self.idx {
            shared.wakeups[owner].wake();
        }
    }

    // ------------------------------------------------------------------
    // Timers (shard 0)
    // ------------------------------------------------------------------

    fn fire_due_timers(&mut self) {
        loop {
            let due = {
                let mut t = self.shared.timers.lock().expect("timer lock");
                let now = self.shared.clock.now().as_nanos();
                let mut fire = None;
                while let Some(Reverse((deadline, kind, token, gen))) = t.heap.peek().copied() {
                    if deadline > now {
                        break;
                    }
                    t.heap.pop();
                    if t.armed.get(&(kind, token)) == Some(&gen) {
                        // A cancel that raced this expiry has already
                        // removed the entry, so it wins — matching the
                        // simulator's semantics.
                        t.armed.remove(&(kind, token));
                        fire = Some((kind, token));
                        break;
                    }
                }
                fire
            };
            let Some((kind, token)) = due else { return };
            self.shared
                .counters
                .timers_fired
                .fetch_add(1, Ordering::Relaxed);
            let now = self.shared.clock.now();
            let actions = {
                let mut n = self.node.lock().expect("node lock");
                n.on_timer(now, kind, token)
            };
            let mut pending = VecDeque::new();
            self.apply_actions(actions, &mut pending);
            self.drain_pending(pending);
        }
    }

    // ------------------------------------------------------------------
    // Outbound: dial, flush, reconnect
    // ------------------------------------------------------------------

    fn flush_dirty_peers(&mut self) {
        let dirty: Vec<NodeId> = {
            let mut d = self.shared.dirty[self.idx].lock().expect("dirty set");
            d.drain().collect()
        };
        for peer in dirty {
            self.flush_peer(peer);
        }
    }

    /// Ensures `peer`'s queue is draining: flush over a live connection,
    /// wait on an in-flight dial or backoff, or start a fresh dial.
    fn flush_peer(&mut self, peer: NodeId) {
        if let Some(&tok) = self.by_peer.get(&peer) {
            let connected = matches!(
                self.conns.get(&tok).map(|c| &c.kind),
                Some(ConnKind::Outbound {
                    connected: true,
                    ..
                })
            );
            if connected {
                self.flush_conn(tok);
            }
            return; // still connecting: EPOLLOUT will drive it
        }
        let queued = {
            let outq = self.shared.outq.lock().expect("outq");
            outq.get(&peer).is_some_and(|q| !q.is_empty())
        };
        if !queued {
            return;
        }
        let now = self.shared.clock.now().as_nanos();
        if self.backoff_until.get(&peer).is_some_and(|u| *u > now) {
            return; // scheduled reconnect will dial
        }
        self.start_connect(peer);
    }

    /// Flushes (and evicts) `peer`'s outbound queue, counting the
    /// discarded frames undeliverable. Evicting the map entry keeps
    /// `outq` bounded by *live* peers — under client-host churn every
    /// host ever replied to would otherwise leave an empty queue
    /// behind forever.
    fn flush_peer_queue(&mut self, peer: NodeId) {
        let flushed = {
            let mut outq = self.shared.outq.lock().expect("outq");
            let n = outq.get_mut(&peer).map(|q| q.flush()).unwrap_or(0);
            outq.remove(&peer);
            n
        };
        self.shared
            .counters
            .messages_undeliverable
            .fetch_add(flushed, Ordering::Relaxed);
    }

    fn start_connect(&mut self, peer: NodeId) {
        let Some(addr) = self.shared.peers.addr_of(peer) else {
            // The route vanished (it existed at enqueue time): the
            // queued frames can never leave.
            self.flush_peer_queue(peer);
            return;
        };
        let attempt = *self.attempts.get(&peer).unwrap_or(&0);
        if attempt > 0 {
            self.shared
                .counters
                .reconnects
                .fetch_add(1, Ordering::Relaxed);
            let now = self.shared.clock.now().as_nanos();
            self.shared.obs.trace.lock().expect("net trace").push(
                now,
                "reconnect",
                &[("peer", peer_trace_id(peer)), ("attempt", attempt as u64)],
            );
        }
        match connect_nonblocking(addr) {
            Ok(stream) => {
                let peer_ip = stream.peer_addr().ok().map(|a| a.ip());
                let token = self.next_token;
                self.next_token += 1;
                let dial_id = self.next_dial;
                self.next_dial += 1;
                if !self.epoll.add(
                    stream.as_raw_fd(),
                    token,
                    sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP,
                ) {
                    // Unregisterable = undriveable: treat like a failed
                    // dial (backoff covers transient watch exhaustion).
                    drop(stream);
                    self.dial_failed(peer);
                    return;
                }
                self.conns.insert(
                    token,
                    Conn {
                        stream,
                        kind: ConnKind::Outbound {
                            peer,
                            connected: false,
                        },
                        peer_ip,
                        asm: FrameAssembler::new(),
                        wbuf: self.shared.bufs.take(),
                        wpos: 0,
                        wframes: 0,
                        interest: sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP,
                        dial_id,
                    },
                );
                self.by_peer.insert(peer, token);
                // Connect watchdog: *this* dial (generation-tagged)
                // stuck in the handshake past the timeout is torn down
                // and retried.
                let deadline =
                    self.shared.clock.now().as_nanos() + CONNECT_TIMEOUT.as_nanos() as u64;
                self.reconnect.push(Reverse((deadline, peer, dial_id)));
            }
            Err(_) => self.dial_failed(peer),
        }
    }

    /// A dial failed (or a connection died with traffic still queued):
    /// back off and retry, or flush the queue once the peer looks dead.
    fn dial_failed(&mut self, peer: NodeId) {
        let attempts = self.attempts.entry(peer).or_insert(0);
        *attempts += 1;
        if *attempts >= RECONNECT_FLUSH_ATTEMPTS {
            *attempts = 0;
            self.backoff_until.remove(&peer);
            self.flush_peer_queue(peer);
            // No further dials until new traffic arrives for the peer.
            return;
        }
        let delay_ms = 20 * (*attempts as u64);
        let deadline = self.shared.clock.now().as_nanos() + delay_ms * 1_000_000;
        self.backoff_until.insert(peer, deadline);
        self.reconnect.push(Reverse((deadline, peer, DIAL_RETRY)));
    }

    fn process_reconnects(&mut self) {
        let now = self.shared.clock.now().as_nanos();
        while let Some(Reverse((deadline, peer, dial_id))) = self.reconnect.peek().copied() {
            if deadline > now {
                break;
            }
            self.reconnect.pop();
            if dial_id != DIAL_RETRY {
                // Connect watchdog: tear the dial down only if *that*
                // dial is still handshaking (a stale watchdog from an
                // earlier, already-closed dial must not kill a newer
                // in-flight one).
                let stuck = self.by_peer.get(&peer).copied().filter(|tok| {
                    matches!(
                        self.conns.get(tok),
                        Some(Conn {
                            kind: ConnKind::Outbound {
                                connected: false,
                                ..
                            },
                            dial_id: d,
                            ..
                        }) if *d == dial_id
                    )
                });
                if let Some(tok) = stuck {
                    self.close_conn(tok);
                }
                continue;
            }
            // Scheduled retry: dial again if traffic is still waiting.
            if self.by_peer.contains_key(&peer) {
                continue; // a newer dial is already in flight
            }
            if self.backoff_until.get(&peer) == Some(&deadline) {
                self.backoff_until.remove(&peer);
            }
            let queued = {
                let outq = self.shared.outq.lock().expect("outq");
                outq.get(&peer).is_some_and(|q| !q.is_empty())
            };
            if queued {
                self.start_connect(peer);
            }
        }
    }

    /// A dial became writable: read the `SO_ERROR` verdict, introduce
    /// ourselves (Hello), and start draining the peer queue.
    fn connect_ready(&mut self, tok: u64) {
        let peer = match self.conns.get(&tok).map(|c| &c.kind) {
            Some(ConnKind::Outbound { peer, .. }) => *peer,
            _ => return,
        };
        let verdict = self
            .conns
            .get(&tok)
            .and_then(|c| c.stream.take_error().ok());
        if !matches!(verdict, Some(None)) {
            // SO_ERROR set (refused, unreachable) or unreadable.
            self.close_conn(tok);
            return;
        }
        let hello = Hello {
            node: self.shared.id,
            aliases: self.shared.peers.aliases_of(self.shared.id),
            listen_port: self.shared.listen_port,
        };
        let Ok(frame) = encode_hello_frame(&hello, &self.shared.auth, peer) else {
            self.close_conn(tok);
            return;
        };
        if let Some(conn) = self.conns.get_mut(&tok) {
            let _ = conn.stream.set_nodelay(true);
            conn.kind = ConnKind::Outbound {
                peer,
                connected: true,
            };
            // Stage the Hello into the pooled buffer (keep it; the
            // connection reuses it for every subsequent drain).
            conn.wbuf.clear();
            conn.wbuf.extend_from_slice(&frame);
            conn.wpos = 0;
            conn.wframes = 0; // the Hello is not a counted data frame
        }
        self.attempts.remove(&peer);
        self.backoff_until.remove(&peer);
        self.flush_conn(tok);
    }

    /// Writes staged bytes, refilling the stage from the peer queue in
    /// [`COALESCE_BYTES`] batches, until the socket would block or
    /// everything drained.
    fn flush_conn(&mut self, tok: u64) {
        loop {
            let peer = {
                let Some(conn) = self.conns.get_mut(&tok) else {
                    return;
                };
                let ConnKind::Outbound {
                    peer,
                    connected: true,
                } = conn.kind
                else {
                    return;
                };
                peer
            };
            // Refill the stage when it is fully written.
            {
                let stage_empty = {
                    let conn = self.conns.get(&tok).expect("conn exists");
                    conn.wpos == conn.wbuf.len()
                };
                if stage_empty {
                    let conn = self.conns.get_mut(&tok).expect("conn exists");
                    conn.wbuf.clear();
                    conn.wpos = 0;
                    conn.wframes = 0;
                    let moved = {
                        let mut outq = self.shared.outq.lock().expect("outq");
                        outq.get_mut(&peer)
                            .map(|q| q.drain_into(&mut conn.wbuf))
                            .unwrap_or(0)
                    };
                    conn.wframes = moved;
                    if moved == 0 {
                        self.set_interest(tok, sys::EPOLLIN | sys::EPOLLRDHUP);
                        return;
                    }
                }
            }
            let conn = self.conns.get_mut(&tok).expect("conn exists");
            let wpos = conn.wpos;
            match conn.stream.write(&conn.wbuf[wpos..]) {
                Ok(0) => {
                    self.close_conn(tok);
                    return;
                }
                Ok(n) => {
                    conn.wpos += n;
                    if conn.wpos == conn.wbuf.len() {
                        // Fully flushed: frames are on the wire.
                        conn.wframes = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.set_interest(tok, sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(tok);
                    return;
                }
            }
        }
    }

    fn set_interest(&mut self, tok: u64, interest: u32) {
        let Some(conn) = self.conns.get_mut(&tok) else {
            return;
        };
        if conn.interest != interest {
            conn.interest = interest;
            self.epoll.modify(conn.stream.as_raw_fd(), tok, interest);
        }
    }

    /// Tears a connection down. For outbound connections the staged
    /// frames are counted undeliverable and, when traffic is still
    /// queued, a reconnect is scheduled (dial state, not a blocked
    /// thread).
    fn close_conn(&mut self, tok: u64) {
        let Some(conn) = self.conns.remove(&tok) else {
            return;
        };
        self.epoll.del(conn.stream.as_raw_fd());
        self.shared.bufs.put(conn.wbuf);
        if let ConnKind::Outbound { peer, .. } = conn.kind {
            self.by_peer.remove(&peer);
            if conn.wframes > 0 {
                self.shared
                    .counters
                    .messages_undeliverable
                    .fetch_add(conn.wframes, Ordering::Relaxed);
            }
            let queued = {
                let mut outq = self.shared.outq.lock().expect("outq");
                match outq.get(&peer) {
                    Some(q) if q.is_empty() => {
                        // Evict the drained queue: `outq` stays bounded
                        // by peers with live connections or pending
                        // traffic, not by every peer ever written to
                        // (client hosts churn).
                        outq.remove(&peer);
                        false
                    }
                    Some(_) => true,
                    None => false,
                }
            };
            if queued || conn.wframes > 0 {
                self.dial_failed(peer);
            } else {
                self.attempts.remove(&peer);
            }
        }
        // `conn.stream` drops here, closing the fd.
    }

    // ------------------------------------------------------------------
    // Inbound: accept, read, deliver
    // ------------------------------------------------------------------

    /// Accepts everything pending and hands the connections round-robin
    /// to the reactor shards (shard 0 owns the listener).
    fn accept_ready(&mut self) {
        loop {
            match self
                .listener
                .as_ref()
                .expect("listener on shard 0")
                .accept()
            {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let target = self.rr_next % self.shared.nshards;
                    self.rr_next += 1;
                    if target == self.idx {
                        self.register_inbound(stream);
                    } else {
                        self.shared.handoff[target]
                            .lock()
                            .expect("handoff")
                            .push_back(stream);
                        self.shared.wakeups[target].wake();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return, // transient (EMFILE, aborted handshake)
            }
        }
    }

    fn take_handoffs(&mut self) {
        loop {
            let stream = {
                let mut q = self.shared.handoff[self.idx].lock().expect("handoff");
                q.pop_front()
            };
            match stream {
                Some(s) => self.register_inbound(s),
                None => return,
            }
        }
    }

    fn register_inbound(&mut self, stream: TcpStream) {
        let peer_ip = stream.peer_addr().ok().map(|a| a.ip());
        let token = self.next_token;
        self.next_token += 1;
        if !self
            .epoll
            .add(stream.as_raw_fd(), token, sys::EPOLLIN | sys::EPOLLRDHUP)
        {
            // An unwatchable connection would blackhole the peer's
            // frames forever; dropping it closes the socket, so the
            // peer observes the failure and redials.
            return;
        }
        self.conns.insert(
            token,
            Conn {
                stream,
                kind: ConnKind::Inbound,
                peer_ip,
                asm: FrameAssembler::new(),
                wbuf: Vec::new(),
                wpos: 0,
                wframes: 0,
                interest: sys::EPOLLIN | sys::EPOLLRDHUP,
                dial_id: DIAL_RETRY,
            },
        );
    }

    fn conn_ready(&mut self, tok: u64, bits: u32) {
        let Some(conn) = self.conns.get(&tok) else {
            return; // closed earlier in this same event batch
        };
        if let ConnKind::Outbound {
            connected: false, ..
        } = conn.kind
        {
            // Any readiness on a connecting socket is the handshake
            // verdict (EPOLLOUT on success, EPOLLERR/HUP on failure);
            // `connect_ready` reads SO_ERROR to tell them apart.
            self.connect_ready(tok);
            return;
        }
        if bits & sys::EPOLLIN != 0 {
            self.conn_readable(tok);
        }
        if !self.conns.contains_key(&tok) {
            return;
        }
        if bits & sys::EPOLLOUT != 0 {
            self.flush_conn(tok);
        }
        if !self.conns.contains_key(&tok) {
            return;
        }
        if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close_conn(tok);
        }
    }

    /// Nonblocking read loop: every chunk feeds the incremental frame
    /// assembler; complete frames are verified and delivered inline.
    fn conn_readable(&mut self, tok: u64) {
        let mut buf = [0u8; 64 * 1024];
        loop {
            let n = {
                let Some(conn) = self.conns.get_mut(&tok) else {
                    return;
                };
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        // Clean EOF (peer closed its write side).
                        self.close_conn(tok);
                        return;
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close_conn(tok);
                        return;
                    }
                }
            };
            let offloading = self.shared.verify.is_some();
            let (frames, raws, mut corrupt, peer_ip) = {
                let conn = self.conns.get_mut(&tok).expect("conn exists");
                conn.asm.extend(&buf[..n]);
                let mut frames = Vec::new();
                let mut raws = Vec::new();
                let mut corrupt = false;
                if offloading {
                    // Verify stage installed: extract header-validated
                    // raw frames only (cheap); MAC checks and body
                    // decodes happen on the worker pool. Bodies land in
                    // pooled buffers (returned after decode) so the
                    // steady-state read path allocates nothing.
                    let mut scratch = self.shared.bufs.take();
                    loop {
                        match conn.asm.next_raw_frame_in(&mut scratch) {
                            Ok(Some(r)) => {
                                raws.push(r);
                                scratch = self.shared.bufs.take();
                            }
                            Ok(None) => break,
                            Err(_) => {
                                corrupt = true;
                                break;
                            }
                        }
                    }
                    self.shared.bufs.put(scratch);
                } else {
                    loop {
                        match conn.asm.next_frame::<M>(&self.shared.auth, self.shared.id) {
                            Ok(Some(f)) => frames.push(f),
                            Ok(None) => break,
                            Err(_) => {
                                corrupt = true;
                                break;
                            }
                        }
                    }
                }
                (frames, raws, corrupt, conn.peer_ip)
            };
            let stalled = {
                let conn = self.conns.get(&tok).expect("conn exists");
                conn.asm.buffered() > 0
            };
            if stalled {
                // A partial frame stayed buffered after this read: the
                // frame straddled the read (normal under load) or the
                // peer is trickling bytes.
                self.shared
                    .obs
                    .reassembly_stalls
                    .fetch_add(1, Ordering::Relaxed);
            }
            for frame in frames {
                self.handle_frame(peer_ip, frame);
            }
            for raw in raws {
                if raw.is_hello() {
                    // Hello frames are verified inline: routing must
                    // never lag behind the verify queue, and they are
                    // rare (one per connection).
                    match decode_raw_frame::<M>(&raw, &self.shared.auth, self.shared.id) {
                        Ok(f) => {
                            if let Some(v) = &self.shared.verify {
                                v.inline.fetch_add(1, Ordering::Relaxed);
                            }
                            self.shared.bufs.put(raw.body);
                            self.handle_frame(peer_ip, f);
                        }
                        Err(_) => {
                            corrupt = true;
                            break;
                        }
                    }
                } else {
                    self.offload_frame(tok, raw);
                }
            }
            if corrupt {
                // Forged/corrupted traffic: drop the connection, exactly
                // as the old reader did.
                self.close_conn(tok);
                return;
            }
        }
    }

    /// Hands a raw data frame to the worker pool for MAC verification
    /// and decode. Frames are pinned to a worker by connection token, so
    /// per-connection frame order survives the offload; the worker
    /// deposits the verdict in this shard's verified-frame mailbox and
    /// pokes the shard's eventfd, and `drain_verified` picks it up at
    /// the top of the next loop iteration.
    fn offload_frame(&self, tok: u64, raw: RawFrame) {
        let verify = self.shared.verify.as_ref().expect("verify stage");
        verify.queue_depth.fetch_add(1, Ordering::Relaxed);
        verify.offloaded.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(&self.shared);
        let shard = self.idx;
        let pool = Arc::clone(&verify.pool);
        pool.submit_to(
            tok as usize,
            Box::new(move || {
                let verdict = match decode_raw_frame::<M>(&raw, &shared.auth, shared.id) {
                    Ok(Frame::Data(env)) => Some(VerifiedFrame::Ok { env }),
                    // Hellos never reach the pool (decoded inline), but
                    // a frame claiming the hello flag without it set in
                    // the extractor's view cannot happen — flags were
                    // parsed once. Drop defensively.
                    Ok(Frame::Hello(_)) => None,
                    Err(_) => Some(VerifiedFrame::Corrupt { token: tok }),
                };
                // The body buffer came out of the shard's pool; decode
                // copied what it needed, so recycle it here.
                shared.bufs.put(raw.body);
                let v = shared.verify.as_ref().expect("verify stage");
                if let Some(verdict) = verdict {
                    v.inbox[shard]
                        .lock()
                        .expect("verify inbox")
                        .push_back(verdict);
                }
                v.queue_depth.fetch_sub(1, Ordering::Relaxed);
                shared.wakeups[shard].wake();
            }),
        );
    }

    /// Drains this shard's verified-frame mailbox: envelopes the worker
    /// pool authenticated are delivered in deposit order; corrupt
    /// verdicts close the offending connection (tolerating tokens whose
    /// connection is already gone).
    fn drain_verified(&mut self) {
        let batch = match self.shared.verify.as_ref() {
            Some(v) => std::mem::take(&mut *v.inbox[self.idx].lock().expect("verify inbox")),
            None => return,
        };
        for item in batch {
            match item {
                VerifiedFrame::Ok { env } => self.deliver_env(env),
                VerifiedFrame::Corrupt { token } => self.close_conn(token),
            }
        }
    }

    /// Pumps the hosted node (shard 0): collects results the node's
    /// asynchronous execution stage finished off-thread and applies the
    /// actions they produce. A no-op for nodes without a pipeline.
    fn pump_node(&mut self) {
        let now = self.shared.clock.now();
        let actions = {
            let mut n = self.node.lock().expect("node lock");
            n.on_pump(now)
        };
        if actions.is_empty() {
            return;
        }
        let mut pending = VecDeque::new();
        self.apply_actions(actions, &mut pending);
        self.drain_pending(pending);
    }

    fn handle_frame(&mut self, peer_ip: Option<IpAddr>, frame: Frame<M>) {
        match frame {
            Frame::Hello(hello) => {
                // Learn the dial-back route for this peer: its
                // advertised listener port on the connection's source
                // IP. Client hosts may restart on a new ephemeral port,
                // so their route refreshes on every Hello; replica
                // routes from the cluster file are authoritative and
                // are only filled in when missing (a source IP can
                // differ from the configured interface on multi-homed
                // hosts). The codec already verified the Hello's HMAC
                // under the announced node's pair key, so the route
                // cannot be planted by a node not holding that key.
                if let Some(ip) = peer_ip {
                    let addr = SocketAddr::new(ip, hello.listen_port);
                    match hello.node {
                        NodeId::Client(_) => self.shared.peers.insert(hello.node, addr),
                        NodeId::Replica(_) => self.shared.peers.insert_if_absent(hello.node, addr),
                    }
                    for alias in hello.aliases {
                        self.shared.peers.add_alias(alias, hello.node);
                    }
                }
            }
            Frame::Data(env) => self.deliver_env(env),
        }
    }

    /// Delivers an authenticated envelope to the hosted node, applying
    /// the address check and any installed inbound drop rule. Shared by
    /// the inline decode path and the worker-verified mailbox.
    fn deliver_env(&mut self, env: Envelope<M>) {
        // Deliver only traffic addressed to (an alias of) us;
        // anything else indicates a stale peer table.
        if self.shared.peers.resolve(env.to) != self.shared.id {
            return;
        }
        // Fast path: the atomic keeps the no-filter case (every
        // production run) free of the shared lock.
        let filtered = self.shared.inbound_filter_armed.load(Ordering::Acquire)
            && self
                .shared
                .inbound_filter
                .lock()
                .expect("filter lock")
                .as_ref()
                .is_some_and(|f| f(env.from, &env.msg));
        if filtered {
            self.shared
                .counters
                .messages_filtered
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.deliver(env.from, env.msg);
    }

    // ------------------------------------------------------------------
    // Telemetry scrape endpoint (shard 0)
    // ------------------------------------------------------------------

    /// Adopts a freshly installed telemetry listener
    /// ([`crate::runtime::NodeRuntime::serve_telemetry`]) into this
    /// shard's epoll set. The armed flag keeps the common no-endpoint
    /// case free of the mutex.
    fn adopt_telemetry_listener(&mut self) {
        if !self.shared.telemetry_armed.load(Ordering::Acquire) {
            return;
        }
        let listener = {
            let mut t = self.shared.telemetry.lock().expect("telemetry lock");
            t.pending_listener.take()
        };
        self.shared.telemetry_armed.store(false, Ordering::Release);
        let Some(listener) = listener else { return };
        if !self
            .epoll
            .add(listener.as_raw_fd(), TOKEN_TELEMETRY, sys::EPOLLIN)
        {
            return; // unwatchable: scrapers see a closed port
        }
        self.telemetry = Some(listener);
    }

    /// Accepts pending scrape connections. Telemetry connections stay
    /// on shard 0 — scrapes are rare and short, so they never need the
    /// round-robin handoff data connections get.
    fn telemetry_accept(&mut self) {
        loop {
            let accepted = match &self.telemetry {
                Some(l) => l.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if !self
                        .epoll
                        .add(stream.as_raw_fd(), token, sys::EPOLLIN | sys::EPOLLRDHUP)
                    {
                        continue; // dropping closes it; the scraper retries
                    }
                    self.tconns.insert(
                        token,
                        TelemetryConn {
                            stream,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            wpos: 0,
                            responding: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn telemetry_ready(&mut self, tok: u64, bits: u32) {
        if bits & sys::EPOLLIN != 0 {
            self.telemetry_readable(tok);
        }
        if !self.tconns.contains_key(&tok) {
            return;
        }
        if bits & sys::EPOLLOUT != 0 {
            self.telemetry_writable(tok);
        }
        if !self.tconns.contains_key(&tok) {
            return;
        }
        if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close_telemetry(tok);
        }
    }

    /// Reads until the request line is complete, then stages the
    /// response. Responding after the first line (rather than the full
    /// header block) is valid for one-shot HTTP/1.0 exchanges: the
    /// response carries `Connection: close` and the socket is closed
    /// once it is written.
    fn telemetry_readable(&mut self, tok: u64) {
        let mut buf = [0u8; 4096];
        loop {
            let Some(conn) = self.tconns.get_mut(&tok) else {
                return;
            };
            if conn.responding {
                return; // late header bytes: ignore until close
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    self.close_telemetry(tok);
                    return;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&buf[..n]);
                    if conn.rbuf.len() > TELEMETRY_MAX_REQUEST {
                        self.close_telemetry(tok);
                        return;
                    }
                    if conn.rbuf.contains(&b'\n') {
                        self.telemetry_respond(tok);
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_telemetry(tok);
                    return;
                }
            }
        }
    }

    /// Parses the request line, runs the installed route handler, and
    /// stages the HTTP/1.0 response.
    fn telemetry_respond(&mut self, tok: u64) {
        let (method, path) = {
            let Some(conn) = self.tconns.get(&tok) else {
                return;
            };
            let line_end = conn
                .rbuf
                .iter()
                .position(|&b| b == b'\n')
                .unwrap_or(conn.rbuf.len());
            let line = String::from_utf8_lossy(&conn.rbuf[..line_end]).into_owned();
            let mut parts = line.split_whitespace();
            (
                parts.next().unwrap_or("").to_string(),
                parts.next().unwrap_or("").to_string(),
            )
        };
        let response = if method != "GET" {
            http_response(405, "Method Not Allowed", "text/plain", "only GET\n")
        } else {
            let served = {
                let t = self.shared.telemetry.lock().expect("telemetry lock");
                t.handler.as_ref().and_then(|h| h(&path))
            };
            match served {
                Some((content_type, body)) => http_response(200, "OK", &content_type, &body),
                None => http_response(404, "Not Found", "text/plain", "unknown route\n"),
            }
        };
        let Some(conn) = self.tconns.get_mut(&tok) else {
            return;
        };
        conn.wbuf = response;
        conn.wpos = 0;
        conn.responding = true;
        conn.rbuf.clear();
        self.epoll
            .modify(conn.stream.as_raw_fd(), tok, sys::EPOLLOUT);
        self.telemetry_writable(tok);
    }

    fn telemetry_writable(&mut self, tok: u64) {
        loop {
            let Some(conn) = self.tconns.get_mut(&tok) else {
                return;
            };
            if !conn.responding {
                return; // spurious EPOLLOUT before the request arrived
            }
            if conn.wpos == conn.wbuf.len() {
                self.close_telemetry(tok); // response done: one-shot
                return;
            }
            let wpos = conn.wpos;
            match conn.stream.write(&conn.wbuf[wpos..]) {
                Ok(0) => {
                    self.close_telemetry(tok);
                    return;
                }
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_telemetry(tok);
                    return;
                }
            }
        }
    }

    fn close_telemetry(&mut self, tok: u64) {
        if let Some(conn) = self.tconns.remove(&tok) {
            self.epoll.del(conn.stream.as_raw_fd());
            // `conn.stream` drops here, closing the fd.
        }
    }
}

/// Renders a one-shot HTTP/1.0 response.
fn http_response(code: u16, reason: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Compact trace encoding of a node id: replicas as `shard·1000 + index`,
/// clients as their raw id with the top bit set.
fn peer_trace_id(node: NodeId) -> u64 {
    match node {
        NodeId::Replica(r) => (r.shard.0 as u64) * 1000 + r.index as u64,
        NodeId::Client(c) => 0x8000_0000_0000_0000 | c.0,
    }
}

/// Stable peer→shard assignment (Fibonacci hash over the node id).
pub(crate) fn peer_shard_of(node: NodeId, nshards: usize) -> usize {
    let h = match node {
        NodeId::Replica(r) => ((r.shard.0 as u64) << 32) | r.index as u64,
        NodeId::Client(c) => 0x8000_0000_0000_0000 | c.0,
    };
    (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % nshards.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_frame(body_len: usize) -> EgressFrame {
        EgressFrame {
            prefix: [0x11; PREFIX_BYTES],
            body: Arc::from(vec![0x22u8; body_len].into_boxed_slice()),
        }
    }

    #[test]
    fn shared_frame_drains_as_prefix_then_body() {
        let mut q = PeerQueue::default();
        assert!(q.offer(shared_frame(8)));
        let mut wbuf = Vec::new();
        assert_eq!(q.drain_into(&mut wbuf), 1);
        assert_eq!(wbuf.len(), PREFIX_BYTES + 8);
        assert_eq!(&wbuf[..PREFIX_BYTES], &[0x11; PREFIX_BYTES]);
        assert!(wbuf[PREFIX_BYTES..].iter().all(|b| *b == 0x22));
        assert!(q.is_empty());
    }

    #[test]
    fn broadcast_destinations_share_one_body_allocation() {
        let body: Arc<[u8]> = Arc::from(vec![7u8; 32].into_boxed_slice());
        let mut queues: Vec<PeerQueue> = (0..3).map(|_| PeerQueue::default()).collect();
        for q in &mut queues {
            assert!(q.offer(EgressFrame {
                prefix: [0; PREFIX_BYTES],
                body: Arc::clone(&body),
            }));
        }
        // Three queued frames plus our handle: one allocation, four refs.
        assert_eq!(Arc::strong_count(&body), 4);
        let mut wbuf = Vec::new();
        for q in &mut queues {
            q.drain_into(&mut wbuf);
        }
        // Draining copies bytes out and releases every queue's ref.
        assert_eq!(Arc::strong_count(&body), 1);
    }

    #[test]
    fn watermark_chokes_and_recovers() {
        let mut q = PeerQueue::default();
        // An empty queue always accepts, even past the watermark.
        assert!(q.offer(shared_frame(PEER_QUEUE_HIGH_BYTES)));
        // A non-empty queue past HIGH rejects and chokes.
        assert!(!q.offer(shared_frame(1)));
        let mut wbuf = Vec::new();
        while q.drain_into(&mut wbuf) > 0 {
            wbuf.clear();
        }
        // Below LOW again: the queue unchoked and accepts.
        assert!(q.offer(shared_frame(1)));
    }
}
