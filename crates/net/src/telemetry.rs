//! Standard telemetry scrape routes for hosted nodes.
//!
//! [`NodeRuntime::serve_telemetry`](crate::runtime::NodeRuntime::serve_telemetry)
//! accepts any route handler; this module provides the canonical one
//! for [`AnyNode`] runtimes, so `ringbft-node`, [`LocalCluster`]-based
//! tests, and scripts all scrape the same shape:
//!
//! * `GET /metrics` — one JSON object `{"id", "metrics", "net"}`: the
//!   hosted node's registry + phase-histogram snapshot and the
//!   transport instruments. `metrics` and `net` are produced by the
//!   exact same functions the exit snapshot (`--metrics-path`) uses,
//!   so a live scrape and the final snapshot can be compared counter
//!   for counter.
//! * `GET /trace` — the node's replica trace ring followed by the
//!   transport's connection-lifecycle ring, as JSON lines. Span events
//!   in this dump feed `ringbft_obs::SpanCollector::ingest_dump`
//!   directly.
//!
//! [`LocalCluster`]: crate::cluster::LocalCluster

use crate::runtime::TelemetryHandle;
use ringbft_sim::{AnyMsg, AnyNode};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Builds the `/metrics` body for one runtime: the same composition the
/// exit snapshot writes per node.
pub fn metrics_body(handle: &TelemetryHandle<AnyMsg, AnyNode>) -> String {
    let mut w = ringbft_obs::json::ObjectWriter::new();
    w.field_str("id", &handle.id().to_string());
    match handle.with_node(|n| n.metrics_json()).flatten() {
        Some(m) => w.field_raw("metrics", &m),
        None => w.field_raw("metrics", "null"),
    };
    w.field_raw(
        "net",
        &handle.net_metrics_json().unwrap_or_else(|| "null".into()),
    );
    w.finish()
}

/// Builds the `/trace` body for one runtime: the replica trace ring
/// (span + protocol events) followed by the transport ring, JSONL.
pub fn trace_body(handle: &TelemetryHandle<AnyMsg, AnyNode>) -> String {
    let mut out = handle
        .with_node(|n| n.trace_jsonl())
        .flatten()
        .unwrap_or_default();
    out.push_str(&handle.net_trace_jsonl().unwrap_or_default());
    out
}

/// The canonical route handler for an [`AnyNode`] runtime.
pub fn standard_routes(
    handle: TelemetryHandle<AnyMsg, AnyNode>,
) -> impl Fn(&str) -> Option<(String, String)> + Send + 'static {
    move |path| match path {
        "/metrics" => Some(("application/json".into(), metrics_body(&handle))),
        "/trace" => Some(("application/x-ndjson".into(), trace_body(&handle))),
        _ => None,
    }
}

/// Minimal blocking HTTP/1.0 GET against a scrape endpoint, returning
/// `(status, body)`. For tests and in-process checks; scripts use
/// `curl`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, std::time::Duration::from_secs(5))?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let text = String::from_utf8_lossy(&response);
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}
