//! `ringbft-net` — the real-network runtime for the RingBFT
//! reproduction.
//!
//! Everything in this workspace runs as sans-io state machines behind
//! the driver contract in `ringbft_types::sansio`. The discrete-event
//! simulator (`ringbft-simnet`) is one driver; this crate is the second:
//! real kernels, real clocks, real sockets.
//!
//! * [`codec`] — versioned length-prefixed binary framing for
//!   [`AnyMsg`](ringbft_sim::AnyMsg) (and any other serde-codable
//!   message type) with size caps derived from the paper's wire model,
//!   plus the incremental [`FrameAssembler`](codec::FrameAssembler)
//!   the reactor's nonblocking reads feed.
//! * [`runtime`] — [`NodeRuntime`]: hosts one protocol node on a TCP
//!   listener with a fixed number of epoll reactor threads
//!   (`reactor_shards`, default 1) — nonblocking accept/read/write
//!   state machines, per-peer outbound byte queues with backpressure
//!   watermarks, and the four `TimerKind` watchdogs folded into the
//!   `epoll_wait` timeout.
//! * [`cluster`] — [`LocalCluster`]: a full shard topology in-process
//!   over loopback TCP, used by the integration tests and as the
//!   reference for real deployments.
//! * [`config`] — JSON cluster files (`SystemConfig` + peer address
//!   map) for the `ringbft-node` binary.
//!
//! ## Hosting a replica on a real socket
//!
//! ```no_run
//! use ringbft_net::codec::FrameAuth;
//! use ringbft_net::runtime::{Clock, NodeRuntime, PeerTable};
//! use ringbft_sim::{AnyMsg, AnyNode};
//! use ringbft_types::{NodeId, ProtocolKind, ReplicaId, ShardId, SystemConfig};
//!
//! let cfg = SystemConfig::uniform(ProtocolKind::RingBft, 2, 4);
//! let me = ReplicaId::new(ShardId(0), 0);
//! let (_, _, node) = ringbft_sim::nodes::deployment(&cfg)
//!     .into_iter()
//!     .find(|(r, _, _)| *r == me)
//!     .expect("replica in deployment");
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let peers = PeerTable::new();
//! peers.insert(NodeId::Replica(me), listener.local_addr().unwrap());
//! // ... insert every other replica's address ...
//! let auth = FrameAuth::from_seed(cfg.auth_seed);
//! let rt: NodeRuntime<AnyMsg, AnyNode> =
//!     NodeRuntime::launch(NodeId::Replica(me), node, listener, peers, Clock::start(), auth)
//!         .unwrap();
//! # let _ = rt;
//! ```

pub mod cluster;
pub mod codec;
pub mod config;
mod reactor;
pub mod runtime;
pub mod telemetry;

pub use cluster::{install_exec_stage, DurableRestart, LocalCluster};
pub use codec::{encode_frame, read_frame, write_frame, CodecError, Envelope, FrameAuth};
pub use config::{load_cluster_config, parse_cluster_config, ClusterConfig, ConfigError};
pub use runtime::{Clock, NetStatsSnapshot, NodeRuntime, PeerTable, TelemetryHandle};
