//! Cluster configuration files for `ringbft-node`.
//!
//! A cluster file is JSON carrying the [`SystemConfig`] knobs plus the
//! peer address map:
//!
//! ```json
//! {
//!   "protocol": "RingBft",
//!   "shards": [
//!     { "n": 4, "region": "Oregon" },
//!     { "n": 4, "region": "Iowa" }
//!   ],
//!   "batch_size": 100,
//!   "num_keys": 600000,
//!   "clients": 1000,
//!   "cross_shard_rate": 0.3,
//!   "involved_shards": 2,
//!   "remote_reads": 0,
//!   "timers_ms": { "local": 2000, "remote": 4000, "transmit": 6000, "client": 8000 },
//!   "checkpoint_interval": 128,
//!   "state_chunk_records": 4096,
//!   "auth_seed": 0,
//!   "reactor_shards": 1,
//!   "pipeline_workers": 2,
//!   "trace_sample_rate": 64,
//!   "durability": { "batched": 50 },
//!   "peers": {
//!     "S0r0": "10.0.0.10:4100",
//!     "S0r1": "10.0.0.11:4100"
//!   }
//! }
//! ```
//!
//! Only `protocol`, `shards` and `peers` are required; every other knob
//! defaults to [`SystemConfig::uniform`]'s paper-standard values.
//! Replica names use the `Display` spelling of [`ReplicaId`] (`S<shard>r
//! <index>`), the same names the logs print.

use ringbft_types::{
    Duration, ProtocolKind, Region, ReplicaId, ShardConfig, ShardId, SystemConfig,
};
use std::collections::HashMap;
use std::net::SocketAddr;

/// A parsed cluster file.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The protocol deployment description.
    pub system: SystemConfig,
    /// Listener address of every replica.
    pub peers: HashMap<ReplicaId, SocketAddr>,
}

/// Configuration loading failure with context.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError(msg.into()))
}

fn protocol_by_name(name: &str) -> Option<ProtocolKind> {
    let all = [
        ProtocolKind::RingBft,
        ProtocolKind::Ahl,
        ProtocolKind::Sharper,
        ProtocolKind::Pbft,
        ProtocolKind::Zyzzyva,
        ProtocolKind::Sbft,
        ProtocolKind::Poe,
        ProtocolKind::HotStuff,
        ProtocolKind::Rcc,
    ];
    all.into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

fn region_by_name(name: &str) -> Option<Region> {
    Region::ALL
        .into_iter()
        .find(|r| r.name().eq_ignore_ascii_case(name))
}

/// Parses a replica name in the `Display` spelling, e.g. `"S2r0"`.
pub fn parse_replica_name(name: &str) -> Result<ReplicaId, ConfigError> {
    let rest = name
        .strip_prefix('S')
        .ok_or_else(|| ConfigError(format!("replica name `{name}` must look like S0r1")))?;
    let (shard, index) = rest
        .split_once('r')
        .ok_or_else(|| ConfigError(format!("replica name `{name}` must look like S0r1")))?;
    let shard: u32 = shard
        .parse()
        .map_err(|_| ConfigError(format!("bad shard in `{name}`")))?;
    let index: u32 = index
        .parse()
        .map_err(|_| ConfigError(format!("bad index in `{name}`")))?;
    Ok(ReplicaId::new(ShardId(shard), index))
}

/// Top-level keys a cluster file may carry. Unknown keys are rejected
/// so a typo'd knob fails loudly instead of silently running with the
/// paper default (every process must share the file, so a silent
/// fallback would be a cross-process misconfiguration).
const KNOWN_KEYS: [&str; 20] = [
    "protocol",
    "shards",
    "batch_size",
    "adaptive_batching",
    "num_keys",
    "clients",
    "cross_shard_rate",
    "involved_shards",
    "remote_reads",
    "ring_offset",
    "timers_ms",
    "checkpoint_interval",
    "state_chunk_records",
    "full_snapshot_every",
    "auth_seed",
    "reactor_shards",
    "pipeline_workers",
    "trace_sample_rate",
    "durability",
    "peers",
];

/// Parses a cluster file's text.
pub fn parse_cluster_config(text: &str) -> Result<ClusterConfig, ConfigError> {
    let doc = serde_json::from_str(text).map_err(|e| ConfigError(e.to_string()))?;

    if let Some(members) = doc.as_object() {
        for (key, _) in members {
            if !KNOWN_KEYS.contains(&key.as_str()) {
                return err(format!(
                    "unknown key `{key}` (known: {})",
                    KNOWN_KEYS.join(", ")
                ));
            }
        }
    }

    let protocol_name = doc
        .get("protocol")
        .and_then(|v| v.as_str())
        .ok_or_else(|| ConfigError("missing `protocol`".into()))?;
    let protocol = protocol_by_name(protocol_name)
        .ok_or_else(|| ConfigError(format!("unknown protocol `{protocol_name}`")))?;

    let shard_docs = doc
        .get("shards")
        .and_then(|v| v.as_array())
        .ok_or_else(|| ConfigError("missing `shards` array".into()))?;
    if shard_docs.is_empty() {
        return err("`shards` must not be empty");
    }
    let mut shards = Vec::new();
    for (i, s) in shard_docs.iter().enumerate() {
        let n = s
            .get("n")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| ConfigError(format!("shard {i}: missing `n`")))?;
        let region = match s.get("region").and_then(|v| v.as_str()) {
            Some(name) => region_by_name(name)
                .ok_or_else(|| ConfigError(format!("shard {i}: unknown region `{name}`")))?,
            None => Region::for_shard(i),
        };
        shards.push(ShardConfig {
            id: ShardId(i as u32),
            n: n as usize,
            region,
        });
    }

    // Start from the paper-standard knobs, then apply overrides.
    let z = shards.len();
    let n0 = shards[0].n;
    let mut system = SystemConfig::uniform(protocol, z, n0);
    system.shards = shards;
    system.involved_shards = z;

    let u64_knob = |key: &str| doc.get(key).and_then(|v| v.as_u64());
    if let Some(v) = u64_knob("batch_size") {
        system.batch_size = v as usize;
    }
    if let Some(v) = u64_knob("num_keys") {
        system.num_keys = v;
    }
    if let Some(v) = u64_knob("clients") {
        system.clients = v as usize;
    }
    if let Some(v) = u64_knob("involved_shards") {
        system.involved_shards = v as usize;
    }
    if let Some(v) = u64_knob("remote_reads") {
        system.remote_reads = v as usize;
    }
    if let Some(v) = u64_knob("ring_offset") {
        system.ring_offset = v as u32;
    }
    if let Some(v) = u64_knob("checkpoint_interval") {
        system.checkpoint_interval = v;
    }
    if let Some(v) = u64_knob("state_chunk_records") {
        system.state_chunk_records = v as usize;
    }
    if let Some(v) = u64_knob("full_snapshot_every") {
        system.full_snapshot_every = v;
    }
    if let Some(v) = u64_knob("auth_seed") {
        system.auth_seed = v;
    }
    if let Some(v) = u64_knob("reactor_shards") {
        system.reactor_shards = v as usize;
    }
    if let Some(v) = u64_knob("pipeline_workers") {
        system.pipeline_workers = v as usize;
    }
    if let Some(v) = u64_knob("trace_sample_rate") {
        system.trace_sample_rate = v;
    }
    if let Some(v) = doc.get("cross_shard_rate").and_then(|v| v.as_f64()) {
        system.cross_shard_rate = v;
    }
    if let Some(v) = doc.get("adaptive_batching") {
        system.adaptive_batching = v
            .as_bool()
            .ok_or_else(|| ConfigError("bad `adaptive_batching` (want true or false)".into()))?;
    }
    if let Some(v) = doc.get("durability") {
        // The serde spelling of `Durability`: "none", "strict", or
        // { "batched": <ms> }.
        let parsed = match v.as_str() {
            Some("none") => Some(ringbft_types::Durability::None),
            Some("strict") => Some(ringbft_types::Durability::Strict),
            Some(_) => None,
            None => v
                .as_object()
                .and_then(|o| o.iter().find(|(k, _)| k == "batched"))
                .and_then(|(_, ms)| ms.as_u64())
                .map(ringbft_types::Durability::Batched),
        };
        system.durability = parsed.ok_or_else(|| {
            ConfigError("bad `durability` (want \"none\", \"strict\" or {\"batched\": ms})".into())
        })?;
    }
    if let Some(t) = doc.get("timers_ms") {
        let timer = |key: &str, fallback: Duration| {
            t.get(key)
                .and_then(|v| v.as_u64())
                .map(Duration::from_millis)
                .unwrap_or(fallback)
        };
        system.timers.local = timer("local", system.timers.local);
        system.timers.remote = timer("remote", system.timers.remote);
        system.timers.transmit = timer("transmit", system.timers.transmit);
        system.timers.client = timer("client", system.timers.client);
    }
    system
        .validate()
        .map_err(|e| ConfigError(format!("invalid system config: {e}")))?;

    let peer_doc = doc
        .get("peers")
        .and_then(|v| v.as_object())
        .ok_or_else(|| ConfigError("missing `peers` object".into()))?;
    let mut peers = HashMap::new();
    for (name, addr) in peer_doc {
        let replica = parse_replica_name(name)?;
        let addr_text = addr
            .as_str()
            .ok_or_else(|| ConfigError(format!("peer `{name}`: address must be a string")))?;
        let addr: SocketAddr = addr_text
            .parse()
            .map_err(|_| ConfigError(format!("peer `{name}`: bad address `{addr_text}`")))?;
        peers.insert(replica, addr);
    }

    Ok(ClusterConfig { system, peers })
}

/// Loads and parses a cluster file.
pub fn load_cluster_config(path: &std::path::Path) -> Result<ClusterConfig, ConfigError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ConfigError(format!("read {}: {e}", path.display())))?;
    parse_cluster_config(&text)
}

/// Renders a cluster file for `system` with the given peer addresses
/// (used by docs/examples and round-trip tests).
pub fn render_cluster_config(
    system: &SystemConfig,
    peers: &HashMap<ReplicaId, SocketAddr>,
) -> String {
    let shards: Vec<serde_json::Value> = system
        .shards
        .iter()
        .map(|s| {
            serde_json::json!({
                "n": s.n as u64,
                "region": s.region.name(),
            })
        })
        .collect();
    let mut peer_entries: Vec<(ReplicaId, SocketAddr)> =
        peers.iter().map(|(r, a)| (*r, *a)).collect();
    peer_entries.sort_by_key(|(r, _)| *r);
    let peer_members: Vec<(String, serde_json::Value)> = peer_entries
        .into_iter()
        .map(|(r, a)| (r.to_string(), serde_json::Value::String(a.to_string())))
        .collect();
    let doc = serde_json::json!({
        "protocol": system.protocol.name(),
        "shards": shards,
        "batch_size": system.batch_size as u64,
        "adaptive_batching": system.adaptive_batching,
        "num_keys": system.num_keys,
        "clients": system.clients as u64,
        "cross_shard_rate": system.cross_shard_rate,
        "involved_shards": system.involved_shards as u64,
        "remote_reads": system.remote_reads as u64,
        "ring_offset": system.ring_offset,
        "checkpoint_interval": system.checkpoint_interval,
        "state_chunk_records": system.state_chunk_records as u64,
        "full_snapshot_every": system.full_snapshot_every,
        "auth_seed": system.auth_seed,
        "reactor_shards": system.reactor_shards as u64,
        "pipeline_workers": system.pipeline_workers as u64,
        "trace_sample_rate": system.trace_sample_rate,
        "durability": match system.durability {
            ringbft_types::Durability::None => serde_json::json!("none"),
            ringbft_types::Durability::Strict => serde_json::json!("strict"),
            ringbft_types::Durability::Batched(ms) => serde_json::json!({ "batched": ms }),
        },
        "timers_ms": serde_json::json!({
            "local": system.timers.local.as_nanos() / 1_000_000,
            "remote": system.timers.remote.as_nanos() / 1_000_000,
            "transmit": system.timers.transmit.as_nanos() / 1_000_000,
            "client": system.timers.client.as_nanos() / 1_000_000,
        }),
        "peers": serde_json::Value::Object(peer_members),
    });
    serde_json::to_string_pretty(&doc).expect("render config")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_file() {
        let text = r#"{
            "protocol": "RingBft",
            "shards": [{ "n": 4 }, { "n": 4, "region": "Iowa" }],
            "peers": { "S0r0": "127.0.0.1:4100", "S1r3": "127.0.0.1:4101" }
        }"#;
        let cc = parse_cluster_config(text).unwrap();
        assert_eq!(cc.system.protocol, ProtocolKind::RingBft);
        assert_eq!(cc.system.z(), 2);
        assert_eq!(cc.system.shards[1].region, Region::Iowa);
        assert_eq!(cc.system.batch_size, 100); // paper default
        assert_eq!(
            cc.peers[&ReplicaId::new(ShardId(1), 3)],
            "127.0.0.1:4101".parse().unwrap()
        );
    }

    #[test]
    fn overrides_apply_and_validate() {
        let text = r#"{
            "protocol": "RingBFT",
            "shards": [{ "n": 4 }, { "n": 4 }],
            "batch_size": 10,
            "cross_shard_rate": 0.5,
            "timers_ms": { "local": 100, "remote": 200, "transmit": 300, "client": 400 },
            "peers": {}
        }"#;
        let cc = parse_cluster_config(text).unwrap();
        assert_eq!(cc.system.batch_size, 10);
        assert_eq!(cc.system.cross_shard_rate, 0.5);
        assert_eq!(cc.system.timers.local, Duration::from_millis(100));
    }

    #[test]
    fn recovery_and_auth_knobs_parse() {
        let text = r#"{
            "protocol": "RingBft",
            "shards": [{ "n": 4 }],
            "checkpoint_interval": 16,
            "state_chunk_records": 512,
            "full_snapshot_every": 2,
            "auth_seed": 7,
            "reactor_shards": 2,
            "pipeline_workers": 3,
            "trace_sample_rate": 8,
            "peers": {}
        }"#;
        let cc = parse_cluster_config(text).unwrap();
        assert_eq!(cc.system.checkpoint_interval, 16);
        assert_eq!(cc.system.state_chunk_records, 512);
        assert_eq!(cc.system.full_snapshot_every, 2);
        assert_eq!(cc.system.auth_seed, 7);
        assert_eq!(cc.system.reactor_shards, 2);
        assert_eq!(cc.system.pipeline_workers, 3);
        assert_eq!(cc.system.trace_sample_rate, 8);
        // An absurd worker count fails SystemConfig validation.
        assert!(parse_cluster_config(
            r#"{ "protocol": "RingBft", "shards": [{ "n": 4 }],
                 "pipeline_workers": 65, "peers": {} }"#
        )
        .is_err());
        // A zero reactor-shard count fails SystemConfig validation.
        assert!(parse_cluster_config(
            r#"{ "protocol": "RingBft", "shards": [{ "n": 4 }],
                 "reactor_shards": 0, "peers": {} }"#
        )
        .is_err());
        // A zero interval fails SystemConfig validation.
        assert!(parse_cluster_config(
            r#"{ "protocol": "RingBft", "shards": [{ "n": 4 }],
                 "checkpoint_interval": 0, "peers": {} }"#
        )
        .is_err());
        // So does a zero full-snapshot cadence.
        assert!(parse_cluster_config(
            r#"{ "protocol": "RingBft", "shards": [{ "n": 4 }],
                 "full_snapshot_every": 0, "peers": {} }"#
        )
        .is_err());
    }

    #[test]
    fn durability_knob_parses() {
        use ringbft_types::Durability;
        let mk = |lit: &str| {
            parse_cluster_config(&format!(
                r#"{{ "protocol": "RingBft", "shards": [{{ "n": 4 }}],
                     "durability": {lit}, "peers": {{}} }}"#
            ))
        };
        // Absent ⇒ the batched default.
        let cc = parse_cluster_config(
            r#"{ "protocol": "RingBft", "shards": [{ "n": 4 }], "peers": {} }"#,
        )
        .unwrap();
        assert_eq!(cc.system.durability, Durability::Batched(50));
        assert_eq!(mk(r#""none""#).unwrap().system.durability, Durability::None);
        assert_eq!(
            mk(r#""strict""#).unwrap().system.durability,
            Durability::Strict
        );
        assert_eq!(
            mk(r#"{ "batched": 20 }"#).unwrap().system.durability,
            Durability::Batched(20)
        );
        // A malformed value fails parse; a zero interval fails
        // SystemConfig validation.
        assert!(mk(r#""sometimes""#).is_err());
        assert!(mk(r#"{ "batched": 0 }"#).is_err());
    }

    #[test]
    fn adaptive_batching_knob_parses() {
        let mk = |lit: &str| {
            parse_cluster_config(&format!(
                r#"{{ "protocol": "RingBft", "shards": [{{ "n": 4 }}],
                     "adaptive_batching": {lit}, "peers": {{}} }}"#
            ))
        };
        // Absent ⇒ off: deployed clusters keep the fixed flush policy
        // (and its committed bench/fault-matrix numbers) by default.
        let cc = parse_cluster_config(
            r#"{ "protocol": "RingBft", "shards": [{ "n": 4 }], "peers": {} }"#,
        )
        .unwrap();
        assert!(!cc.system.adaptive_batching);
        assert!(mk("true").unwrap().system.adaptive_batching);
        assert!(!mk("false").unwrap().system.adaptive_batching);
        assert!(mk(r#""sometimes""#).is_err());
        // render_cluster_config emits the knob, so a generated config
        // round-trips it (covered broadly by render_parse_round_trip;
        // pinned here for a non-default value).
        let mut system = SystemConfig::uniform(ProtocolKind::RingBft, 2, 4);
        system.adaptive_batching = true;
        let mut peers = HashMap::new();
        for shard in &system.shards {
            for r in shard.replicas() {
                peers.insert(r, format!("127.0.0.1:{}", 4200 + r.index).parse().unwrap());
            }
        }
        let cc = parse_cluster_config(&render_cluster_config(&system, &peers)).unwrap();
        assert!(cc.system.adaptive_batching);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_cluster_config("{}").is_err());
        assert!(parse_cluster_config(
            r#"{ "protocol": "NoSuch", "shards": [{ "n": 4 }], "peers": {} }"#
        )
        .is_err());
        assert!(parse_cluster_config(
            r#"{ "protocol": "RingBft", "shards": [{ "n": 4 }],
                 "peers": { "bogus": "127.0.0.1:1" } }"#
        )
        .is_err());
        // Ill-ordered timers are caught by SystemConfig::validate.
        assert!(parse_cluster_config(
            r#"{ "protocol": "RingBft", "shards": [{ "n": 4 }],
                 "timers_ms": { "local": 500, "remote": 100 }, "peers": {} }"#
        )
        .is_err());
    }

    #[test]
    fn render_parse_round_trip() {
        let system = SystemConfig::uniform(ProtocolKind::RingBft, 2, 4);
        let mut peers = HashMap::new();
        for shard in &system.shards {
            for r in shard.replicas() {
                peers.insert(r, format!("127.0.0.1:{}", 4100 + r.index).parse().unwrap());
            }
        }
        let text = render_cluster_config(&system, &peers);
        let cc = parse_cluster_config(&text).unwrap();
        assert_eq!(cc.system, system);
        assert_eq!(cc.peers, peers);
    }

    #[test]
    fn unknown_keys_rejected() {
        let err = parse_cluster_config(
            r#"{ "protocol": "RingBft", "shards": [{ "n": 4 }],
                 "batchsize": 500, "peers": {} }"#,
        )
        .unwrap_err();
        assert!(err.0.contains("unknown key `batchsize`"), "{err}");
    }

    #[test]
    fn replica_names_parse() {
        assert_eq!(
            parse_replica_name("S2r7").unwrap(),
            ReplicaId::new(ShardId(2), 7)
        );
        assert!(parse_replica_name("2r7").is_err());
        assert!(parse_replica_name("Sxr7").is_err());
    }
}
