//! `ringbft-node` — host replicas (and optionally a client workload) of
//! a RingBFT cluster on real sockets.
//!
//! ```text
//! # one process per replica:
//! ringbft-node --config cluster.json --host S0r0
//!
//! # or one process per shard:
//! ringbft-node --config cluster.json --host S0r0 --host S0r1 --host S0r2 --host S0r3
//!
//! # drive load from a client-host process (200 logical clients):
//! ringbft-node --config cluster.json --workload 1000000:200:42
//!
//! # print an example cluster file for 2 shards x 4 replicas:
//! ringbft-node --example-config 2 4
//! ```
//!
//! The config file format is documented in `ringbft_net::config`. Every
//! process of one cluster must read the same file. The process runs
//! until killed, printing per-node throughput and transport counters
//! every `--stats-secs` (default 5) seconds.

use ringbft_net::codec::FrameAuth;
use ringbft_net::config::{load_cluster_config, parse_replica_name, render_cluster_config};
use ringbft_net::runtime::{Clock, NodeRuntime, PeerTable};
use ringbft_sim::{AnyMsg, AnyNode, SimClient};
use ringbft_types::{ClientId, NodeId, ProtocolKind, SystemConfig};
use std::net::TcpListener;

struct Args {
    config: Option<String>,
    hosts: Vec<String>,
    workload: Option<(u64, u64, u64)>,
    stats_secs: u64,
    example: Option<(usize, usize)>,
    /// Exit after this many seconds (0 = run until killed). For
    /// scripted runs (CI smoke tests).
    duration_secs: u64,
    /// At a timed exit, fail (status 1) unless at least this many
    /// client transactions completed.
    min_completions: usize,
    /// First listener port of `--example-config` (scripts retry with a
    /// different base on port collisions).
    port_base: u16,
    /// Write a final metrics + event-trace snapshot (JSON) here on a
    /// timed exit.
    metrics_path: Option<String>,
    /// First port of the live telemetry scrape endpoints: hosted node
    /// `i` serves HTTP/1.0 `GET /metrics` and `GET /trace` on
    /// `telemetry_port + i` directly off its reactor (0 = disabled).
    telemetry_port: u16,
    /// Flush every hosted node's trace ring (JSON lines) to this path
    /// on each stats interval, for offline span assembly.
    trace_dump_path: Option<String>,
    /// Directory of per-replica write-ahead ledgers: each hosted
    /// replica appends to `<data_dir>/<name>.wal` under the config's
    /// `durability` policy, and replays it on the next start — a
    /// killed process restarts crash-consistently, fetching only the
    /// tail from its peers.
    data_dir: Option<String>,
}

fn usage_and_exit(code: i32) -> ! {
    eprintln!(
        "ringbft-node — host RingBFT replicas over TCP\n\
         usage:\n  ringbft-node --config FILE --host S0r0 [--host S0r1 ...]\n\
         \x20 ringbft-node --config FILE --workload FIRST_ID:COUNT:SEED\n\
         \x20 ringbft-node --example-config SHARDS REPLICAS\n\
         options:\n  --stats-secs N       stats print interval (default 5, 0 = silent)\n\
         \x20 --duration-secs N    exit after N seconds (default: run until killed)\n\
         \x20 --min-completions K  with --duration-secs: exit 1 unless ≥ K txns completed\n\
         \x20 --port-base P        first listener port of --example-config (default 4100)\n\
         \x20 --metrics-path FILE  write a final metrics + trace snapshot (JSON) at exit\n\
         \x20 --telemetry-port P   serve GET /metrics and /trace for hosted node i on port P+i\n\
         \x20 --trace-dump-path F  flush trace rings (JSON lines) to F every stats interval\n\
         \x20 --data-dir DIR       per-replica write-ahead ledgers in DIR (crash-consistent restart)"
    );
    std::process::exit(code);
}

fn parse_args() -> Args {
    let mut args = Args {
        config: None,
        hosts: Vec::new(),
        workload: None,
        stats_secs: 5,
        example: None,
        duration_secs: 0,
        min_completions: 0,
        port_base: 4100,
        metrics_path: None,
        telemetry_port: 0,
        trace_dump_path: None,
        data_dir: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage_and_exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--config" => args.config = Some(value(&argv, &mut i, "--config")),
            "--host" => args.hosts.push(value(&argv, &mut i, "--host")),
            "--workload" => {
                let spec = value(&argv, &mut i, "--workload");
                let parts: Vec<&str> = spec.split(':').collect();
                let parsed = (|| {
                    let [first, count, seed] = parts.as_slice() else {
                        return None;
                    };
                    Some((first.parse().ok()?, count.parse().ok()?, seed.parse().ok()?))
                })();
                match parsed {
                    Some(w) => args.workload = Some(w),
                    None => {
                        eprintln!("--workload needs FIRST_ID:COUNT:SEED");
                        usage_and_exit(2);
                    }
                }
            }
            "--stats-secs" => {
                args.stats_secs =
                    value(&argv, &mut i, "--stats-secs")
                        .parse()
                        .unwrap_or_else(|_| {
                            eprintln!("--stats-secs needs an integer");
                            usage_and_exit(2);
                        });
            }
            "--duration-secs" => {
                args.duration_secs = value(&argv, &mut i, "--duration-secs")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--duration-secs needs an integer");
                        usage_and_exit(2);
                    });
            }
            "--min-completions" => {
                args.min_completions = value(&argv, &mut i, "--min-completions")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--min-completions needs an integer");
                        usage_and_exit(2);
                    });
            }
            "--example-config" => {
                let z = value(&argv, &mut i, "--example-config");
                let n = value(&argv, &mut i, "--example-config");
                match (z.parse(), n.parse()) {
                    (Ok(z), Ok(n)) => args.example = Some((z, n)),
                    _ => usage_and_exit(2),
                }
            }
            "--port-base" => {
                args.port_base = value(&argv, &mut i, "--port-base")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--port-base needs a port number");
                        usage_and_exit(2);
                    });
            }
            "--metrics-path" => args.metrics_path = Some(value(&argv, &mut i, "--metrics-path")),
            "--telemetry-port" => {
                args.telemetry_port = value(&argv, &mut i, "--telemetry-port")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--telemetry-port needs a port number");
                        usage_and_exit(2);
                    });
            }
            "--trace-dump-path" => {
                args.trace_dump_path = Some(value(&argv, &mut i, "--trace-dump-path"));
            }
            "--data-dir" => args.data_dir = Some(value(&argv, &mut i, "--data-dir")),
            "--help" | "-h" => usage_and_exit(0),
            other => {
                eprintln!("unknown argument `{other}`");
                usage_and_exit(2);
            }
        }
        i += 1;
    }
    args
}

fn print_example(z: usize, n: usize, port_base: u16) {
    let mut system = SystemConfig::uniform(ProtocolKind::RingBft, z, n);
    // Size the example's offload stage to this machine: leave a core
    // for each reactor shard plus the pool-independent main thread.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    system.pipeline_workers = if cores > system.reactor_shards + 1 {
        ringbft_core::default_workers(cores, system.reactor_shards)
    } else {
        0
    };
    let mut peers = std::collections::HashMap::new();
    let mut port = port_base;
    for shard in &system.shards {
        for r in shard.replicas() {
            peers.insert(r, format!("127.0.0.1:{port}").parse().expect("addr"));
            port += 1;
        }
    }
    println!("{}", render_cluster_config(&system, &peers));
}

fn main() {
    let args = parse_args();
    if let Some((z, n)) = args.example {
        print_example(z, n, args.port_base);
        return;
    }
    let Some(config_path) = &args.config else {
        usage_and_exit(2);
    };
    if args.hosts.is_empty() && args.workload.is_none() {
        eprintln!("nothing to host: pass --host and/or --workload");
        usage_and_exit(2);
    }
    let cluster = match load_cluster_config(std::path::Path::new(config_path)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    // Every process of the cluster shares the peer table from the file,
    // and the frame authenticator derived from its auth_seed.
    let peers = PeerTable::new();
    for (r, addr) in &cluster.peers {
        peers.insert(NodeId::Replica(*r), *addr);
    }
    let auth = FrameAuth::from_seed(cluster.system.auth_seed);

    let clock = Clock::start();
    let mut deployment = ringbft_sim::nodes::deployment(&cluster.system);
    let mut runtimes: Vec<NodeRuntime<AnyMsg, AnyNode>> = Vec::new();

    for host in &args.hosts {
        let id = match parse_replica_name(host) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        let Some(addr) = cluster.peers.get(&id).copied() else {
            eprintln!("replica {id} has no address in {config_path}");
            std::process::exit(1);
        };
        let Some(pos) = deployment.iter().position(|(r, _, _)| *r == id) else {
            eprintln!("replica {id} is not part of the configured deployment");
            std::process::exit(1);
        };
        let (_, _, mut node) = deployment.swap_remove(pos);
        if let Some(dir) = &args.data_dir {
            let dir = std::path::Path::new(dir);
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("create data dir {}: {e}", dir.display());
                std::process::exit(1);
            }
            if let AnyNode::Ring(ring) = &mut node {
                let path = dir.join(format!("{id}.wal"));
                match ringbft_recovery::ReplicaWal::open_file(&path, cluster.system.durability) {
                    Ok((wal, recovered)) => {
                        let seq = recovered.fold(id.shard).map(|t| t.seq).unwrap_or(0);
                        println!(
                            "replayed {} ({} bytes, durable checkpoint seq {seq})",
                            path.display(),
                            wal.len_bytes()
                        );
                        ring.attach_wal(wal, &recovered);
                    }
                    Err(e) => {
                        eprintln!("open wal {}: {e}", path.display());
                        std::process::exit(1);
                    }
                }
            }
        }
        let listener = match TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("bind {addr} for {id}: {e}");
                std::process::exit(1);
            }
        };
        match NodeRuntime::launch_with_pipeline(
            NodeId::Replica(id),
            node,
            listener,
            peers.clone(),
            clock.clone(),
            auth.clone(),
            cluster.system.reactor_shards,
            cluster.system.pipeline_workers,
        ) {
            Ok(rt) => {
                ringbft_net::install_exec_stage(&rt);
                println!(
                    "hosting {id} on {addr} ({} reactor thread{}, {} pipeline worker{})",
                    rt.reactor_shards(),
                    if rt.reactor_shards() == 1 { "" } else { "s" },
                    rt.pipeline_workers(),
                    if rt.pipeline_workers() == 1 { "" } else { "s" }
                );
                runtimes.push(rt);
            }
            Err(e) => {
                eprintln!("launch {id}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some((first_id, count, seed)) = args.workload {
        let host = NodeId::Client(ClientId(first_id));
        let listener = TcpListener::bind("0.0.0.0:0").expect("bind client listener");
        let addr = listener.local_addr().expect("client addr");
        peers.insert(host, addr);
        for c in first_id + 1..first_id + count {
            peers.add_alias(NodeId::Client(ClientId(c)), host);
        }
        let client = SimClient::new(cluster.system.clone(), seed, first_id, count);
        match NodeRuntime::launch_with_shards(
            host,
            AnyNode::Client(Box::new(client)),
            listener,
            peers.clone(),
            clock.clone(),
            auth.clone(),
            cluster.system.reactor_shards,
        ) {
            Ok(rt) => {
                println!("hosting workload {host} ({count} logical clients) on {addr}");
                runtimes.push(rt);
            }
            Err(e) => {
                eprintln!("launch workload host: {e}");
                std::process::exit(1);
            }
        }
    }

    // Live telemetry: hosted node i serves GET /metrics and /trace on
    // telemetry_port + i, directly off its reactor (no extra threads).
    if args.telemetry_port > 0 {
        for (i, rt) in runtimes.iter().enumerate() {
            let port = args.telemetry_port + i as u16;
            let listener = match TcpListener::bind(("0.0.0.0", port)) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("bind telemetry port {port}: {e}");
                    std::process::exit(1);
                }
            };
            match rt.serve_telemetry(
                listener,
                ringbft_net::telemetry::standard_routes(rt.telemetry_handle()),
            ) {
                Ok(addr) => println!(
                    "telemetry for {} on http://127.0.0.1:{}/metrics",
                    rt.id(),
                    addr.port()
                ),
                Err(e) => {
                    eprintln!("serve telemetry for {}: {e}", rt.id());
                    std::process::exit(1);
                }
            }
        }
    }

    // Periodic stats until killed (or the scripted duration elapses).
    let started = std::time::Instant::now();
    // A silent process still ticks once a second when something rides
    // the interval: the scripted-duration check or the trace-dump flush.
    let interval = if args.stats_secs == 0 {
        let ticking = args.duration_secs > 0 || args.trace_dump_path.is_some();
        std::time::Duration::from_secs(if ticking { 1 } else { 3600 })
    } else {
        std::time::Duration::from_secs(args.stats_secs)
    };
    let total_completions = |runtimes: &[NodeRuntime<AnyMsg, AnyNode>]| -> usize {
        runtimes
            .iter()
            .map(|rt| {
                rt.with_node(|n| match n {
                    AnyNode::Client(c) => c.completions.len(),
                    _ => 0,
                })
            })
            .sum()
    };
    let mut last_completions = 0usize;
    // End-to-end client latencies (send → reply quorum), fed from the
    // hosted workload's completion log.
    let mut latency = ringbft_obs::Histogram::new();
    let mut latency_seen: Vec<usize> = vec![0; runtimes.len()];
    let absorb_latencies = |runtimes: &[NodeRuntime<AnyMsg, AnyNode>],
                            seen: &mut [usize],
                            hist: &mut ringbft_obs::Histogram| {
        for (i, rt) in runtimes.iter().enumerate() {
            seen[i] = rt.with_node(|n| match n {
                AnyNode::Client(c) => {
                    for comp in &c.completions[seen[i]..] {
                        hist.record(comp.done.since(comp.sent).as_nanos());
                    }
                    c.completions.len()
                }
                _ => 0,
            });
        }
    };
    loop {
        std::thread::sleep(interval);
        absorb_latencies(&runtimes, &mut latency_seen, &mut latency);
        if let Some(path) = &args.trace_dump_path {
            // Latest-window snapshot: the rings are bounded, so each
            // flush rewrites the file with their current contents (the
            // file survives a kill, unlike the exit snapshot).
            if let Err(e) = std::fs::write(path, trace_dump(&runtimes)) {
                eprintln!("write trace dump {path}: {e}");
            }
        }
        if args.duration_secs > 0
            && started.elapsed() >= std::time::Duration::from_secs(args.duration_secs)
        {
            let total = total_completions(&runtimes);
            let ok = total >= args.min_completions;
            if let Some(path) = &args.metrics_path {
                match std::fs::write(path, metrics_snapshot(&runtimes, &latency)) {
                    Ok(()) => println!("metrics snapshot written to {path}"),
                    Err(e) => eprintln!("write metrics snapshot {path}: {e}"),
                }
            }
            println!(
                "duration elapsed: {total} completions (required {}) — {}",
                args.min_completions,
                if ok { "ok" } else { "FAIL" }
            );
            // Clean exit: stop each runtime, then close its replica's
            // write-ahead ledger (clean-close record + sync) so the
            // next start replays without a torn tail. The close must
            // come after the reactors join — a reactor still serving
            // peer traffic could append behind the close marker.
            for rt in runtimes.drain(..) {
                if let Some(AnyNode::Ring(mut r)) = rt.shutdown() {
                    r.close_wal();
                }
            }
            std::process::exit(if ok { 0 } else { 1 });
        }
        if args.stats_secs == 0 {
            continue;
        }
        for rt in &runtimes {
            let s = rt.stats();
            let execs = rt.exec_log().len();
            let completions = rt.with_node(|n| match n {
                AnyNode::Client(c) => c.completions.len(),
                _ => 0,
            });
            let line = format!(
                "[{}] sent={} recv={} dropped={} undeliverable={} reconnects={} timers={} bytes={} (model {}) execs={}",
                rt.id(),
                s.messages_sent,
                s.messages_delivered,
                s.messages_dropped,
                s.messages_undeliverable,
                s.reconnects,
                s.timers_fired,
                s.bytes_sent,
                s.modeled_bytes_sent,
                execs,
            );
            if completions > 0 {
                let rate = (completions - last_completions) as f64 / interval.as_secs_f64();
                let p99_ms = latency.value_at_quantile(0.99) as f64 / 1e6;
                println!("{line} completions={completions} ({rate:.1} txn/s, p99 {p99_ms:.1}ms)");
                last_completions = completions;
            } else {
                println!("{line}");
            }
        }
    }
}

/// The final snapshot written to `--metrics-path`: per-hosted-node
/// protocol metrics, transport metrics, and event traces, plus the
/// client-latency histogram, as one JSON object.
fn metrics_snapshot(
    runtimes: &[NodeRuntime<AnyMsg, AnyNode>],
    latency: &ringbft_obs::Histogram,
) -> String {
    use ringbft_obs::json::ObjectWriter;
    let mut nodes = String::from("[");
    for (i, rt) in runtimes.iter().enumerate() {
        if i > 0 {
            nodes.push(',');
        }
        let mut nw = ObjectWriter::new();
        nw.field_str("id", &rt.id().to_string());
        match rt.with_node(|n| n.metrics_json()) {
            Some(m) => nw.field_raw("metrics", &m),
            None => nw.field_raw("metrics", "null"),
        };
        nw.field_raw("net", &rt.metrics_json());
        nw.field_raw(
            "trace",
            &jsonl_to_array(&rt.with_node(|n| n.trace_jsonl()).unwrap_or_default()),
        );
        nw.field_raw("net_trace", &jsonl_to_array(&rt.trace_jsonl()));
        nodes.push_str(&nw.finish());
    }
    nodes.push(']');
    let mut w = ObjectWriter::new();
    w.field_u64("schema_version", 1)
        .field_raw("client_latency_ns", &ringbft_obs::histogram_json(latency))
        .field_raw("nodes", &nodes);
    let mut out = w.finish();
    out.push('\n');
    out
}

/// The `--trace-dump-path` payload: every hosted node's replica trace
/// ring followed by its transport ring, as JSON lines. Span events in
/// the dump feed `ringbft_obs::SpanCollector::ingest_dump` directly.
fn trace_dump(runtimes: &[NodeRuntime<AnyMsg, AnyNode>]) -> String {
    let mut out = String::new();
    for rt in runtimes {
        out.push_str(&rt.with_node(|n| n.trace_jsonl()).unwrap_or_default());
        out.push_str(&rt.trace_jsonl());
    }
    out
}

/// Re-wraps JSON-lines text as a JSON array (each line is one object).
fn jsonl_to_array(jsonl: &str) -> String {
    let mut out = String::from("[");
    for (i, line) in jsonl.lines().filter(|l| !l.is_empty()).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(line);
    }
    out.push(']');
    out
}
