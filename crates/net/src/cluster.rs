//! In-process loopback cluster: the full shard topology over real TCP.
//!
//! [`LocalCluster`] binds one `127.0.0.1` listener per replica, builds
//! the shared [`PeerTable`], and launches a [`NodeRuntime`] per node —
//! the same state machines the simulator drives, now exchanging frames
//! through the kernel's loopback stack with real clocks. Client hosts
//! (closed-loop [`SimClient`]s or custom injector nodes) join the same
//! peer table.
//!
//! This is both the integration-test harness and the reference for
//! wiring real multi-process deployments with `ringbft-node`.

use crate::codec::FrameAuth;
use crate::runtime::{Clock, NodeRuntime, PeerTable};
use ringbft_core::ThreadedPipeline;
use ringbft_sim::{AnyMsg, AnyNode, SimClient};
use ringbft_types::{ClientId, NodeId, ReplicaId, SystemConfig};
use std::net::TcpListener;

/// Re-homes a RingBFT replica's execution stage onto the runtime's
/// shared worker pool, in asynchronous mode with the reactor's eventfd
/// waker: finished execution jobs nudge shard 0, which pumps the node.
/// `RingReplica::new` installs a private *blocking* stage when
/// `pipeline_workers > 0` (the simulator's deterministic twin); hosted
/// over real sockets the stage instead shares the verify pool, keeping
/// the node's thread budget at `reactor_shards + pipeline_workers`.
pub fn install_exec_stage(rt: &NodeRuntime<AnyMsg, AnyNode>) {
    let Some(pool) = rt.worker_pool() else { return };
    let waker = rt.exec_waker();
    rt.with_node(|n| {
        if let AnyNode::Ring(r) = n {
            r.install_pipeline(Box::new(ThreadedPipeline::on_pool(pool).with_waker(waker)));
        }
    });
}

/// A running loopback deployment.
pub struct LocalCluster {
    cfg: SystemConfig,
    clock: Clock,
    peers: PeerTable,
    auth: FrameAuth,
    replicas: Vec<NodeRuntime<AnyMsg, AnyNode>>,
    clients: Vec<NodeRuntime<AnyMsg, AnyNode>>,
}

impl LocalCluster {
    /// Binds listeners and launches every replica of `cfg` (including
    /// AHL's committee when applicable) on loopback TCP. Frames are
    /// authenticated under the config's `auth_seed`.
    pub fn launch(cfg: SystemConfig) -> std::io::Result<LocalCluster> {
        cfg.validate().expect("valid cluster config");
        let deployment = ringbft_sim::nodes::deployment(&cfg);
        let auth = FrameAuth::from_seed(cfg.auth_seed);

        // Bind every listener first so the peer table is complete before
        // any node starts talking.
        let peers = PeerTable::new();
        let mut listeners = Vec::new();
        for (r, _region, _node) in &deployment {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            peers.insert(NodeId::Replica(*r), listener.local_addr()?);
            listeners.push(listener);
        }

        let clock = Clock::start();
        let mut replicas = Vec::new();
        for ((r, _region, node), listener) in deployment.into_iter().zip(listeners) {
            let rt = NodeRuntime::launch_with_pipeline(
                NodeId::Replica(r),
                node,
                listener,
                peers.clone(),
                clock.clone(),
                auth.clone(),
                cfg.reactor_shards,
                cfg.pipeline_workers,
            )?;
            install_exec_stage(&rt);
            replicas.push(rt);
        }
        Ok(LocalCluster {
            cfg,
            clock,
            peers,
            auth,
            replicas,
            clients: Vec::new(),
        })
    }

    /// The cluster's frame authenticator (share it with externally
    /// launched runtimes, e.g. test injectors).
    pub fn auth(&self) -> &FrameAuth {
        &self.auth
    }

    /// Kills replica `r`: its runtime is stopped and its entire node
    /// state dropped, as if the process died. Peers' writers fail over
    /// and drop frames for it until it is restarted.
    pub fn kill_replica(&mut self, r: ReplicaId) {
        let pos = self
            .replicas
            .iter()
            .position(|rt| rt.id() == NodeId::Replica(r))
            .expect("unknown replica");
        let rt = self.replicas.swap_remove(pos);
        let _ = rt.shutdown(); // node state dropped here
    }

    /// Stops the runtime hosting client `host` (spawned via
    /// [`LocalCluster::spawn_client`]/[`spawn_workload_host`]) — the
    /// TCP twin of a client host disconnecting. Returns whether the
    /// shutdown was clean (every reactor thread acknowledged within the
    /// bounded join timeout). Connection-churn tests use this to cycle
    /// client populations against a running cluster.
    ///
    /// [`spawn_workload_host`]: LocalCluster::spawn_workload_host
    pub fn shutdown_client(&mut self, host: NodeId) -> bool {
        let pos = self
            .clients
            .iter()
            .position(|c| c.id() == host)
            .expect("unknown client host");
        let rt = self.clients.swap_remove(pos);
        rt.shutdown().is_some()
    }

    /// Restarts a previously killed replica *blank*: a fresh node with
    /// an empty store and fresh consensus state, on a new listener. The
    /// peer table is updated in place, so running peers re-route to the
    /// new incarnation on their next (re)connect. Catch-up is the
    /// recovery subsystem's job (`ringbft-recovery`).
    pub fn restart_replica_blank(&mut self, r: ReplicaId) -> std::io::Result<()> {
        assert!(
            !self.replicas.iter().any(|rt| rt.id() == NodeId::Replica(r)),
            "{r} is still running; kill it first"
        );
        let (_, _, node) = ringbft_sim::nodes::deployment(&self.cfg)
            .into_iter()
            .find(|(id, _, _)| *id == r)
            .expect("replica in deployment");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        self.peers
            .insert(NodeId::Replica(r), listener.local_addr()?);
        let rt = NodeRuntime::launch_with_pipeline(
            NodeId::Replica(r),
            node,
            listener,
            self.peers.clone(),
            self.clock.clone(),
            self.auth.clone(),
            self.cfg.reactor_shards,
            self.cfg.pipeline_workers,
        )?;
        install_exec_stage(&rt);
        self.replicas.push(rt);
        Ok(())
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The cluster's shared timebase.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The cluster's peer table (replicas plus any spawned clients).
    pub fn peers(&self) -> &PeerTable {
        &self.peers
    }

    /// Launches a closed-loop workload host serving logical clients
    /// `first_id..first_id + count` (the same [`SimClient`] the
    /// simulator uses); replies to any logical id route back to it.
    pub fn spawn_workload_host(
        &mut self,
        seed: u64,
        first_id: u64,
        count: u64,
    ) -> std::io::Result<NodeId> {
        let host = NodeId::Client(ClientId(first_id));
        let client = SimClient::new(self.cfg.clone(), seed, first_id, count);
        let aliases: Vec<NodeId> = (first_id + 1..first_id + count)
            .map(|c| NodeId::Client(ClientId(c)))
            .collect();
        self.spawn_client(host, AnyNode::Client(Box::new(client)), &aliases)
    }

    /// Launches an arbitrary client-side node (e.g. a test injector)
    /// as `host`, optionally aliasing extra logical ids to it. The
    /// shared peer table makes the new host visible to every running
    /// replica immediately.
    pub fn spawn_client(
        &mut self,
        host: NodeId,
        node: AnyNode,
        aliases: &[NodeId],
    ) -> std::io::Result<NodeId> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        self.peers.insert(host, listener.local_addr()?);
        for a in aliases {
            self.peers.add_alias(*a, host);
        }
        self.clients.push(NodeRuntime::launch_with_shards(
            host,
            node,
            listener,
            self.peers.clone(),
            self.clock.clone(),
            self.auth.clone(),
            self.cfg.reactor_shards,
        )?);
        Ok(host)
    }

    /// Runs `f` on the client runtime hosting `host`.
    pub fn with_client<R>(&self, host: NodeId, f: impl FnOnce(&mut AnyNode) -> R) -> R {
        let rt = self
            .clients
            .iter()
            .find(|c| c.id() == host)
            .expect("unknown client host");
        rt.with_node(f)
    }

    /// Total transactions completed across all workload hosts.
    pub fn total_completions(&self) -> usize {
        self.clients
            .iter()
            .map(|rt| {
                rt.with_node(|n| match n {
                    AnyNode::Client(c) => c.completions.len(),
                    _ => 0,
                })
            })
            .sum()
    }

    /// Installs a content-aware inbound drop rule on replica `r`'s
    /// runtime (fault injection over real sockets): frames for which
    /// `filter(from, &msg)` returns true never reach the node. See
    /// [`NodeRuntime::set_inbound_filter`].
    pub fn set_inbound_filter(
        &self,
        r: ReplicaId,
        filter: impl Fn(NodeId, &AnyMsg) -> bool + Send + 'static,
    ) {
        let rt = self
            .replicas
            .iter()
            .find(|rt| rt.id() == NodeId::Replica(r))
            .expect("unknown replica");
        rt.set_inbound_filter(filter);
    }

    /// Starts the standard telemetry scrape endpoint
    /// (`crate::telemetry::standard_routes`) for replica `r` on an
    /// ephemeral loopback port, returning the bound address.
    pub fn serve_replica_telemetry(&self, r: ReplicaId) -> std::io::Result<std::net::SocketAddr> {
        let rt = self
            .replicas
            .iter()
            .find(|rt| rt.id() == NodeId::Replica(r))
            .expect("unknown replica");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        rt.serve_telemetry(
            listener,
            crate::telemetry::standard_routes(rt.telemetry_handle()),
        )
    }

    /// Runs `f` on the runtime hosting replica `r`.
    pub fn with_replica<R>(&self, r: ReplicaId, f: impl FnOnce(&mut AnyNode) -> R) -> R {
        let rt = self
            .replicas
            .iter()
            .find(|rt| rt.id() == NodeId::Replica(r))
            .expect("unknown replica");
        rt.with_node(f)
    }

    /// Iterates the replica runtimes (stats inspection).
    pub fn replica_runtimes(&self) -> impl Iterator<Item = &NodeRuntime<AnyMsg, AnyNode>> {
        self.replicas.iter()
    }

    /// Polls until `pred` holds or `timeout` elapses; returns whether
    /// the predicate held.
    pub fn wait_until(
        &self,
        timeout: std::time::Duration,
        mut pred: impl FnMut(&LocalCluster) -> bool,
    ) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if pred(self) {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    }

    /// Stops every runtime (clients first, so replica sockets close
    /// cleanly afterwards). Returns whether every shutdown was *clean*:
    /// each runtime's reactor threads acknowledged the poisoned-eventfd
    /// stop within the bounded join timeout. Tests assert this so a
    /// wedged reactor cannot hide behind a green run.
    pub fn shutdown(self) -> bool {
        // Flush any in-flight execution-stage jobs first: replies they
        // would produce are moot (clients stop next), but a job still on
        // the pool must not outlive the replica state it references.
        for r in &self.replicas {
            r.with_node(|n| {
                if let AnyNode::Ring(replica) = n {
                    let mut out = ringbft_types::sansio::Outbox::new();
                    replica.flush_pipeline(&mut out);
                }
            });
        }
        let mut clean = true;
        for c in self.clients {
            clean &= c.shutdown().is_some();
        }
        for r in self.replicas {
            clean &= r.shutdown().is_some();
        }
        clean
    }
}
