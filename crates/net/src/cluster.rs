//! In-process loopback cluster: the full shard topology over real TCP.
//!
//! [`LocalCluster`] binds one `127.0.0.1` listener per replica, builds
//! the shared [`PeerTable`], and launches a [`NodeRuntime`] per node —
//! the same state machines the simulator drives, now exchanging frames
//! through the kernel's loopback stack with real clocks. Client hosts
//! (closed-loop [`SimClient`]s or custom injector nodes) join the same
//! peer table.
//!
//! This is both the integration-test harness and the reference for
//! wiring real multi-process deployments with `ringbft-node`.

use crate::codec::FrameAuth;
use crate::runtime::{Clock, NodeRuntime, PeerTable};
use ringbft_core::ThreadedPipeline;
use ringbft_recovery::ReplicaWal;
use ringbft_sim::{AnyMsg, AnyNode, SimClient};
use ringbft_types::{ClientId, NodeId, ReplicaId, SystemConfig};
use std::net::TcpListener;
use std::path::{Path, PathBuf};

/// Re-homes a RingBFT replica's execution stage onto the runtime's
/// shared worker pool, in asynchronous mode with the reactor's eventfd
/// waker: finished execution jobs nudge shard 0, which pumps the node.
/// `RingReplica::new` installs a private *blocking* stage when
/// `pipeline_workers > 0` (the simulator's deterministic twin); hosted
/// over real sockets the stage instead shares the verify pool, keeping
/// the node's thread budget at `reactor_shards + pipeline_workers`.
pub fn install_exec_stage(rt: &NodeRuntime<AnyMsg, AnyNode>) {
    let Some(pool) = rt.worker_pool() else { return };
    let waker = rt.exec_waker();
    rt.with_node(|n| {
        if let AnyNode::Ring(r) = n {
            r.install_pipeline(Box::new(ThreadedPipeline::on_pool(pool).with_waker(waker)));
        }
    });
}

/// A running loopback deployment.
pub struct LocalCluster {
    cfg: SystemConfig,
    clock: Clock,
    peers: PeerTable,
    auth: FrameAuth,
    replicas: Vec<NodeRuntime<AnyMsg, AnyNode>>,
    clients: Vec<NodeRuntime<AnyMsg, AnyNode>>,
    /// When set, every replica runs with a file-backed write-ahead
    /// ledger at `<data_dir>/<replica>.wal` (the `--data-dir` twin).
    data_dir: Option<PathBuf>,
}

/// What [`LocalCluster::restart_replica_durable`] replayed from the
/// surviving on-disk log before rejoining the cluster.
#[derive(Debug, Clone, Copy)]
pub struct DurableRestart {
    /// Bytes of intact log replayed from `<data_dir>/<replica>.wal`.
    pub bytes_replayed: u64,
    /// Checkpoint sequence the replay restored (0 = no durable
    /// checkpoint survived; the restart is effectively blank).
    pub recovered_seq: u64,
    /// The surviving log ended with a clean-close record (false after
    /// a kill — the tail simply stops, possibly torn).
    pub clean_close: bool,
}

/// The on-disk log of one replica under `dir`.
fn wal_path(dir: &Path, r: ReplicaId) -> PathBuf {
    dir.join(format!("{r}.wal"))
}

impl LocalCluster {
    /// Binds listeners and launches every replica of `cfg` (including
    /// AHL's committee when applicable) on loopback TCP. Frames are
    /// authenticated under the config's `auth_seed`.
    pub fn launch(cfg: SystemConfig) -> std::io::Result<LocalCluster> {
        Self::launch_inner(cfg, None)
    }

    /// Like [`LocalCluster::launch`], but every replica additionally
    /// runs a file-backed write-ahead ledger at
    /// `<data_dir>/<replica>.wal` under the config's `durability`
    /// policy — the in-process twin of `ringbft-node --data-dir`. A
    /// replica killed with [`LocalCluster::kill_replica`] leaves its
    /// log on disk for [`LocalCluster::restart_replica_durable`].
    pub fn launch_durable(
        cfg: SystemConfig,
        data_dir: impl Into<PathBuf>,
    ) -> std::io::Result<LocalCluster> {
        let dir = data_dir.into();
        std::fs::create_dir_all(&dir)?;
        Self::launch_inner(cfg, Some(dir))
    }

    fn launch_inner(cfg: SystemConfig, data_dir: Option<PathBuf>) -> std::io::Result<LocalCluster> {
        cfg.validate().expect("valid cluster config");
        let deployment = ringbft_sim::nodes::deployment(&cfg);
        let auth = FrameAuth::from_seed(cfg.auth_seed);

        // Bind every listener first so the peer table is complete before
        // any node starts talking.
        let peers = PeerTable::new();
        let mut listeners = Vec::new();
        for (r, _region, _node) in &deployment {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            peers.insert(NodeId::Replica(*r), listener.local_addr()?);
            listeners.push(listener);
        }

        let clock = Clock::start();
        let mut replicas = Vec::new();
        for ((r, _region, mut node), listener) in deployment.into_iter().zip(listeners) {
            if let Some(dir) = &data_dir {
                if let AnyNode::Ring(ring) = &mut node {
                    let (wal, recovered) = ReplicaWal::open_file(wal_path(dir, r), cfg.durability)?;
                    ring.attach_wal(wal, &recovered);
                }
            }
            let rt = NodeRuntime::launch_with_pipeline(
                NodeId::Replica(r),
                node,
                listener,
                peers.clone(),
                clock.clone(),
                auth.clone(),
                cfg.reactor_shards,
                cfg.pipeline_workers,
            )?;
            install_exec_stage(&rt);
            replicas.push(rt);
        }
        Ok(LocalCluster {
            cfg,
            clock,
            peers,
            auth,
            replicas,
            clients: Vec::new(),
            data_dir,
        })
    }

    /// The cluster's frame authenticator (share it with externally
    /// launched runtimes, e.g. test injectors).
    pub fn auth(&self) -> &FrameAuth {
        &self.auth
    }

    /// Kills replica `r`: its runtime is stopped and its entire node
    /// state dropped, as if the process died. Peers' writers fail over
    /// and drop frames for it until it is restarted.
    pub fn kill_replica(&mut self, r: ReplicaId) {
        let pos = self
            .replicas
            .iter()
            .position(|rt| rt.id() == NodeId::Replica(r))
            .expect("unknown replica");
        let rt = self.replicas.swap_remove(pos);
        let _ = rt.shutdown(); // node state dropped here
    }

    /// Stops the runtime hosting client `host` (spawned via
    /// [`LocalCluster::spawn_client`]/[`spawn_workload_host`]) — the
    /// TCP twin of a client host disconnecting. Returns whether the
    /// shutdown was clean (every reactor thread acknowledged within the
    /// bounded join timeout). Connection-churn tests use this to cycle
    /// client populations against a running cluster.
    ///
    /// [`spawn_workload_host`]: LocalCluster::spawn_workload_host
    pub fn shutdown_client(&mut self, host: NodeId) -> bool {
        let pos = self
            .clients
            .iter()
            .position(|c| c.id() == host)
            .expect("unknown client host");
        let rt = self.clients.swap_remove(pos);
        rt.shutdown().is_some()
    }

    /// Restarts a previously killed replica *blank*: a fresh node with
    /// an empty store and fresh consensus state, on a new listener. The
    /// peer table is updated in place, so running peers re-route to the
    /// new incarnation on their next (re)connect. Catch-up is the
    /// recovery subsystem's job (`ringbft-recovery`).
    pub fn restart_replica_blank(&mut self, r: ReplicaId) -> std::io::Result<()> {
        assert!(
            !self.replicas.iter().any(|rt| rt.id() == NodeId::Replica(r)),
            "{r} is still running; kill it first"
        );
        let (_, _, node) = ringbft_sim::nodes::deployment(&self.cfg)
            .into_iter()
            .find(|(id, _, _)| *id == r)
            .expect("replica in deployment");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        self.peers
            .insert(NodeId::Replica(r), listener.local_addr()?);
        let rt = NodeRuntime::launch_with_pipeline(
            NodeId::Replica(r),
            node,
            listener,
            self.peers.clone(),
            self.clock.clone(),
            self.auth.clone(),
            self.cfg.reactor_shards,
            self.cfg.pipeline_workers,
        )?;
        install_exec_stage(&rt);
        self.replicas.push(rt);
        Ok(())
    }

    /// Restarts a previously killed replica from its on-disk log (the
    /// cluster must have been launched with
    /// [`LocalCluster::launch_durable`]): a fresh node replays
    /// `<data_dir>/<replica>.wal`, restores the last durable stable
    /// checkpoint locally, and fetches only the tail from its peers —
    /// the crash-consistent `kill -9; ringbft-node --data-dir` path.
    pub fn restart_replica_durable(&mut self, r: ReplicaId) -> std::io::Result<DurableRestart> {
        assert!(
            !self.replicas.iter().any(|rt| rt.id() == NodeId::Replica(r)),
            "{r} is still running; kill it first"
        );
        let dir = self
            .data_dir
            .clone()
            .expect("cluster was not launched with launch_durable");
        let (_, _, mut node) = ringbft_sim::nodes::deployment(&self.cfg)
            .into_iter()
            .find(|(id, _, _)| *id == r)
            .expect("replica in deployment");
        let (wal, recovered) = ReplicaWal::open_file(wal_path(&dir, r), self.cfg.durability)?;
        let restart = DurableRestart {
            bytes_replayed: wal.len_bytes(),
            recovered_seq: recovered.fold(r.shard).map(|tip| tip.seq).unwrap_or(0),
            clean_close: recovered.clean_close,
        };
        if let AnyNode::Ring(ring) = &mut node {
            ring.attach_wal(wal, &recovered);
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        self.peers
            .insert(NodeId::Replica(r), listener.local_addr()?);
        let rt = NodeRuntime::launch_with_pipeline(
            NodeId::Replica(r),
            node,
            listener,
            self.peers.clone(),
            self.clock.clone(),
            self.auth.clone(),
            self.cfg.reactor_shards,
            self.cfg.pipeline_workers,
        )?;
        install_exec_stage(&rt);
        self.replicas.push(rt);
        Ok(restart)
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The cluster's shared timebase.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The cluster's peer table (replicas plus any spawned clients).
    pub fn peers(&self) -> &PeerTable {
        &self.peers
    }

    /// Launches a closed-loop workload host serving logical clients
    /// `first_id..first_id + count` (the same [`SimClient`] the
    /// simulator uses); replies to any logical id route back to it.
    pub fn spawn_workload_host(
        &mut self,
        seed: u64,
        first_id: u64,
        count: u64,
    ) -> std::io::Result<NodeId> {
        let host = NodeId::Client(ClientId(first_id));
        let client = SimClient::new(self.cfg.clone(), seed, first_id, count);
        let aliases: Vec<NodeId> = (first_id + 1..first_id + count)
            .map(|c| NodeId::Client(ClientId(c)))
            .collect();
        self.spawn_client(host, AnyNode::Client(Box::new(client)), &aliases)
    }

    /// Launches an arbitrary client-side node (e.g. a test injector)
    /// as `host`, optionally aliasing extra logical ids to it. The
    /// shared peer table makes the new host visible to every running
    /// replica immediately.
    pub fn spawn_client(
        &mut self,
        host: NodeId,
        node: AnyNode,
        aliases: &[NodeId],
    ) -> std::io::Result<NodeId> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        self.peers.insert(host, listener.local_addr()?);
        for a in aliases {
            self.peers.add_alias(*a, host);
        }
        self.clients.push(NodeRuntime::launch_with_shards(
            host,
            node,
            listener,
            self.peers.clone(),
            self.clock.clone(),
            self.auth.clone(),
            self.cfg.reactor_shards,
        )?);
        Ok(host)
    }

    /// Runs `f` on the client runtime hosting `host`.
    pub fn with_client<R>(&self, host: NodeId, f: impl FnOnce(&mut AnyNode) -> R) -> R {
        let rt = self
            .clients
            .iter()
            .find(|c| c.id() == host)
            .expect("unknown client host");
        rt.with_node(f)
    }

    /// Total transactions completed across all workload hosts.
    pub fn total_completions(&self) -> usize {
        self.clients
            .iter()
            .map(|rt| {
                rt.with_node(|n| match n {
                    AnyNode::Client(c) => c.completions.len(),
                    _ => 0,
                })
            })
            .sum()
    }

    /// Installs a content-aware inbound drop rule on replica `r`'s
    /// runtime (fault injection over real sockets): frames for which
    /// `filter(from, &msg)` returns true never reach the node. See
    /// [`NodeRuntime::set_inbound_filter`].
    pub fn set_inbound_filter(
        &self,
        r: ReplicaId,
        filter: impl Fn(NodeId, &AnyMsg) -> bool + Send + 'static,
    ) {
        let rt = self
            .replicas
            .iter()
            .find(|rt| rt.id() == NodeId::Replica(r))
            .expect("unknown replica");
        rt.set_inbound_filter(filter);
    }

    /// Starts the standard telemetry scrape endpoint
    /// (`crate::telemetry::standard_routes`) for replica `r` on an
    /// ephemeral loopback port, returning the bound address.
    pub fn serve_replica_telemetry(&self, r: ReplicaId) -> std::io::Result<std::net::SocketAddr> {
        let rt = self
            .replicas
            .iter()
            .find(|rt| rt.id() == NodeId::Replica(r))
            .expect("unknown replica");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        rt.serve_telemetry(
            listener,
            crate::telemetry::standard_routes(rt.telemetry_handle()),
        )
    }

    /// Runs `f` on the runtime hosting replica `r`.
    pub fn with_replica<R>(&self, r: ReplicaId, f: impl FnOnce(&mut AnyNode) -> R) -> R {
        let rt = self
            .replicas
            .iter()
            .find(|rt| rt.id() == NodeId::Replica(r))
            .expect("unknown replica");
        rt.with_node(f)
    }

    /// Iterates the replica runtimes (stats inspection).
    pub fn replica_runtimes(&self) -> impl Iterator<Item = &NodeRuntime<AnyMsg, AnyNode>> {
        self.replicas.iter()
    }

    /// Polls until `pred` holds or `timeout` elapses; returns whether
    /// the predicate held.
    pub fn wait_until(
        &self,
        timeout: std::time::Duration,
        mut pred: impl FnMut(&LocalCluster) -> bool,
    ) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if pred(self) {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    }

    /// Stops every runtime (clients first, so replica sockets close
    /// cleanly afterwards). Returns whether every shutdown was *clean*:
    /// each runtime's reactor threads acknowledged the poisoned-eventfd
    /// stop within the bounded join timeout. Tests assert this so a
    /// wedged reactor cannot hide behind a green run.
    pub fn shutdown(self) -> bool {
        // Flush any in-flight execution-stage jobs first: replies they
        // would produce are moot (clients stop next), but a job still on
        // the pool must not outlive the replica state it references.
        for r in &self.replicas {
            r.with_node(|n| {
                if let AnyNode::Ring(replica) = n {
                    let mut out = ringbft_types::sansio::Outbox::new();
                    replica.flush_pipeline(&mut out);
                }
            });
        }
        let mut clean = true;
        for c in self.clients {
            clean &= c.shutdown().is_some();
        }
        // Close each write-ahead ledger (append a clean-close record
        // and sync) only *after* the runtime's reactors have joined and
        // handed the node back: a reactor still serving peer traffic
        // could otherwise append behind the close marker, leaving a log
        // that does not replay as cleanly closed.
        for r in self.replicas {
            match r.shutdown() {
                Some(AnyNode::Ring(mut replica)) => replica.close_wal(),
                Some(_) => {}
                None => clean = false,
            }
        }
        clean
    }
}
