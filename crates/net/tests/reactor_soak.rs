//! Connection-churn soak test for the epoll reactor (ISSUE 5).
//!
//! The old runtime spawned two OS threads per peer connection, so its
//! thread (and stack) footprint grew with the client population. The
//! reactor's contract is the opposite: a running node uses a *fixed*
//! thread count (`reactor_shards` per hosted node) and holds file
//! descriptors only for live connections, no matter how many clients
//! come and go.
//!
//! This test drives waves of workload hosts against a 2×4 loopback
//! cluster — each wave connects, commits transactions, and disconnects
//! — and asserts:
//!
//! * every wave's commits complete (the churn never wedges the shard);
//! * the process thread count during a wave equals the launch-time
//!   baseline plus exactly the wave host's own reactor (thread count is
//!   independent of connection count);
//! * after each wave drains, the process fd count returns to the
//!   post-launch baseline (no leaked sockets on either side of the
//!   churned connections);
//! * the final cluster shutdown is clean (every reactor thread
//!   acknowledges the poisoned eventfd within the bounded join
//!   timeout) — and, with the replicas running on durable write-ahead
//!   logs (ISSUE 9), that shutdown flushes and closes every log inside
//!   the same bounded join: each WAL reopens with a clean-close record
//!   and no torn tail.

use ringbft_net::LocalCluster;
use ringbft_types::{Duration, ProtocolKind, ReplicaId, ShardId, SystemConfig};

/// Live fd count of this process.
fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").expect("procfs").count()
}

/// Live thread count of this process.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs")
        .count()
}

/// Polls until `pred` holds or `timeout` elapses.
fn wait_until(timeout: std::time::Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        if pred() {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}

const DEADLINE: std::time::Duration = std::time::Duration::from_secs(60);

#[test]
fn connection_churn_leaks_no_fds_and_keeps_thread_count_fixed() {
    let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 2, 4);
    cfg.num_keys = 2_000;
    cfg.batch_size = 1;
    cfg.clients = 8;
    cfg.timers.local = Duration::from_millis(800);
    cfg.timers.remote = Duration::from_millis(1600);
    cfg.timers.transmit = Duration::from_millis(2400);
    cfg.timers.client = Duration::from_millis(3200);
    let dir = std::env::temp_dir().join(format!("ringbft-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cluster = LocalCluster::launch_durable(cfg.clone(), &dir).expect("launch cluster");

    // Baselines after the cluster is up but before any client exists.
    // The 8 replica runtimes have spawned their (single-shard) reactors
    // and hold listener + epoll + eventfd fds; none of that may grow
    // with client churn.
    let base_threads = thread_count();
    let mut completed_before = 0usize;

    // The fd baseline settles once the replicas' mutual connections are
    // established; wave 0 warms those up, so the post-wave-0 quiescent
    // count is the reference for later waves.
    let mut base_fds: Option<usize> = None;

    for wave in 0u64..4 {
        let first_id = 1_000_000 + wave * 1_000;
        let host = cluster
            .spawn_workload_host(42 + wave, first_id, 8)
            .expect("spawn wave host");

        // Thread count is connection-independent: the wave added
        // exactly one runtime = one reactor thread, regardless of how
        // many sockets its 8 logical clients fan out to.
        assert_eq!(
            thread_count(),
            base_threads + 1,
            "wave {wave}: thread count must be baseline + the wave host's reactor"
        );

        let target = completed_before + 15;
        let ok = wait_until(DEADLINE, || cluster.total_completions() >= target);
        assert!(
            ok,
            "wave {wave}: stalled at {}/{target} completions",
            cluster.total_completions()
        );
        completed_before = cluster.total_completions();

        // Disconnect the wave: the host's runtime stops (clean), its
        // sockets close, and every replica-side fd for the churned
        // connections must be reclaimed once the reactors observe EOF.
        assert!(
            cluster.shutdown_client(host),
            "wave {wave}: host shutdown was not clean"
        );
        assert_eq!(thread_count(), base_threads, "wave {wave}: thread leak");
        match base_fds {
            None => {
                // Wave 0 established the replicas' mutual connections;
                // once fds stop moving, record the quiescent baseline.
                let settled = wait_until(DEADLINE, || {
                    let a = fd_count();
                    std::thread::sleep(std::time::Duration::from_millis(200));
                    a == fd_count()
                });
                assert!(settled, "fd count never quiesced after wave 0");
                base_fds = Some(fd_count());
            }
            Some(base) => {
                // Later waves must drain back to it: a few fds of slack
                // for connections mid-teardown, never monotonic growth.
                let drained = wait_until(DEADLINE, || fd_count() <= base + 4);
                assert!(
                    drained,
                    "wave {wave}: fd leak — {} live vs baseline {base}",
                    fd_count()
                );
            }
        }
    }

    assert!(cluster.shutdown(), "cluster shutdown was not clean");

    // Clean shutdown closed every durable log before the bounded join:
    // each WAL reopens with a clean-close record last and no torn tail
    // dropped on the floor (the replay sees everything that was
    // appended, then the close marker).
    for s in 0..2u32 {
        for i in 0..4u32 {
            let r = ReplicaId::new(ShardId(s), i);
            let (_, recovered) = ringbft_recovery::ReplicaWal::open_file(
                dir.join(format!("{r}.wal")),
                ringbft_types::Durability::default(),
            )
            .expect("reopen wal after shutdown");
            assert!(
                recovered.clean_close,
                "{r}: shutdown did not close the log cleanly"
            );
            assert!(
                recovered.entries > 0,
                "{r}: the soak committed traffic but the log is empty"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
