//! Causal-tracing acceptance over real sockets: a loopback TCP cluster
//! produces an assembled multi-shard cst timeline for a sampled
//! transaction, and the live telemetry endpoint serves the same
//! registry counters the exit snapshot reports.

use ringbft_net::telemetry::http_get;
use ringbft_net::LocalCluster;
use ringbft_obs::SpanCollector;
use ringbft_types::{ProtocolKind, ReplicaId, ShardId, SystemConfig};
use std::time::Duration;

fn tracing_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 2, 4);
    cfg.num_keys = 2_000;
    cfg.clients = 8;
    cfg.batch_size = 1;
    cfg.cross_shard_rate = 1.0; // every transaction crosses shards
    cfg.involved_shards = 2;
    cfg.remote_reads = 1; // complex csts: both ring rotations run
    cfg.trace_sample_rate = 1; // sample everything
    cfg
}

/// Tentpole acceptance (TCP half): sampled cross-shard transactions on
/// a real-socket cluster leave spans in every involved replica's trace
/// ring, the rings assemble into a timeline with ≥ 2 shards and ≥ 3
/// phases per shard, and both scrape routes serve live data off the
/// reactor.
#[test]
fn live_cluster_assembles_timeline_and_serves_scrapes() {
    let mut cluster = LocalCluster::launch(tracing_cfg()).expect("launch cluster");
    let host = cluster
        .spawn_workload_host(42, 1_000_000, 8)
        .expect("spawn workload");
    assert!(
        cluster.wait_until(Duration::from_secs(60), |c| c.total_completions() >= 40),
        "cluster never completed 40 transactions"
    );

    // Live scrape endpoint, served directly off replica S0r0's reactor.
    let r = ReplicaId::new(ShardId(0), 0);
    let addr = cluster.serve_replica_telemetry(r).expect("serve telemetry");

    let (status, body) = http_get(addr, "/metrics").expect("scrape /metrics");
    assert_eq!(status, 200, "scrape failed: {body}");
    assert!(body.contains("\"id\":\"S0r0\""), "wrong node: {body}");
    // Phase histograms are registered and populated under load.
    assert!(
        body.contains("\"phase.preprepare_commit\":{\"count\":"),
        "no phase histograms in scrape: {body}"
    );
    assert!(
        !body.contains("\"phase.preprepare_commit\":{\"count\":0,"),
        "phase histograms empty under load"
    );

    let (status, _) = http_get(addr, "/no-such-route").expect("scrape 404");
    assert_eq!(status, 404);

    // The trace-dump route feeds the span collector directly.
    let (status, dump) = http_get(addr, "/trace").expect("scrape /trace");
    assert_eq!(status, 200);
    let mut from_dump = SpanCollector::new();
    from_dump.ingest_dump(&dump);
    assert!(
        !from_dump.is_empty(),
        "trace route dumped no spans:\n{dump}"
    );

    // Stop the workload so the cluster quiesces, then require a live
    // scrape whose registry section byte-for-byte equals the snapshot
    // taken through the exit path (`AnyNode::metrics_json`).
    assert!(cluster.shutdown_client(host), "unclean client shutdown");
    let mut converged = false;
    for _ in 0..50 {
        let (_, scrape) = http_get(addr, "/metrics").expect("scrape /metrics");
        let direct = cluster
            .with_replica(r, |n| n.metrics_json())
            .expect("ring replica is instrumented");
        if scrape.contains(&direct) {
            converged = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        converged,
        "live scrape never matched the exit-snapshot registry"
    );

    // Assemble cross-shard timelines from every replica's trace ring —
    // the same rings the /trace route dumps.
    let mut collector = SpanCollector::new();
    for rt in cluster.replica_runtimes() {
        rt.with_node(|n| {
            if let Some(obs) = n.ring_obs() {
                for (_, ev) in obs.trace.iter() {
                    collector.ingest_event(ev);
                }
            }
        });
    }
    let full = collector
        .timelines()
        .into_iter()
        .find(|t| {
            let shards = t.shards();
            shards.len() >= 2 && shards.iter().all(|&s| t.phases_of(s).len() >= 3)
        })
        .expect("no timeline with >= 2 shards and >= 3 phases per shard");
    assert!(full.max_hop() >= 1, "timeline never left the initiator");
    assert!(full.critical_path_ns() > 0);

    assert!(cluster.shutdown(), "unclean cluster shutdown");
}
