//! Property test: arbitrary `AnyMsg` values survive a full
//! encode → frame → decode round trip bit-identically.
//!
//! Generators build messages bottom-up (transactions → batches →
//! protocol messages) over all three protocol families, covering every
//! enum variant the codec must carry, including nested `PbftMsg`s with
//! optional re-proposal payloads.

use proptest::prelude::*;
use proptest::TestRng;
use ringbft_baselines::ShardedMsg;
use ringbft_core::{ExecuteMsg, ForwardMsg, RingMsg};
use ringbft_net::codec::{
    encode_body, encode_frame, frame_prefix, read_frame, Envelope, FrameAuth, ADDR_BYTES,
    HEADER_BYTES,
};
use ringbft_pbft::{PbftMsg, PreparedProof};
use ringbft_protocols::SsMsg;
use ringbft_recovery::{PlanLink, RecordEntry, RecoveryMsg};
use ringbft_sim::AnyMsg;
use ringbft_types::hole::{CommitCertificate, HoleReply, HoleRequest};
use ringbft_types::txn::{Batch, Operation, OperationKind, RemoteRead, Transaction};
use ringbft_types::{
    BatchId, ClientId, NodeId, ReplicaId, SeqNum, ShardId, TraceContext, TxnId, ViewNum,
};
use std::sync::Arc;

fn arb_u64(rng: &mut TestRng, bound: u64) -> u64 {
    Strategy::generate(&(0..bound), rng)
}

/// Codec v5: about half the generated envelopes carry a trace context,
/// with hop counts stressed up to the saturation point (`u32::MAX`).
fn arb_trace(rng: &mut TestRng) -> Option<TraceContext> {
    match arb_u64(rng, 4) {
        0 => None,
        1 => Some(TraceContext {
            trace_id: 1 + arb_u64(rng, u64::MAX - 1),
            hop: u32::MAX,
        }),
        _ => Some(TraceContext {
            trace_id: ringbft_types::trace::trace_id_for(arb_u64(rng, 1 << 40)),
            hop: arb_u64(rng, 9) as u32,
        }),
    }
}

fn arb_operation(rng: &mut TestRng) -> Operation {
    Operation {
        shard: ShardId(arb_u64(rng, 4) as u32),
        key: arb_u64(rng, 1_000),
        kind: match arb_u64(rng, 3) {
            0 => OperationKind::Read,
            1 => OperationKind::Write,
            _ => OperationKind::ReadModifyWrite,
        },
    }
}

fn arb_txn(rng: &mut TestRng) -> Transaction {
    let ops = (0..1 + arb_u64(rng, 4))
        .map(|_| arb_operation(rng))
        .collect();
    let mut t = Transaction::new(
        TxnId(arb_u64(rng, u64::MAX - 1)),
        ClientId(arb_u64(rng, 1 << 40)),
        ops,
    );
    for _ in 0..arb_u64(rng, 3) {
        t.remote_reads.push(RemoteRead {
            reader: ShardId(arb_u64(rng, 4) as u32),
            owner: ShardId(arb_u64(rng, 4) as u32),
            key: arb_u64(rng, 1_000),
        });
    }
    t.trace = arb_trace(rng);
    t
}

fn arb_batch(rng: &mut TestRng) -> Arc<Batch> {
    let txns = (0..1 + arb_u64(rng, 5)).map(|_| arb_txn(rng)).collect();
    Arc::new(Batch::new_unchecked(BatchId(arb_u64(rng, 1 << 32)), txns))
}

fn arb_digest(rng: &mut TestRng) -> [u8; 32] {
    Strategy::generate(&any::<[u8; 32]>(), rng)
}

fn arb_pbft(rng: &mut TestRng) -> PbftMsg {
    let view = ViewNum(arb_u64(rng, 16));
    let seq = SeqNum(arb_u64(rng, 1 << 20));
    let digest = arb_digest(rng);
    match arb_u64(rng, 6) {
        0 => PbftMsg::Preprepare {
            view,
            seq,
            digest,
            batch: arb_batch(rng),
        },
        1 => PbftMsg::Prepare { view, seq, digest },
        2 => PbftMsg::Commit { view, seq, digest },
        3 => PbftMsg::Checkpoint {
            seq,
            state_digest: digest,
        },
        4 => PbftMsg::ViewChange {
            new_view: view,
            last_stable: seq,
            prepared: (0..arb_u64(rng, 3))
                .map(|_| PreparedProof {
                    view,
                    seq,
                    digest,
                    batch: if arb_u64(rng, 2) == 0 {
                        None
                    } else {
                        Some(arb_batch(rng))
                    },
                })
                .collect(),
        },
        _ => PbftMsg::NewView {
            view,
            preprepares: (0..arb_u64(rng, 3))
                .map(|_| PreparedProof {
                    view,
                    seq,
                    digest,
                    batch: Some(arb_batch(rng)),
                })
                .collect(),
        },
    }
}

fn arb_ring(rng: &mut TestRng) -> RingMsg {
    let digest = arb_digest(rng);
    let from_shard = ShardId(arb_u64(rng, 4) as u32);
    let forward = |rng: &mut TestRng| ForwardMsg {
        batch: arb_batch(rng),
        digest,
        from_shard,
        cert_signers: (0..arb_u64(rng, 8) as u32).collect(),
        deps: (0..arb_u64(rng, 4))
            .map(|_| (arb_u64(rng, 1_000), arb_u64(rng, 1 << 30)))
            .collect(),
        hop: arb_u64(rng, 5) as u32,
    };
    match arb_u64(rng, 10) {
        0 => RingMsg::Request {
            txn: Arc::new(arb_txn(rng)),
            relayed: arb_u64(rng, 2) == 1,
        },
        1 => RingMsg::Pbft(arb_pbft(rng)),
        2 => RingMsg::Forward(forward(rng)),
        3 => RingMsg::ForwardShare(forward(rng)),
        4 => RingMsg::Execute(ExecuteMsg {
            digest,
            from_shard,
            sigma: (0..arb_u64(rng, 5))
                .map(|_| (arb_u64(rng, 1_000), arb_u64(rng, 1 << 30)))
                .collect(),
        }),
        5 => RingMsg::ExecuteShare(ExecuteMsg {
            digest,
            from_shard,
            sigma: vec![],
        }),
        6 => RingMsg::RemoteView { digest, from_shard },
        7 => RingMsg::RemoteViewShare {
            digest,
            from_shard,
            origin: arb_u64(rng, 8) as u32,
        },
        8 => RingMsg::Recovery(arb_recovery(rng)),
        _ => RingMsg::Reply {
            client: ClientId(arb_u64(rng, 1 << 40)),
            digest,
            txn_ids: (0..arb_u64(rng, 6)).map(TxnId).collect(),
        },
    }
}

fn arb_records(rng: &mut TestRng) -> Vec<RecordEntry> {
    (0..arb_u64(rng, 50))
        .map(|_| RecordEntry {
            key: arb_u64(rng, 1 << 40),
            value: arb_u64(rng, u64::MAX - 1),
            version: arb_u64(rng, 1 << 20),
        })
        .collect()
}

fn arb_plan_link(rng: &mut TestRng) -> PlanLink {
    PlanLink {
        seq: arb_u64(rng, 1 << 30),
        digest: arb_digest(rng),
        base: if arb_u64(rng, 2) == 0 {
            None
        } else {
            Some((arb_u64(rng, 1 << 30), arb_digest(rng)))
        },
        chunks: arb_u64(rng, 64) as u32,
    }
}

fn arb_recovery(rng: &mut TestRng) -> RecoveryMsg {
    let digest = arb_digest(rng);
    match arb_u64(rng, 5) {
        0 => RecoveryMsg::StateRequest {
            from_seq: arb_u64(rng, 1 << 30),
            base: if arb_u64(rng, 2) == 0 {
                None
            } else {
                Some((arb_u64(rng, 1 << 30), arb_digest(rng)))
            },
        },
        3 => RecoveryMsg::HoleRequest(HoleRequest {
            seq: SeqNum(arb_u64(rng, 1 << 30)),
        }),
        4 => RecoveryMsg::HoleReply(HoleReply {
            cert: CommitCertificate {
                view: ViewNum(arb_u64(rng, 16)),
                seq: SeqNum(arb_u64(rng, 1 << 30)),
                digest,
                signers: (0..arb_u64(rng, 8) as u32).collect(),
            },
            batch: arb_batch(rng),
        }),
        1 => RecoveryMsg::StateChunk {
            target_seq: arb_u64(rng, 1 << 30),
            target_digest: digest,
            link_seq: arb_u64(rng, 1 << 30),
            delta: arb_u64(rng, 2) == 0,
            chunk: arb_u64(rng, 64) as u32,
            records: arb_records(rng),
        },
        _ => RecoveryMsg::StatePlan {
            target_seq: arb_u64(rng, 1 << 30),
            target_digest: digest,
            links: (0..arb_u64(rng, 6)).map(|_| arb_plan_link(rng)).collect(),
            ledger_height: arb_u64(rng, 1 << 30),
            ledger_head: arb_digest(rng),
        },
    }
}

fn arb_sharded(rng: &mut TestRng) -> ShardedMsg {
    let digest = arb_digest(rng);
    match arb_u64(rng, 9) {
        0 => ShardedMsg::Request {
            txn: Arc::new(arb_txn(rng)),
            relayed: arb_u64(rng, 2) == 1,
        },
        1 => ShardedMsg::Pbft(arb_pbft(rng)),
        2 => ShardedMsg::PrepareReq {
            digest,
            batch: arb_batch(rng),
        },
        3 => ShardedMsg::Vote2pc {
            digest,
            shard: ShardId(arb_u64(rng, 4) as u32),
            commit: arb_u64(rng, 2) == 1,
        },
        4 => ShardedMsg::Decision {
            digest,
            commit: arb_u64(rng, 2) == 1,
        },
        5 => ShardedMsg::XPreprepare {
            gseq: arb_u64(rng, 1 << 16),
            digest,
            batch: arb_batch(rng),
        },
        6 => ShardedMsg::XPrepare {
            gseq: arb_u64(rng, 1 << 16),
            digest,
            shard: ShardId(arb_u64(rng, 4) as u32),
        },
        7 => ShardedMsg::XCommit {
            gseq: arb_u64(rng, 1 << 16),
            digest,
            shard: ShardId(arb_u64(rng, 4) as u32),
        },
        _ => ShardedMsg::Reply {
            client: ClientId(arb_u64(rng, 1 << 40)),
            digest,
            txn_ids: (0..arb_u64(rng, 6)).map(TxnId).collect(),
        },
    }
}

fn arb_ss(rng: &mut TestRng) -> SsMsg {
    let digest = arb_digest(rng);
    let seq = SeqNum(arb_u64(rng, 1 << 16));
    let phase = arb_u64(rng, 3) as u8;
    match arb_u64(rng, 9) {
        0 => SsMsg::Request {
            txn: Arc::new(arb_txn(rng)),
            relayed: arb_u64(rng, 2) == 1,
        },
        1 => SsMsg::Pbft(arb_pbft(rng)),
        2 => SsMsg::Rcc {
            stream: arb_u64(rng, 4) as u32,
            msg: arb_pbft(rng),
        },
        3 => SsMsg::OrderReq {
            seq,
            digest,
            batch: arb_batch(rng),
        },
        4 => SsMsg::Propose {
            seq,
            phase,
            digest,
            batch: if arb_u64(rng, 2) == 0 {
                None
            } else {
                Some(arb_batch(rng))
            },
        },
        5 => SsMsg::Vote { seq, phase, digest },
        6 => SsMsg::Cert { seq, phase, digest },
        7 => SsMsg::Support { seq, digest },
        _ => SsMsg::Reply {
            client: ClientId(arb_u64(rng, 1 << 40)),
            digest,
            txn_ids: (0..arb_u64(rng, 6)).map(TxnId).collect(),
        },
    }
}

fn arb_any_msg(rng: &mut TestRng) -> AnyMsg {
    match arb_u64(rng, 3) {
        0 => AnyMsg::Ring(arb_ring(rng)),
        1 => AnyMsg::Sharded(arb_sharded(rng)),
        _ => AnyMsg::Ss(arb_ss(rng)),
    }
}

fn arb_node(rng: &mut TestRng) -> NodeId {
    if arb_u64(rng, 2) == 0 {
        NodeId::Replica(ReplicaId::new(
            ShardId(arb_u64(rng, 4) as u32),
            arb_u64(rng, 8) as u32,
        ))
    } else {
        NodeId::Client(ClientId(arb_u64(rng, 1 << 40)))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode(frame(msg)) → decode is the identity on arbitrary traffic.
    #[test]
    fn any_msg_round_trips(seed in 0u64..u64::MAX) {
        let mut rng = proptest::rng_for(&format!("codec-roundtrip-{seed}"));
        let auth = FrameAuth::from_seed(0);
        let env = Envelope {
            from: arb_node(&mut rng),
            to: arb_node(&mut rng),
            msg: arb_any_msg(&mut rng),
            trace: arb_trace(&mut rng),
        };
        let frame = encode_frame(&env, &auth).expect("encode");
        let decoded: Envelope<AnyMsg> =
            read_frame(&mut frame.as_slice(), &auth, env.to).expect("decode");
        prop_assert_eq!(&decoded, &env);

        // Re-encoding is deterministic (stable bytes for dedup/signing).
        let frame2 = encode_frame(&decoded, &auth).expect("re-encode");
        prop_assert_eq!(frame, frame2);
    }

    /// Recovery messages (state transfer) survive the codec verbatim.
    #[test]
    fn recovery_msgs_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = proptest::rng_for(&format!("codec-recovery-{seed}"));
        let auth = FrameAuth::from_seed(0);
        let env = Envelope {
            from: arb_node(&mut rng),
            to: arb_node(&mut rng),
            msg: AnyMsg::Ring(RingMsg::Recovery(arb_recovery(&mut rng))),
            trace: arb_trace(&mut rng),
        };
        let frame = encode_frame(&env, &auth).expect("encode");
        let decoded: Envelope<AnyMsg> =
            read_frame(&mut frame.as_slice(), &auth, env.to).expect("decode");
        prop_assert_eq!(&decoded, &env);
    }

    /// Codec v4: the delta state-transfer vocabulary — `StatePlan`
    /// chain headers (full and delta links, empty and multi-link
    /// chains) and link-framed `StateChunk`s with their delta flag —
    /// survives the codec verbatim.
    #[test]
    fn delta_transfer_msgs_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = proptest::rng_for(&format!("codec-delta-{seed}"));
        let auth = FrameAuth::from_seed(0);
        let msg = if arb_u64(&mut rng, 2) == 0 {
            RecoveryMsg::StatePlan {
                target_seq: arb_u64(&mut rng, 1 << 30),
                target_digest: arb_digest(&mut rng),
                links: (0..arb_u64(&mut rng, 9))
                    .map(|_| arb_plan_link(&mut rng))
                    .collect(),
                ledger_height: arb_u64(&mut rng, 1 << 30),
                ledger_head: arb_digest(&mut rng),
            }
        } else {
            RecoveryMsg::StateChunk {
                target_seq: arb_u64(&mut rng, 1 << 30),
                target_digest: arb_digest(&mut rng),
                link_seq: arb_u64(&mut rng, 1 << 30),
                delta: arb_u64(&mut rng, 2) == 0,
                chunk: arb_u64(&mut rng, 64) as u32,
                records: arb_records(&mut rng),
            }
        };
        let env = Envelope {
            from: arb_node(&mut rng),
            to: arb_node(&mut rng),
            msg: AnyMsg::Ring(RingMsg::Recovery(msg)),
            trace: arb_trace(&mut rng),
        };
        let frame = encode_frame(&env, &auth).expect("encode");
        let decoded: Envelope<AnyMsg> =
            read_frame(&mut frame.as_slice(), &auth, env.to).expect("decode");
        prop_assert_eq!(&decoded, &env);
    }

    /// Hole-fetch messages (commit-certificate recovery) survive the
    /// codec verbatim — certificate, signer set and batch payload.
    #[test]
    fn hole_msgs_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = proptest::rng_for(&format!("codec-hole-{seed}"));
        let auth = FrameAuth::from_seed(0);
        let msg = if arb_u64(&mut rng, 2) == 0 {
            RecoveryMsg::HoleRequest(HoleRequest {
                seq: SeqNum(arb_u64(&mut rng, 1 << 30)),
            })
        } else {
            RecoveryMsg::HoleReply(HoleReply {
                cert: CommitCertificate {
                    view: ViewNum(arb_u64(&mut rng, 16)),
                    seq: SeqNum(arb_u64(&mut rng, 1 << 30)),
                    digest: arb_digest(&mut rng),
                    signers: (0..arb_u64(&mut rng, 12) as u32).collect(),
                },
                batch: arb_batch(&mut rng),
            })
        };
        let env = Envelope {
            from: arb_node(&mut rng),
            to: arb_node(&mut rng),
            msg: AnyMsg::Ring(RingMsg::Recovery(msg)),
            trace: arb_trace(&mut rng),
        };
        let frame = encode_frame(&env, &auth).expect("encode");
        let decoded: Envelope<AnyMsg> =
            read_frame(&mut frame.as_slice(), &auth, env.to).expect("decode");
        prop_assert_eq!(&decoded, &env);
    }

    /// Codec v5: the envelope's optional trace context — absent,
    /// present at hop 0, and at the hop saturation point — survives
    /// the codec verbatim, independent of the body it rides on.
    #[test]
    fn trace_context_round_trips(seed in 0u64..u64::MAX, kind in 0u64..3) {
        let mut rng = proptest::rng_for(&format!("codec-trace-{seed}"));
        let auth = FrameAuth::from_seed(0);
        let trace = match kind {
            0 => None,
            1 => Some(TraceContext::new(ringbft_types::trace::trace_id_for(
                arb_u64(&mut rng, 1 << 40),
            ))),
            _ => Some(TraceContext {
                trace_id: 1 + arb_u64(&mut rng, u64::MAX - 1),
                hop: u32::MAX,
            }),
        };
        let env = Envelope {
            from: arb_node(&mut rng),
            to: arb_node(&mut rng),
            msg: arb_any_msg(&mut rng),
            trace,
        };
        let frame = encode_frame(&env, &auth).expect("encode");
        let decoded: Envelope<AnyMsg> =
            read_frame(&mut frame.as_slice(), &auth, env.to).expect("decode");
        prop_assert_eq!(decoded.trace, trace);
        // Saturating the hop counter must be a fixed point, so relay
        // loops cannot overflow it back to a plausible small value.
        if let Some(t) = decoded.trace {
            if t.hop == u32::MAX {
                prop_assert_eq!(t.next_hop().hop, u32::MAX);
            }
        }
    }

    /// Codec v6 serialize-once fan-out: one `encode_body` plus a
    /// per-destination `frame_prefix` yields byte-identical frames to
    /// the per-destination `encode_frame` path, for arbitrary traffic
    /// and arbitrary destination sets — so the zero-copy broadcast can
    /// never change what lands on the wire.
    #[test]
    fn shared_body_fanout_matches_unicast_frames(seed in 0u64..u64::MAX, fanout in 1u64..6) {
        let mut rng = proptest::rng_for(&format!("codec-fanout-{seed}"));
        let auth = FrameAuth::from_seed(0);
        let from = arb_node(&mut rng);
        let msg = arb_any_msg(&mut rng);
        let trace = arb_trace(&mut rng);
        let body = encode_body(from, &msg, &trace).expect("encode body");
        for _ in 0..fanout {
            let to = arb_node(&mut rng);
            let prefix = frame_prefix(from, to, &body, &auth);
            let mut shared = prefix.to_vec();
            shared.extend_from_slice(&body);
            let env = Envelope { from, to, msg: msg.clone(), trace };
            let unicast = encode_frame(&env, &auth).expect("encode frame");
            prop_assert_eq!(&shared, &unicast, "fan-out frame diverged for {:?}", to);
            let decoded: Envelope<AnyMsg> =
                read_frame(&mut shared.as_slice(), &auth, to).expect("decode");
            prop_assert_eq!(decoded, env);
        }
    }

    /// Codec v6 moved per-peer addressing out of the MAC'd body and
    /// into the authenticated header — so a frame captured for peer A
    /// and re-addressed to peer B (addr bytes spliced, everything else
    /// intact) must fail B's MAC check. Without this, a relay could
    /// redirect shared-body broadcast frames undetected.
    #[test]
    fn readdressed_frame_fails_mac(seed in 0u64..u64::MAX) {
        let mut rng = proptest::rng_for(&format!("codec-readdr-{seed}"));
        let auth = FrameAuth::from_seed(0);
        let from = arb_node(&mut rng);
        let to_a = arb_node(&mut rng);
        let to_b = arb_node(&mut rng);
        prop_assume!(to_a != to_b);
        let msg = arb_any_msg(&mut rng);
        let trace = arb_trace(&mut rng);
        let frame_a = encode_frame(&Envelope { from, to: to_a, msg: msg.clone(), trace }, &auth)
            .expect("encode A");
        let frame_b = encode_frame(&Envelope { from, to: to_b, msg, trace }, &auth)
            .expect("encode B");
        // Splice B's addressing into A's frame, keeping A's MAC and body.
        let mut forged = frame_a;
        forged[HEADER_BYTES..HEADER_BYTES + ADDR_BYTES]
            .copy_from_slice(&frame_b[HEADER_BYTES..HEADER_BYTES + ADDR_BYTES]);
        let r = read_frame::<AnyMsg, _>(&mut forged.as_slice(), &auth, to_b);
        prop_assert!(r.is_err(), "re-addressed frame accepted by {:?}", to_b);
    }

    /// Truncating a frame anywhere is detected, never mis-decoded.
    #[test]
    fn truncation_always_detected(seed in 0u64..u64::MAX, cut_frac in 0u64..1000) {
        let mut rng = proptest::rng_for(&format!("codec-trunc-{seed}"));
        let auth = FrameAuth::from_seed(0);
        let env = Envelope {
            from: arb_node(&mut rng),
            to: arb_node(&mut rng),
            msg: arb_any_msg(&mut rng),
            trace: arb_trace(&mut rng),
        };
        let frame = encode_frame(&env, &auth).expect("encode");
        let cut = (frame.len() as u64 * cut_frac / 1000) as usize;
        prop_assume!(cut < frame.len());
        let r = read_frame::<AnyMsg, _>(&mut frame[..cut].as_ref(), &auth, env.to);
        prop_assert!(r.is_err(), "truncated frame decoded at {} bytes", cut);
    }

    /// Flipping any single byte of a frame is detected: the header
    /// checks, the MAC, or the body decoder must reject it (frames are
    /// never silently mis-delivered).
    #[test]
    fn single_byte_corruption_never_accepted_silently(
        seed in 0u64..u64::MAX,
        pos_frac in 0u64..1000,
        bit in 0u32..8,
    ) {
        let mut rng = proptest::rng_for(&format!("codec-flip-{seed}"));
        let auth = FrameAuth::from_seed(0);
        let env = Envelope {
            from: arb_node(&mut rng),
            to: arb_node(&mut rng),
            msg: arb_any_msg(&mut rng),
            trace: arb_trace(&mut rng),
        };
        let mut frame = encode_frame(&env, &auth).expect("encode");
        let pos = (frame.len() as u64 * pos_frac / 1000) as usize;
        prop_assume!(pos < frame.len());
        frame[pos] ^= 1 << bit;
        match read_frame::<AnyMsg, _>(&mut frame.as_slice(), &auth, env.to) {
            Err(_) => {}
            Ok(decoded) => {
                // A flip inside a length prefix can re-frame the body;
                // but an *accepted* frame must only ever be the
                // original (the MAC covers the body bytes).
                prop_assert_eq!(decoded, env);
            }
        }
    }
}
