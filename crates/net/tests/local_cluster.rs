//! End-to-end integration over real sockets: a full RingBFT shard
//! topology on loopback TCP commits single-shard, simple cross-shard,
//! and complex cross-shard transactions to client completion.
//!
//! These tests exercise the acceptance path of the `ringbft-net`
//! runtime: the same sans-io state machines the simulator drives, now
//! with real kernels, real clocks (timers against the monotonic clock)
//! and real sockets (framed `AnyMsg` traffic through the loopback
//! stack).

use ringbft_core::RingMsg;
use ringbft_net::runtime::NodeRuntime;
use ringbft_net::LocalCluster;
use ringbft_pbft::PbftMsg;
use ringbft_sim::AnyMsg;
use ringbft_types::sansio::ProtocolNode;
use ringbft_types::txn::{Digest, RemoteRead, Transaction};
use ringbft_types::{
    Action, ClientId, Duration, Instant, NodeId, Outbox, ProtocolKind, ReplicaId, RingOrder,
    ShardId, SystemConfig, TimerKind, TxnId,
};
use std::collections::{HashMap, HashSet};
use std::net::TcpListener;
use std::sync::Arc;

/// A deterministic test client: injects a fixed list of transactions at
/// start, collects replies, and marks a transaction complete once f+1
/// distinct replicas confirmed its batch digest. A per-transaction
/// timer rebroadcasts to the whole target shard (the paper's A1
/// fallback) so a lost request cannot hang the test.
struct Injector {
    cfg: SystemConfig,
    ring: RingOrder,
    quorum: usize,
    pending: HashMap<TxnId, Arc<Transaction>>,
    votes: HashMap<Digest, HashSet<ReplicaId>>,
    digest_txns: HashMap<Digest, HashSet<TxnId>>,
    confirmed_digests: HashSet<Digest>,
    completed: HashSet<TxnId>,
}

impl Injector {
    fn new(cfg: SystemConfig, txns: Vec<Transaction>) -> Injector {
        let quorum = cfg.shards[0].f() + 1;
        let ring = cfg.ring_order();
        Injector {
            cfg,
            ring,
            quorum,
            pending: txns.into_iter().map(|t| (t.id, Arc::new(t))).collect(),
            votes: HashMap::new(),
            digest_txns: HashMap::new(),
            confirmed_digests: HashSet::new(),
            completed: HashSet::new(),
        }
    }

    fn target_shard(&self, txn: &Transaction) -> ShardId {
        self.ring.first(&txn.involved_shards())
    }

    fn send_txn(&self, txn: &Arc<Transaction>, broadcast: bool, out: &mut Outbox<AnyMsg>) {
        let shard = self.target_shard(txn);
        let msg = AnyMsg::Ring(RingMsg::Request {
            txn: Arc::clone(txn),
            relayed: false,
        });
        if broadcast {
            for r in self.cfg.shard(shard).replicas() {
                out.send(NodeId::Replica(r), msg.clone());
            }
        } else {
            out.send(NodeId::Replica(ReplicaId::new(shard, 0)), msg);
        }
    }
}

impl ProtocolNode<AnyMsg> for Injector {
    fn on_start(&mut self, _now: Instant) -> Vec<Action<AnyMsg>> {
        let mut out = Outbox::new();
        for txn in self.pending.values() {
            self.send_txn(txn, false, &mut out);
            out.set_timer(TimerKind::Client, txn.id.0, Duration::from_millis(1500));
        }
        out.take()
    }

    fn on_message(&mut self, _now: Instant, from: NodeId, msg: AnyMsg) -> Vec<Action<AnyMsg>> {
        let mut out = Outbox::new();
        let AnyMsg::Ring(RingMsg::Reply {
            digest, txn_ids, ..
        }) = msg
        else {
            return out.take();
        };
        let NodeId::Replica(sender) = from else {
            return out.take();
        };
        self.digest_txns.entry(digest).or_default().extend(txn_ids);
        let votes = self.votes.entry(digest).or_default();
        votes.insert(sender);
        if votes.len() >= self.quorum {
            self.confirmed_digests.insert(digest);
        }
        if self.confirmed_digests.contains(&digest) {
            for id in self.digest_txns.get(&digest).cloned().unwrap_or_default() {
                if self.pending.remove(&id).is_some() {
                    out.cancel_timer(TimerKind::Client, id.0);
                    self.completed.insert(id);
                }
            }
        }
        out.take()
    }

    fn on_timer(&mut self, _now: Instant, kind: TimerKind, token: u64) -> Vec<Action<AnyMsg>> {
        let mut out = Outbox::new();
        if kind != TimerKind::Client {
            return out.take();
        }
        if let Some(txn) = self.pending.get(&TxnId(token)).cloned() {
            // A1: rebroadcast to every replica of the target shard.
            self.send_txn(&txn, true, &mut out);
            out.set_timer(TimerKind::Client, token, Duration::from_millis(1500));
        }
        out.take()
    }
}

/// Short timers so any loss recovers within the test budget; ordering
/// local < remote < transmit per §5.
fn quick_cfg(z: usize, n: usize) -> SystemConfig {
    let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, z, n);
    cfg.num_keys = 1_000 * z as u64;
    cfg.batch_size = 1;
    cfg.timers.local = Duration::from_millis(800);
    cfg.timers.remote = Duration::from_millis(1600);
    cfg.timers.transmit = Duration::from_millis(2400);
    cfg.timers.client = Duration::from_millis(3200);
    cfg
}

fn key_in(cfg: &SystemConfig, shard: u32, offset: u64) -> u64 {
    cfg.key_range(ShardId(shard)).start + offset
}

const DEADLINE: std::time::Duration = std::time::Duration::from_secs(60);

/// Acceptance test: 2 shards × 4 replicas over loopback TCP commit a
/// single-shard transaction, a simple cst and a complex cst end-to-end.
#[test]
fn two_shards_commit_all_transaction_classes_over_tcp() {
    let cfg = quick_cfg(2, 4);
    let mk_complex = |id: u64| {
        let mut t = Transaction::new(
            TxnId(id),
            ClientId(id),
            ringbft_store::rmw_ops(&[
                (ShardId(0), key_in(&cfg, 0, 30)),
                (ShardId(1), key_in(&cfg, 1, 30)),
            ]),
        );
        t.remote_reads.push(RemoteRead {
            reader: ShardId(0),
            owner: ShardId(1),
            key: key_in(&cfg, 1, 77),
        });
        t
    };
    let txns = vec![
        // Single-shard on shard 0.
        Transaction::new(
            TxnId(1),
            ClientId(1),
            ringbft_store::rmw_ops(&[(ShardId(0), key_in(&cfg, 0, 10))]),
        ),
        // Simple cst over both shards.
        Transaction::new(
            TxnId(2),
            ClientId(2),
            ringbft_store::rmw_ops(&[
                (ShardId(0), key_in(&cfg, 0, 20)),
                (ShardId(1), key_in(&cfg, 1, 20)),
            ]),
        ),
        // Complex cst: shard 0's fragment reads a shard-1 key.
        mk_complex(3),
    ];
    let txn_ids: Vec<TxnId> = txns.iter().map(|t| t.id).collect();

    let cluster = LocalCluster::launch(cfg.clone()).expect("launch cluster");

    // Host the injector on its own runtime, sharing the cluster's peer
    // table and clock; replies to its client ids route back to it.
    let host = NodeId::Client(ClientId(1));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind injector");
    cluster
        .peers()
        .insert(host, listener.local_addr().expect("addr"));
    for c in 2..=3u64 {
        cluster.peers().add_alias(NodeId::Client(ClientId(c)), host);
    }
    let injector = NodeRuntime::launch(
        host,
        Injector::new(cfg.clone(), txns),
        listener,
        cluster.peers().clone(),
        cluster.clock().clone(),
        cluster.auth().clone(),
    )
    .expect("launch injector");

    // All three transactions reach f+1 confirmations.
    let deadline = std::time::Instant::now() + DEADLINE;
    loop {
        let done = injector.with_node(|i| i.completed.len());
        if done == txn_ids.len() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "only {done}/{} transactions confirmed before the deadline",
            txn_ids.len()
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    injector.with_node(|i| {
        for id in &txn_ids {
            assert!(i.completed.contains(id), "{id} unconfirmed");
        }
    });

    // Both shards executed the cross-shard work.
    let executed_shards: HashSet<ShardId> = cluster
        .replica_runtimes()
        .filter(|rt| !rt.exec_log().is_empty())
        .filter_map(|rt| rt.id().as_replica().map(|r| r.shard))
        .collect();
    assert!(
        executed_shards.contains(&ShardId(0)) && executed_shards.contains(&ShardId(1)),
        "both shards must execute, saw {executed_shards:?}"
    );

    // Real frames crossed the loopback network, and the codec's actual
    // sizes track the paper's wire model within the same order of
    // magnitude.
    let mut total_sent = 0u64;
    for rt in cluster.replica_runtimes() {
        let s = rt.stats();
        total_sent += s.messages_sent;
        if s.messages_sent > 0 {
            assert!(s.bytes_sent > 0);
            assert!(s.modeled_bytes_sent > 0);
        }
    }
    assert!(total_sent > 0, "replicas exchanged no network traffic");

    // Serialize-once fan-out: every replica broadcast (Preprepare,
    // Commit, Forward, Execute) encoded its payload exactly once and
    // shared the bytes across destinations. In a 2×4 topology a
    // fan-out reaches 3 remote peers (the rest of the shard) or 4 (the
    // whole next shard), so the per-destination encodes the shared
    // body saved must land in [2, 3] per broadcast — anything below
    // means the egress path went back to encoding per peer.
    let (broadcasts, encodes_saved) =
        cluster.replica_runtimes().fold((0u64, 0u64), |(b, e), rt| {
            let s = rt.stats();
            (b + s.broadcasts, e + s.encodes_saved)
        });
    assert!(broadcasts > 0, "no broadcast fan-outs recorded");
    assert!(
        encodes_saved >= 2 * broadcasts && encodes_saved <= 3 * broadcasts,
        "{encodes_saved} encodes saved over {broadcasts} broadcasts: \
         per-destination re-encoding suspected"
    );

    // Replicas of each shard converge to identical stores once traffic
    // quiesces (laggards may apply the last Execute slightly later).
    let converged = cluster.wait_until(DEADLINE, |c| {
        (0..2u32).all(|s| {
            let prints: Vec<u64> = (0..4u32)
                .map(|i| {
                    c.with_replica(ReplicaId::new(ShardId(s), i), |n| match n {
                        ringbft_sim::AnyNode::Ring(r) => r.store().state_fingerprint(),
                        _ => panic!("ring replica expected"),
                    })
                })
                .collect();
            prints.windows(2).all(|w| w[0] == w[1])
        })
    });
    assert!(converged, "shard state diverged across replicas");

    assert!(
        injector.shutdown().is_some(),
        "injector shutdown was not clean"
    );
    assert!(cluster.shutdown(), "cluster shutdown was not clean");
}

/// Drives a fixed transaction list to f+1-confirmed completion through
/// a dedicated injector runtime, then tears the injector down.
fn run_phase(cluster: &LocalCluster, cfg: &SystemConfig, txns: Vec<Transaction>) {
    let client_ids: Vec<u64> = txns.iter().map(|t| t.client.0).collect();
    let host = NodeId::Client(ClientId(client_ids[0]));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind injector");
    cluster
        .peers()
        .insert(host, listener.local_addr().expect("addr"));
    for c in &client_ids[1..] {
        cluster
            .peers()
            .add_alias(NodeId::Client(ClientId(*c)), host);
    }
    let count = txns.len();
    let injector = NodeRuntime::launch(
        host,
        Injector::new(cfg.clone(), txns),
        listener,
        cluster.peers().clone(),
        cluster.clock().clone(),
        cluster.auth().clone(),
    )
    .expect("launch injector");
    let deadline = std::time::Instant::now() + DEADLINE;
    loop {
        if injector.with_node(|i| i.completed.len()) == count {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "phase stalled before completing {count} txns"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(
        injector.shutdown().is_some(),
        "injector shutdown was not clean"
    );
}

/// Acceptance test (ISSUE 2, extended by ISSUE 4): a 3-shard ×
/// 4-replica TCP cluster kills one replica, restarts it with empty
/// state, and the replica catches up via checkpoint state transfer and
/// participates in committing new cross-shard transactions; ledger
/// memory is truncated to the last stable checkpoint. Under delta
/// checkpointing (`full_snapshot_every` = 2 here) this doubles as the
/// full-snapshot fallback twin of the sim test: the blank requester
/// advertises no base digest, no donor can recognize one, and the
/// catch-up must arrive as a chain with a full snapshot link — never a
/// dangling delta chain.
#[test]
fn replica_blank_restart_catches_up_via_state_transfer_over_tcp() {
    let mut cfg = quick_cfg(3, 4);
    cfg.checkpoint_interval = 4;
    cfg.full_snapshot_every = 2;
    let victim = ReplicaId::new(ShardId(1), 2); // a backup, not a primary
    let cst = |id: u64, offset: u64| {
        Transaction::new(
            TxnId(id),
            ClientId(id),
            ringbft_store::rmw_ops(&[
                (ShardId(0), key_in(&cfg, 0, offset)),
                (ShardId(1), key_in(&cfg, 1, offset)),
                (ShardId(2), key_in(&cfg, 2, offset)),
            ]),
        )
    };
    let mut cluster = LocalCluster::launch(cfg.clone()).expect("launch cluster");

    // Phase 1: cross a checkpoint boundary with everyone alive.
    run_phase(&cluster, &cfg, (1..=6).map(|i| cst(i, 100 + i)).collect());

    // Phase 2: kill the victim; the shard keeps committing at quorum 3/4.
    cluster.kill_replica(victim);
    run_phase(&cluster, &cfg, (11..=16).map(|i| cst(i, 200 + i)).collect());

    // Phase 3: restart blank. New traffic pushes fresh checkpoints; the
    // revived replica learns a quorum-stable digest it is behind,
    // fetches the snapshot from a same-shard peer, installs it, and
    // replays the committed tail.
    cluster
        .restart_replica_blank(victim)
        .expect("restart victim");
    run_phase(&cluster, &cfg, (21..=30).map(|i| cst(i, 300 + i)).collect());

    // The revived replica installed a verified snapshot...
    let caught_up = cluster.wait_until(DEADLINE, |c| {
        c.with_replica(victim, |n| match n {
            ringbft_sim::AnyNode::Ring(r) => {
                r.recovery_stats().installs >= 1 && r.exec_watermark() > 0
            }
            _ => panic!("ring replica expected"),
        })
    });
    assert!(caught_up, "victim never installed a snapshot");
    cluster.with_replica(victim, |n| match n {
        ringbft_sim::AnyNode::Ring(r) => {
            let stats = r.recovery_stats();
            assert_eq!(stats.bad_digests, 0);
            // Full-snapshot fallback: a blank requester has no base any
            // donor recognizes, so its first install must ship a full
            // snapshot link (later top-ups may be delta chains).
            assert!(
                stats.full_installs >= 1,
                "blank restart did not receive a full snapshot: {stats:?}"
            );
        }
        _ => panic!("ring replica expected"),
    });

    // ...participates in committing new cross-shard transactions (its
    // own execution log advances past the snapshot it installed)...
    let participates = cluster.wait_until(DEADLINE, |c| {
        c.with_replica(victim, |n| match n {
            ringbft_sim::AnyNode::Ring(r) => {
                r.stats().executed_batches > 0 && r.exec_watermark() >= r.last_stable_seq()
            }
            _ => panic!("ring replica expected"),
        })
    });
    assert!(participates, "victim installed but never executed");

    // ...and converges to the same store as its shard peers once the
    // traffic quiesces.
    let converged = cluster.wait_until(DEADLINE, |c| {
        let prints: Vec<u64> = (0..4u32)
            .map(|i| {
                c.with_replica(ReplicaId::new(ShardId(1), i), |n| match n {
                    ringbft_sim::AnyNode::Ring(r) => r.store().state_fingerprint(),
                    _ => panic!("ring replica expected"),
                })
            })
            .collect();
        prints.windows(2).all(|w| w[0] == w[1])
    });
    assert!(converged, "revived replica's store diverged from its shard");

    // Ledger/log memory is truncated to the last stable checkpoint on
    // long-lived replicas.
    cluster.with_replica(ReplicaId::new(ShardId(0), 0), |n| match n {
        ringbft_sim::AnyNode::Ring(r) => {
            assert!(
                r.ledger().retained_blocks() < r.ledger().height(),
                "ledger never truncated ({} retained, height {})",
                r.ledger().retained_blocks(),
                r.ledger().height()
            );
            r.ledger().verify().expect("pruned chain verifies");
            assert!(r.last_stable_seq() > 0, "no stable checkpoint reached");
        }
        _ => panic!("ring replica expected"),
    });

    assert!(cluster.shutdown(), "cluster shutdown was not clean");
}

/// Acceptance test (ISSUE 3): one replica of a real-socket cluster is
/// made to miss the entire quorum traffic for a single sequence (every
/// Preprepare/Prepare/Commit for that sequence is suppressed at its
/// inbound boundary). The shard commits past it, the replica's
/// sequence-ordered admission wedges on the hole — and the hole-fetch
/// subsystem repairs it over TCP with a commit certificate from a
/// same-shard peer, with no checkpoint state transfer involved.
#[test]
fn commit_hole_repaired_via_certificate_fetch_over_tcp() {
    let mut cfg = quick_cfg(2, 4);
    // A checkpoint window far wider than the traffic in this test: the
    // only repair path available is certificate fetch.
    cfg.checkpoint_interval = 512;
    let victim = ReplicaId::new(ShardId(0), 2); // a backup, not a primary
    let hole_seq = 3u64;
    let cluster = LocalCluster::launch(cfg.clone()).expect("launch cluster");
    cluster.set_inbound_filter(victim, move |_from, msg| {
        let AnyMsg::Ring(RingMsg::Pbft(p)) = msg else {
            return false;
        };
        matches!(
            p,
            PbftMsg::Preprepare { seq, .. }
            | PbftMsg::Prepare { seq, .. }
            | PbftMsg::Commit { seq, .. } if seq.0 == hole_seq
        )
    });

    // Single-shard traffic on shard 0 drives the sequence numbers past
    // the hole (the healthy 3/4 quorum confirms every transaction).
    let txns: Vec<Transaction> = (1..=8u64)
        .map(|i| {
            Transaction::new(
                TxnId(i),
                ClientId(i),
                ringbft_store::rmw_ops(&[(ShardId(0), key_in(&cfg, 0, 400 + i))]),
            )
        })
        .collect();
    run_phase(&cluster, &cfg, txns);

    // The fault injection actually engaged…
    let filtered = cluster
        .replica_runtimes()
        .find(|rt| rt.id() == NodeId::Replica(victim))
        .expect("victim runtime")
        .stats()
        .messages_filtered;
    assert!(filtered > 0, "no frames were suppressed at the victim");

    // …the victim repaired the hole with a fetched certificate and
    // resumed execution through it…
    let repaired = cluster.wait_until(DEADLINE, |c| {
        c.with_replica(victim, |n| match n {
            ringbft_sim::AnyNode::Ring(r) => {
                r.hole_stats().holes_filled >= 1 && r.exec_watermark() >= hole_seq
            }
            _ => panic!("ring replica expected"),
        })
    });
    assert!(repaired, "victim never repaired the hole via fetch");
    cluster.with_replica(victim, |n| match n {
        ringbft_sim::AnyNode::Ring(r) => {
            assert_eq!(r.hole_stats().bad_replies, 0, "a donor reply failed");
            assert_eq!(
                r.recovery_stats().installs,
                0,
                "fell back to snapshot transfer for a single lost sequence"
            );
        }
        _ => panic!("ring replica expected"),
    });

    // …and converges to the same store as its shard peers.
    let converged = cluster.wait_until(DEADLINE, |c| {
        let prints: Vec<u64> = (0..4u32)
            .map(|i| {
                c.with_replica(ReplicaId::new(ShardId(0), i), |n| match n {
                    ringbft_sim::AnyNode::Ring(r) => r.store().state_fingerprint(),
                    _ => panic!("ring replica expected"),
                })
            })
            .collect();
        prints.windows(2).all(|w| w[0] == w[1])
    });
    assert!(converged, "victim's store diverged after hole repair");

    assert!(cluster.shutdown(), "cluster shutdown was not clean");
}

/// Acceptance test (pipeline): a cluster launched with
/// `pipeline_workers = 2` completes a closed-loop workload with frame
/// verification running on the worker pool and the execution stage
/// re-homed onto the same pool — and replicas of the shard still
/// converge to identical stores (the offload must not reorder
/// anything).
#[test]
fn pipelined_cluster_offloads_verification_and_execution() {
    let mut cfg = quick_cfg(1, 4);
    cfg.clients = 16;
    cfg.cross_shard_rate = 0.0;
    cfg.involved_shards = 1;
    cfg.batch_size = 2;
    cfg.pipeline_workers = 2;
    let mut cluster = LocalCluster::launch(cfg).expect("launch cluster");

    // Both stages landed on the shared pool: the runtime reports the
    // verify pool and the hosted replica reports a 2-worker exec stage.
    for rt in cluster.replica_runtimes() {
        assert_eq!(rt.pipeline_workers(), 2);
        rt.with_node(|n| match n {
            ringbft_sim::AnyNode::Ring(r) => assert_eq!(r.pipeline_workers(), 2),
            _ => panic!("ring replica expected"),
        });
    }

    cluster
        .spawn_workload_host(7, 2_000_000, 16)
        .expect("spawn workload");
    let target = 60usize;
    let ok = cluster.wait_until(DEADLINE, |c| c.total_completions() >= target);
    let total = cluster.total_completions();
    assert!(
        ok,
        "pipelined workload stalled: {total}/{target} completions before the deadline"
    );

    // Data frames actually took the offload path, and the transport
    // metrics expose the pipeline instruments.
    for rt in cluster.replica_runtimes() {
        let (offloaded, _inline) = rt.verify_stats();
        assert!(offloaded > 0, "{}: no frames were offloaded", rt.id());
        let metrics = rt.metrics_json();
        assert!(
            metrics.contains("\"pipeline.verify_offloaded\"")
                && metrics.contains("\"pipeline.workers\":2"),
            "{}: pipeline instruments missing from {metrics}",
            rt.id()
        );
    }

    // The parallel execution stage must not break replica agreement.
    let converged = cluster.wait_until(DEADLINE, |c| {
        let prints: Vec<u64> = (0..4u32)
            .map(|i| {
                c.with_replica(ReplicaId::new(ShardId(0), i), |n| match n {
                    ringbft_sim::AnyNode::Ring(r) => r.store().state_fingerprint(),
                    _ => panic!("ring replica expected"),
                })
            })
            .collect();
        prints.windows(2).all(|w| w[0] == w[1])
    });
    assert!(converged, "stores diverged under the threaded pipeline");

    assert!(cluster.shutdown(), "cluster shutdown was not clean");
}

/// Closed-loop workload over 3 shards: the simulator's own `SimClient`
/// drives sustained traffic through real sockets and completes
/// transactions continuously.
#[test]
fn closed_loop_workload_sustains_throughput_over_tcp() {
    let mut cfg = quick_cfg(3, 4);
    cfg.clients = 24;
    cfg.cross_shard_rate = 0.3;
    let mut cluster = LocalCluster::launch(cfg).expect("launch cluster");
    cluster
        .spawn_workload_host(42, 1_000_000, 24)
        .expect("spawn workload");

    let target = 60usize;
    let ok = cluster.wait_until(DEADLINE, |c| c.total_completions() >= target);
    let total = cluster.total_completions();
    assert!(
        ok,
        "workload stalled: {total}/{target} completions before the deadline"
    );

    // The ring forwarded cross-shard batches: some replica of shard 1
    // or 2 executed (cross-shard traffic visits shards in ring order).
    let executed_shards: HashSet<ShardId> = cluster
        .replica_runtimes()
        .filter(|rt| !rt.exec_log().is_empty())
        .filter_map(|rt| rt.id().as_replica().map(|r| r.shard))
        .collect();
    assert!(
        executed_shards.len() >= 2,
        "expected cross-shard execution, saw {executed_shards:?}"
    );
    assert!(cluster.shutdown(), "cluster shutdown was not clean");
}

/// Acceptance test (ISSUE 9): kill -9 with a durable write-ahead
/// ledger. A 3-shard × 4-replica TCP cluster runs with per-replica
/// file-backed WALs (`LocalCluster::launch_durable`, the in-process
/// twin of `ringbft-node --data-dir`); one replica is killed mid-run —
/// node state dropped, the on-disk log left exactly as the appends
/// landed, no clean-close record — and restarted from its log. The
/// replay must restore a durable stable checkpoint locally, the wire
/// top-up must stay under 25 % of the full-snapshot baseline a blank
/// restart would have moved, and the revived replica must reconverge
/// with its shard.
#[test]
fn replica_durable_restart_replays_wal_over_tcp() {
    let mut cfg = quick_cfg(3, 4);
    cfg.checkpoint_interval = 4;
    let victim = ReplicaId::new(ShardId(1), 2); // a backup, not a primary
    let cst = |id: u64, offset: u64| {
        Transaction::new(
            TxnId(id),
            ClientId(id),
            ringbft_store::rmw_ops(&[
                (ShardId(0), key_in(&cfg, 0, offset)),
                (ShardId(1), key_in(&cfg, 1, offset)),
                (ShardId(2), key_in(&cfg, 2, offset)),
            ]),
        )
    };
    let dir = std::env::temp_dir().join(format!("ringbft-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cluster = LocalCluster::launch_durable(cfg.clone(), &dir).expect("launch cluster");

    // Phase 1: cross checkpoint boundaries with everyone alive, so the
    // victim's log holds at least one durable stable checkpoint. Each
    // seed transaction touches a 40-key stripe per shard: the store the
    // durable checkpoint covers grows wide — the state a blank restart
    // would have to move over the wire and the local replay keeps off
    // it — without flooding consensus with hundreds of concurrent
    // transactions.
    let wide = |id: u64, base: u64| {
        let mut pairs = Vec::new();
        for s in 0..3u32 {
            for k in 0..40 {
                pairs.push((ShardId(s), key_in(&cfg, s, base + k)));
            }
        }
        Transaction::new(TxnId(id), ClientId(id), ringbft_store::rmw_ops(&pairs))
    };
    run_phase(
        &cluster,
        &cfg,
        (1..=8).map(|i| wide(i, 400 + (i - 1) * 40)).collect(),
    );
    run_phase(
        &cluster,
        &cfg,
        (101..=106).map(|i| cst(i, 100 + i)).collect(),
    );
    let stable_before_kill = cluster.wait_until(DEADLINE, |c| {
        c.with_replica(victim, |n| match n {
            ringbft_sim::AnyNode::Ring(r) => r.last_stable_seq() >= cfg.checkpoint_interval,
            _ => panic!("ring replica expected"),
        })
    });
    assert!(stable_before_kill, "no stable checkpoint before the kill");

    // Phase 2: kill -9 — the node state is dropped, the log is not
    // closed. The shard keeps committing at quorum 3/4.
    cluster.kill_replica(victim);
    run_phase(
        &cluster,
        &cfg,
        (111..=116).map(|i| cst(i, 200 + i)).collect(),
    );

    // Phase 3: restart from the on-disk log.
    let restart = cluster
        .restart_replica_durable(victim)
        .expect("durable restart");
    assert!(
        restart.recovered_seq >= cfg.checkpoint_interval,
        "replay restored no durable checkpoint: {restart:?}"
    );
    assert!(
        restart.bytes_replayed > 0,
        "nothing replayed from the log: {restart:?}"
    );
    assert!(
        !restart.clean_close,
        "a killed process must not leave a clean-close record: {restart:?}"
    );
    run_phase(
        &cluster,
        &cfg,
        (121..=130).map(|i| cst(i, 300 + i)).collect(),
    );

    // The revived replica rejoined and executed past its replayed
    // checkpoint.
    let caught_up = cluster.wait_until(DEADLINE, |c| {
        c.with_replica(victim, |n| match n {
            ringbft_sim::AnyNode::Ring(r) => r.exec_watermark() > restart.recovered_seq,
            _ => panic!("ring replica expected"),
        })
    });
    assert!(caught_up, "victim never executed past its replayed state");

    // The wire top-up stayed under 25 % of the blank-restart baseline
    // (a full-snapshot transfer of the victim's store), and nothing
    // unverified was ever accepted.
    cluster.with_replica(victim, |n| match n {
        ringbft_sim::AnyNode::Ring(r) => {
            let stats = r.recovery_stats();
            assert_eq!(stats.bad_digests, 0, "a verified chain failed: {stats:?}");
            let per = cfg.state_chunk_records.max(1);
            let mut baseline = ringbft_types::wire::state_plan_bytes(1);
            let mut left = r.store().len();
            while left > 0 {
                let take = left.min(per);
                baseline += ringbft_types::wire::state_chunk_bytes(take);
                left -= take;
            }
            let transferred = stats.bytes_delta + stats.bytes_full;
            assert!(
                4 * transferred < baseline,
                "durable restart transferred {transferred} bytes, \
                 ≥ 25% of the {baseline}-byte blank baseline: {stats:?}"
            );
        }
        _ => panic!("ring replica expected"),
    });

    // The shard's stores reconverge once the traffic quiesces — the
    // replayed state matches what the quorum agreed on.
    let converged = cluster.wait_until(DEADLINE, |c| {
        let prints: Vec<u64> = (0..4u32)
            .map(|i| {
                c.with_replica(ReplicaId::new(ShardId(1), i), |n| match n {
                    ringbft_sim::AnyNode::Ring(r) => r.store().state_fingerprint(),
                    _ => panic!("ring replica expected"),
                })
            })
            .collect();
        prints.windows(2).all(|w| w[0] == w[1])
    });
    assert!(converged, "revived replica's store diverged from its shard");

    // Clean shutdown closes every log: the victim's WAL replays with a
    // clean-close record and no torn tail.
    assert!(cluster.shutdown(), "cluster shutdown was not clean");
    let (_, recovered) =
        ringbft_recovery::ReplicaWal::open_file(dir.join(format!("{victim}.wal")), cfg.durability)
            .expect("reopen victim wal");
    assert!(
        recovered.clean_close,
        "clean shutdown did not close the log"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
