//! The intra-shard PBFT engine (§4.1, Fig 5 lines 10–14, §5 recovery).
//!
//! RingBFT is a *meta* protocol: it "can employ any single-primary
//! protocol within each shard". This crate provides the default engine —
//! PBFT with the paper's `nf`-quorum phrasing — as a sans-io state
//! machine ([`PbftCore`]) that outer protocols (RingBFT, AHL, SharPer)
//! embed and drive. Batches commit possibly out of order; sequence-order
//! effects are restored by the lock manager in `ringbft-store`.

pub mod messages;
pub mod replica;
pub mod testing;

pub use messages::{batch_digest, verify_hole_reply, CertError, PbftMsg, PreparedProof};
pub use replica::{PbftConfig, PbftCore, PbftEvent, VIEW_CHANGE_TOKEN};

#[cfg(test)]
mod tests {
    use crate::messages::{batch_digest, PbftMsg};
    use crate::replica::{PbftEvent, VIEW_CHANGE_TOKEN};
    use crate::testing::{test_batch, TestCluster};
    use ringbft_types::{Instant, Outbox, ReplicaId, SeqNum, ShardId, TimerKind, ViewNum};

    const S: ShardId = ShardId(0);

    #[test]
    fn four_replicas_commit_a_batch() {
        let mut c = TestCluster::new(S, 4);
        let b = test_batch(S, 1, 10);
        c.propose(0, b.clone());
        c.deliver_all();
        for i in 0..4 {
            assert_eq!(c.committed_seqs(i), vec![1], "replica {i}");
        }
        // Commit events carry the digest and the certificate.
        let (_, e) = c
            .events
            .iter()
            .find(|(i, e)| *i == 1 && matches!(e, PbftEvent::Committed { .. }))
            .unwrap();
        if let PbftEvent::Committed {
            digest,
            committers,
            batch,
            ..
        } = e
        {
            assert_eq!(*digest, batch_digest(&b));
            assert!(committers.len() >= 3, "nf = 3 for n = 4");
            assert_eq!(batch.len(), 10);
        }
    }

    #[test]
    fn sequential_proposals_commit_in_order_per_replica() {
        let mut c = TestCluster::new(S, 4);
        for k in 1..=5 {
            c.propose(0, test_batch(S, k, 2));
        }
        c.deliver_all();
        for i in 0..4 {
            assert_eq!(c.committed_seqs(i), vec![1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn non_primary_cannot_propose() {
        let mut c = TestCluster::new(S, 4);
        c.propose(2, test_batch(S, 1, 1));
        c.deliver_all();
        for i in 0..4 {
            assert!(c.committed_seqs(i).is_empty());
        }
    }

    #[test]
    fn larger_shard_commits() {
        let mut c = TestCluster::new(S, 10); // f = 3, nf = 7
        c.propose(0, test_batch(S, 1, 1));
        c.deliver_all();
        for i in 0..10 {
            assert_eq!(c.committed_seqs(i), vec![1]);
        }
    }

    #[test]
    fn commit_survives_f_silent_replicas() {
        let mut c = TestCluster::new(S, 4);
        // Replica 3 is Byzantine-silent: drop everything addressed to it.
        c.drop_filter = Some(Box::new(|_, to, _| to.index == 3));
        c.propose(0, test_batch(S, 1, 1));
        c.deliver_all();
        for i in 0..3 {
            assert_eq!(c.committed_seqs(i), vec![1], "replica {i}");
        }
        assert!(c.committed_seqs(3).is_empty());
    }

    #[test]
    fn no_commit_without_quorum() {
        let mut c = TestCluster::new(S, 4);
        // Two silent replicas exceed f = 1: no quorum possible.
        c.drop_filter = Some(Box::new(|_, to, _| to.index >= 2));
        c.propose(0, test_batch(S, 1, 1));
        c.deliver_all();
        for i in 0..4 {
            assert!(c.committed_seqs(i).is_empty(), "replica {i}");
        }
    }

    #[test]
    fn unsupported_view_change_is_abandoned() {
        // Only replica 3's watchdog fires (the others are content): its
        // solo view-change demand can never reach the nf quorum. On the
        // escalation timer, with no peer having seconded any view
        // change, it abandons and resumes view 0 instead of wedging in
        // a view nobody joins.
        let mut c = TestCluster::new(S, 4);
        c.propose(0, test_batch(S, 3, 1));
        // Replica 3 sees the proposal but none of the Commit votes.
        c.drop_filter = Some(Box::new(|_, to, m| {
            to.index == 3 && matches!(m, PbftMsg::Commit { .. })
        }));
        c.deliver_all();
        c.drop_filter = None;
        assert!(c.committed_seqs(3).is_empty());
        assert!(c.fire_timer(3, TimerKind::Local, 1), "watchdog armed");
        c.deliver_all();
        assert!(c.cores[3].in_view_change(), "replica 3 demands view 1");
        // Peers stayed in view 0 (one demand < f+1); the escalation
        // timer expires without any support having been seen.
        assert!(c.fire_timer(3, TimerKind::Local, VIEW_CHANGE_TOKEN));
        c.deliver_all();
        assert!(!c.cores[3].in_view_change(), "view change abandoned");
        assert_eq!(c.cores[3].view().0, 0, "resumed the live view");
        for i in 0..3 {
            assert_eq!(c.cores[i].view().0, 0, "peers undisturbed");
        }
    }

    #[test]
    fn view_change_replaces_failed_primary() {
        let mut c = TestCluster::new(S, 4);
        // Everyone sees the proposal, but every Commit vanishes — the
        // request can prepare yet never commit (A2: faulty primary and/or
        // unreliable network).
        c.drop_filter = Some(Box::new(|_, _, m| matches!(m, PbftMsg::Commit { .. })));
        c.propose(0, test_batch(S, 3, 1));
        c.deliver_all();
        for i in 0..4 {
            assert!(c.committed_seqs(i).is_empty());
        }
        c.drop_filter = None;
        // Every replica's per-request local timer expires.
        let armed: Vec<(u32, u64)> = c
            .timers
            .iter()
            .filter(|(_, k, t)| *k == TimerKind::Local && *t != VIEW_CHANGE_TOKEN)
            .map(|(i, _, t)| (*i, *t))
            .collect();
        assert!(!armed.is_empty());
        for (i, t) in armed {
            c.fire_timer(i, TimerKind::Local, t);
        }
        c.deliver_all();
        // All replicas entered view 1; new primary is replica 1; the
        // prepared request survived the view change and committed.
        for i in 0..4 {
            assert_eq!(c.views_entered(i), vec![1], "replica {i}");
            assert_eq!(c.cores[i as usize].view().0, 1);
            assert_eq!(c.cores[i as usize].primary_index(), 1);
            assert_eq!(c.committed_seqs(i).len(), 1, "replica {i}");
        }
    }

    #[test]
    fn new_primary_continues_sequencing() {
        let mut c = TestCluster::new(S, 4);
        c.propose(0, test_batch(S, 1, 1));
        c.deliver_all();
        // Force a view change with no pending work: fire a timer on a
        // fake uncommitted sequence.
        for i in 0..4 {
            c.timers.insert((i, TimerKind::Local, 99));
            c.fire_timer(i, TimerKind::Local, 99);
        }
        c.deliver_all();
        for i in 0..4 {
            assert_eq!(c.cores[i as usize].view().0, 1);
        }
        // New primary (replica 1) proposes; its sequence must not collide
        // with the committed seq 1.
        c.propose(1, test_batch(S, 2, 1));
        c.deliver_all();
        for i in 0..4 {
            let seqs = c.committed_seqs(i);
            assert_eq!(seqs.len(), 2, "replica {i}");
            assert!(seqs[1] > 1, "new primary reused sequence {}", seqs[1]);
        }
    }

    #[test]
    fn equivocating_primary_cannot_split_commits() {
        // Prop 6.1: no two replicas commit different digests at one seq.
        let mut c = TestCluster::new(S, 4);
        let b1 = test_batch(S, 1, 1);
        let b2 = test_batch(S, 2, 1);
        let d1 = batch_digest(&b1);
        let d2 = batch_digest(&b2);
        // Byzantine primary: replica 3 receives a conflicting proposal at
        // (v0, k1) *before* the honest one.
        let mut out = Outbox::new();
        let mut ev = Vec::new();
        c.cores[3].on_message(
            Instant::ZERO,
            ReplicaId::new(S, 0),
            PbftMsg::Preprepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d2,
                batch: b2,
            },
            &mut out,
            &mut ev,
        );
        // Honest proposal flows to everyone (replica 3 must reject it,
        // having accepted a different k=1 proposal).
        c.propose(0, b1);
        c.deliver_all();
        let mut digests = std::collections::HashSet::new();
        for (_, e) in &c.events {
            if let PbftEvent::Committed { seq, digest, .. } = e {
                if seq.0 == 1 {
                    digests.insert(*digest);
                }
            }
        }
        assert!(digests.len() <= 1, "equivocation split commits");
        if let Some(d) = digests.iter().next() {
            assert_eq!(*d, d1, "honest quorum digest wins");
        }
    }

    #[test]
    fn checkpoint_garbage_collects() {
        let mut c = TestCluster::new(S, 4); // checkpoint_interval = 10
        for k in 1..=10 {
            c.propose(0, test_batch(S, k, 1));
        }
        c.deliver_all();
        for i in 0..4 {
            assert_eq!(c.cores[i as usize].last_stable().0, 10, "replica {i}");
            assert!(c.events.iter().any(|(j, e)| *j == i
                && matches!(e, PbftEvent::StableCheckpoint { seq, .. } if seq.0 == 10)));
        }
        // One extra checkpoint window stays servable for hole fetch…
        assert!(c.cores[0].committed_digest(SeqNum(5)).is_some());
        assert!(c.cores[0].commit_certificate(SeqNum(5)).is_some());
        // …and is pruned once the *next* checkpoint stabilizes.
        for k in 11..=20 {
            c.propose(0, test_batch(S, k, 1));
        }
        c.deliver_all();
        assert_eq!(c.cores[0].last_stable().0, 20);
        assert!(c.cores[0].committed_digest(SeqNum(5)).is_none());
        assert!(c.cores[0].commit_certificate(SeqNum(5)).is_none());
        assert!(c.cores[0].commit_certificate(SeqNum(15)).is_some());
    }

    #[test]
    fn committed_digest_accessor() {
        let mut c = TestCluster::new(S, 4);
        let b = test_batch(S, 1, 1);
        let d = batch_digest(&b);
        c.propose(0, b);
        c.deliver_all();
        assert_eq!(c.cores[2].committed_digest(SeqNum(1)), Some(d));
        assert_eq!(c.cores[2].committed_digest(SeqNum(2)), None);
    }

    #[test]
    fn single_replica_shard_commits_immediately() {
        let mut c = TestCluster::new(S, 1);
        assert!(c.cores[0].single_replica());
        c.propose(0, test_batch(S, 1, 3));
        c.deliver_all();
        assert_eq!(c.committed_seqs(0), vec![1]);
    }
}

#[cfg(test)]
mod hole_tests {
    use crate::messages::{batch_digest, verify_hole_reply, CertError};
    use crate::replica::{PbftConfig, PbftCore, PbftEvent};
    use crate::testing::{test_batch, TestCluster};
    use ringbft_types::{Duration, Outbox, ReplicaId, SeqNum, ShardId};

    const S: ShardId = ShardId(0);

    /// Commits one batch on a 4-replica cluster and exports replica 0's
    /// commit certificate for it.
    fn committed_reply() -> ringbft_types::hole::HoleReply {
        let mut c = TestCluster::new(S, 4);
        c.propose(0, test_batch(S, 1, 3));
        c.deliver_all();
        c.cores[0]
            .commit_certificate(SeqNum(1))
            .expect("committed instance serves its certificate")
    }

    fn fresh_core() -> PbftCore {
        PbftCore::new(
            ReplicaId::new(S, 3),
            PbftConfig {
                n: 4,
                checkpoint_interval: 10,
                local_timeout: Duration::from_millis(100),
                external_checkpoints: true,
            },
        )
    }

    #[test]
    fn exported_certificate_verifies_and_installs() {
        let reply = committed_reply();
        assert_eq!(reply.cert.seq, SeqNum(1));
        assert!(reply.cert.signers.len() >= 3, "nf = 3 for n = 4");
        verify_hole_reply(4, &reply).expect("live certificate verifies");
        // A replica that saw none of the quorum traffic installs it and
        // emits the same Committed event a live quorum would have.
        let mut core = fresh_core();
        let mut out = Outbox::new();
        let mut events = Vec::new();
        assert!(core.install_certified_commit(reply.clone(), &mut out, &mut events));
        let committed = events.iter().any(|e| {
            matches!(e, PbftEvent::Committed { seq, digest, .. }
                if *seq == SeqNum(1) && *digest == reply.cert.digest)
        });
        assert!(committed, "install did not surface the commit: {events:?}");
        assert_eq!(core.committed_digest(SeqNum(1)), Some(reply.cert.digest));
        // Idempotent: a second install is refused without side effects.
        let mut events2 = Vec::new();
        assert!(!core.install_certified_commit(reply, &mut out, &mut events2));
        assert!(events2.is_empty());
    }

    #[test]
    fn quorum_too_small_is_rejected() {
        let mut reply = committed_reply();
        reply.cert.signers.truncate(2); // below nf = 3
        assert_eq!(verify_hole_reply(4, &reply), Err(CertError::QuorumTooSmall));
    }

    #[test]
    fn duplicate_signers_cannot_inflate_the_quorum() {
        let mut reply = committed_reply();
        let first = reply.cert.signers[0];
        reply.cert.signers = vec![first; 4];
        assert_eq!(
            verify_hole_reply(4, &reply),
            Err(CertError::DuplicateSigner)
        );
    }

    #[test]
    fn out_of_range_signers_are_rejected() {
        let mut reply = committed_reply();
        reply.cert.signers[0] = 9; // no replica 9 in a 4-replica shard
        assert_eq!(
            verify_hole_reply(4, &reply),
            Err(CertError::SignerOutOfRange)
        );
    }

    #[test]
    fn swapped_batch_fails_the_digest_binding() {
        let mut reply = committed_reply();
        let other = test_batch(S, 99, 3);
        assert_ne!(batch_digest(&other), reply.cert.digest);
        reply.batch = other;
        assert_eq!(verify_hole_reply(4, &reply), Err(CertError::DigestMismatch));
    }
}

#[cfg(test)]
mod prop_tests {
    use crate::replica::PbftEvent;
    use crate::testing::{test_batch, TestCluster};
    use proptest::prelude::*;
    use ringbft_types::ShardId;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Safety under adversarial delivery order: whatever order the
        /// network delivers messages, no two replicas commit different
        /// digests at the same sequence number (Prop 6.1), and whatever
        /// commits is a proposed batch.
        #[test]
        fn safety_under_random_delivery(
            seed in 1u64..u64::MAX,
            n in prop_oneof![Just(4usize), Just(7), Just(10)],
            batches in 1usize..6,
        ) {
            let mut c = TestCluster::new(ShardId(0), n);
            for k in 1..=batches as u64 {
                c.propose(0, test_batch(ShardId(0), k, 2));
            }
            c.deliver_all_shuffled(seed);
            let mut per_seq: HashMap<u64, [u8; 32]> = HashMap::new();
            for (_, e) in &c.events {
                if let PbftEvent::Committed { seq, digest, .. } = e {
                    if let Some(prev) = per_seq.insert(seq.0, *digest) {
                        prop_assert_eq!(prev, *digest, "divergence at {}", seq);
                    }
                }
            }
            // Liveness with a fully reliable (if reordered) network: all
            // batches commit on every replica.
            for i in 0..n as u32 {
                let mut seqs = c.committed_seqs(i);
                seqs.sort_unstable();
                prop_assert_eq!(seqs.len(), batches, "replica {} incomplete", i);
            }
        }

        /// Hole-fetch safety: a forged certificate is never installed.
        /// Starting from a *valid* exported commit certificate, any
        /// tampering — digest bits, a thinned/duplicated/out-of-range
        /// signer set, a swapped batch — fails verification, which every
        /// host runs before install.
        #[test]
        fn forged_certificates_never_verify(
            k in 1u64..50,
            len in 1usize..6,
            tamper in 0u8..5,
            byte in 0usize..32,
            bit in 0u32..8,
        ) {
            let mut c = TestCluster::new(ShardId(0), 4);
            c.propose(0, test_batch(ShardId(0), k, len));
            c.deliver_all();
            let valid = c.cores[0]
                .commit_certificate(ringbft_types::SeqNum(1))
                .expect("committed instance serves its certificate");
            prop_assert!(crate::messages::verify_hole_reply(4, &valid).is_ok());
            let mut forged = valid.clone();
            match tamper {
                0 => forged.cert.digest[byte] ^= 1 << bit,
                1 => forged.cert.signers.truncate(2),
                2 => {
                    let first = forged.cert.signers[0];
                    forged.cert.signers = vec![first; 4];
                }
                3 => forged.cert.signers[0] = 4 + byte as u32,
                _ => forged.batch = test_batch(ShardId(0), k + 1_000, len),
            }
            prop_assert!(
                crate::messages::verify_hole_reply(4, &forged).is_err(),
                "forged certificate verified (tamper {})", tamper
            );
        }

        /// Safety with f crashed replicas *and* adversarial ordering.
        #[test]
        fn safety_with_f_silent_replicas(
            seed in 1u64..u64::MAX,
            batches in 1usize..5,
        ) {
            let n = 7usize; // f = 2
            let mut c = TestCluster::new(ShardId(0), n);
            // The two highest-index replicas are silent (crash-like).
            c.drop_filter = Some(Box::new(move |_, to, _| to.index as usize >= n - 2));
            for k in 1..=batches as u64 {
                c.propose(0, test_batch(ShardId(0), k, 1));
            }
            c.deliver_all_shuffled(seed);
            let mut per_seq: HashMap<u64, [u8; 32]> = HashMap::new();
            for (_, e) in &c.events {
                if let PbftEvent::Committed { seq, digest, .. } = e {
                    if let Some(prev) = per_seq.insert(seq.0, *digest) {
                        prop_assert_eq!(prev, *digest);
                    }
                }
            }
            // Non-silent replicas all commit everything.
            for i in 0..(n - 2) as u32 {
                prop_assert_eq!(c.committed_seqs(i).len(), batches);
            }
        }
    }
}
