//! In-memory test cluster: drives a shard of [`PbftCore`]s to a fixpoint
//! with synchronous message delivery, optional message filtering, and
//! manual timer firing. Used by this crate's unit tests and by the
//! protocol crates' tests; it is *not* the performance simulator (that is
//! `ringbft-simnet`).

use crate::messages::PbftMsg;
use crate::replica::{PbftConfig, PbftCore, PbftEvent};
use ringbft_types::{Action, Duration, Instant, NodeId, Outbox, ReplicaId, ShardId, TimerKind};
use std::collections::{HashSet, VecDeque};

/// Predicate deciding whether a message is delivered.
pub type DropFilter = Box<dyn Fn(ReplicaId, ReplicaId, &PbftMsg) -> bool>;

/// A synchronous in-memory PBFT shard.
pub struct TestCluster {
    /// The replica cores, indexed by replica index.
    pub cores: Vec<PbftCore>,
    shard: ShardId,
    queue: VecDeque<(ReplicaId, ReplicaId, PbftMsg)>,
    /// All events emitted, tagged by replica index.
    pub events: Vec<(u32, PbftEvent)>,
    /// Currently armed timers `(replica, kind, token)`.
    pub timers: HashSet<(u32, TimerKind, u64)>,
    /// Messages dropped when this returns true.
    pub drop_filter: Option<DropFilter>,
    /// Total messages delivered (diagnostics).
    pub delivered: u64,
}

impl TestCluster {
    /// A shard of `n` replicas with a default configuration.
    pub fn new(shard: ShardId, n: usize) -> Self {
        let cfg = PbftConfig {
            n,
            checkpoint_interval: 10,
            external_checkpoints: false,
            local_timeout: Duration::from_millis(500),
        };
        Self::with_config(shard, cfg)
    }

    /// A shard with an explicit configuration.
    pub fn with_config(shard: ShardId, cfg: PbftConfig) -> Self {
        let cores = (0..cfg.n as u32)
            .map(|i| PbftCore::new(ReplicaId::new(shard, i), cfg.clone()))
            .collect();
        TestCluster {
            cores,
            shard,
            queue: VecDeque::new(),
            events: Vec::new(),
            timers: HashSet::new(),
            drop_filter: None,
            delivered: 0,
        }
    }

    /// Index of the current primary according to replica 0's view.
    pub fn primary(&self) -> u32 {
        self.cores[0].primary_index()
    }

    fn absorb(&mut self, from_idx: u32, actions: Vec<Action<PbftMsg>>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    if let NodeId::Replica(r) = to {
                        debug_assert_eq!(r.shard, self.shard);
                        let from = ReplicaId::new(self.shard, from_idx);
                        self.queue.push_back((from, r, msg));
                    }
                }
                Action::SendMany { tos, msg } => {
                    for to in tos {
                        if let NodeId::Replica(r) = to {
                            debug_assert_eq!(r.shard, self.shard);
                            let from = ReplicaId::new(self.shard, from_idx);
                            self.queue.push_back((from, r, msg.clone()));
                        }
                    }
                }
                Action::SetTimer { kind, token, .. } => {
                    self.timers.insert((from_idx, kind, token));
                }
                Action::CancelTimer { kind, token } => {
                    self.timers.remove(&(from_idx, kind, token));
                }
                Action::Executed { .. } | Action::ViewChanged { .. } => {}
            }
        }
    }

    /// Primary at `idx` proposes `batch`.
    pub fn propose(&mut self, idx: u32, batch: std::sync::Arc<ringbft_types::Batch>) {
        let mut out = Outbox::new();
        let mut events = Vec::new();
        self.cores[idx as usize].propose(batch, &mut out, &mut events);
        for e in events {
            self.events.push((idx, e));
        }
        self.absorb(idx, out.take());
    }

    /// Delivers queued messages until quiescence, in a pseudo-random
    /// order derived from `seed` (adversarial-scheduler testing: safety
    /// must hold under any delivery order).
    pub fn deliver_all_shuffled(&mut self, mut seed: u64) {
        while !self.queue.is_empty() {
            // xorshift64* step
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let idx = (seed as usize) % self.queue.len();
            let (from, to, msg) = self.queue.remove(idx).expect("index in range");
            if let Some(f) = &self.drop_filter {
                if f(from, to, &msg) {
                    continue;
                }
            }
            self.delivered += 1;
            let mut out = Outbox::new();
            let mut events = Vec::new();
            self.cores[to.index as usize].on_message(
                Instant::ZERO,
                from,
                msg,
                &mut out,
                &mut events,
            );
            for e in events {
                self.events.push((to.index, e));
            }
            self.absorb(to.index, out.take());
        }
    }

    /// Delivers queued messages until quiescence.
    pub fn deliver_all(&mut self) {
        while let Some((from, to, msg)) = self.queue.pop_front() {
            if let Some(f) = &self.drop_filter {
                if f(from, to, &msg) {
                    continue;
                }
            }
            self.delivered += 1;
            let mut out = Outbox::new();
            let mut events = Vec::new();
            self.cores[to.index as usize].on_message(
                Instant::ZERO,
                from,
                msg,
                &mut out,
                &mut events,
            );
            for e in events {
                self.events.push((to.index, e));
            }
            self.absorb(to.index, out.take());
        }
    }

    /// Fires an armed timer on replica `idx` (simulating its expiry).
    /// Returns false if the timer was not armed.
    pub fn fire_timer(&mut self, idx: u32, kind: TimerKind, token: u64) -> bool {
        if !self.timers.remove(&(idx, kind, token)) {
            return false;
        }
        let mut out = Outbox::new();
        let mut events = Vec::new();
        self.cores[idx as usize].on_timer(kind, token, &mut out, &mut events);
        for e in events {
            self.events.push((idx, e));
        }
        self.absorb(idx, out.take());
        true
    }

    /// Sequence numbers committed by replica `idx`, in emission order.
    pub fn committed_seqs(&self, idx: u32) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|(i, e)| match e {
                PbftEvent::Committed { seq, .. } if *i == idx => Some(seq.0),
                _ => None,
            })
            .collect()
    }

    /// Views entered by replica `idx`.
    pub fn views_entered(&self, idx: u32) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|(i, e)| match e {
                PbftEvent::EnteredView { view } if *i == idx => Some(view.0),
                _ => None,
            })
            .collect()
    }
}

/// Builds a single-shard batch of `txns` read-modify-write transactions
/// over distinct keys — shared helper for protocol tests.
pub fn test_batch(
    shard: ShardId,
    batch_id: u64,
    txns: usize,
) -> std::sync::Arc<ringbft_types::Batch> {
    use ringbft_types::txn::{Operation, OperationKind, Transaction};
    use ringbft_types::{BatchId, ClientId, TxnId};
    let txns: Vec<Transaction> = (0..txns as u64)
        .map(|i| {
            Transaction::new(
                TxnId(batch_id * 1_000 + i),
                ClientId(i),
                vec![Operation {
                    shard,
                    key: batch_id * 1_000 + i,
                    kind: OperationKind::ReadModifyWrite,
                }],
            )
        })
        .collect();
    std::sync::Arc::new(ringbft_types::Batch::new(BatchId(batch_id), txns))
}
