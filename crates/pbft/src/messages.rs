//! PBFT message types (§4.3.3–§4.3.5 of the paper, following Castro &
//! Liskov's protocol with the paper's `nf`-quorum formulation).

use ringbft_crypto::{sha256_concat, Digest};
use ringbft_types::txn::Batch;
use ringbft_types::{SeqNum, ViewNum};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A prepared-certificate entry carried inside a ViewChange message: proof
/// that a request prepared at `(view, seq)` with digest `digest`.
///
/// We carry the batch payload alongside (when the sender has it) so the
/// new primary can re-propose without a separate fetch round; the wire
/// model charges for this in `view_change_bytes`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreparedProof {
    /// View in which the request prepared.
    pub view: ViewNum,
    /// Sequence number.
    pub seq: SeqNum,
    /// Batch digest.
    pub digest: Digest,
    /// Payload, if known to the sender.
    pub batch: Option<Arc<Batch>>,
}

/// Intra-shard PBFT messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PbftMsg {
    /// Primary's proposal ordering `batch` at `seq` in `view`.
    Preprepare {
        /// Proposal view.
        view: ViewNum,
        /// Assigned sequence number.
        seq: SeqNum,
        /// Digest `Δ` of the batch.
        digest: Digest,
        /// The proposed batch.
        batch: Arc<Batch>,
    },
    /// Backup's agreement to support the proposal (phase 2).
    Prepare {
        /// View.
        view: ViewNum,
        /// Sequence number.
        seq: SeqNum,
        /// Batch digest.
        digest: Digest,
    },
    /// Commit vote (phase 3); digitally signed in RingBFT so commit
    /// certificates can be forwarded across shards (§4.3.6).
    Commit {
        /// View.
        view: ViewNum,
        /// Sequence number.
        seq: SeqNum,
        /// Batch digest.
        digest: Digest,
    },
    /// Periodic checkpoint for garbage collection and bringing in-dark
    /// replicas up to date (§5, A3).
    Checkpoint {
        /// Sequence number the checkpoint covers (all ≤ seq committed).
        seq: SeqNum,
        /// Digest of the state at `seq`.
        state_digest: Digest,
    },
    /// Request to replace the primary (§5, A2).
    ViewChange {
        /// The view the sender wants to move to.
        new_view: ViewNum,
        /// The sender's last stable checkpoint.
        last_stable: SeqNum,
        /// Requests prepared above the stable checkpoint.
        prepared: Vec<PreparedProof>,
    },
    /// New primary's installation message, embedding the re-proposals.
    NewView {
        /// The view being installed.
        view: ViewNum,
        /// Re-proposed prepared requests `(seq, digest, payload)`.
        preprepares: Vec<PreparedProof>,
    },
}

impl PbftMsg {
    /// Short tag for logging/metrics.
    pub fn tag(&self) -> &'static str {
        match self {
            PbftMsg::Preprepare { .. } => "preprepare",
            PbftMsg::Prepare { .. } => "prepare",
            PbftMsg::Commit { .. } => "commit",
            PbftMsg::Checkpoint { .. } => "checkpoint",
            PbftMsg::ViewChange { .. } => "view-change",
            PbftMsg::NewView { .. } => "new-view",
        }
    }
}

/// Why a [`HoleReply`](ringbft_types::hole::HoleReply) certificate was
/// rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertError {
    /// Fewer than `nf` distinct signers.
    QuorumTooSmall,
    /// A signer index repeats.
    DuplicateSigner,
    /// A signer index is outside `0..n`.
    SignerOutOfRange,
    /// The batch's digest does not match the certified digest.
    DigestMismatch,
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::QuorumTooSmall => write!(f, "fewer than nf distinct signers"),
            CertError::DuplicateSigner => write!(f, "duplicate signer index"),
            CertError::SignerOutOfRange => write!(f, "signer index outside the shard"),
            CertError::DigestMismatch => write!(f, "batch digest does not match certificate"),
        }
    }
}

/// Verifies a fetched commit certificate against a shard of `n`
/// replicas: the signer set must name at least `nf = n − f` *distinct*
/// in-range replicas, and the carried batch must hash to the certified
/// digest. Signatures are modeled by the index set (consistent with
/// `ForwardMsg::cert_signers`); with real crypto this is where each
/// signer's Commit signature over `(view, seq, digest)` would be
/// checked. A reply that fails here must never be installed.
pub fn verify_hole_reply(
    n: usize,
    reply: &ringbft_types::hole::HoleReply,
) -> Result<(), CertError> {
    let f = (n - 1) / 3;
    let nf = n - f;
    let cert = &reply.cert;
    let mut seen = std::collections::BTreeSet::new();
    for s in &cert.signers {
        if *s as usize >= n {
            return Err(CertError::SignerOutOfRange);
        }
        if !seen.insert(*s) {
            return Err(CertError::DuplicateSigner);
        }
    }
    if seen.len() < nf {
        return Err(CertError::QuorumTooSmall);
    }
    if batch_digest(&reply.batch) != cert.digest {
        return Err(CertError::DigestMismatch);
    }
    Ok(())
}

/// Canonical digest `Δ := H(⟨T⟩c)` of a batch (Fig 5 line 6): a hash over
/// every transaction's identity and declared accesses.
pub fn batch_digest(batch: &Batch) -> Digest {
    let mut buf = Vec::with_capacity(16 + batch.txns.len() * 24);
    buf.extend_from_slice(&batch.id.0.to_le_bytes());
    for t in &batch.txns {
        buf.extend_from_slice(&t.id.0.to_le_bytes());
        buf.extend_from_slice(&t.client.0.to_le_bytes());
        for op in &t.ops {
            buf.extend_from_slice(&op.shard.0.to_le_bytes());
            buf.extend_from_slice(&op.key.to_le_bytes());
            buf.push(match op.kind {
                ringbft_types::OperationKind::Read => 0,
                ringbft_types::OperationKind::Write => 1,
                ringbft_types::OperationKind::ReadModifyWrite => 2,
            });
        }
        for rr in &t.remote_reads {
            buf.extend_from_slice(&rr.reader.0.to_le_bytes());
            buf.extend_from_slice(&rr.owner.0.to_le_bytes());
            buf.extend_from_slice(&rr.key.to_le_bytes());
        }
    }
    sha256_concat(&[b"ringbft-batch", &buf])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringbft_types::txn::{Operation, OperationKind, Transaction};
    use ringbft_types::{BatchId, ClientId, ShardId, TxnId};

    fn batch(id: u64, key: u64) -> Batch {
        Batch::new(
            BatchId(id),
            vec![Transaction::new(
                TxnId(id * 10),
                ClientId(1),
                vec![Operation {
                    shard: ShardId(0),
                    key,
                    kind: OperationKind::ReadModifyWrite,
                }],
            )],
        )
    }

    #[test]
    fn digest_distinguishes_batches() {
        let d1 = batch_digest(&batch(1, 5));
        let d2 = batch_digest(&batch(1, 6));
        let d3 = batch_digest(&batch(2, 5));
        assert_ne!(d1, d2);
        assert_ne!(d1, d3);
        assert_eq!(d1, batch_digest(&batch(1, 5)));
    }

    #[test]
    fn tags_cover_all_variants() {
        let b = Arc::new(batch(1, 1));
        let d = batch_digest(&b);
        let msgs = [
            PbftMsg::Preprepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d,
                batch: b,
            },
            PbftMsg::Prepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d,
            },
            PbftMsg::Commit {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d,
            },
            PbftMsg::Checkpoint {
                seq: SeqNum(10),
                state_digest: d,
            },
            PbftMsg::ViewChange {
                new_view: ViewNum(1),
                last_stable: SeqNum(0),
                prepared: vec![],
            },
            PbftMsg::NewView {
                view: ViewNum(1),
                preprepares: vec![],
            },
        ];
        let tags: Vec<_> = msgs.iter().map(|m| m.tag()).collect();
        assert_eq!(
            tags,
            [
                "preprepare",
                "prepare",
                "commit",
                "checkpoint",
                "view-change",
                "new-view"
            ]
        );
    }
}
