//! The PBFT replica state machine (sans-io).
//!
//! Implements the paper's intra-shard consensus (Fig 5, lines 10–14):
//! pre-prepare → prepare (`nf` quorum) → commit (`nf` quorum), plus the
//! recovery machinery of §5: per-request local timers, PBFT view change
//! (A2), and periodic checkpoints for in-dark replicas (A3).
//!
//! Two deliberate properties match RingBFT rather than textbook PBFT:
//!
//! * **Out-of-order consensus** — a batch commits as soon as its quorum
//!   completes, regardless of lower sequence numbers; the *lock manager*
//!   re-serializes effects (§4.3.5). The [`PbftEvent::Committed`] event
//!   therefore may fire out of sequence order.
//! * **`nf` quorums** — the paper states quorums as `nf = n − f` matching
//!   messages from distinct replicas (counting the sender's own vote and
//!   the primary's pre-prepare as its prepare).

use crate::messages::{batch_digest, PbftMsg, PreparedProof};
use ringbft_crypto::Digest;
use ringbft_types::txn::Batch;
use ringbft_types::{
    Action, Duration, Instant, NodeId, Outbox, ReplicaId, SeqNum, TimerKind, ViewNum,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Timer token reserved for the view-change progress timer (sequence
/// numbers use their own value as token).
pub const VIEW_CHANGE_TOKEN: u64 = u64::MAX;

/// Configuration of a PBFT instance.
#[derive(Debug, Clone)]
pub struct PbftConfig {
    /// Replicas in the shard.
    pub n: usize,
    /// Checkpoint every this many sequence numbers.
    pub checkpoint_interval: u64,
    /// Local replication watchdog duration (§5: the shortest timer).
    pub local_timeout: Duration,
    /// When true, the engine does not vote a checkpoint by itself when a
    /// checkpoint-boundary sequence commits; it emits
    /// [`PbftEvent::CheckpointDue`] and the outer protocol calls
    /// [`PbftCore::announce_checkpoint`] once it can bind a real
    /// application-state digest (RingBFT waits until every sequence up
    /// to the boundary has *executed*, then digests the store — see
    /// `ringbft-recovery`). When false (the baselines), the engine votes
    /// immediately with the committed batch digest, which suffices for
    /// log truncation but is not transferable state.
    pub external_checkpoints: bool,
}

impl PbftConfig {
    /// Byzantine tolerance `f = ⌊(n−1)/3⌋`.
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// Quorum size `nf = n − f`.
    pub fn nf(&self) -> usize {
        self.n - self.f()
    }
}

/// Protocol-visible outputs of the PBFT engine, consumed by the outer
/// protocol (RingBFT executes-or-forwards, AHL votes, …).
#[derive(Debug, Clone)]
pub enum PbftEvent {
    /// A batch gathered its commit quorum at `seq` (possibly out of
    /// order). `committers` lists the replica indices whose Commit
    /// messages formed the certificate — RingBFT forwards their signatures
    /// to the next shard (Fig 5 line 16).
    Committed {
        /// View the batch committed in.
        view: ViewNum,
        /// Sequence number.
        seq: SeqNum,
        /// Batch digest `Δ`.
        digest: Digest,
        /// The batch payload.
        batch: Arc<Batch>,
        /// Indices of replicas in the commit certificate.
        committers: Vec<u32>,
    },
    /// The replica installed a new view (primary possibly changed).
    EnteredView {
        /// The view now active.
        view: ViewNum,
    },
    /// A checkpoint boundary committed and the engine runs with
    /// `external_checkpoints`: the outer protocol must (eventually) call
    /// [`PbftCore::announce_checkpoint`] for `seq` with its state digest.
    CheckpointDue {
        /// The checkpoint-boundary sequence number.
        seq: SeqNum,
    },
    /// A checkpoint became stable; everything ≤ `seq` is garbage-collected.
    StableCheckpoint {
        /// Covered sequence number.
        seq: SeqNum,
        /// The digest a quorum of `nf` replicas agreed on — under
        /// `external_checkpoints` this is the application-state digest a
        /// lagging replica can fetch and verify a snapshot against.
        state_digest: Digest,
    },
    /// A *weak certificate* (Castro & Liskov §6.2.2) formed for a
    /// checkpoint: `f + 1` distinct replicas voted the same state
    /// digest — at least one of them is correct, so state carrying this
    /// digest is a correct replica's state and safe to fetch. Emitted
    /// below the `nf` stability threshold so a replica that missed the
    /// original vote traffic (and whose shard may no longer be able to
    /// form full checkpoint quorums) can still anchor a state transfer.
    CheckpointEvidence {
        /// Covered sequence number.
        seq: SeqNum,
        /// The digest `f + 1` replicas agree on.
        state_digest: Digest,
    },
}

#[derive(Debug, Default)]
struct Instance {
    view: ViewNum,
    digest: Option<Digest>,
    batch: Option<Arc<Batch>>,
    preprepared: bool,
    prepares: HashMap<Digest, BTreeSet<u32>>,
    commits: HashMap<Digest, BTreeSet<u32>>,
    prepared: bool,
    committed: bool,
    /// When this replica first saw consensus traffic for the slot (the
    /// pre-prepare, or the first vote to arrive — whichever came first).
    /// Anchors the preprepare→commit phase timer; on the primary the
    /// anchor is its first received vote, a one-delay approximation that
    /// avoids threading wall time through `propose`.
    first_seen: Option<Instant>,
}

/// The PBFT replica core for one shard member.
pub struct PbftCore {
    me: ReplicaId,
    cfg: PbftConfig,
    view: ViewNum,
    in_view_change: bool,
    /// Primary's next sequence number to assign (starts at 1).
    next_seq: u64,
    /// Highest sequence number seen in any pre-prepare.
    max_seq_seen: u64,
    last_stable: u64,
    /// Our own checkpoint vote for `last_stable`, retained at stabilize
    /// when it matched the quorum digest — re-sendable to peers that ask
    /// for sequences the checkpoint subsumed (see
    /// [`PbftCore::stable_checkpoint_revote`]).
    last_stable_vote: Option<Digest>,
    instances: BTreeMap<u64, Instance>,
    checkpoint_votes: BTreeMap<u64, HashMap<u32, Digest>>,
    view_change_votes: BTreeMap<u64, BTreeMap<u32, Vec<PreparedProof>>>,
    /// Timeout backoff: doubles on every view change without progress
    /// (capped), resets when a batch commits. Prevents view-change churn
    /// under load (Castro & Liskov §4.5.2).
    backoff: u32,
    /// Escalation backoff for the view-change progress timer. Doubles
    /// without a low cap and resets only on a successful installation:
    /// replicas whose escalation timers are phase-shifted would otherwise
    /// leapfrog each other's target views forever; growing windows let
    /// the f+1 join rule align them.
    vc_backoff: u32,
    /// The view this replica was in before it started the current view
    /// change (resumed if the view change turns out to be unsupported).
    pre_vc_view: ViewNum,
    /// Did any peer send a ViewChange while our view change is pending?
    /// A view change nobody else wants can never reach its `nf` quorum:
    /// a stale replica (e.g. freshly recovered, watchdogging work the
    /// healthy quorum finished long ago) that forced one alone would
    /// wedge forever in a view no peer joins. Without support after two
    /// escalation windows, the view change is abandoned and the old —
    /// evidently still live — view resumed.
    vc_support_seen: bool,
    /// Escalation-timer expiries since the current view change began.
    vc_escalations: u32,
    /// Largest sequence such that every sequence up to it is committed
    /// locally (or covered by the stable checkpoint). Maintained
    /// incrementally so hole detection is O(1) per commit: the first
    /// *hole* — a missed commit wedging sequence-ordered admission —
    /// is always `committed_through + 1` when the frontier is beyond it.
    committed_through: u64,
    /// Count of batches committed by this replica (diagnostics).
    pub committed_batches: u64,
}

impl PbftCore {
    /// Creates the core for replica `me` of a shard with config `cfg`,
    /// starting in `view` instead of view 0. Used by multi-primary
    /// protocols (RCC) that run one PBFT instance stream per replica: the
    /// stream led by replica `j` starts in view `j`.
    pub fn new_with_view(me: ReplicaId, cfg: PbftConfig, view: ViewNum) -> Self {
        let mut core = Self::new(me, cfg);
        core.view = view;
        core
    }

    /// Creates the core for replica `me` of a shard with config `cfg`.
    pub fn new(me: ReplicaId, cfg: PbftConfig) -> Self {
        assert!(cfg.n >= 1);
        PbftCore {
            me,
            cfg,
            view: ViewNum(0),
            in_view_change: false,
            next_seq: 1,
            max_seq_seen: 0,
            last_stable: 0,
            last_stable_vote: None,
            instances: BTreeMap::new(),
            checkpoint_votes: BTreeMap::new(),
            view_change_votes: BTreeMap::new(),
            backoff: 1,
            vc_backoff: 1,
            pre_vc_view: ViewNum(0),
            vc_support_seen: false,
            vc_escalations: 0,
            committed_through: 0,
            committed_batches: 0,
        }
    }

    /// Current view.
    pub fn view(&self) -> ViewNum {
        self.view
    }

    /// Replica index of the current primary.
    pub fn primary_index(&self) -> u32 {
        self.view.primary_index(self.cfg.n)
    }

    /// Is this replica the current primary?
    pub fn is_primary(&self) -> bool {
        self.primary_index() == self.me.index
    }

    /// Is a view change in progress?
    pub fn in_view_change(&self) -> bool {
        self.in_view_change
    }

    /// This replica's own checkpoint vote for the last stable boundary,
    /// when it matched the quorum digest: `(seq, state_digest)`,
    /// re-sendable as a fresh `PbftMsg::Checkpoint`. Donors answer
    /// hole requests for checkpoint-subsumed sequences with it, so a
    /// replica that slept through the original vote traffic can collect
    /// a weak certificate (§6.2.2) and start a state transfer even when
    /// the shard's checkpoint cadence is wedged.
    pub fn stable_checkpoint_revote(&self) -> Option<(SeqNum, Digest)> {
        self.last_stable_vote
            .filter(|_| self.last_stable > 0)
            .map(|d| (SeqNum(self.last_stable), d))
    }

    /// Last stable checkpoint sequence.
    pub fn last_stable(&self) -> SeqNum {
        SeqNum(self.last_stable)
    }

    /// The outer protocol installed a verified checkpoint snapshot at
    /// `seq` (fully- or weakly-certified, §6.2.2): fast-forward the
    /// engine's stable floor so sequences the snapshot subsumes are
    /// settled — their watchdogs stand down instead of demanding view
    /// changes for work the shard finished while this replica was dark.
    /// Prunes with the same one-extra-window retention policy as a
    /// locally observed stabilization. No-op when `seq` is not ahead of
    /// the floor (the common case: the install's target *was* the last
    /// observed stable checkpoint).
    pub fn install_stable_floor(&mut self, seq: SeqNum) {
        if seq.0 <= self.last_stable {
            return;
        }
        self.last_stable = seq.0;
        // Our retained re-vote described the previous boundary.
        self.last_stable_vote = None;
        self.max_seq_seen = self.max_seq_seen.max(seq.0);
        self.next_seq = self.next_seq.max(seq.0 + 1);
        let horizon = seq.0.saturating_sub(self.cfg.checkpoint_interval);
        self.instances.retain(|k, _| *k > horizon);
        self.checkpoint_votes.retain(|k, _| *k > seq.0);
        self.advance_committed_through();
    }

    /// Current per-request timeout, including view-change backoff.
    pub fn request_timeout(&self) -> Duration {
        self.cfg.local_timeout * self.backoff as u64
    }

    /// The digest committed at `seq`, if this replica committed it.
    pub fn committed_digest(&self, seq: SeqNum) -> Option<Digest> {
        self.instances
            .get(&seq.0)
            .filter(|i| i.committed)
            .and_then(|i| i.digest)
    }

    /// Highest sequence number this replica has committed (0 before the
    /// first commit). Sequences between the execution watermark and this
    /// frontier that never committed locally are *holes*.
    pub fn max_committed_seq(&self) -> u64 {
        self.instances
            .iter()
            .rev()
            .find(|(_, i)| i.committed)
            .map(|(s, _)| *s)
            .unwrap_or(self.last_stable)
    }

    /// Largest sequence such that every sequence up to it is committed
    /// locally (or covered by the stable checkpoint). The earliest hole
    /// in the log is `committed_through() + 1` whenever
    /// [`Self::max_committed_seq`] lies beyond it. O(1): maintained
    /// incrementally as commits, installs and checkpoints land.
    pub fn committed_through(&self) -> u64 {
        self.committed_through
    }

    /// Slots proposed (or observed) above the contiguous committed
    /// prefix: the consensus pipeline's in-flight depth. Zero means the
    /// pipe is idle — every slot this replica knows about has committed
    /// — which is the signal adaptive batching uses to cut a partial
    /// batch immediately instead of waiting for the pool to fill.
    pub fn in_flight(&self) -> u64 {
        (self.next_seq - 1).saturating_sub(self.committed_through)
    }

    /// When this replica first saw consensus traffic for `seq` (the
    /// pre-prepare or the earliest vote). `None` for unknown slots and for
    /// instances installed from a commit certificate (hole fetch), which
    /// never ran the local three-phase exchange — phase timers skip those.
    pub fn consensus_started_at(&self, seq: SeqNum) -> Option<Instant> {
        self.instances.get(&seq.0).and_then(|i| i.first_seen)
    }

    /// Advances the contiguous-commit prefix over freshly committed
    /// instances. Amortized O(1): each sequence is walked over once.
    fn advance_committed_through(&mut self) {
        self.committed_through = self.committed_through.max(self.last_stable);
        while self
            .instances
            .get(&(self.committed_through + 1))
            .is_some_and(|i| i.committed)
        {
            self.committed_through += 1;
        }
    }

    /// Exports the commit certificate and batch for `seq` from the
    /// message log, if this replica committed it and the instance has
    /// not yet been garbage-collected by a stable checkpoint. This is
    /// what a donor serves to a hole-fetching peer: everything the peer
    /// needs to verify and install the commit without other context.
    pub fn commit_certificate(&self, seq: SeqNum) -> Option<ringbft_types::hole::HoleReply> {
        let inst = self.instances.get(&seq.0).filter(|i| i.committed)?;
        let digest = inst.digest?;
        let batch = inst.batch.clone()?;
        let signers: Vec<u32> = inst.commits.get(&digest)?.iter().copied().collect();
        Some(ringbft_types::hole::HoleReply {
            cert: ringbft_types::hole::CommitCertificate {
                view: inst.view,
                seq,
                digest,
                signers,
            },
            batch,
        })
    }

    /// Installs an externally fetched, *already verified* commit
    /// certificate (hole fetch): marks the instance committed and emits
    /// the same [`PbftEvent::Committed`] a live quorum would have, so
    /// the outer protocol's admission path runs unchanged (checkpoint
    /// boundaries included). Returns false without side effects when the
    /// sequence is already committed locally or below the stable
    /// checkpoint. The caller must have verified the certificate with
    /// [`crate::verify_hole_reply`] first — this method trusts it.
    pub fn install_certified_commit(
        &mut self,
        reply: ringbft_types::hole::HoleReply,
        out: &mut Outbox<PbftMsg>,
        events: &mut Vec<PbftEvent>,
    ) -> bool {
        let seq = reply.cert.seq;
        if seq.0 <= self.last_stable {
            return false;
        }
        let inst = self.instances.entry(seq.0).or_default();
        if inst.committed {
            return false;
        }
        let digest = reply.cert.digest;
        inst.view = reply.cert.view;
        inst.digest = Some(digest);
        inst.batch = Some(Arc::clone(&reply.batch));
        inst.preprepared = true;
        inst.prepared = true;
        inst.committed = true;
        inst.commits
            .entry(digest)
            .or_default()
            .extend(reply.cert.signers.iter().copied());
        self.committed_batches += 1;
        self.max_seq_seen = self.max_seq_seen.max(seq.0);
        // A watchdog for this slot (armed if we saw its pre-prepare
        // before the quorum traffic was lost) is now satisfied.
        out.cancel_timer(TimerKind::Local, seq.0);
        events.push(PbftEvent::Committed {
            view: reply.cert.view,
            seq,
            digest,
            batch: reply.batch,
            committers: reply.cert.signers,
        });
        self.advance_committed_through();
        self.maybe_checkpoint(seq.0, digest, out, events);
        true
    }

    fn others(&self) -> impl Iterator<Item = NodeId> + '_ {
        let me = self.me;
        (0..self.cfg.n as u32)
            .filter(move |i| *i != me.index)
            .map(move |i| NodeId::Replica(ReplicaId::new(me.shard, i)))
    }

    /// Primary proposes a batch. Returns the sequence number it assigned,
    /// or `None` if this replica is not currently allowed to propose.
    pub fn propose(
        &mut self,
        batch: Arc<Batch>,
        out: &mut Outbox<PbftMsg>,
        events: &mut Vec<PbftEvent>,
    ) -> Option<SeqNum> {
        if !self.is_primary() || self.in_view_change {
            return None;
        }
        let seq = SeqNum(self.next_seq);
        self.next_seq += 1;
        self.max_seq_seen = self.max_seq_seen.max(seq.0);
        let digest = batch_digest(&batch);
        let msg = PbftMsg::Preprepare {
            view: self.view,
            seq,
            digest,
            batch: Arc::clone(&batch),
        };
        out.multicast(self.others(), &msg);
        // The primary's pre-prepare doubles as its prepare vote.
        let inst = self.instances.entry(seq.0).or_default();
        inst.view = self.view;
        inst.digest = Some(digest);
        inst.batch = Some(batch);
        inst.preprepared = true;
        inst.prepares
            .entry(digest)
            .or_default()
            .insert(self.me.index);
        out.set_timer(TimerKind::Local, seq.0, self.request_timeout());
        self.check_quorums(seq.0, out, events);
        Some(seq)
    }

    /// Handles an intra-shard message from replica `from`.
    pub fn on_message(
        &mut self,
        now: Instant,
        from: ReplicaId,
        msg: PbftMsg,
        out: &mut Outbox<PbftMsg>,
        events: &mut Vec<PbftEvent>,
    ) {
        match msg {
            PbftMsg::Preprepare {
                view,
                seq,
                digest,
                batch,
            } => self.on_preprepare(now, from, view, seq, digest, batch, out, events),
            PbftMsg::Prepare { view, seq, digest } => {
                self.on_vote(now, from, view, seq, digest, false, out, events)
            }
            PbftMsg::Commit { view, seq, digest } => {
                self.on_vote(now, from, view, seq, digest, true, out, events)
            }
            PbftMsg::Checkpoint { seq, state_digest } => {
                self.on_checkpoint(from, seq, state_digest, events)
            }
            PbftMsg::ViewChange {
                new_view,
                last_stable,
                prepared,
            } => self.on_view_change(from, new_view, last_stable, prepared, out, events),
            PbftMsg::NewView { view, preprepares } => {
                self.on_new_view(from, view, preprepares, out, events)
            }
        }
    }

    /// Handles an expired timer. Returns true if the timer was meaningful
    /// to PBFT (outer layers multiplex other tokens onto other kinds).
    pub fn on_timer(
        &mut self,
        kind: TimerKind,
        token: u64,
        out: &mut Outbox<PbftMsg>,
        events: &mut Vec<PbftEvent>,
    ) -> bool {
        if kind != TimerKind::Local {
            return false;
        }
        if token == VIEW_CHANGE_TOKEN {
            // NewView never arrived: escalate to the next view — unless
            // nobody ever seconded this view change, in which case it
            // can never reach its quorum and is abandoned instead: the
            // old view is evidently still live, so resume it.
            if self.in_view_change {
                self.vc_escalations += 1;
                if !self.vc_support_seen {
                    // A full escalation window without one peer demanding
                    // any view change: we are alone, abandon.
                    self.abandon_view_change(out, events);
                } else {
                    let next = self.view.next();
                    self.start_view_change(next, out, events);
                }
            }
            return true;
        }
        // Per-request watchdog: request did not commit in time. A
        // sequence at or below the stable checkpoint is settled
        // whatever its instance says — with the extra retention window
        // an *uncommitted* instance can now survive below the
        // checkpoint, and its watchdog must not demand a view change
        // for work the quorum already subsumed.
        let committed = token <= self.last_stable
            || self
                .instances
                .get(&token)
                .map(|i| i.committed)
                .unwrap_or(false);
        if !committed && !self.in_view_change {
            // A hole below the local commit frontier is a delivery gap,
            // not a dead primary: later sequences committed here, so
            // the quorum demonstrably decided this slot too and the
            // hole fetcher repairs it from peers (O(batch)). A view
            // change could never recover the missed traffic — it would
            // only wedge this replica in a view no healthy peer joins,
            // dropping the live vote stream and tearing fresh holes.
            if token < self.max_committed_seq() {
                return true;
            }
            let next = self.view.next();
            self.start_view_change(next, out, events);
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn on_preprepare(
        &mut self,
        now: Instant,
        from: ReplicaId,
        view: ViewNum,
        seq: SeqNum,
        digest: Digest,
        batch: Arc<Batch>,
        out: &mut Outbox<PbftMsg>,
        events: &mut Vec<PbftEvent>,
    ) {
        if view != self.view || self.in_view_change {
            return;
        }
        if from.index != self.primary_index() {
            return; // only the primary proposes
        }
        if seq.0 <= self.last_stable {
            return;
        }
        let inst = self.instances.entry(seq.0).or_default();
        inst.first_seen.get_or_insert(now);
        if inst.preprepared && inst.view == view {
            // "r did not accept a k-th proposal from pS" (Fig 5 line 10):
            // a second, conflicting proposal at the same slot is ignored.
            if inst.digest != Some(digest) {
                return;
            }
            return; // duplicate
        }
        inst.view = view;
        inst.digest = Some(digest);
        inst.batch = Some(batch);
        inst.preprepared = true;
        // Primary's pre-prepare counts as its prepare vote.
        inst.prepares.entry(digest).or_default().insert(from.index);
        self.max_seq_seen = self.max_seq_seen.max(seq.0);
        // Broadcast our Prepare and count our own vote.
        let prep = PbftMsg::Prepare { view, seq, digest };
        out.multicast(self.others(), &prep);
        self.instances
            .get_mut(&seq.0)
            .expect("just inserted")
            .prepares
            .entry(digest)
            .or_default()
            .insert(self.me.index);
        out.set_timer(TimerKind::Local, seq.0, self.request_timeout());
        self.check_quorums(seq.0, out, events);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_vote(
        &mut self,
        now: Instant,
        from: ReplicaId,
        view: ViewNum,
        seq: SeqNum,
        digest: Digest,
        is_commit: bool,
        out: &mut Outbox<PbftMsg>,
        events: &mut Vec<PbftEvent>,
    ) {
        if view != self.view || self.in_view_change || seq.0 <= self.last_stable {
            return;
        }
        let inst = self.instances.entry(seq.0).or_default();
        inst.first_seen.get_or_insert(now);
        let votes = if is_commit {
            &mut inst.commits
        } else {
            &mut inst.prepares
        };
        votes.entry(digest).or_default().insert(from.index);
        self.check_quorums(seq.0, out, events);
    }

    /// Advances prepare→commit→committed when quorums are met.
    fn check_quorums(&mut self, seq: u64, out: &mut Outbox<PbftMsg>, events: &mut Vec<PbftEvent>) {
        let nf = self.cfg.nf();
        let me = self.me.index;
        let others: Vec<NodeId> = self.others().collect();
        let Some(inst) = self.instances.get_mut(&seq) else {
            return;
        };
        let Some(digest) = inst.digest else {
            return; // votes arrived before the pre-prepare
        };
        if inst.preprepared
            && !inst.prepared
            && inst.prepares.get(&digest).map_or(0, |s| s.len()) >= nf
        {
            inst.prepared = true;
            let msg = PbftMsg::Commit {
                view: inst.view,
                seq: SeqNum(seq),
                digest,
            };
            inst.commits.entry(digest).or_default().insert(me);
            out.multicast(others.iter().copied(), &msg);
        }
        if inst.prepared
            && !inst.committed
            && inst.commits.get(&digest).map_or(0, |s| s.len()) >= nf
        {
            inst.committed = true;
            self.committed_batches += 1;
            self.backoff = 1; // progress: reset view-change backoff
            let committers: Vec<u32> = inst.commits[&digest].iter().copied().collect();
            let batch = inst.batch.clone().expect("preprepared instance has batch");
            let view = inst.view;
            out.cancel_timer(TimerKind::Local, seq);
            events.push(PbftEvent::Committed {
                view,
                seq: SeqNum(seq),
                digest,
                batch,
                committers,
            });
            self.advance_committed_through();
            self.maybe_checkpoint(seq, digest, out, events);
        }
    }

    fn maybe_checkpoint(
        &mut self,
        seq: u64,
        digest: Digest,
        out: &mut Outbox<PbftMsg>,
        events: &mut Vec<PbftEvent>,
    ) {
        if !seq.is_multiple_of(self.cfg.checkpoint_interval) {
            return;
        }
        if self.cfg.external_checkpoints {
            // The outer protocol owns the state digest; it answers with
            // `announce_checkpoint` once the boundary has executed.
            events.push(PbftEvent::CheckpointDue { seq: SeqNum(seq) });
            return;
        }
        self.announce_checkpoint(SeqNum(seq), digest, out, events);
    }

    /// Broadcasts this replica's checkpoint vote for `seq` with
    /// `state_digest` and counts it toward stabilization. Under
    /// `external_checkpoints` the outer protocol calls this in response
    /// to [`PbftEvent::CheckpointDue`]; the non-external path calls it
    /// internally with the batch digest.
    pub fn announce_checkpoint(
        &mut self,
        seq: SeqNum,
        state_digest: Digest,
        out: &mut Outbox<PbftMsg>,
        events: &mut Vec<PbftEvent>,
    ) {
        if seq.0 <= self.last_stable {
            return;
        }
        let msg = PbftMsg::Checkpoint { seq, state_digest };
        out.multicast(self.others(), &msg);
        self.checkpoint_votes
            .entry(seq.0)
            .or_default()
            .insert(self.me.index, state_digest);
        self.try_stabilize(seq.0, events);
    }

    fn on_checkpoint(
        &mut self,
        from: ReplicaId,
        seq: SeqNum,
        state_digest: Digest,
        events: &mut Vec<PbftEvent>,
    ) {
        if seq.0 <= self.last_stable {
            return;
        }
        self.checkpoint_votes
            .entry(seq.0)
            .or_default()
            .insert(from.index, state_digest);
        self.try_stabilize(seq.0, events);
    }

    fn try_stabilize(&mut self, seq: u64, events: &mut Vec<PbftEvent>) {
        let nf = self.cfg.nf();
        let Some(votes) = self.checkpoint_votes.get(&seq) else {
            return;
        };
        // Count agreement on the majority digest.
        let mut counts: HashMap<Digest, usize> = HashMap::new();
        for d in votes.values() {
            *counts.entry(*d).or_default() += 1;
        }
        let Some((winner, n_votes)) = counts.into_iter().max_by_key(|(_, n)| *n) else {
            return;
        };
        if n_votes < nf {
            // Below stability but already a weak certificate (§6.2.2):
            // surface it, so an in-dark replica can anchor a state
            // transfer even when the shard can no longer gather full
            // checkpoint quorums (e.g. a crash exhausted `f` while this
            // replica lags).
            if n_votes > self.cfg.f() {
                events.push(PbftEvent::CheckpointEvidence {
                    seq: SeqNum(seq),
                    state_digest: winner,
                });
            }
            return;
        }
        {
            // Retain re-vote metadata at stabilize: our own matching
            // vote for the stable boundary, re-sendable to a peer that
            // asks for a sequence this checkpoint already subsumed
            // (checkpoint votes are not otherwise retransmitted, so a
            // replica that slept through them could never learn the
            // stable digest once the shard's cadence wedges).
            self.last_stable_vote = votes.get(&self.me.index).filter(|d| **d == winner).copied();
            self.last_stable = self.last_stable.max(seq);
            // In-dark replicas fast-forward past work they missed.
            self.max_seq_seen = self.max_seq_seen.max(seq);
            self.next_seq = self.next_seq.max(seq + 1);
            // Keep one extra checkpoint window of committed instances:
            // a peer that missed a single commit near the boundary asks
            // for its certificate (hole fetch) shortly *after* the
            // checkpoint stabilizes here — pruning at the boundary
            // would force it into an O(state) snapshot transfer for one
            // lost message. (Same policy as the outer protocol's
            // replay-dedup map.)
            let horizon = seq.saturating_sub(self.cfg.checkpoint_interval);
            self.instances.retain(|k, _| *k > horizon);
            self.checkpoint_votes.retain(|k, _| *k > seq);
            self.advance_committed_through();
            events.push(PbftEvent::StableCheckpoint {
                seq: SeqNum(seq),
                state_digest: winner,
            });
        }
    }

    /// Collects this replica's prepared certificates above the stable
    /// checkpoint (the `P` set of a ViewChange message).
    fn prepared_proofs(&self) -> Vec<PreparedProof> {
        self.instances
            .iter()
            .filter(|(seq, i)| **seq > self.last_stable && i.prepared)
            .map(|(seq, i)| PreparedProof {
                view: i.view,
                seq: SeqNum(*seq),
                digest: i.digest.expect("prepared implies digest"),
                batch: i.batch.clone(),
            })
            .collect()
    }

    /// Abandons an unsupported view change: no peer ever demanded one,
    /// so the quorum can never form and the pre-change view is still
    /// the shard's live view. Safe to resume: this replica only sent
    /// ViewChange messages (which stay valid votes should the view
    /// change later find support) and dropped in-flight vote traffic,
    /// which retransmission and checkpoint recovery cover.
    fn abandon_view_change(&mut self, out: &mut Outbox<PbftMsg>, events: &mut Vec<PbftEvent>) {
        self.in_view_change = false;
        self.view = self.pre_vc_view;
        self.vc_backoff = 1;
        self.vc_escalations = 0;
        out.cancel_timer(TimerKind::Local, VIEW_CHANGE_TOKEN);
        events.push(PbftEvent::EnteredView { view: self.view });
    }

    fn start_view_change(
        &mut self,
        target: ViewNum,
        out: &mut Outbox<PbftMsg>,
        _events: &mut Vec<PbftEvent>,
    ) {
        if !self.in_view_change {
            // Remember where we came from and start tracking support.
            self.pre_vc_view = self.view;
            self.vc_support_seen = false;
            self.vc_escalations = 0;
        }
        self.in_view_change = true;
        self.view = target;
        self.backoff = (self.backoff * 2).min(4);
        let proofs = self.prepared_proofs();
        let msg = PbftMsg::ViewChange {
            new_view: target,
            last_stable: SeqNum(self.last_stable),
            prepared: proofs.clone(),
        };
        out.multicast(self.others(), &msg);
        self.view_change_votes
            .entry(target.0)
            .or_default()
            .insert(self.me.index, proofs);
        // If NewView does not arrive, escalate further — with unbounded
        // doubling so phase-shifted replicas eventually align.
        out.set_timer(
            TimerKind::Local,
            VIEW_CHANGE_TOKEN,
            self.cfg.local_timeout * 2 * self.vc_backoff as u64,
        );
        self.vc_backoff = (self.vc_backoff * 2).min(64);
        self.maybe_install_view(target, out, _events);
    }

    fn on_view_change(
        &mut self,
        from: ReplicaId,
        new_view: ViewNum,
        _last_stable: SeqNum,
        prepared: Vec<PreparedProof>,
        out: &mut Outbox<PbftMsg>,
        events: &mut Vec<PbftEvent>,
    ) {
        // Any peer demanding any view change seconds ours (support in
        // the loosest sense: we are at least not alone).
        self.vc_support_seen = true;
        if new_view <= self.view && !(new_view == self.view && self.in_view_change) {
            return;
        }
        self.view_change_votes
            .entry(new_view.0)
            .or_default()
            .insert(from.index, prepared);
        let votes = self.view_change_votes[&new_view.0].len();
        // Join the view change once f+1 peers demand it (liveness boost —
        // a correct replica cannot be left behind by a Byzantine clique).
        if votes > self.cfg.f() && (!self.in_view_change || new_view > self.view) {
            self.start_view_change(new_view, out, events);
            return;
        }
        // Cross-view alignment (Castro & Liskov §4.5.2): replicas whose
        // escalation timers diverged can split their demands 1-1-1 over
        // consecutive views so no view ever reaches its quorum. If f+1
        // distinct peers demand views above ours, adopt a view at least
        // f+1 of them support — re-synchronising the shard.
        let mut sender_max: HashMap<u32, u64> = HashMap::new();
        for (v, senders) in &self.view_change_votes {
            if *v > self.view.0 || (*v == self.view.0 && !self.in_view_change) {
                for s in senders.keys() {
                    let e = sender_max.entry(*s).or_insert(*v);
                    *e = (*e).max(*v);
                }
            }
        }
        sender_max.remove(&self.me.index);
        if sender_max.len() > self.cfg.f() {
            let mut maxes: Vec<u64> = sender_max.values().copied().collect();
            maxes.sort_unstable_by(|a, b| b.cmp(a));
            // The (f+1)-th largest demand: at least f+1 replicas demand a
            // view ≥ this.
            let target = maxes[self.cfg.f()];
            if target > self.view.0 || (target == self.view.0 && !self.in_view_change) {
                self.start_view_change(ViewNum(target.max(self.view.0 + 1)), out, events);
                return;
            }
        }
        self.maybe_install_view(new_view, out, events);
    }

    /// If we are the primary of `target` and hold `nf` ViewChange votes,
    /// install the view and broadcast NewView with merged re-proposals.
    fn maybe_install_view(
        &mut self,
        target: ViewNum,
        out: &mut Outbox<PbftMsg>,
        events: &mut Vec<PbftEvent>,
    ) {
        if target.primary_index(self.cfg.n) != self.me.index {
            return;
        }
        if !self.in_view_change || self.view != target {
            return;
        }
        let Some(votes) = self.view_change_votes.get(&target.0) else {
            return;
        };
        if votes.len() < self.cfg.nf() {
            return;
        }
        // Merge prepared proofs: highest view wins per sequence number.
        let mut merged: BTreeMap<u64, PreparedProof> = BTreeMap::new();
        for proofs in votes.values() {
            for p in proofs {
                if p.seq.0 <= self.last_stable {
                    continue;
                }
                match merged.get(&p.seq.0) {
                    Some(existing) if existing.view >= p.view => {}
                    _ => {
                        merged.insert(p.seq.0, p.clone());
                    }
                }
            }
        }
        // Fill sequence gaps with null requests (Castro & Liskov §4.4):
        // a pre-prepare lost in the view change leaves a hole that would
        // stall sequence-ordered lock admission forever. If any replica
        // committed a sequence number, the quorum-intersection argument
        // guarantees a prepared proof for it reaches `merged`, so nulls
        // are only assigned to slots no correct replica decided.
        let horizon = merged
            .keys()
            .max()
            .copied()
            .unwrap_or(self.last_stable)
            .max(self.max_seq_seen);
        for seq in (self.last_stable + 1)..=horizon {
            if merged.contains_key(&seq) {
                continue;
            }
            if self.instances.get(&seq).is_some_and(|i| i.committed) {
                continue;
            }
            let null_batch = Arc::new(Batch::new_unchecked(
                ringbft_types::BatchId(u64::MAX ^ seq),
                Vec::new(),
            ));
            merged.insert(
                seq,
                PreparedProof {
                    view: target,
                    seq: SeqNum(seq),
                    digest: batch_digest(&null_batch),
                    batch: Some(null_batch),
                },
            );
        }
        let preprepares: Vec<PreparedProof> = merged.into_values().collect();
        let msg = PbftMsg::NewView {
            view: target,
            preprepares: preprepares.clone(),
        };
        out.multicast(self.others(), &msg);
        self.enter_view(target, preprepares, out, events);
    }

    fn on_new_view(
        &mut self,
        from: ReplicaId,
        view: ViewNum,
        preprepares: Vec<PreparedProof>,
        out: &mut Outbox<PbftMsg>,
        events: &mut Vec<PbftEvent>,
    ) {
        if from.index != view.primary_index(self.cfg.n) {
            return;
        }
        if view < self.view || (view == self.view && !self.in_view_change) {
            return;
        }
        self.view = view;
        self.enter_view(view, preprepares, out, events);
    }

    fn enter_view(
        &mut self,
        view: ViewNum,
        preprepares: Vec<PreparedProof>,
        out: &mut Outbox<PbftMsg>,
        events: &mut Vec<PbftEvent>,
    ) {
        self.in_view_change = false;
        self.vc_backoff = 1;
        out.cancel_timer(TimerKind::Local, VIEW_CHANGE_TOKEN);
        self.view_change_votes.retain(|v, _| *v > view.0);
        events.push(PbftEvent::EnteredView { view });
        let i_am_primary = self.is_primary();
        let others: Vec<NodeId> = self.others().collect();
        let mut max_reproposed = self.max_seq_seen;
        for proof in preprepares {
            let seq = proof.seq;
            if seq.0 <= self.last_stable {
                continue;
            }
            max_reproposed = max_reproposed.max(seq.0);
            let inst = self.instances.entry(seq.0).or_default();
            if inst.committed {
                continue; // already done; view change preserves it
            }
            // Reset the instance into the new view.
            inst.view = view;
            inst.digest = Some(proof.digest);
            if inst.batch.is_none() {
                inst.batch = proof.batch.clone();
            }
            inst.preprepared = true;
            inst.prepared = false;
            inst.prepares.clear();
            inst.commits.clear();
            // New primary's NewView counts as its prepare vote.
            inst.prepares
                .entry(proof.digest)
                .or_default()
                .insert(view.primary_index(self.cfg.n));
            if !i_am_primary {
                let prep = PbftMsg::Prepare {
                    view,
                    seq,
                    digest: proof.digest,
                };
                out.multicast(others.iter().copied(), &prep);
                inst.prepares
                    .entry(proof.digest)
                    .or_default()
                    .insert(self.me.index);
            }
            out.set_timer(TimerKind::Local, seq.0, self.request_timeout());
        }
        self.max_seq_seen = max_reproposed;
        if i_am_primary {
            self.next_seq = self.next_seq.max(max_reproposed + 1);
        }
        // Re-check quorums for re-proposed instances.
        let seqs: Vec<u64> = self.instances.keys().copied().collect();
        for s in seqs {
            self.check_quorums(s, out, events);
        }
    }

    /// Drives a one-replica shard to completion instantly (degenerate but
    /// useful for tests of outer layers).
    pub fn single_replica(&self) -> bool {
        self.cfg.n == 1
    }

    /// Externally-triggered view change: used by RingBFT's remote view
    /// change (§5.1.2, Fig 6 line 6: "Initiate Local view-change
    /// protocol") and by the client-broadcast fallback (A1) when the
    /// primary sits on a forwarded request. No-op if already changing.
    pub fn force_view_change(&mut self, out: &mut Outbox<PbftMsg>, events: &mut Vec<PbftEvent>) {
        if self.in_view_change {
            return;
        }
        let next = self.view.next();
        self.start_view_change(next, out, events);
    }
}

/// Convenience: run `on_message` returning `(actions, events)` — handy in
/// tests and thin adapters.
pub fn step(
    core: &mut PbftCore,
    now: Instant,
    from: ReplicaId,
    msg: PbftMsg,
) -> (Vec<Action<PbftMsg>>, Vec<PbftEvent>) {
    let mut out = Outbox::new();
    let mut events = Vec::new();
    core.on_message(now, from, msg, &mut out, &mut events);
    (out.take(), events)
}
