//! Identifiers for shards, replicas, clients, sequence numbers and views.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a shard. The paper assigns each shard `S` a position in the
/// ring, `1 ≤ id(S) ≤ |𝔖|` (§3, "Ring Order"). We store the position
/// zero-based internally and expose ring arithmetic in [`crate::ring`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardId(pub u32);

impl ShardId {
    /// Zero-based ring position of this shard.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifier of a replica: the shard it belongs to plus its index inside
/// the shard. The linear communication primitive (§4.3.6) matches replicas
/// of equal `index` across neighbouring shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId {
    /// The shard this replica belongs to.
    pub shard: ShardId,
    /// Index of the replica within its shard, `0..n`.
    pub index: u32,
}

impl ReplicaId {
    /// Convenience constructor.
    #[inline]
    pub fn new(shard: ShardId, index: u32) -> Self {
        Self { shard, index }
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}r{}", self.shard, self.index)
    }
}

/// Identifier of a client. Clients sign their transactions with digital
/// signatures to prevent repudiation attacks (§4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A consensus sequence number assigned by a primary. Sequence numbers are
/// linearly increasing per shard (§4.3.2) and drive the sequence-ordered
/// data locking of §4.3.5 (`k_max` and the π list).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The next sequence number.
    #[inline]
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A view number. Each view designates one replica of the shard as primary;
/// view changes replace a faulty primary (§5, A2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ViewNum(pub u64);

impl ViewNum {
    /// The next view.
    #[inline]
    pub fn next(self) -> ViewNum {
        ViewNum(self.0 + 1)
    }

    /// Index of the primary for this view in a shard of `n` replicas.
    /// Primaries rotate round-robin as in PBFT.
    #[inline]
    pub fn primary_index(self, n: usize) -> u32 {
        (self.0 % n as u64) as u32
    }
}

impl fmt::Display for ViewNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Either a replica or a client: the two endpoint kinds in the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// A replica endpoint.
    Replica(ReplicaId),
    /// A client endpoint.
    Client(ClientId),
}

impl NodeId {
    /// Returns the replica id if this node is a replica.
    #[inline]
    pub fn as_replica(self) -> Option<ReplicaId> {
        match self {
            NodeId::Replica(r) => Some(r),
            NodeId::Client(_) => None,
        }
    }

    /// Returns the client id if this node is a client.
    #[inline]
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            NodeId::Client(c) => Some(c),
            NodeId::Replica(_) => None,
        }
    }
}

impl From<ReplicaId> for NodeId {
    fn from(r: ReplicaId) -> Self {
        NodeId::Replica(r)
    }
}

impl From<ClientId> for NodeId {
    fn from(c: ClientId) -> Self {
        NodeId::Client(c)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Replica(r) => write!(f, "{r}"),
            NodeId::Client(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_num_next_increments() {
        assert_eq!(SeqNum(0).next(), SeqNum(1));
        assert_eq!(SeqNum(41).next(), SeqNum(42));
    }

    #[test]
    fn view_primary_rotates_round_robin() {
        assert_eq!(ViewNum(0).primary_index(4), 0);
        assert_eq!(ViewNum(1).primary_index(4), 1);
        assert_eq!(ViewNum(4).primary_index(4), 0);
        assert_eq!(ViewNum(7).primary_index(4), 3);
    }

    #[test]
    fn node_id_conversions() {
        let r = ReplicaId::new(ShardId(2), 5);
        let n: NodeId = r.into();
        assert_eq!(n.as_replica(), Some(r));
        assert_eq!(n.as_client(), None);

        let c = ClientId(9);
        let n: NodeId = c.into();
        assert_eq!(n.as_client(), Some(c));
        assert_eq!(n.as_replica(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ReplicaId::new(ShardId(1), 3).to_string(), "S1r3");
        assert_eq!(ClientId(7).to_string(), "c7");
        assert_eq!(SeqNum(12).to_string(), "k12");
        assert_eq!(ViewNum(2).to_string(), "v2");
    }

    #[test]
    fn replica_ordering_is_shard_major() {
        let a = ReplicaId::new(ShardId(0), 9);
        let b = ReplicaId::new(ShardId(1), 0);
        assert!(a < b);
    }
}
