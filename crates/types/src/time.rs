//! Simulated time: nanosecond instants and durations.
//!
//! The discrete-event simulator advances a virtual clock; protocols only
//! ever observe these types, never wall-clock time, which keeps every run
//! bit-reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Instant(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Instant {
    /// The simulation epoch (t = 0).
    pub const ZERO: Instant = Instant(0);

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero.
    #[inline]
    pub fn since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to nanoseconds).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Duration {
        Duration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds, as a float (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Instant {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Instant) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1000));
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1000));
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = Instant::ZERO;
        let t1 = t0 + Duration::from_millis(250);
        assert_eq!(t1.as_nanos(), 250_000_000);
        assert_eq!(t1.since(t0), Duration::from_millis(250));
        // Saturating: earlier.since(later) == 0
        assert_eq!(t0.since(t1), Duration::ZERO);
        assert_eq!(t1 - t0, Duration::from_millis(250));
    }

    #[test]
    fn duration_scaling() {
        let d = Duration::from_millis(10);
        assert_eq!(d * 3, Duration::from_millis(30));
        assert_eq!(d / 2, Duration::from_millis(5));
        assert_eq!(d + d, Duration::from_millis(20));
        assert_eq!(d - Duration::from_millis(4), Duration::from_millis(6));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
        assert_eq!(Duration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(Duration::from_nanos(42).to_string(), "42ns");
    }
}
