//! The deterministic transaction model (§3 of the paper).
//!
//! A *deterministic transaction* declares the data items it will read or
//! write before consensus starts, so any replica can decide which of the
//! accessed items live in its own shard. A cross-shard transaction (`cst`)
//! accesses data in a subset `ℑ ⊆ 𝔖` of *involved shards*. A **simple** cst
//! is a collection of per-shard fragments that each shard can execute
//! independently; a **complex** cst carries cross-shard read dependencies
//! (remote reads) that are resolved during the second rotation via the
//! updated write sets `Σ` carried in Execute messages (§4.3.7, §8.8).

use crate::ids::{ClientId, ShardId};
use crate::trace::TraceContext;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 256-bit message digest. Produced by `ringbft-crypto`; carried here so
/// message types do not depend on the crypto crate.
pub type Digest = [u8; 32];

/// A key in the YCSB-style table. Keys are partitioned across shards.
pub type Key = u64;

/// A value stored in the table. The paper's YCSB records are fixed-size;
/// we model values as small integers plus a version for dependency checks.
pub type Value = u64;

/// Globally unique transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The kind of access an operation performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperationKind {
    /// Read the current value of the key.
    Read,
    /// Overwrite the key with a new value.
    Write,
    /// Read-modify-write, the paper's standard YCSB workload ("transactions
    /// that read and modify existing records", §8).
    ReadModifyWrite,
}

impl OperationKind {
    /// Does this operation acquire a write lock?
    #[inline]
    pub fn writes(self) -> bool {
        matches!(self, OperationKind::Write | OperationKind::ReadModifyWrite)
    }

    /// Does this operation read the key?
    #[inline]
    pub fn reads(self) -> bool {
        matches!(self, OperationKind::Read | OperationKind::ReadModifyWrite)
    }
}

/// One data access within a transaction. The owning shard is derived from
/// the key by the system's partitioning function, so the operation itself
/// stores the shard explicitly to keep transactions self-describing (the
/// client "specifies the information regarding all the involved shards...
/// and the necessary read-write sets of each shard", §4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Operation {
    /// Shard owning `key`.
    pub shard: ShardId,
    /// The key accessed.
    pub key: Key,
    /// Access kind.
    pub kind: OperationKind,
}

/// A cross-shard read dependency of a *complex* cst: while executing its
/// fragment, `reader` must see the value of `key` owned by `owner`. These
/// are satisfied by the `Σ` write-set updates carried in Execute messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RemoteRead {
    /// The shard whose fragment needs the remote value.
    pub reader: ShardId,
    /// The shard owning the remote key.
    pub owner: ShardId,
    /// The remote key.
    pub key: Key,
}

/// A deterministic (multi-shard) transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Unique id.
    pub id: TxnId,
    /// Issuing client (signs the request with a digital signature, §4.3.1).
    pub client: ClientId,
    /// Declared data accesses, the transaction's read-write set.
    pub ops: Vec<Operation>,
    /// Cross-shard read dependencies (empty for simple transactions).
    pub remote_reads: Vec<RemoteRead>,
    /// Causal trace context, present only on sampled transactions. The
    /// client assigns it at issue time; it rides the transaction through
    /// batches, consensus, and ring Forwards so every replica can stamp
    /// spans under one trace id.
    #[serde(default)]
    pub trace: Option<TraceContext>,
}

impl Transaction {
    /// Builds a transaction, normalising the op order (shard-major) so the
    /// involved-shard list is deterministic.
    pub fn new(id: TxnId, client: ClientId, mut ops: Vec<Operation>) -> Self {
        ops.sort_by_key(|o| (o.shard, o.key));
        Transaction {
            id,
            client,
            ops,
            remote_reads: Vec::new(),
            trace: None,
        }
    }

    /// The set of involved shards `ℑ`, sorted by ring identifier,
    /// deduplicated. Includes shards referenced only by remote reads, since
    /// those shards must participate to supply their values.
    pub fn involved_shards(&self) -> Vec<ShardId> {
        let mut shards: Vec<ShardId> = self
            .ops
            .iter()
            .map(|o| o.shard)
            .chain(self.remote_reads.iter().flat_map(|r| [r.reader, r.owner]))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// True when the transaction touches a single shard only.
    pub fn is_single_shard(&self) -> bool {
        self.involved_shards().len() == 1
    }

    /// True when the transaction has cross-shard execution dependencies
    /// (a *complex* cst, §8.8).
    pub fn is_complex(&self) -> bool {
        !self.remote_reads.is_empty()
    }

    /// The read-write set restricted to one shard: the keys a replica of
    /// `shard` must lock for this transaction (§4.3.5).
    pub fn rw_set_for(&self, shard: ShardId) -> ReadWriteSet {
        let mut rw = ReadWriteSet::default();
        for op in &self.ops {
            if op.shard == shard {
                if op.kind.writes() {
                    rw.writes.push(op.key);
                } else {
                    rw.reads.push(op.key);
                }
            }
        }
        rw.reads.sort_unstable();
        rw.reads.dedup();
        rw.writes.sort_unstable();
        rw.writes.dedup();
        rw
    }

    /// All keys the transaction locks in `shard` (reads and writes; the
    /// paper locks "all the read-write sets that transaction Tℑ needs to
    /// access in shard S").
    pub fn keys_in(&self, shard: ShardId) -> Vec<Key> {
        let mut keys: Vec<Key> = self
            .ops
            .iter()
            .filter(|o| o.shard == shard)
            .map(|o| o.key)
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Do two transactions conflict at `shard` (access at least one common
    /// key there, at least one side writing)?
    pub fn conflicts_with_at(&self, other: &Transaction, shard: ShardId) -> bool {
        for a in self.ops.iter().filter(|o| o.shard == shard) {
            for b in other.ops.iter().filter(|o| o.shard == shard) {
                if a.key == b.key && (a.kind.writes() || b.kind.writes()) {
                    return true;
                }
            }
        }
        false
    }
}

/// Per-shard read/write key sets of a transaction.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadWriteSet {
    /// Keys read (shared locks).
    pub reads: Vec<Key>,
    /// Keys written (exclusive locks).
    pub writes: Vec<Key>,
}

impl ReadWriteSet {
    /// Every key in the set, reads then writes, deduplicated.
    pub fn all_keys(&self) -> Vec<Key> {
        let mut keys = self.reads.clone();
        keys.extend_from_slice(&self.writes);
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// True when both read and write sets are empty.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

/// Identifier of a consensus batch: the primary of a shard aggregates
/// client transactions into batches and runs consensus per batch (§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BatchId(pub u64);

impl fmt::Display for BatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A batch of transactions — the consensus unit. "We expect each block to
/// include all the transactions that access the same shards" (§7), so a
/// batch is either all single-shard (for one shard) or all cross-shard with
/// an identical involved-shard set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    /// Unique id of the batch.
    pub id: BatchId,
    /// The transactions, in proposal order.
    pub txns: Vec<Transaction>,
}

impl Batch {
    /// Creates a batch. Panics in debug builds if the transactions do not
    /// share an identical involved-shard set (the block rule of §7).
    pub fn new(id: BatchId, txns: Vec<Transaction>) -> Self {
        debug_assert!(
            txns.windows(2)
                .all(|w| w[0].involved_shards() == w[1].involved_shards()),
            "batch must contain transactions with identical involved shards"
        );
        Batch { id, txns }
    }

    /// Creates a batch without the identical-involved-shards check. Used
    /// by fully-replicated protocols (Fig 1 baselines), where every
    /// replica holds all data and the block rule of §7 does not apply.
    pub fn new_unchecked(id: BatchId, txns: Vec<Transaction>) -> Self {
        Batch { id, txns }
    }

    /// Involved shards of the batch (from its first transaction).
    pub fn involved_shards(&self) -> Vec<ShardId> {
        self.txns
            .first()
            .map(|t| t.involved_shards())
            .unwrap_or_default()
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True when the batch contains no transactions.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Union of all keys the batch locks at `shard`, deduplicated.
    pub fn keys_in(&self, shard: ShardId) -> Vec<Key> {
        let mut keys: Vec<Key> = self.txns.iter().flat_map(|t| t.keys_in(shard)).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Total remote reads across the batch (complex-cst load, Fig 10).
    pub fn remote_read_count(&self) -> usize {
        self.txns.iter().map(|t| t.remote_reads.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(shard: u32, key: Key, kind: OperationKind) -> Operation {
        Operation {
            shard: ShardId(shard),
            key,
            kind,
        }
    }

    #[test]
    fn involved_shards_sorted_dedup() {
        let t = Transaction::new(
            TxnId(1),
            ClientId(1),
            vec![
                op(3, 30, OperationKind::Write),
                op(1, 10, OperationKind::Read),
                op(3, 31, OperationKind::Read),
                op(0, 5, OperationKind::ReadModifyWrite),
            ],
        );
        assert_eq!(
            t.involved_shards(),
            vec![ShardId(0), ShardId(1), ShardId(3)]
        );
        assert!(!t.is_single_shard());
        assert!(!t.is_complex());
    }

    #[test]
    fn remote_reads_extend_involvement_and_mark_complex() {
        let mut t = Transaction::new(TxnId(2), ClientId(1), vec![op(0, 1, OperationKind::Write)]);
        t.remote_reads.push(RemoteRead {
            reader: ShardId(0),
            owner: ShardId(4),
            key: 99,
        });
        assert!(t.is_complex());
        assert_eq!(t.involved_shards(), vec![ShardId(0), ShardId(4)]);
    }

    #[test]
    fn rw_set_partitions_reads_and_writes() {
        let t = Transaction::new(
            TxnId(3),
            ClientId(2),
            vec![
                op(1, 10, OperationKind::Read),
                op(1, 11, OperationKind::Write),
                op(1, 12, OperationKind::ReadModifyWrite),
                op(2, 20, OperationKind::Write),
            ],
        );
        let rw = t.rw_set_for(ShardId(1));
        assert_eq!(rw.reads, vec![10]);
        assert_eq!(rw.writes, vec![11, 12]);
        assert_eq!(rw.all_keys(), vec![10, 11, 12]);
        assert_eq!(t.keys_in(ShardId(2)), vec![20]);
        assert!(t.rw_set_for(ShardId(5)).is_empty());
    }

    #[test]
    fn conflict_requires_common_key_and_a_writer() {
        let a = Transaction::new(TxnId(1), ClientId(1), vec![op(0, 7, OperationKind::Write)]);
        let b = Transaction::new(TxnId(2), ClientId(2), vec![op(0, 7, OperationKind::Read)]);
        let c = Transaction::new(TxnId(3), ClientId(3), vec![op(0, 8, OperationKind::Write)]);
        let d = Transaction::new(TxnId(4), ClientId(4), vec![op(0, 7, OperationKind::Read)]);
        assert!(a.conflicts_with_at(&b, ShardId(0)));
        assert!(!a.conflicts_with_at(&c, ShardId(0)));
        // read-read never conflicts
        assert!(!b.conflicts_with_at(&d, ShardId(0)));
        // conflicts are per-shard
        assert!(!a.conflicts_with_at(&b, ShardId(1)));
    }

    #[test]
    fn batch_union_keys_and_counts() {
        let t1 = Transaction::new(TxnId(1), ClientId(1), vec![op(0, 1, OperationKind::Write)]);
        let t2 = Transaction::new(TxnId(2), ClientId(2), vec![op(0, 1, OperationKind::Write)]);
        let t3 = Transaction::new(TxnId(3), ClientId(3), vec![op(0, 2, OperationKind::Read)]);
        let b = Batch::new(BatchId(0), vec![t1, t2, t3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.keys_in(ShardId(0)), vec![1, 2]);
        assert_eq!(b.involved_shards(), vec![ShardId(0)]);
        assert_eq!(b.remote_read_count(), 0);
    }
}
