//! Causal trace context for cross-shard transactions.
//!
//! RingBFT's defining cost is the ring-order journey of a cross-shard
//! transaction — process, forward, re-transmit across every involved
//! shard (§4). A sampled transaction carries a [`TraceContext`] from the
//! issuing client through every consensus and Forward hop, so each
//! replica can stamp *spans* (phase, shard, replica, node-local start
//! and duration) into its local trace ring keyed by the trace id.
//!
//! Timelines are assembled *hop-relatively*: replicas never compare
//! wall clocks across nodes. The hop counter — incremented each time
//! the transaction is forwarded along the ring — gives every span an
//! unambiguous position on the ring journey even when ring dumps arrive
//! out of order or from skewed clocks.

use serde::{Deserialize, Serialize};

/// Trace context attached to a sampled transaction: a 64-bit trace id
/// plus the ring-hop counter at the point the carrying message was sent.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TraceContext {
    /// Globally unique (per run) trace identifier.
    pub trace_id: u64,
    /// Ring-hop counter: 0 at the initiator shard, incremented by each
    /// Forward along the ring (first and second rotation alike).
    pub hop: u32,
}

impl TraceContext {
    /// A fresh trace at hop 0.
    pub fn new(trace_id: u64) -> TraceContext {
        TraceContext { trace_id, hop: 0 }
    }

    /// The context one Forward hop later.
    pub fn next_hop(self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            hop: self.hop.saturating_add(1),
        }
    }
}

/// Deterministic sampling decision: transaction `id` is traced at a
/// `1 / rate` sampling rate. `rate = 0` disables tracing entirely,
/// `rate = 1` traces everything. Deterministic in the id so every
/// driver (simulator, TCP cluster, bench) samples the same
/// transactions and tests can pick ids they know are sampled.
#[inline]
pub fn sampled(id: u64, rate: u64) -> bool {
    rate > 0 && id.is_multiple_of(rate)
}

/// Derives the trace id for a sampled transaction from its id. A
/// Fibonacci-hash spread keeps trace ids well-distributed even though
/// transaction ids are sequential per namespace, while staying
/// deterministic across drivers.
#[inline]
pub fn trace_id_for(txn_id: u64) -> u64 {
    // Never 0: collectors use 0 as "absent" in compact field encodings.
    txn_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_gated() {
        assert!(!sampled(10, 0), "rate 0 disables tracing");
        assert!(sampled(10, 1));
        assert!(sampled(64, 64));
        assert!(!sampled(65, 64));
        assert_eq!(sampled(42, 7), sampled(42, 7));
    }

    #[test]
    fn hop_advances_and_saturates() {
        let t = TraceContext::new(9);
        assert_eq!(t.hop, 0);
        assert_eq!(t.next_hop().hop, 1);
        let max = TraceContext {
            trace_id: 9,
            hop: u32::MAX,
        };
        assert_eq!(max.next_hop().hop, u32::MAX);
    }

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        assert_ne!(trace_id_for(0), 0);
        assert_ne!(trace_id_for(1), trace_id_for(2));
    }
}
