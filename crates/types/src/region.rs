//! The fifteen Google Cloud regions used by the paper's evaluation (§8).
//!
//! The paper deploys ResilientDB "in fifteen regions across five
//! continents". Experiments with fewer than 15 shards pick regions in the
//! listed order. We reproduce that list and the deployment rule here; the
//! pairwise latency/bandwidth model lives in `ringbft-simnet`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the fifteen GCP regions of the paper's testbed, in the paper's
/// stated order (which also determines shard placement for < 15 shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Region {
    /// us-west1 (Oregon)
    Oregon = 0,
    /// us-central1 (Iowa)
    Iowa = 1,
    /// northamerica-northeast1 (Montreal)
    Montreal = 2,
    /// europe-west4 (Netherlands)
    Netherlands = 3,
    /// asia-east1 (Taiwan)
    Taiwan = 4,
    /// australia-southeast1 (Sydney)
    Sydney = 5,
    /// asia-southeast1 (Singapore)
    Singapore = 6,
    /// us-east1 (South Carolina)
    SouthCarolina = 7,
    /// us-east4 (North Virginia)
    NorthVirginia = 8,
    /// us-west2 (Los Angeles)
    LosAngeles = 9,
    /// us-west4 (Las Vegas)
    LasVegas = 10,
    /// europe-west2 (London)
    London = 11,
    /// europe-west1 (Belgium)
    Belgium = 12,
    /// asia-northeast1 (Tokyo)
    Tokyo = 13,
    /// asia-east2 (Hong Kong)
    HongKong = 14,
}

impl Region {
    /// All fifteen regions in the paper's deployment order.
    pub const ALL: [Region; 15] = [
        Region::Oregon,
        Region::Iowa,
        Region::Montreal,
        Region::Netherlands,
        Region::Taiwan,
        Region::Sydney,
        Region::Singapore,
        Region::SouthCarolina,
        Region::NorthVirginia,
        Region::LosAngeles,
        Region::LasVegas,
        Region::London,
        Region::Belgium,
        Region::Tokyo,
        Region::HongKong,
    ];

    /// Region used for the `i`-th shard: "In any experiment involving less
    /// than 15 shards, the choice of the shards is in the order we have
    /// mentioned above" (§8). Wraps around for more than fifteen shards.
    #[inline]
    pub fn for_shard(i: usize) -> Region {
        Region::ALL[i % Region::ALL.len()]
    }

    /// Zero-based index of this region in [`Region::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable region name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Region::Oregon => "Oregon",
            Region::Iowa => "Iowa",
            Region::Montreal => "Montreal",
            Region::Netherlands => "Netherlands",
            Region::Taiwan => "Taiwan",
            Region::Sydney => "Sydney",
            Region::Singapore => "Singapore",
            Region::SouthCarolina => "South Carolina",
            Region::NorthVirginia => "North Virginia",
            Region::LosAngeles => "Los Angeles",
            Region::LasVegas => "Las Vegas",
            Region::London => "London",
            Region::Belgium => "Belgium",
            Region::Tokyo => "Tokyo",
            Region::HongKong => "Hong Kong",
        }
    }

    /// Rough continent bucket, used by the latency model.
    pub fn continent(self) -> Continent {
        match self {
            Region::Oregon
            | Region::Iowa
            | Region::Montreal
            | Region::SouthCarolina
            | Region::NorthVirginia
            | Region::LosAngeles
            | Region::LasVegas => Continent::NorthAmerica,
            Region::Netherlands | Region::London | Region::Belgium => Continent::Europe,
            Region::Taiwan | Region::Singapore | Region::Tokyo | Region::HongKong => {
                Continent::Asia
            }
            Region::Sydney => Continent::Oceania,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Continent bucket for coarse latency modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Continent {
    /// The Americas regions.
    NorthAmerica,
    /// European regions.
    Europe,
    /// Asian regions.
    Asia,
    /// Australia.
    Oceania,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_regions_in_paper_order() {
        assert_eq!(Region::ALL.len(), 15);
        assert_eq!(Region::ALL[0], Region::Oregon);
        assert_eq!(Region::ALL[14], Region::HongKong);
        // Index round-trips.
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn shard_placement_follows_paper_order_and_wraps() {
        assert_eq!(Region::for_shard(0), Region::Oregon);
        assert_eq!(Region::for_shard(3), Region::Netherlands);
        assert_eq!(Region::for_shard(15), Region::Oregon);
        assert_eq!(Region::for_shard(16), Region::Iowa);
    }

    #[test]
    fn continents_cover_five_buckets() {
        use std::collections::HashSet;
        let continents: HashSet<_> = Region::ALL.iter().map(|r| r.continent()).collect();
        assert_eq!(continents.len(), 4); // five continents in paper; NA counted once here
        assert_eq!(Region::Sydney.continent(), Continent::Oceania);
        assert_eq!(Region::London.continent(), Continent::Europe);
    }
}
