//! Core types shared by every crate in the RingBFT reproduction.
//!
//! This crate is dependency-light on purpose: it defines the identifiers,
//! transaction model, ring-order arithmetic, system configuration, and the
//! sans-io [`sansio::Action`] vocabulary that protocol state
//! machines emit and the simulator interprets.
//!
//! The paper ("RingBFT: Resilient Consensus over Sharded Ring Topology",
//! EDBT 2022) models a system `𝔖` of shards, each shard `S` replicated by a
//! set `ℜS` of replicas with `n ≥ 3f + 1`. Transactions are *deterministic*:
//! their read-write sets are known before consensus starts (§3). Shards are
//! arranged in a logical ring and cross-shard transactions visit their
//! involved shards in ring order (§4.2).

pub mod config;
pub mod hole;
pub mod ids;
pub mod region;
pub mod ring;
pub mod sansio;
pub mod time;
pub mod trace;
pub mod txn;
pub mod wire;

pub use config::{Durability, ProtocolKind, ShardConfig, SystemConfig, DELTA_CHAIN_KEEP};
pub use hole::{CommitCertificate, HoleReply, HoleRequest};
pub use ids::{ClientId, NodeId, ReplicaId, SeqNum, ShardId, ViewNum};
pub use region::Region;
pub use ring::RingOrder;
pub use sansio::{Action, Outbox, ProtocolNode, TimerKind};
pub use time::{Duration, Instant};
pub use trace::TraceContext;
pub use txn::{Batch, BatchId, Operation, OperationKind, ReadWriteSet, Transaction, TxnId};
