//! Ring-order arithmetic (§3 "Ring Order", §4.2.1).
//!
//! Shards are logically arranged in a ring; each shard has a position
//! `id(S)`. For every cross-shard transaction the *initiator shard* is the
//! involved shard with the lowest ring position, and the transaction flows
//! through the involved shards in increasing ring order, wrapping back to
//! the initiator ("at most two rotations around the ring").
//!
//! The paper notes RingBFT "can also adopt other complex permutations of
//! these identifiers"; [`RingOrder`] therefore supports an optional
//! rotation offset, which permutes positions while preserving the ring
//! structure (and hence all deadlock-freedom arguments).

use crate::ids::ShardId;
use serde::{Deserialize, Serialize};

/// The ring order over a system of `z` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingOrder {
    /// Total number of shards `z = |𝔖|`.
    z: u32,
    /// Rotation offset applied to raw shard ids to obtain ring positions.
    /// `0` yields the paper's "lowest to highest identifier" policy.
    offset: u32,
}

impl RingOrder {
    /// The identity ring order over `z` shards (increasing identifiers).
    pub fn new(z: u32) -> Self {
        assert!(z > 0, "ring requires at least one shard");
        RingOrder { z, offset: 0 }
    }

    /// A rotated ring order: shard with raw id `offset` occupies position 0.
    pub fn rotated(z: u32, offset: u32) -> Self {
        assert!(z > 0, "ring requires at least one shard");
        RingOrder {
            z,
            offset: offset % z,
        }
    }

    /// Number of shards in the ring.
    #[inline]
    pub fn len(&self) -> u32 {
        self.z
    }

    /// Rings are never empty (constructors assert `z > 0`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Ring position of a shard under this order.
    #[inline]
    pub fn position(&self, s: ShardId) -> u32 {
        debug_assert!(s.0 < self.z, "shard {s} outside ring of {} shards", self.z);
        (s.0 + self.z - self.offset) % self.z
    }

    /// `FirstInRingOrder(ℑ)` — the initiator shard of an involved set:
    /// the involved shard with the smallest ring position (§4.2.1).
    ///
    /// `involved` must be non-empty; every member must be a valid shard.
    pub fn first(&self, involved: &[ShardId]) -> ShardId {
        *involved
            .iter()
            .min_by_key(|s| self.position(**s))
            .expect("involved-shard set must be non-empty")
    }

    /// The last involved shard in ring order (the one that wraps back to
    /// the initiator at the end of the first rotation).
    pub fn last(&self, involved: &[ShardId]) -> ShardId {
        *involved
            .iter()
            .max_by_key(|s| self.position(**s))
            .expect("involved-shard set must be non-empty")
    }

    /// `NextInRingOrder(ℑ)` from `current`: the involved shard with the
    /// smallest ring position strictly greater than `current`'s, wrapping
    /// to the initiator when `current` is last.
    pub fn next(&self, involved: &[ShardId], current: ShardId) -> ShardId {
        let cur = self.position(current);
        involved
            .iter()
            .filter(|s| self.position(**s) > cur)
            .min_by_key(|s| self.position(**s))
            .copied()
            .unwrap_or_else(|| self.first(involved))
    }

    /// `PrevInRingOrder(ℑ)` from `current`: the involved shard preceding
    /// `current`, wrapping to the last shard when `current` is the
    /// initiator.
    pub fn prev(&self, involved: &[ShardId], current: ShardId) -> ShardId {
        let cur = self.position(current);
        involved
            .iter()
            .filter(|s| self.position(**s) < cur)
            .max_by_key(|s| self.position(**s))
            .copied()
            .unwrap_or_else(|| self.last(involved))
    }

    /// Is `s` the initiator (first in ring order) of `involved`?
    pub fn is_first(&self, involved: &[ShardId], s: ShardId) -> bool {
        self.first(involved) == s
    }

    /// Is `s` the last involved shard in ring order?
    pub fn is_last(&self, involved: &[ShardId], s: ShardId) -> bool {
        self.last(involved) == s
    }

    /// The full traversal order of an involved set, starting at the
    /// initiator: the path a cst takes during one rotation.
    pub fn traversal(&self, involved: &[ShardId]) -> Vec<ShardId> {
        let mut order: Vec<ShardId> = involved.to_vec();
        order.sort_by_key(|s| self.position(*s));
        order.dedup();
        order
    }

    /// Number of ring hops (Forward messages sent shard-to-shard) for one
    /// full rotation over `involved`, i.e. the path length including the
    /// wrap-around edge back to the initiator.
    pub fn rotation_hops(&self, involved: &[ShardId]) -> usize {
        let t = self.traversal(involved);
        if t.len() <= 1 {
            0
        } else {
            t.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(ids: &[u32]) -> Vec<ShardId> {
        ids.iter().map(|&i| ShardId(i)).collect()
    }

    #[test]
    fn identity_order_first_next_prev() {
        let ring = RingOrder::new(6);
        let inv = sh(&[1, 3, 5]);
        assert_eq!(ring.first(&inv), ShardId(1));
        assert_eq!(ring.last(&inv), ShardId(5));
        assert_eq!(ring.next(&inv, ShardId(1)), ShardId(3));
        assert_eq!(ring.next(&inv, ShardId(3)), ShardId(5));
        // wrap-around: last forwards to initiator
        assert_eq!(ring.next(&inv, ShardId(5)), ShardId(1));
        assert_eq!(ring.prev(&inv, ShardId(1)), ShardId(5));
        assert_eq!(ring.prev(&inv, ShardId(5)), ShardId(3));
    }

    #[test]
    fn single_shard_involved_set() {
        let ring = RingOrder::new(4);
        let inv = sh(&[2]);
        assert_eq!(ring.first(&inv), ShardId(2));
        assert_eq!(ring.last(&inv), ShardId(2));
        assert_eq!(ring.next(&inv, ShardId(2)), ShardId(2));
        assert_eq!(ring.rotation_hops(&inv), 0);
    }

    #[test]
    fn traversal_follows_ring_positions() {
        let ring = RingOrder::new(15);
        let inv = sh(&[9, 2, 14, 0]);
        assert_eq!(ring.traversal(&inv), sh(&[0, 2, 9, 14]));
        assert_eq!(ring.rotation_hops(&inv), 4);
    }

    #[test]
    fn rotation_changes_initiator() {
        // Rotate so shard 3 occupies position 0: ring order 3,4,0,1,2.
        let ring = RingOrder::rotated(5, 3);
        let inv = sh(&[0, 4]);
        assert_eq!(ring.position(ShardId(3)), 0);
        assert_eq!(ring.first(&inv), ShardId(4)); // position 1 < position 2
        assert_eq!(ring.traversal(&inv), sh(&[4, 0]));
        assert_eq!(ring.next(&inv, ShardId(0)), ShardId(4));
    }

    #[test]
    fn example_4_3_flow() {
        // Paper Example 4.3: ring S→U→V→W as shards 0..3; T over {S,U,V}.
        let ring = RingOrder::new(4);
        let inv = sh(&[0, 1, 2]);
        assert_eq!(ring.first(&inv), ShardId(0)); // S initiates
        assert_eq!(ring.next(&inv, ShardId(0)), ShardId(1)); // S → U
        assert_eq!(ring.next(&inv, ShardId(1)), ShardId(2)); // U → V
        assert_eq!(ring.next(&inv, ShardId(2)), ShardId(0)); // V wraps to S
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn first_of_empty_involved_panics() {
        RingOrder::new(3).first(&[]);
    }
}
