//! System configuration: shards, replication degree, fault thresholds,
//! workload knobs, and timer durations.
//!
//! Fault-tolerance requirement (§3): at each shard `S`, `n ≥ 3f + 1`.
//! Shards may have different sizes; the per-shard `f` is derived as
//! `⌊(n − 1) / 3⌋`.

use crate::ids::{ReplicaId, ShardId};
use crate::region::Region;
use crate::time::Duration;
use crate::txn::Key;
use serde::{Deserialize, Serialize};

/// Which consensus protocol the system runs. `RingBft`, `Ahl` and
/// `Sharper` are sharded protocols (Fig 8–10); the rest are single-shard
/// protocols used for the Figure 1 scalability comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// RingBFT — this paper's contribution.
    RingBft,
    /// AHL: reference committee + two-phase commit (Dang et al., SIGMOD'19).
    Ahl,
    /// Sharper: initiator primary + global all-to-all (Amiri et al.).
    Sharper,
    /// PBFT (Castro & Liskov).
    Pbft,
    /// Zyzzyva speculative BFT.
    Zyzzyva,
    /// SBFT collector-based BFT.
    Sbft,
    /// Proof-of-Execution.
    Poe,
    /// HotStuff linear 3-chain BFT.
    HotStuff,
    /// RCC: resilient concurrent consensus (multi-primary PBFT).
    Rcc,
}

impl ProtocolKind {
    /// Short display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::RingBft => "RingBFT",
            ProtocolKind::Ahl => "AHL",
            ProtocolKind::Sharper => "SharPer",
            ProtocolKind::Pbft => "PBFT",
            ProtocolKind::Zyzzyva => "Zyzzyva",
            ProtocolKind::Sbft => "SBFT",
            ProtocolKind::Poe => "PoE",
            ProtocolKind::HotStuff => "HotStuff",
            ProtocolKind::Rcc => "RCC",
        }
    }

    /// True for protocols that partition data across shards.
    pub fn is_sharded(self) -> bool {
        matches!(
            self,
            ProtocolKind::RingBft | ProtocolKind::Ahl | ProtocolKind::Sharper
        )
    }
}

/// Configuration of one shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Ring identifier.
    pub id: ShardId,
    /// Number of replicas `n` in this shard. Must satisfy `n ≥ 3f + 1`
    /// with `f ≥ 0`; meaningful Byzantine tolerance needs `n ≥ 4`.
    pub n: usize,
    /// GCP region hosting the shard's replicas.
    pub region: Region,
}

impl ShardConfig {
    /// Maximum tolerated Byzantine replicas: `f = ⌊(n − 1) / 3⌋`.
    #[inline]
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// Number of non-faulty replicas assumed: `nf = n − f`. Quorums of
    /// `nf` matching messages drive the prepare/commit phases (Fig 5).
    #[inline]
    pub fn nf(&self) -> usize {
        self.n - self.f()
    }

    /// All replica ids of this shard.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.n as u32).map(move |i| ReplicaId::new(self.id, i))
    }
}

/// Timer durations (§5 "Triggering of Timers"): local < remote < transmit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimerConfig {
    /// Local replication watchdog (shortest; triggers view change).
    pub local: Duration,
    /// Remote watchdog on the previous shard (triggers remote view change).
    pub remote: Duration,
    /// Forward retransmission timer (longest).
    pub transmit: Duration,
    /// Client response watchdog.
    pub client: Duration,
}

impl Default for TimerConfig {
    fn default() -> Self {
        // Defaults sized for the simulated WAN (RTTs up to ~300 ms):
        // local 2 s < remote 4 s < transmit 6 s, client 8 s.
        TimerConfig {
            local: Duration::from_secs(2),
            remote: Duration::from_secs(4),
            transmit: Duration::from_secs(6),
            client: Duration::from_secs(8),
        }
    }
}

impl TimerConfig {
    /// Validates the paper's required ordering local < remote < transmit.
    pub fn is_well_ordered(&self) -> bool {
        self.local < self.remote && self.remote < self.transmit
    }
}

/// Checkpoint windows of delta snapshots (and quorum-stable digests)
/// the recovery subsystem retains per replica — and therefore the upper
/// bound on [`SystemConfig::full_snapshot_every`]: a sparser full-capture
/// cadence would break donor chain continuity between the full base and
/// the oldest retained delta. Defined here (rather than in
/// `ringbft-recovery`, which consumes it) so config validation and the
/// recovery manager's retention agree by compiler, not by comment.
pub const DELTA_CHAIN_KEEP: usize = 8;

/// When the replica's write-ahead log forces its records to durable
/// storage (`fsync`). Orthogonal to *what* is logged — commits,
/// checkpoint votes and checkpoint snapshots are always appended; the
/// knob only governs how much of the append tail a power-loss crash
/// may lose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Durability {
    /// Never fsync explicitly. A process kill loses nothing (the OS
    /// holds the written bytes); a power loss may lose the whole
    /// un-synced tail. Restart then leans on the delta-chain transfer
    /// from the last record that did survive.
    None,
    /// Group commit: fsync at most once per this many milliseconds,
    /// driven by the replica's WAL flush timer. The paper-reproduction
    /// default — bounds the power-loss exposure window without paying
    /// an fsync per sequence.
    Batched(u64),
    /// fsync after every appended record. Crash-loss window of zero,
    /// at one fsync per append.
    Strict,
}

impl Default for Durability {
    /// Configs predating the knob deserialize to `Batched(50)`.
    fn default() -> Self {
        Durability::Batched(50)
    }
}

impl Durability {
    /// The group-commit flush interval, if batching.
    pub fn batch_interval(self) -> Option<Duration> {
        match self {
            Durability::Batched(ms) => Some(Duration::from_millis(ms)),
            _ => None,
        }
    }
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Consensus protocol under test.
    pub protocol: ProtocolKind,
    /// Participating shards, indexed by ring position.
    pub shards: Vec<ShardConfig>,
    /// Transactions per consensus batch (paper standard: 100).
    pub batch_size: usize,
    /// Nagle-style adaptive batch flushing at the primary: while the
    /// consensus pipe is idle (no proposed-but-uncommitted slot and no
    /// in-flight execution job), a partial pool is cut and proposed
    /// immediately — batching only adds latency when there is nothing
    /// to amortize against. Once slots are in flight the pool grows
    /// toward `batch_size` exactly as with the fixed policy, so peak
    /// throughput is unchanged while light-load latency drops from the
    /// flush-timer bound to one round trip. Off (the default) keeps
    /// batch cuts byte-identical to the fixed `batch_size` + timer
    /// policy, which the fault-scenario seeds rely on. Configs
    /// predating the knob deserialize to off.
    #[serde(default)]
    pub adaptive_batching: bool,
    /// Active YCSB key space (paper: 600 k records), partitioned across
    /// shards.
    pub num_keys: u64,
    /// Number of clients issuing transactions (paper standard: up to 50 k).
    pub clients: usize,
    /// Fraction of transactions that are cross-shard, `0.0..=1.0`
    /// (paper standard: 0.30).
    pub cross_shard_rate: f64,
    /// Number of involved shards per cross-shard transaction (paper
    /// standard: all shards).
    pub involved_shards: usize,
    /// Remote reads per complex cst (0 = simple csts only; Fig 10 varies
    /// 8–64).
    pub remote_reads: usize,
    /// Timer durations.
    pub timers: TimerConfig,
    /// Stable-checkpoint interval in consensus sequence numbers (§5,
    /// A3): every `checkpoint_interval`-th sequence triggers a
    /// checkpoint vote once executed, enabling log/ledger truncation and
    /// state transfer to in-dark replicas.
    pub checkpoint_interval: u64,
    /// Records per `StateChunk` during checkpoint state transfer
    /// (`ringbft-recovery`).
    pub state_chunk_records: usize,
    /// Checkpoint windows between *full* snapshot captures
    /// (`ringbft-recovery` delta checkpointing): in between, replicas
    /// capture only the records written since the previous checkpoint
    /// (O(churn) instead of O(state)), and state transfer ships the
    /// delta chain to laggards whose base the donor recognizes. `1`
    /// restores the pre-delta behaviour (every checkpoint is a full
    /// capture). Chains longer than the stable-digest memory
    /// (`ringbft-recovery`'s `KNOWN_STABLE_KEEP`) lose intermediate
    /// quorum anchors, so keep this ≤ 8.
    pub full_snapshot_every: u64,
    /// Seed of the deployment's key-distribution oracle
    /// (`ringbft_crypto::KeyStore`): every process of one cluster must
    /// share it so frame authenticators (HMACs, §3) verify.
    pub auth_seed: u64,
    /// Epoll reactor threads per hosted node in the real-network
    /// runtime (`ringbft-net`): each node's sockets are partitioned
    /// across this many poll loops by a stable peer hash. The per-node
    /// thread count is *fixed* at this value regardless of how many
    /// peers or clients connect (the old runtime spawned two threads
    /// per connection). 1 (the default) is right for loopback tests
    /// and small deployments; raise it to spread socket I/O across
    /// cores on replicas terminating many client connections. Ignored
    /// by the discrete-event simulator.
    pub reactor_shards: usize,
    /// Execution-pipeline workers per replica: `0` (the default) keeps
    /// the deterministic inline pipeline — MAC verification, batch
    /// hashing and fragment execution run on the consensus thread,
    /// byte-identical to the pre-pipeline replica (the simulator's
    /// fault-scenario seeds rely on this). A positive value moves the
    /// verify/hash and execution stages onto a fixed pool of that many
    /// worker threads (`ringbft-core`'s `ThreadedPipeline`); the
    /// recommended sizing is `min(4, cores − reactor_shards − 1)`
    /// (`ringbft_core::default_workers`). Configs predating the knob
    /// deserialize to `0`.
    #[serde(default)]
    pub pipeline_workers: usize,
    /// Ablation switch: send cross-shard Forward/Execute messages to
    /// *every* replica of the next shard instead of only the same-index
    /// counterpart. Quantifies the linear communication primitive's
    /// contribution (§4.3.6) — this is the communication pattern RingBFT
    /// explicitly avoids.
    #[serde(default)]
    pub ablation_quadratic_forward: bool,
    /// Ring-order rotation offset: the shard with this raw id occupies
    /// ring position 0. The paper's default policy is "lowest to highest
    /// identifier" (offset 0), but RingBFT "can also adopt other complex
    /// permutations of these identifiers" (§3); a rotation preserves the
    /// ring structure and hence every deadlock-freedom argument.
    #[serde(default)]
    pub ring_offset: u32,
    /// Causal-trace sampling rate: one in `trace_sample_rate`
    /// transactions carries a trace context and has spans stamped at
    /// every hop (`0` disables tracing, `1` traces everything). The
    /// decision is deterministic in the transaction id
    /// (`trace::sampled`), so both drivers and every replica agree on
    /// which transactions are traced. Configs predating the knob
    /// deserialize to `0` (off).
    #[serde(default)]
    pub trace_sample_rate: u64,
    /// Write-ahead-log fsync policy (`ringbft-store`'s WAL): `none`,
    /// `batched(ms)` group commit, or `strict` per-record fsync. Only
    /// consulted when a replica actually runs with a WAL attached
    /// (`ringbft-node --data-dir`, durable sim scenarios); configs
    /// predating the knob deserialize to the batched default.
    #[serde(default)]
    pub durability: Durability,
}

impl SystemConfig {
    /// A uniform system: `z` shards of `n` replicas each, placed in the
    /// paper's region order, with the paper's standard workload knobs.
    pub fn uniform(protocol: ProtocolKind, z: usize, n: usize) -> Self {
        assert!(z > 0, "need at least one shard");
        assert!(n >= 1, "need at least one replica per shard");
        let shards = (0..z)
            .map(|i| ShardConfig {
                id: ShardId(i as u32),
                n,
                region: Region::for_shard(i),
            })
            .collect();
        SystemConfig {
            protocol,
            shards,
            batch_size: 100,
            adaptive_batching: false,
            num_keys: 600_000,
            clients: 1_000,
            cross_shard_rate: 0.30,
            involved_shards: z,
            remote_reads: 0,
            timers: TimerConfig::default(),
            checkpoint_interval: 128,
            state_chunk_records: 4096,
            full_snapshot_every: 4,
            auth_seed: 0,
            reactor_shards: 1,
            pipeline_workers: 0,
            ablation_quadratic_forward: false,
            ring_offset: 0,
            trace_sample_rate: 64,
            durability: Durability::default(),
        }
    }

    /// Number of shards `z`.
    #[inline]
    pub fn z(&self) -> usize {
        self.shards.len()
    }

    /// Total replicas across all shards.
    pub fn total_replicas(&self) -> usize {
        self.shards.iter().map(|s| s.n).sum()
    }

    /// Shard configuration by id.
    #[inline]
    pub fn shard(&self, id: ShardId) -> &ShardConfig {
        &self.shards[id.index()]
    }

    /// The shard owning `key`: contiguous range partitioning of the key
    /// space, mirroring how the paper partitions the YCSB table so each
    /// shard "manages a unique partition of the data" (§3).
    pub fn shard_of_key(&self, key: Key) -> ShardId {
        let z = self.z() as u64;
        let per = self.num_keys.div_ceil(z);
        ShardId(((key % self.num_keys) / per) as u32)
    }

    /// Range of keys owned by `shard` (half-open).
    pub fn key_range(&self, shard: ShardId) -> std::ops::Range<Key> {
        let z = self.z() as u64;
        let per = self.num_keys.div_ceil(z);
        let lo = shard.0 as u64 * per;
        let hi = (lo + per).min(self.num_keys);
        lo..hi
    }

    /// The ring order in force (identity or rotated).
    pub fn ring_order(&self) -> crate::ring::RingOrder {
        crate::ring::RingOrder::rotated(self.z() as u32, self.ring_offset)
    }

    /// Validates structural invariants; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards.is_empty() {
            return Err("no shards configured".into());
        }
        if self.ring_offset as usize >= self.z().max(1) {
            return Err("ring_offset must be below the shard count".into());
        }
        for (i, s) in self.shards.iter().enumerate() {
            if s.id.index() != i {
                return Err(format!("shard at position {i} has id {}", s.id));
            }
            if s.n < 3 * s.f() + 1 {
                return Err(format!("shard {} violates n ≥ 3f+1", s.id));
            }
        }
        if !(0.0..=1.0).contains(&self.cross_shard_rate) {
            return Err("cross_shard_rate must be within [0, 1]".into());
        }
        if self.involved_shards == 0 || self.involved_shards > self.z() {
            return Err("involved_shards must be within 1..=z".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if !self.timers.is_well_ordered() {
            return Err("timers must satisfy local < remote < transmit".into());
        }
        if self.checkpoint_interval == 0 {
            return Err("checkpoint_interval must be positive".into());
        }
        if self.state_chunk_records == 0 {
            return Err("state_chunk_records must be positive".into());
        }
        if self.full_snapshot_every == 0 {
            return Err("full_snapshot_every must be positive".into());
        }
        if self.full_snapshot_every > DELTA_CHAIN_KEEP as u64 {
            return Err(format!(
                "full_snapshot_every must be within 1..={DELTA_CHAIN_KEEP} \
                 (the recovery subsystem's delta-chain memory)"
            ));
        }
        if self.num_keys < self.z() as u64 {
            return Err("need at least one key per shard".into());
        }
        if self.reactor_shards == 0 || self.reactor_shards > 64 {
            return Err("reactor_shards must be within 1..=64".into());
        }
        if self.pipeline_workers > 64 {
            return Err("pipeline_workers must be within 0..=64".into());
        }
        if let Durability::Batched(ms) = self.durability {
            if ms == 0 || ms > 60_000 {
                return Err("durability batched interval must be within 1..=60000 ms".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_thresholds_match_paper() {
        // Paper standard: 28 replicas/shard → f = 9, nf = 19.
        let s = ShardConfig {
            id: ShardId(0),
            n: 28,
            region: Region::Oregon,
        };
        assert_eq!(s.f(), 9);
        assert_eq!(s.nf(), 19);
        // Classic 4-replica shard → f = 1, nf = 3.
        let s4 = ShardConfig {
            id: ShardId(0),
            n: 4,
            region: Region::Oregon,
        };
        assert_eq!(s4.f(), 1);
        assert_eq!(s4.nf(), 3);
    }

    #[test]
    fn uniform_config_is_valid_and_placed_in_order() {
        let cfg = SystemConfig::uniform(ProtocolKind::RingBft, 9, 28);
        cfg.validate().unwrap();
        assert_eq!(cfg.z(), 9);
        assert_eq!(cfg.total_replicas(), 252);
        assert_eq!(cfg.shard(ShardId(0)).region, Region::Oregon);
        assert_eq!(cfg.shard(ShardId(3)).region, Region::Netherlands);
    }

    #[test]
    fn key_partitioning_covers_space_disjointly() {
        let cfg = SystemConfig::uniform(ProtocolKind::RingBft, 7, 4);
        let mut counts = [0u64; 7];
        for key in (0..cfg.num_keys).step_by(1013) {
            let s = cfg.shard_of_key(key);
            counts[s.index()] += 1;
            assert!(cfg.key_range(s).contains(&key));
        }
        assert!(counts.iter().all(|&c| c > 0), "all shards own keys");
    }

    #[test]
    fn key_range_boundaries() {
        let cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
        // 600k / 3 = 200k per shard.
        assert_eq!(cfg.key_range(ShardId(0)), 0..200_000);
        assert_eq!(cfg.key_range(ShardId(1)), 200_000..400_000);
        assert_eq!(cfg.key_range(ShardId(2)), 400_000..600_000);
        assert_eq!(cfg.shard_of_key(199_999), ShardId(0));
        assert_eq!(cfg.shard_of_key(200_000), ShardId(1));
    }

    #[test]
    fn reactor_shards_validated() {
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 2, 4);
        assert_eq!(cfg.reactor_shards, 1);
        cfg.reactor_shards = 0;
        assert!(cfg.validate().is_err());
        cfg.reactor_shards = 65;
        assert!(cfg.validate().is_err());
        cfg.reactor_shards = 4;
        cfg.validate().unwrap();
    }

    #[test]
    fn pipeline_workers_validated() {
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 2, 4);
        assert_eq!(cfg.pipeline_workers, 0, "inline by default");
        cfg.pipeline_workers = 4;
        cfg.validate().unwrap();
        cfg.pipeline_workers = 65;
        assert!(cfg.validate().is_err());
        cfg.pipeline_workers = 64;
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
        cfg.cross_shard_rate = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
        cfg.involved_shards = 4;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
        cfg.batch_size = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
        cfg.timers.local = Duration::from_secs(100);
        assert!(cfg.validate().is_err());

        // Delta checkpointing cadence: zero and beyond the recovery
        // manager's delta-chain memory are both rejected.
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
        cfg.full_snapshot_every = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
        cfg.full_snapshot_every = 9;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
        cfg.full_snapshot_every = 8;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn durability_knob_validated_and_defaulted() {
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 2, 4);
        assert_eq!(cfg.durability, Durability::Batched(50), "batched default");
        assert_eq!(
            cfg.durability.batch_interval(),
            Some(Duration::from_millis(50))
        );
        cfg.durability = Durability::Batched(0);
        assert!(cfg.validate().is_err());
        cfg.durability = Durability::Batched(60_001);
        assert!(cfg.validate().is_err());
        cfg.durability = Durability::Strict;
        assert!(Durability::Strict.batch_interval().is_none());
        cfg.validate().unwrap();
        cfg.durability = Durability::None;
        cfg.validate().unwrap();
    }

    #[test]
    fn timer_defaults_well_ordered() {
        assert!(TimerConfig::default().is_well_ordered());
    }

    #[test]
    fn protocol_names_match_legends() {
        assert_eq!(ProtocolKind::RingBft.name(), "RingBFT");
        assert_eq!(ProtocolKind::Sharper.name(), "SharPer");
        assert!(ProtocolKind::Ahl.is_sharded());
        assert!(!ProtocolKind::HotStuff.is_sharded());
    }
}
