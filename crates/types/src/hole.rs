//! Hole-fetch payloads: commit-certificate recovery for a single missed
//! sequence number (§5 liveness, complementing the A3 checkpoint state
//! transfer).
//!
//! A replica that misses the commit of one sequence (a dropped Commit
//! quorum, a lost Preprepare) wedges its sequence-ordered lock admission
//! until the next stable checkpoint — and if more than `f` replicas of a
//! shard wedge this way, no checkpoint ever stabilizes. Hole fetch is
//! the lightweight repair: ask a same-shard peer for exactly the missing
//! `(view, seq)` commit certificate plus the ordered batch, verify the
//! `nf`-strong certificate and the batch digest, and install the commit
//! through the normal admission path. No snapshot moves; recovery cost
//! is O(batch), not O(state).
//!
//! The structs here are pure wire payloads (serde-derived, carried
//! inside `ringbft-recovery`'s `RecoveryMsg`); certificate *verification*
//! lives next to the PBFT engine, which owns the quorum arithmetic.

use crate::ids::{SeqNum, ViewNum};
use crate::txn::{Batch, Digest};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A commit certificate: evidence that a shard quorum committed `digest`
/// at `(view, seq)`. Signatures are modeled as the signer index set (the
/// same modeling `ForwardMsg::cert_signers` uses for cross-shard
/// certificates); a valid certificate names at least `nf = n − f`
/// distinct in-range replicas.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitCertificate {
    /// View the batch committed in.
    pub view: ViewNum,
    /// Sequence number the certificate covers.
    pub seq: SeqNum,
    /// Batch digest `Δ` the quorum committed.
    pub digest: Digest,
    /// Indices of the replicas whose signed Commits form the
    /// certificate.
    pub signers: Vec<u32>,
}

/// "Send me the commit certificate and batch for `seq`" — unicast to a
/// single same-shard peer at a time (the probe timer rotates the donor,
/// mirroring the state-transfer discipline).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HoleRequest {
    /// The sequence number the requester is missing.
    pub seq: SeqNum,
}

/// A donor's answer: the certificate plus the full ordered batch, enough
/// for the requester to verify and install the commit without any other
/// context.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HoleReply {
    /// The commit certificate for the requested sequence.
    pub cert: CommitCertificate,
    /// The batch the certificate commits (its digest must equal
    /// `cert.digest`).
    pub batch: Arc<Batch>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Transaction;
    use crate::{BatchId, ClientId, TxnId};

    #[test]
    fn payloads_round_trip_serde() {
        let batch = Arc::new(Batch::new_unchecked(
            BatchId(7),
            vec![Transaction::new(TxnId(1), ClientId(2), vec![])],
        ));
        let reply = HoleReply {
            cert: CommitCertificate {
                view: ViewNum(3),
                seq: SeqNum(42),
                digest: [9; 32],
                signers: vec![0, 1, 3],
            },
            batch,
        };
        let bytes = bincode::serialize(&reply).expect("serialize");
        let back: HoleReply = bincode::deserialize(&bytes).expect("deserialize");
        assert_eq!(back, reply);
        let req = HoleRequest { seq: SeqNum(42) };
        let bytes = bincode::serialize(&req).expect("serialize");
        let back: HoleRequest = bincode::deserialize(&bytes).expect("deserialize");
        assert_eq!(back, req);
    }
}
