//! Wire-size model for consensus messages.
//!
//! The paper reports the message sizes observed during RingBFT consensus at
//! the standard settings (batch = 100 transactions, n = 28 ⇒ nf = 19):
//!
//! | message    | bytes |
//! |------------|-------|
//! | Preprepare | 5408  |
//! | Prepare    | 216   |
//! | Commit     | 269   |
//! | Forward    | 6147  |
//! | Checkpoint | 164   |
//! | Execute    | 1732  |
//!
//! The simulator charges bandwidth per message, so we need sizes that scale
//! correctly with batch size and quorum size. The model below is calibrated
//! to reproduce the paper's numbers exactly at the standard settings:
//!
//! * `Preprepare(b) = 208 + 52·b` — header/digest plus 52 bytes per YCSB
//!   read-modify-write transaction.
//! * `Forward(b, nf) = Preprepare(b) + 131 + 32·nf` — the forwarded request
//!   plus the commit certificate: `nf` compact per-replica attestations of
//!   32 bytes each (§4.3.6: the Forward carries DSs of `nf` Commit
//!   messages).
//! * `Execute(b, w) = 132 + 16·b·w` — updated write sets `Σ`: 16 bytes
//!   (key + value) per written record, `w` writes per transaction.
//! * Prepare/Commit/Checkpoint are batch-independent constants.

/// Bytes of protocol header per message (source, shard, view, sequence).
pub const HEADER_BYTES: u64 = 64;
/// Bytes of a message digest.
pub const DIGEST_BYTES: u64 = 32;
/// Bytes of a MAC authenticator (intra-shard messages, §3).
pub const MAC_BYTES: u64 = 32;
/// Bytes of a digital signature (cross-shard messages, §3).
pub const SIG_BYTES: u64 = 64;
/// Bytes of a compact per-replica commit attestation inside a certificate.
pub const ATTEST_BYTES: u64 = 32;
/// Bytes per transaction in a proposal (YCSB read-modify-write record).
pub const PER_TXN_BYTES: u64 = 52;
/// Bytes per updated (key, value) pair in an Execute write set.
pub const PER_WRITE_BYTES: u64 = 16;

/// Size of a Preprepare proposal carrying a batch of `batch` transactions.
#[inline]
pub fn preprepare_bytes(batch: usize) -> u64 {
    208 + PER_TXN_BYTES * batch as u64
}

/// Size of a Prepare vote (batch independent).
#[inline]
pub fn prepare_bytes() -> u64 {
    216
}

/// Size of a Commit vote (batch independent; slightly larger than Prepare
/// because cross-shard commits are digitally signed for non-repudiation).
#[inline]
pub fn commit_bytes() -> u64 {
    269
}

/// Size of a Forward message: forwarded request plus a commit certificate
/// of `nf` attestations (§4.3.6, Fig 5 line 16).
#[inline]
pub fn forward_bytes(batch: usize, nf: usize) -> u64 {
    preprepare_bytes(batch) + 131 + ATTEST_BYTES * nf as u64
}

/// Size of a Checkpoint message (batch independent).
#[inline]
pub fn checkpoint_bytes() -> u64 {
    164
}

/// Size of an Execute message carrying updated write sets `Σ` for a batch
/// with `writes_per_txn` written records per transaction (§4.3.7).
#[inline]
pub fn execute_bytes(batch: usize, writes_per_txn: usize) -> u64 {
    132 + PER_WRITE_BYTES * batch as u64 * writes_per_txn as u64
}

/// Size of a signed client request carrying one transaction (§4.3.1).
#[inline]
pub fn client_request_bytes(ops: usize) -> u64 {
    HEADER_BYTES + SIG_BYTES + PER_TXN_BYTES.max(ops as u64 * 12)
}

/// Size of a client response.
#[inline]
pub fn client_response_bytes() -> u64 {
    HEADER_BYTES + DIGEST_BYTES
}

/// Size of a ViewChange message referencing `prepared` prepared
/// certificates since the last stable checkpoint (PBFT view change).
#[inline]
pub fn view_change_bytes(prepared: usize) -> u64 {
    HEADER_BYTES + DIGEST_BYTES + MAC_BYTES + prepared as u64 * (DIGEST_BYTES + ATTEST_BYTES)
}

/// Size of a NewView message carrying `vc` view-change certificates.
#[inline]
pub fn new_view_bytes(vc: usize) -> u64 {
    HEADER_BYTES + MAC_BYTES + vc as u64 * (DIGEST_BYTES + ATTEST_BYTES)
}

/// Size of a RemoteView message (§5.1.2, Fig 6): a signed complaint
/// carrying the transaction digest.
#[inline]
pub fn remote_view_bytes() -> u64 {
    HEADER_BYTES + DIGEST_BYTES + SIG_BYTES
}

/// Bytes per key-value record in a state-transfer chunk: key, value,
/// and write-version, 8 bytes each.
pub const PER_RECORD_BYTES: u64 = 24;

/// Size of a StateRequest (checkpoint state transfer, A3): header, the
/// requester's watermark, and its advertised `(seq, digest)` base (the
/// chain point delta transfers resume from).
#[inline]
pub fn state_request_bytes() -> u64 {
    HEADER_BYTES + MAC_BYTES + 8 + 8 + DIGEST_BYTES
}

/// Bytes per link entry in a StatePlan: the link's endpoint `(seq,
/// digest)`, its optional base `(seq, digest)`, and its chunk count.
pub const PER_LINK_BYTES: u64 = 8 + DIGEST_BYTES + 8 + DIGEST_BYTES + 4;

/// Size of a StatePlan announcing a transfer of `links` chain links
/// (target binding, per-link metadata, and the donor's ledger base).
#[inline]
pub fn state_plan_bytes(links: usize) -> u64 {
    HEADER_BYTES + 2 * DIGEST_BYTES + MAC_BYTES + 24 + PER_LINK_BYTES * links as u64
}

/// Size of a StateChunk carrying `records` key-value records of one
/// chain link (target binding, link sequence, delta flag, chunk index).
#[inline]
pub fn state_chunk_bytes(records: usize) -> u64 {
    HEADER_BYTES + DIGEST_BYTES + MAC_BYTES + 21 + PER_RECORD_BYTES * records as u64
}

/// Size of a HoleRequest (commit-certificate recovery): header plus the
/// missing sequence number.
#[inline]
pub fn hole_request_bytes() -> u64 {
    HEADER_BYTES + MAC_BYTES + 8
}

/// Size of a HoleReply: the ordered batch (same payload a Preprepare
/// carries) plus a commit certificate of `signers` attestations and the
/// `(view, seq, digest)` binding.
#[inline]
pub fn hole_reply_bytes(batch: usize, signers: usize) -> u64 {
    preprepare_bytes(batch) + DIGEST_BYTES + MAC_BYTES + 16 + ATTEST_BYTES * signers as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Anchor test: at the paper's standard settings (batch 100, n = 28 so
    /// nf = 19, one write per cross-shard fragment) the model reproduces
    /// the reported sizes exactly.
    #[test]
    fn matches_paper_reported_sizes() {
        assert_eq!(preprepare_bytes(100), 5408);
        assert_eq!(prepare_bytes(), 216);
        assert_eq!(commit_bytes(), 269);
        assert_eq!(forward_bytes(100, 19), 6147);
        assert_eq!(checkpoint_bytes(), 164);
        assert_eq!(execute_bytes(100, 1), 1732);
    }

    #[test]
    fn sizes_scale_with_batch() {
        assert!(preprepare_bytes(1000) > preprepare_bytes(100));
        assert_eq!(
            preprepare_bytes(200) - preprepare_bytes(100),
            100 * PER_TXN_BYTES
        );
        assert_eq!(
            execute_bytes(100, 2) - execute_bytes(100, 1),
            100 * PER_WRITE_BYTES
        );
    }

    #[test]
    fn forward_scales_with_quorum() {
        assert_eq!(
            forward_bytes(100, 20) - forward_bytes(100, 19),
            ATTEST_BYTES
        );
    }

    #[test]
    fn hole_fetch_sizes_scale_with_batch_and_certificate() {
        assert!(hole_request_bytes() > 0);
        assert!(hole_reply_bytes(100, 19) > preprepare_bytes(100));
        assert_eq!(
            hole_reply_bytes(100, 20) - hole_reply_bytes(100, 19),
            ATTEST_BYTES
        );
        assert_eq!(
            hole_reply_bytes(200, 19) - hole_reply_bytes(100, 19),
            100 * PER_TXN_BYTES
        );
    }

    #[test]
    fn state_transfer_sizes_scale_with_records() {
        assert!(state_request_bytes() > 0);
        assert_eq!(
            state_chunk_bytes(100) - state_chunk_bytes(0),
            100 * PER_RECORD_BYTES
        );
    }

    #[test]
    fn state_plan_scales_with_chain_length() {
        assert!(state_plan_bytes(0) > 0);
        assert_eq!(state_plan_bytes(3) - state_plan_bytes(2), PER_LINK_BYTES);
        // A one-window delta of `c` dirty records must model cheaper
        // than a full snapshot of `n ≥ c` records — the whole point of
        // delta state transfer.
        assert!(state_plan_bytes(1) + state_chunk_bytes(100) < state_chunk_bytes(1000));
    }

    #[test]
    fn view_change_grows_with_prepared_backlog() {
        assert!(view_change_bytes(10) > view_change_bytes(0));
        assert_eq!(
            view_change_bytes(1) - view_change_bytes(0),
            DIGEST_BYTES + ATTEST_BYTES
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Sizes are monotone in their parameters and always positive.
        #[test]
        fn sizes_monotone(b in 1usize..5_000, nf in 1usize..100, w in 1usize..32) {
            prop_assert!(preprepare_bytes(b) > 0);
            prop_assert!(preprepare_bytes(b + 1) > preprepare_bytes(b));
            prop_assert!(forward_bytes(b, nf) > preprepare_bytes(b));
            prop_assert!(forward_bytes(b, nf + 1) > forward_bytes(b, nf));
            prop_assert!(execute_bytes(b, w + 1) > execute_bytes(b, w));
            prop_assert!(view_change_bytes(b) > view_change_bytes(0));
        }
    }
}
