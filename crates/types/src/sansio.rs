//! The sans-io contract between protocol state machines and their driver.
//!
//! Every protocol in this repository (PBFT, RingBFT, AHL, Sharper, the
//! Figure-1 baselines) is a pure state machine: it receives a message or a
//! timer expiry together with the current simulated time, and returns a
//! list of [`Action`]s. The driver — the discrete-event simulator in
//! `ringbft-sim`, or a unit test — interprets the actions. This makes the
//! protocol logic deterministic, directly unit-testable, and independent of
//! any transport.

use crate::ids::NodeId;
use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// The timers RingBFT replicas maintain (§5):
///
/// * **Local** — tracks successful replication of a transaction in the
///   replica's own shard; expiry triggers a view change. Shortest duration.
/// * **Remote** — tracks replication of a cross-shard transaction in the
///   *previous* shard in ring order; expiry triggers a remote view change
///   (§5.1.2). Longer than Local.
/// * **Transmit** — re-transmits a successfully replicated cst to the next
///   shard (§5.1.1). Longest duration.
/// * **Client** — the client-side response timer (§5, A1): on expiry the
///   client broadcasts its transaction to the whole shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TimerKind {
    /// Local replication watchdog (view-change trigger).
    Local,
    /// Retransmission of Forward messages to the next shard.
    Transmit,
    /// Watchdog on the previous shard's replication (remote view change).
    Remote,
    /// Client request/response watchdog.
    Client,
}

/// An effect a protocol state machine requests from its driver.
///
/// `M` is the protocol's message type. The driver must deliver sent
/// messages (subject to its network model), fire timers unless cancelled,
/// and record `Committed`/`Executed` outputs for metrics and ledger upkeep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Send `msg` to `to`. Unicast.
    Send {
        /// Destination node.
        to: NodeId,
        /// The protocol message.
        msg: M,
    },
    /// Send one `msg` to many destinations. A broadcast keeps its fan-out
    /// explicit so drivers can exploit it: the simulator expands it into
    /// per-link sends (charging per-link bandwidth faithfully, in `tos`
    /// order), while the TCP runtime serializes the payload exactly once
    /// and shares the encoded bytes across every peer queue.
    SendMany {
        /// Destination nodes, in send order.
        tos: Vec<NodeId>,
        /// The protocol message, shared by every destination.
        msg: M,
    },
    /// Arm a timer. When it expires (and was not cancelled), the driver
    /// calls the node's `on_timer(kind, token)`.
    SetTimer {
        /// Which watchdog class.
        kind: TimerKind,
        /// Opaque token the protocol uses to identify the armed instance
        /// (e.g. a sequence number).
        token: u64,
        /// Expiry delay from now.
        after: Duration,
    },
    /// Disarm a previously set timer identified by `(kind, token)`.
    /// Cancelling an unarmed timer is a no-op.
    CancelTimer {
        /// Which watchdog class.
        kind: TimerKind,
        /// Token passed at arming time.
        token: u64,
    },
    /// A batch became locally committed/executed; carries enough for the
    /// driver to count throughput and close latency measurements. The
    /// protocol still sends explicit client-reply messages via `Send`.
    Executed {
        /// Consensus sequence number within the shard.
        seq: u64,
        /// Number of transactions in the executed batch.
        txns: u32,
    },
    /// The replica changed view (used by the harness to trace Figure 9).
    ViewChanged {
        /// The new view number.
        view: u64,
    },
}

/// The driver contract: a sans-io protocol node that any driver — the
/// discrete-event simulator in `ringbft-simnet`, the real-network TCP
/// runtime in `ringbft-net`, or a unit test — can host.
///
/// The node never performs I/O or reads a clock; it receives events
/// together with the driver's notion of *now* and returns the
/// [`Action`]s it wants performed. `Instant` is nanoseconds since an
/// epoch the driver chooses (simulation start, or process start for real
/// deployments); protocols only ever compare instants and add
/// durations, so the epoch never leaks into protocol logic.
pub trait ProtocolNode<M> {
    /// Called once when the driver starts hosting the node.
    fn on_start(&mut self, now: crate::time::Instant) -> Vec<Action<M>>;

    /// Called for each delivered message.
    fn on_message(&mut self, now: crate::time::Instant, from: NodeId, msg: M) -> Vec<Action<M>>;

    /// Called when an armed, uncancelled `(kind, token)` timer expires.
    fn on_timer(
        &mut self,
        now: crate::time::Instant,
        kind: TimerKind,
        token: u64,
    ) -> Vec<Action<M>>;

    /// Called when the driver wakes the node outside a message delivery
    /// or timer expiry — e.g. after an execution-pipeline worker
    /// deposited a finished job. Nodes without off-thread stages keep
    /// the default no-op.
    fn on_pump(&mut self, now: crate::time::Instant) -> Vec<Action<M>> {
        let _ = now;
        Vec::new()
    }
}

impl<M> Action<M> {
    /// Maps the message type, preserving all non-message variants.
    pub fn map_msg<N>(self, f: impl FnOnce(M) -> N) -> Action<N> {
        match self {
            Action::Send { to, msg } => Action::Send { to, msg: f(msg) },
            Action::SendMany { tos, msg } => Action::SendMany { tos, msg: f(msg) },
            Action::SetTimer { kind, token, after } => Action::SetTimer { kind, token, after },
            Action::CancelTimer { kind, token } => Action::CancelTimer { kind, token },
            Action::Executed { seq, txns } => Action::Executed { seq, txns },
            Action::ViewChanged { view } => Action::ViewChanged { view },
        }
    }

    /// Returns the destination if this is a `Send`.
    pub fn send_to(&self) -> Option<NodeId> {
        match self {
            Action::Send { to, .. } => Some(*to),
            _ => None,
        }
    }
}

/// Convenience collector for protocol implementations: push actions as the
/// state machine progresses, take the batch at the end of the event.
#[derive(Debug)]
pub struct Outbox<M> {
    actions: Vec<Action<M>>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox {
            actions: Vec::new(),
        }
    }
}

impl<M> Outbox<M> {
    /// Empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a unicast send.
    pub fn send(&mut self, to: impl Into<NodeId>, msg: M) {
        self.actions.push(Action::Send { to: to.into(), msg });
    }

    /// Queue one broadcast of `msg` to many destinations. Emits a single
    /// [`Action::SendMany`] (one clone of the message, fan-out left to the
    /// driver); an empty destination set queues nothing.
    pub fn multicast<I>(&mut self, to: I, msg: &M)
    where
        M: Clone,
        I: IntoIterator<Item = NodeId>,
    {
        let tos: Vec<NodeId> = to.into_iter().collect();
        if tos.is_empty() {
            return;
        }
        self.actions.push(Action::SendMany {
            tos,
            msg: msg.clone(),
        });
    }

    /// Queue a pre-built broadcast without cloning the message. Used by
    /// action-lifting shims that re-home a [`Action::SendMany`] from one
    /// message space into another; an empty destination set queues nothing.
    pub fn send_many(&mut self, tos: Vec<NodeId>, msg: M) {
        if tos.is_empty() {
            return;
        }
        self.actions.push(Action::SendMany { tos, msg });
    }

    /// Queue a timer arm.
    pub fn set_timer(&mut self, kind: TimerKind, token: u64, after: Duration) {
        self.actions.push(Action::SetTimer { kind, token, after });
    }

    /// Queue a timer cancel.
    pub fn cancel_timer(&mut self, kind: TimerKind, token: u64) {
        self.actions.push(Action::CancelTimer { kind, token });
    }

    /// Record an executed batch.
    pub fn executed(&mut self, seq: u64, txns: u32) {
        self.actions.push(Action::Executed { seq, txns });
    }

    /// Record a view change.
    pub fn view_changed(&mut self, view: u64) {
        self.actions.push(Action::ViewChanged { view });
    }

    /// Drain the accumulated actions.
    pub fn take(&mut self) -> Vec<Action<M>> {
        std::mem::take(&mut self.actions)
    }

    /// Number of queued actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, NodeId, ReplicaId, ShardId};

    #[test]
    fn outbox_collects_in_order() {
        let mut out: Outbox<&'static str> = Outbox::new();
        let r = ReplicaId::new(ShardId(0), 1);
        out.send(r, "hello");
        out.set_timer(TimerKind::Local, 7, Duration::from_millis(5));
        out.executed(3, 100);
        let actions = out.take();
        assert_eq!(actions.len(), 3);
        assert_eq!(actions[0].send_to(), Some(NodeId::Replica(r)));
        assert!(matches!(
            actions[1],
            Action::SetTimer {
                kind: TimerKind::Local,
                token: 7,
                ..
            }
        ));
        assert!(matches!(actions[2], Action::Executed { seq: 3, txns: 100 }));
        assert!(out.is_empty());
    }

    #[test]
    fn multicast_emits_one_send_many() {
        let mut out: Outbox<u32> = Outbox::new();
        let dsts: Vec<NodeId> = (0..4)
            .map(|i| NodeId::Replica(ReplicaId::new(ShardId(1), i)))
            .collect();
        out.multicast(dsts.clone(), &42);
        let actions = out.take();
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::SendMany { tos, msg } => {
                assert_eq!(*tos, dsts);
                assert_eq!(*msg, 42);
            }
            other => panic!("SendMany expected, got {other:?}"),
        }
    }

    #[test]
    fn multicast_to_nobody_queues_nothing() {
        let mut out: Outbox<u32> = Outbox::new();
        out.multicast(Vec::new(), &42);
        assert!(out.is_empty());
    }

    #[test]
    fn map_msg_maps_send_many_payload() {
        let a: Action<u32> = Action::SendMany {
            tos: vec![NodeId::Client(ClientId(1)), NodeId::Client(ClientId(2))],
            msg: 7,
        };
        match a.map_msg(|m| m.to_string()) {
            Action::SendMany { tos, msg } => {
                assert_eq!(tos.len(), 2);
                assert_eq!(msg, "7");
            }
            _ => panic!("send_many expected"),
        }
    }

    #[test]
    fn map_msg_preserves_structure() {
        let a: Action<u32> = Action::Send {
            to: NodeId::Client(ClientId(1)),
            msg: 7,
        };
        match a.map_msg(|m| m.to_string()) {
            Action::Send { msg, .. } => assert_eq!(msg, "7"),
            _ => panic!("send expected"),
        }
        let t: Action<u32> = Action::SetTimer {
            kind: TimerKind::Remote,
            token: 1,
            after: Duration::from_secs(1),
        };
        assert!(matches!(
            t.map_msg(|m| m.to_string()),
            Action::SetTimer {
                kind: TimerKind::Remote,
                ..
            }
        ));
    }
}
