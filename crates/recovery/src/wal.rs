//! The replica's typed write-ahead ledger over the generic
//! [`Storage`](ringbft_store::wal::Storage) byte log: what a RingBFT
//! replica persists, when it fsyncs, and how a restart turns the log
//! back into state.
//!
//! ## What is logged
//!
//! * [`WalEntry::Preprepare`] / [`WalEntry::Commit`] — consensus
//!   progress markers. They make the durable tail *observable* (how far
//!   past the last checkpoint the replica had committed when it died)
//!   and bound what the delta top-up after restart must re-fetch.
//! * [`WalEntry::CheckpointVote`] — the digest this replica announced
//!   for a checkpoint window (diagnostics; a diverged replica's log
//!   shows exactly which window went wrong).
//! * [`WalEntry::CheckpointFull`] / [`WalEntry::CheckpointDelta`] — the
//!   state itself: every full capture *compacts* the log down to that
//!   snapshot (the history before it is subsumed), every delta window
//!   appends O(churn) bytes chained to its predecessor's digest.
//! * [`WalEntry::Close`] — the clean-shutdown marker: appended and
//!   synced by [`ReplicaWal::close`], so a reopened log can distinguish
//!   an orderly shutdown from a crash.
//!
//! ## Restart
//!
//! [`ReplicaWal::open_mem`] / [`ReplicaWal::open_file`] replay the log
//! (the byte layer already truncated any torn tail) into a
//! [`Recovered`] summary: the last durable full snapshot, the
//! contiguous delta chain on top of it, and the durable commit
//! watermark. The host restores its stable store from
//! [`Recovered::fold`] and rejoins; only the tail beyond the last
//! durable checkpoint is fetched from peers via the existing
//! delta-chain transfer — O(gap), not O(state).

use crate::snapshot::{DeltaSnapshot, Snapshot};
use ringbft_crypto::Digest;
use ringbft_store::wal::{Storage, WalRecord};
use ringbft_store::{FileWal, KvStore, MemWal, MemWalHandle};
use ringbft_types::config::Durability;
use ringbft_types::ShardId;
use serde::{Deserialize, Serialize};

/// One typed log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalEntry {
    /// A preprepare this replica accepted.
    Preprepare {
        /// View the preprepare belongs to.
        view: u64,
        /// Consensus sequence number.
        seq: u64,
        /// Batch digest.
        digest: Digest,
    },
    /// A sequence this replica locally committed.
    Commit {
        /// Consensus sequence number.
        seq: u64,
        /// Batch digest.
        digest: Digest,
    },
    /// The checkpoint digest this replica announced for `seq`.
    CheckpointVote {
        /// Checkpoint sequence.
        seq: u64,
        /// Announced state digest.
        digest: Digest,
    },
    /// A full state capture (compacts the log).
    CheckpointFull(Snapshot),
    /// An incremental capture chained to the previous checkpoint.
    CheckpointDelta(DeltaSnapshot),
    /// Clean-shutdown marker.
    Close,
}

impl WalEntry {
    /// The frame kind byte: stable per variant, so cheap log scans
    /// (e.g. "does the log end in a clean Close?") need no decode.
    pub fn kind(&self) -> u8 {
        match self {
            WalEntry::Preprepare { .. } => 1,
            WalEntry::Commit { .. } => 2,
            WalEntry::CheckpointVote { .. } => 3,
            WalEntry::CheckpointFull(_) => 4,
            WalEntry::CheckpointDelta(_) => 5,
            WalEntry::Close => 6,
        }
    }
}

/// Frame kind of the [`WalEntry::Close`] marker.
pub const CLOSE_KIND: u8 = 6;

/// What a replayed log recovers to.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// The last durable full snapshot, if any survived.
    pub full: Option<Snapshot>,
    /// The contiguous delta chain on top of `full` (each link's base
    /// digest verified against the running fold during replay).
    pub deltas: Vec<DeltaSnapshot>,
    /// Highest locally-committed sequence the log witnessed.
    pub durable_seq: u64,
    /// Checkpoint votes replayed, oldest first (diagnostics).
    pub votes: Vec<(u64, Digest)>,
    /// True when the log ended in a clean [`WalEntry::Close`].
    pub clean_close: bool,
    /// Entries replayed (diagnostics).
    pub entries: usize,
}

impl Recovered {
    /// Folds the recovered chain to its tip: the store, checkpoint
    /// sequence, state digest and ledger position the replica can
    /// restart from. `None` when no checkpoint survived (blank-restart
    /// semantics apply).
    pub fn fold(&self, shard: ShardId) -> Option<RecoveredTip> {
        let full = self.full.as_ref()?;
        let mut kv = full.restore_store();
        let mut seq = full.seq;
        let mut ledger = (full.ledger_height, full.ledger_head);
        for d in &self.deltas {
            d.fold_into(&mut kv);
            seq = d.seq;
            ledger = (d.ledger_height, d.ledger_head);
        }
        let digest = Snapshot::digest_of_store(shard, seq, &kv);
        Some(RecoveredTip {
            seq,
            digest,
            store: kv,
            ledger_height: ledger.0,
            ledger_head: ledger.1,
        })
    }
}

/// The folded endpoint of a recovered checkpoint chain.
#[derive(Debug, Clone)]
pub struct RecoveredTip {
    /// Checkpoint sequence of the tip.
    pub seq: u64,
    /// Full-state digest at the tip.
    pub digest: Digest,
    /// The store at the tip.
    pub store: KvStore,
    /// Ledger height recorded at the tip.
    pub ledger_height: u64,
    /// Ledger head hash recorded at the tip.
    pub ledger_head: Digest,
}

/// Replays decoded byte records into a [`Recovered`] summary.
///
/// Undecodable entries terminate the replay (everything before them
/// stays recovered) — the byte layer's checksum already rules out
/// corruption, so a decode failure means a format change, and replaying
/// half-understood history would be worse than falling back to the
/// transfer path for the remainder.
pub fn replay(records: &[WalRecord]) -> Recovered {
    let mut r = Recovered::default();
    for rec in records {
        let Ok(entry) = bincode::deserialize::<WalEntry>(&rec.payload) else {
            break;
        };
        r.clean_close = false;
        r.entries += 1;
        match entry {
            WalEntry::Preprepare { .. } => {}
            WalEntry::Commit { seq, .. } => r.durable_seq = r.durable_seq.max(seq),
            WalEntry::CheckpointVote { seq, digest } => r.votes.push((seq, digest)),
            WalEntry::CheckpointFull(snap) => {
                r.full = Some(snap);
                r.deltas.clear();
            }
            WalEntry::CheckpointDelta(delta) => {
                // Chain admission mirrors the recovery manager's
                // retention: the delta must extend the current tip.
                let tip = r
                    .deltas
                    .last()
                    .map(|d| d.seq)
                    .or(r.full.as_ref().map(|f| f.seq));
                if tip == Some(delta.base_seq) {
                    r.deltas.push(delta);
                }
                // else: an unchainable delta is skipped — the retained
                // prefix (if any) remains a valid, if older, restart
                // point, and the live top-up covers the difference.
            }
            WalEntry::Close => r.clean_close = true,
        }
    }
    r
}

/// The replica-facing WAL: typed appends with the configured
/// [`Durability`] policy applied.
pub struct ReplicaWal {
    storage: Box<dyn Storage>,
    durability: Durability,
}

impl ReplicaWal {
    /// Opens the in-memory log behind `handle` (simulator path),
    /// replaying whatever the previous life of the replica left in it.
    pub fn open_mem(handle: MemWalHandle, durability: Durability) -> (ReplicaWal, Recovered) {
        let (wal, records) = MemWal::open(handle);
        (
            ReplicaWal {
                storage: Box::new(wal),
                durability,
            },
            replay(&records),
        )
    }

    /// Opens the file-backed log at `path` (real deployments).
    pub fn open_file(
        path: impl Into<std::path::PathBuf>,
        durability: Durability,
    ) -> std::io::Result<(ReplicaWal, Recovered)> {
        let (wal, records) = FileWal::open(path)?;
        Ok((
            ReplicaWal {
                storage: Box::new(wal),
                durability,
            },
            replay(&records),
        ))
    }

    /// The configured durability policy.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Appends one entry, syncing according to the durability policy
    /// (`Strict` → every append; `Batched`/`None` → deferred to
    /// [`ReplicaWal::flush`] / the host's flush timer).
    pub fn append(&mut self, entry: &WalEntry) -> std::io::Result<()> {
        let payload = bincode::serialize(entry).expect("wal entries serialize");
        self.storage.append(entry.kind(), &payload)?;
        if self.durability == Durability::Strict {
            self.storage.sync()?;
        }
        Ok(())
    }

    /// Appends a full snapshot by *compacting*: the log is rewritten to
    /// hold exactly this snapshot (history before it is subsumed by the
    /// capture), atomically and durably.
    pub fn append_full(&mut self, snap: &Snapshot) -> std::io::Result<()> {
        let entry = WalEntry::CheckpointFull(snap.clone());
        let payload = bincode::serialize(&entry).expect("wal entries serialize");
        self.storage.compact(&[(entry.kind(), payload)])
    }

    /// Forces buffered appends durable (the group-commit flush tick).
    /// No-op when nothing is pending.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.storage.dirty() {
            self.storage.sync()?;
        }
        Ok(())
    }

    /// Clean shutdown: appends the [`WalEntry::Close`] marker and
    /// syncs, so the reopened log replays with `clean_close == true`
    /// and no torn tail.
    pub fn close(&mut self) -> std::io::Result<()> {
        self.append(&WalEntry::Close)?;
        self.storage.sync()
    }

    /// Bytes currently in the log.
    pub fn len_bytes(&self) -> u64 {
        self.storage.len_bytes()
    }

    /// Syncs performed over the log's lifetime.
    pub fn syncs(&self) -> u64 {
        self.storage.syncs()
    }

    /// True when appended records await a sync.
    pub fn dirty(&self) -> bool {
        self.storage.dirty()
    }
}

impl std::fmt::Debug for ReplicaWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaWal")
            .field("durability", &self.durability)
            .field("len_bytes", &self.storage.len_bytes())
            .field("syncs", &self.storage.syncs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringbft_store::wal::scan;

    fn snap_at(seq: u64, kv: &KvStore) -> Snapshot {
        Snapshot::capture(ShardId(0), seq, kv, 0, [0; 32])
    }

    fn store(keys: u64) -> KvStore {
        let mut kv = KvStore::new();
        for k in 0..keys {
            kv.put(k, k + 100);
        }
        kv
    }

    #[test]
    fn restart_replays_checkpoint_chain_and_commit_watermark() {
        let handle = MemWalHandle::new();
        let (mut wal, fresh) = ReplicaWal::open_mem(handle.clone(), Durability::Strict);
        assert!(fresh.full.is_none() && fresh.entries == 0);

        let mut kv = store(8);
        let full = snap_at(8, &kv);
        let d0 = full.digest();
        wal.append_full(&full).unwrap();
        kv.put(3, 999);
        let delta = DeltaSnapshot::capture(ShardId(0), 8, d0, 16, [3u64], &kv, 1, [1; 32]);
        wal.append(&WalEntry::CheckpointDelta(delta)).unwrap();
        wal.append(&WalEntry::CheckpointVote {
            seq: 16,
            digest: Snapshot::digest_of_store(ShardId(0), 16, &kv),
        })
        .unwrap();
        for seq in 17..=19 {
            wal.append(&WalEntry::Commit {
                seq,
                digest: [seq as u8; 32],
            })
            .unwrap();
        }

        let (_, recovered) = ReplicaWal::open_mem(handle, Durability::Strict);
        assert_eq!(recovered.durable_seq, 19);
        assert_eq!(recovered.deltas.len(), 1);
        assert!(!recovered.clean_close);
        let tip = recovered.fold(ShardId(0)).expect("chain survived");
        assert_eq!(tip.seq, 16);
        assert_eq!(tip.store.state_fingerprint(), kv.state_fingerprint());
        assert_eq!(tip.digest, Snapshot::digest_of_store(ShardId(0), 16, &kv));
    }

    #[test]
    fn full_capture_compacts_the_log() {
        let handle = MemWalHandle::new();
        let (mut wal, _) = ReplicaWal::open_mem(handle.clone(), Durability::Strict);
        for seq in 1..=100 {
            wal.append(&WalEntry::Commit {
                seq,
                digest: [0; 32],
            })
            .unwrap();
        }
        let grown = wal.len_bytes();
        let kv = store(4);
        wal.append_full(&snap_at(128, &kv)).unwrap();
        assert!(
            wal.len_bytes() < grown,
            "compaction shrinks the log: {} vs {grown}",
            wal.len_bytes()
        );
        let (_, recovered) = ReplicaWal::open_mem(handle, Durability::Strict);
        assert_eq!(recovered.entries, 1, "only the full snapshot remains");
        assert_eq!(recovered.durable_seq, 0, "old commit markers subsumed");
        assert_eq!(recovered.fold(ShardId(0)).unwrap().seq, 128);
    }

    #[test]
    fn batched_mode_defers_sync_and_crash_drops_tail() {
        let handle = MemWalHandle::new();
        let (mut wal, _) = ReplicaWal::open_mem(handle.clone(), Durability::Batched(50));
        let kv = store(4);
        wal.append_full(&snap_at(8, &kv)).unwrap(); // compaction always syncs
        wal.append(&WalEntry::Commit {
            seq: 9,
            digest: [9; 32],
        })
        .unwrap();
        assert!(wal.dirty(), "batched append defers the sync");
        wal.flush().unwrap();
        assert!(!wal.dirty());
        wal.append(&WalEntry::Commit {
            seq: 10,
            digest: [10; 32],
        })
        .unwrap();
        // Power loss before the next flush tick: seq 10 is gone, 9 is
        // durable.
        handle.crash();
        let (_, recovered) = ReplicaWal::open_mem(handle, Durability::Batched(50));
        assert_eq!(recovered.durable_seq, 9);
    }

    #[test]
    fn close_marks_clean_shutdown_and_nothing_after_it() {
        let handle = MemWalHandle::new();
        let (mut wal, _) = ReplicaWal::open_mem(handle.clone(), Durability::None);
        wal.append(&WalEntry::Commit {
            seq: 1,
            digest: [1; 32],
        })
        .unwrap();
        wal.close().unwrap();
        assert!(!wal.dirty(), "close syncs everything");
        // The raw log's final frame is the Close marker.
        let (records, _) = scan(&handle.bytes());
        assert_eq!(records.last().unwrap().kind, CLOSE_KIND);
        let (_, recovered) = ReplicaWal::open_mem(handle, Durability::None);
        assert!(recovered.clean_close);
        assert_eq!(recovered.durable_seq, 1);
    }

    #[test]
    fn unchainable_delta_is_skipped_not_folded() {
        let handle = MemWalHandle::new();
        let (mut wal, _) = ReplicaWal::open_mem(handle.clone(), Durability::Strict);
        let kv = store(4);
        wal.append_full(&snap_at(8, &kv)).unwrap();
        // A delta whose base is NOT the snapshot we hold: replay must
        // not fold it — the stale full stays the (older) restart point.
        let delta = DeltaSnapshot::capture(ShardId(0), 16, [7; 32], 24, [1u64], &kv, 0, [0; 32]);
        wal.append(&WalEntry::CheckpointDelta(delta)).unwrap();
        let (_, recovered) = ReplicaWal::open_mem(handle, Durability::Strict);
        assert!(recovered.deltas.is_empty(), "broken link skipped");
        let tip = recovered.fold(ShardId(0)).expect("full survives");
        assert_eq!(tip.seq, 8);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Torn-tail, typed edition: flip any byte inside the final
        /// frame of a replica log and recovery still reproduces the
        /// state of the previous durable record.
        #[test]
        fn corrupt_typed_tail_recovers_previous_state(
            commits in 1u64..24,
            flip_at in any::<usize>(),
            flip_bit in 0u8..8,
        ) {
            let handle = MemWalHandle::new();
            let (mut wal, _) = ReplicaWal::open_mem(handle.clone(), Durability::Strict);
            let mut kv = KvStore::new();
            for k in 0..6u64 {
                kv.put(k, k * 11 + 1);
            }
            let full = Snapshot::capture(ShardId(0), 8, &kv, 0, [0; 32]);
            wal.append_full(&full).unwrap();
            for seq in 0..commits {
                wal.append(&WalEntry::Commit { seq: 9 + seq, digest: [seq as u8; 32] }).unwrap();
            }
            let clean = handle.bytes();
            let (records, _) = ringbft_store::wal::scan(&clean);
            let last_len = {
                let last = records.last().expect("records present");
                // frame = header(13) + payload
                13 + last.payload.len()
            };
            let mut bytes = clean.clone();
            let tail_start = bytes.len() - last_len;
            let victim = tail_start + flip_at % last_len;
            bytes[victim] ^= 1 << flip_bit;
            handle.set_bytes(bytes);
            let (_, recovered) = ReplicaWal::open_mem(handle, Durability::Strict);
            // All but the final commit marker replayed.
            prop_assert_eq!(
                recovered.durable_seq,
                if commits >= 2 { 9 + commits - 2 } else { 0 }
            );
            let tip = recovered.fold(ShardId(0)).expect("checkpoint survives");
            prop_assert_eq!(tip.seq, 8);
            prop_assert_eq!(tip.store.state_fingerprint(), kv.state_fingerprint());
        }
    }
}
