//! Checkpointing and state transfer for RingBFT shards (§3 liveness, §5
//! attack A3: "in-dark" replicas).
//!
//! The PBFT engine's periodic `Checkpoint` votes agree on a *state
//! digest* per checkpoint sequence number; this crate supplies what that
//! digest actually commits to and how a lagging replica obtains the
//! state behind it:
//!
//! * [`Snapshot`] — the application state of one shard replica at a
//!   stable checkpoint: the key-value partition, the lock-admission
//!   high-water mark (`k_max`, implicitly the checkpoint sequence), and
//!   the replica's ledger position. Its SHA-256 [`Snapshot::digest`] is
//!   the `state_digest` carried in `PbftMsg::Checkpoint` — replicas only
//!   reach a stable checkpoint when `nf` of them hold *identical* state.
//! * [`DeltaSnapshot`] — the incremental checkpoint (Castro & Liskov
//!   §6.2): only the records written since the previous checkpoint,
//!   chained to that checkpoint's digest, so per-window capture and
//!   laggard transfers are O(churn) instead of O(state). Folding a
//!   verified chain onto its base reproduces the full snapshot —
//!   digest included ([`ChainTransfer::fold_verified`]).
//! * [`RecoveryManager`] — a sans-io state machine (it fits the
//!   [`ProtocolNode`](ringbft_types::sansio::ProtocolNode) driver
//!   contract) that serves snapshot chains to lagging same-shard peers
//!   (the shortest retained delta chain when it recognizes the
//!   requester's base, the full snapshot otherwise) and, when its own
//!   replica falls behind a quorum-stable checkpoint, reassembles the
//!   announced chain chunk by chunk and hands it to the host, which
//!   folds and verifies every link against the agreed digests before
//!   install.
//!
//! Communication reuses the paper's linear-primitive discipline: a
//! recovering replica asks **one** peer at a time (rotating on a probe
//! timer) instead of broadcasting, so recovery traffic stays O(state),
//! not O(n·state).
//!
//! The digest deliberately excludes the ledger linkage: §7 allows the
//! relative order of non-conflicting cross-shard blocks to differ
//! between replicas of one shard, so chain heads are replica-local. The
//! ledger base carried by [`RecoveryMsg::StatePlan`] is therefore taken
//! from the donor on trust — a Byzantine donor can feed a bogus chain
//! *base*, but never bogus *state*: the key-value records are checked
//! against the digest `nf` replicas voted for.

pub mod hole;
pub mod manager;
pub mod snapshot;
pub mod wal;

pub use hole::{DonorRotation, HoleFetcher, HoleStats, HOLE_PROBE_TOKEN};
pub use manager::{
    RecoveryEvent, RecoveryManager, RecoveryMsg, RecoveryStats, RECOVERY_PROBE_TOKEN,
};
pub use snapshot::{ChainError, ChainTransfer, DeltaSnapshot, PlanLink, RecordEntry, Snapshot};
pub use wal::{Recovered, RecoveredTip, ReplicaWal, WalEntry};
