//! Checkpointing and state transfer for RingBFT shards (§3 liveness, §5
//! attack A3: "in-dark" replicas).
//!
//! The PBFT engine's periodic `Checkpoint` votes agree on a *state
//! digest* per checkpoint sequence number; this crate supplies what that
//! digest actually commits to and how a lagging replica obtains the
//! state behind it:
//!
//! * [`Snapshot`] — the application state of one shard replica at a
//!   stable checkpoint: the key-value partition, the lock-admission
//!   high-water mark (`k_max`, implicitly the checkpoint sequence), and
//!   the replica's ledger position. Its SHA-256 [`Snapshot::digest`] is
//!   the `state_digest` carried in `PbftMsg::Checkpoint` — replicas only
//!   reach a stable checkpoint when `nf` of them hold *identical* state.
//! * [`RecoveryManager`] — a sans-io state machine (it fits the
//!   [`ProtocolNode`](ringbft_types::sansio::ProtocolNode) driver
//!   contract) that serves snapshots to lagging same-shard peers and,
//!   when its own replica falls behind a quorum-stable checkpoint,
//!   fetches the snapshot chunk by chunk, validates the reassembled
//!   state against the agreed digest, and hands it back for install.
//!
//! Communication reuses the paper's linear-primitive discipline: a
//! recovering replica asks **one** peer at a time (rotating on a probe
//! timer) instead of broadcasting, so recovery traffic stays O(state),
//! not O(n·state).
//!
//! The digest deliberately excludes the ledger linkage: §7 allows the
//! relative order of non-conflicting cross-shard blocks to differ
//! between replicas of one shard, so chain heads are replica-local. The
//! ledger base carried by [`RecoveryMsg::StateDone`] is therefore taken
//! from the donor on trust — a Byzantine donor can feed a bogus chain
//! *base*, but never bogus *state*: the key-value records are checked
//! against the digest `nf` replicas voted for.

pub mod hole;
pub mod manager;
pub mod snapshot;

pub use hole::{DonorRotation, HoleFetcher, HoleStats, HOLE_PROBE_TOKEN};
pub use manager::{
    RecoveryEvent, RecoveryManager, RecoveryMsg, RecoveryStats, RECOVERY_PROBE_TOKEN,
};
pub use snapshot::{RecordEntry, Snapshot};
