//! Hole fetch: single-sequence commit-certificate recovery.
//!
//! Checkpoint state transfer ([`crate::manager`]) repairs a replica that
//! is behind a *stable checkpoint* — but a replica that merely missed
//! one commit (a dropped Commit quorum, a lost Preprepare) is not behind
//! any checkpoint: it sits wedged with its sequence-ordered lock
//! admission stalled on the hole, waiting for the next checkpoint
//! window. Worse, a checkpoint needs `nf` replicas *past* the boundary,
//! so if more than `f` replicas wedge this way no checkpoint ever
//! stabilizes and the healthy replicas stop truncating — a cadence
//! deadlock. The [`HoleFetcher`] closes the hole directly: when the
//! host's execution watermark stalls behind its commit frontier past a
//! probe interval, it asks one same-shard peer at a time for the missing
//! `(view, seq)` commit certificate plus the ordered batch
//! ([`ringbft_types::hole::HoleRequest`] / `HoleReply`), rotating donors
//! exactly like the state-transfer probe. The host verifies the
//! certificate (`ringbft_pbft::verify_hole_reply`) and installs the
//! commit through its normal admission path — recovery cost O(batch),
//! not O(state), and never gated on a checkpoint boundary.

use crate::manager::RecoveryMsg;
use ringbft_types::hole::HoleRequest;
use ringbft_types::{Duration, NodeId, Outbox, ReplicaId, SeqNum, ShardId, TimerKind};

/// Timer token of the hole-fetch probe watchdog (on
/// [`TimerKind::Client`]), from the RingBFT-level token space, disjoint
/// from PBFT sequence tokens, the pool-flush token and the recovery
/// probe token.
pub const HOLE_PROBE_TOKEN: u64 = (1 << 62) - 3;

/// Rotating same-shard donor selection, shared by the state-transfer
/// probe and the hole fetcher: ask one peer at a time (the linear-
/// primitive discipline — recovery traffic stays O(payload), not
/// O(n·payload)), skipping ourselves, cycling through every peer.
#[derive(Debug)]
pub struct DonorRotation {
    shard: ShardId,
    my_index: u32,
    n: u32,
    cursor: u32,
}

impl DonorRotation {
    /// Rotation for replica `me` of a shard of `n` replicas.
    pub fn new(me: ReplicaId, n: usize) -> DonorRotation {
        DonorRotation {
            shard: me.shard,
            my_index: me.index,
            n: n as u32,
            cursor: 0,
        }
    }

    /// The next peer to ask; `None` in a one-replica shard.
    pub fn next_donor(&mut self) -> Option<NodeId> {
        if self.n <= 1 {
            return None;
        }
        let idx = (self.my_index + 1 + self.cursor) % self.n;
        self.cursor = (self.cursor + 1) % (self.n - 1).max(1);
        if idx == self.my_index {
            return None; // unreachable with the cursor bound, defensive
        }
        Some(NodeId::Replica(ReplicaId::new(self.shard, idx)))
    }
}

/// Counters for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HoleStats {
    /// HoleRequests this replica sent.
    pub requests_sent: u64,
    /// HoleRequests this replica answered with a certificate.
    pub replies_served: u64,
    /// Verified certificates the host installed (holes closed).
    pub holes_filled: u64,
    /// Replies rejected by certificate verification (forged or corrupt —
    /// must never be installed).
    pub bad_replies: u64,
}

/// The hole-fetch state machine of one shard replica. Sans-io like the
/// [`crate::RecoveryManager`]: the hosting replica detects the stall
/// (execution watermark behind the commit frontier with an uncommitted
/// sequence in between), reports it via [`HoleFetcher::set_missing`],
/// and performs the sends the probe timer emits. Verification and
/// install stay with the host, which owns the PBFT log.
#[derive(Debug)]
pub struct HoleFetcher {
    donors: DonorRotation,
    probe_interval: Duration,
    /// Requests per burst tick: `f + 1`, so at most `f` dead or
    /// Byzantine-silent donors can never stall a burst-paced gap
    /// repair (the slow probe path stays single-request).
    burst: usize,
    /// The sequence currently being fetched (None = no hole).
    missing: Option<u64>,
    probing: bool,
    /// Counters.
    pub stats: HoleStats,
}

impl HoleFetcher {
    /// Creates the fetcher for replica `me` of a shard of `n` replicas.
    /// The first request goes out one `probe_interval` after the hole is
    /// reported — long enough that an in-flight commit closes the hole
    /// by itself, short enough to beat the per-request view-change
    /// watchdog.
    pub fn new(me: ReplicaId, n: usize, probe_interval: Duration) -> HoleFetcher {
        HoleFetcher {
            donors: DonorRotation::new(me, n),
            probe_interval,
            burst: (n.saturating_sub(1)) / 3 + 1,
            missing: None,
            probing: false,
            stats: HoleStats::default(),
        }
    }

    /// The sequence currently being fetched, if any.
    pub fn missing(&self) -> Option<u64> {
        self.missing
    }

    /// The host detected (or re-confirmed) a hole at `seq`: remember it
    /// and make sure the probe timer runs. Re-pointing at a different
    /// sequence (an earlier hole closed, a later one remains) keeps the
    /// running timer.
    pub fn set_missing(&mut self, seq: u64, out: &mut Outbox<RecoveryMsg>) {
        self.missing = Some(seq);
        if !self.probing {
            self.probing = true;
            out.set_timer(TimerKind::Client, HOLE_PROBE_TOKEN, self.probe_interval);
        }
    }

    /// Every sequence up to the commit frontier is committed locally:
    /// stop fetching (the probe timer dies out on its next tick).
    pub fn all_present(&mut self) {
        self.missing = None;
    }

    /// Handles the probe timer: while a hole persists, ask the next
    /// donor and re-arm.
    pub fn on_probe_timer(&mut self, out: &mut Outbox<RecoveryMsg>) {
        if self.missing.is_none() {
            self.probing = false;
            return;
        }
        self.request(out);
        out.set_timer(TimerKind::Client, HOLE_PROBE_TOKEN, self.probe_interval);
    }

    /// Requests the current hole immediately, without waiting for the
    /// next probe tick — burst pacing for sequential repair: after one
    /// certificate installs, the next hole of a multi-sequence gap is
    /// fetched at network round-trip pace while the probe timer keeps
    /// running as the loss fallback. Asks `f + 1` donors in parallel so
    /// a dead donor in the rotation cannot stall the burst (duplicate
    /// replies for an already-filled sequence are dropped as stale).
    pub fn fetch_now(&mut self, out: &mut Outbox<RecoveryMsg>) {
        if self.missing.is_some() {
            for _ in 0..self.burst {
                self.request(out);
            }
        }
    }

    fn request(&mut self, out: &mut Outbox<RecoveryMsg>) {
        let Some(seq) = self.missing else { return };
        if let Some(donor) = self.donors.next_donor() {
            out.send(
                donor,
                RecoveryMsg::HoleRequest(HoleRequest { seq: SeqNum(seq) }),
            );
            self.stats.requests_sent += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringbft_types::Action;

    fn rep(i: u32) -> ReplicaId {
        ReplicaId::new(ShardId(0), i)
    }

    fn requests(out: &mut Outbox<RecoveryMsg>) -> Vec<(NodeId, u64)> {
        out.take()
            .into_iter()
            .filter_map(|a| match a {
                Action::Send {
                    to,
                    msg: RecoveryMsg::HoleRequest(r),
                } => Some((to, r.seq.0)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn probe_rotates_donors_and_skips_self() {
        let mut f = HoleFetcher::new(rep(2), 4, Duration::from_millis(50));
        let mut out = Outbox::new();
        f.set_missing(7, &mut out);
        let mut donors = Vec::new();
        for _ in 0..6 {
            let mut o = Outbox::new();
            f.on_probe_timer(&mut o);
            donors.extend(requests(&mut o));
        }
        assert_eq!(donors.len(), 6);
        assert!(donors.iter().all(|(_, s)| *s == 7));
        assert!(donors.iter().all(|(d, _)| *d != NodeId::Replica(rep(2))));
        let distinct: std::collections::HashSet<_> = donors.iter().map(|(d, _)| *d).collect();
        assert_eq!(distinct.len(), 3, "all three peers asked in rotation");
        assert_eq!(f.stats.requests_sent, 6);
    }

    #[test]
    fn filled_hole_stops_the_probe() {
        let mut f = HoleFetcher::new(rep(1), 4, Duration::from_millis(50));
        let mut out = Outbox::new();
        f.set_missing(3, &mut out);
        f.all_present();
        let mut o = Outbox::new();
        f.on_probe_timer(&mut o);
        assert!(o.take().is_empty(), "no request, no re-arm");
        // A later hole re-arms the probe.
        let mut o = Outbox::new();
        f.set_missing(9, &mut o);
        assert_eq!(o.take().len(), 1, "timer re-armed");
    }

    #[test]
    fn repointing_keeps_one_timer() {
        let mut f = HoleFetcher::new(rep(0), 4, Duration::from_millis(50));
        let mut out = Outbox::new();
        f.set_missing(3, &mut out);
        assert_eq!(out.take().len(), 1);
        let mut out = Outbox::new();
        f.set_missing(4, &mut out);
        assert!(out.take().is_empty(), "no duplicate timer");
        assert_eq!(f.missing(), Some(4));
    }

    #[test]
    fn single_replica_shard_never_requests() {
        let mut f = HoleFetcher::new(rep(0), 1, Duration::from_millis(50));
        let mut out = Outbox::new();
        f.set_missing(1, &mut out);
        let mut o = Outbox::new();
        f.on_probe_timer(&mut o);
        assert!(requests(&mut o).is_empty());
    }
}
