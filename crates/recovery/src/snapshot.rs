//! The checkpoint snapshot: one shard replica's application state at a
//! stable checkpoint, plus the SHA-256 digest the PBFT checkpoint votes
//! agree on — and the *delta* snapshot, the incremental-checkpoint
//! optimization (Castro & Liskov §6.2): only the records written since
//! the previous checkpoint, chained to that checkpoint's digest, so
//! both the capture hot path and laggard state transfer are O(churn)
//! instead of O(state).

use ringbft_crypto::{Digest, Sha256};
use ringbft_store::{KvStore, Record};
use ringbft_types::txn::{Key, Value};
use ringbft_types::ShardId;
use serde::{Deserialize, Serialize};

/// One key-value record as it travels inside a state-transfer chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordEntry {
    /// The key.
    pub key: Key,
    /// Current value.
    pub value: Value,
    /// Write-version of the record (bumped on every store write; carried
    /// so the restored store is bit-identical to the donor's, version
    /// counters included).
    pub version: u64,
}

/// A shard replica's state at a stable checkpoint.
///
/// `records` is sorted by key, giving the snapshot a canonical encoding:
/// two replicas that executed the same sequence prefix produce the same
/// record list and hence the same [`Snapshot::digest`], regardless of
/// the (allowed) differences in their execution interleaving of
/// non-conflicting transactions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// The shard this state belongs to.
    pub shard: ShardId,
    /// The checkpoint sequence number: every consensus sequence ≤ `seq`
    /// is reflected in `records`, and none above it.
    pub seq: u64,
    /// The key-value partition, ascending by key.
    pub records: Vec<RecordEntry>,
    /// The donor's ledger height at the checkpoint (the installed
    /// ledger's base height — see the crate docs for the trust note).
    pub ledger_height: u64,
    /// The donor's chain head hash at the checkpoint.
    pub ledger_head: Digest,
}

impl Snapshot {
    /// Captures `kv` (plus ledger position) as the state at checkpoint
    /// `seq`.
    pub fn capture(
        shard: ShardId,
        seq: u64,
        kv: &KvStore,
        ledger_height: u64,
        ledger_head: Digest,
    ) -> Snapshot {
        let mut records: Vec<RecordEntry> = kv
            .iter()
            .map(|(key, r)| RecordEntry {
                key,
                value: r.value,
                version: r.version,
            })
            .collect();
        records.sort_unstable_by_key(|r| r.key);
        Snapshot {
            shard,
            seq,
            records,
            ledger_height,
            ledger_head,
        }
    }

    /// The state digest the shard's `Checkpoint` votes carry: SHA-256
    /// over the canonical encoding of `(shard, seq, records)`.
    ///
    /// The ledger fields are deliberately excluded: §7 lets replicas of
    /// one shard order non-conflicting cross-shard blocks differently,
    /// so chain heads are replica-local and must not block checkpoint
    /// agreement.
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ringbft-snapshot");
        h.update(&self.shard.0.to_le_bytes());
        h.update(&self.seq.to_le_bytes());
        h.update(&(self.records.len() as u64).to_le_bytes());
        for r in &self.records {
            h.update(&r.key.to_le_bytes());
            h.update(&r.value.to_le_bytes());
            h.update(&r.version.to_le_bytes());
        }
        h.finalize()
    }

    /// The digest [`Snapshot::capture`]`(shard, seq, kv, ..).digest()`
    /// would produce, computed straight off the store — the checkpoint
    /// hot path for *delta* windows, where no full record list is
    /// materialized. Only the sorted key index (8 bytes/key, transient)
    /// is allocated; record content is streamed into the hash.
    pub fn digest_of_store(shard: ShardId, seq: u64, kv: &KvStore) -> Digest {
        let mut keys: Vec<Key> = kv.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        let mut h = Sha256::new();
        h.update(b"ringbft-snapshot");
        h.update(&shard.0.to_le_bytes());
        h.update(&seq.to_le_bytes());
        h.update(&(keys.len() as u64).to_le_bytes());
        for k in keys {
            let r = kv.get(k).expect("key from the store's own iterator");
            h.update(&k.to_le_bytes());
            h.update(&r.value.to_le_bytes());
            h.update(&r.version.to_le_bytes());
        }
        h.finalize()
    }

    /// Rebuilds the key-value store this snapshot captured.
    pub fn restore_store(&self) -> KvStore {
        let mut kv = KvStore::new();
        for r in &self.records {
            kv.insert_record(
                r.key,
                Record {
                    value: r.value,
                    version: r.version,
                },
            );
        }
        kv
    }
}

/// An *incremental* checkpoint: only the records written since the
/// previous checkpoint, chained to that checkpoint's full-state digest.
///
/// Folding a delta onto the store its `(base_seq, base_digest)` names
/// reproduces the full state at `seq` exactly — including the
/// full-snapshot digest, because records carry their write-versions and
/// keys are never deleted. Capture and transfer are O(churn).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaSnapshot {
    /// The shard this delta belongs to.
    pub shard: ShardId,
    /// The checkpoint this delta applies on.
    pub base_seq: u64,
    /// The full-snapshot digest of the base state — the chain link.
    pub base_digest: Digest,
    /// The checkpoint sequence this delta advances the state to.
    pub seq: u64,
    /// Records written in `(base_seq, seq]`, ascending by key, with
    /// their post-window values and versions.
    pub records: Vec<RecordEntry>,
    /// The capturing replica's ledger height at `seq`.
    pub ledger_height: u64,
    /// The capturing replica's chain head hash at `seq`.
    pub ledger_head: Digest,
}

impl DeltaSnapshot {
    /// Captures the delta from checkpoint `(base_seq, base_digest)` to
    /// `seq`: the current records of `dirty` keys read out of `kv` (the
    /// canonical checkpoint store, already advanced to `seq`). `dirty`
    /// must be the exact key set written in the window — it comes from
    /// the replica's per-sequence write-effect log.
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        shard: ShardId,
        base_seq: u64,
        base_digest: Digest,
        seq: u64,
        dirty: impl IntoIterator<Item = Key>,
        kv: &KvStore,
        ledger_height: u64,
        ledger_head: Digest,
    ) -> DeltaSnapshot {
        let mut records: Vec<RecordEntry> = dirty
            .into_iter()
            .filter_map(|key| {
                kv.get(key).map(|r| RecordEntry {
                    key,
                    value: r.value,
                    version: r.version,
                })
            })
            .collect();
        records.sort_unstable_by_key(|r| r.key);
        records.dedup_by_key(|r| r.key);
        DeltaSnapshot {
            shard,
            base_seq,
            base_digest,
            seq,
            records,
            ledger_height,
            ledger_head,
        }
    }

    /// Applies this delta's records onto `kv` (which must hold the base
    /// state; the caller verifies digests via [`ChainTransfer`]).
    pub fn fold_into(&self, kv: &mut KvStore) {
        apply(&self.records, kv);
    }
}

/// Metadata of one link of a state-transfer chain, as announced in a
/// `StatePlan` message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanLink {
    /// The checkpoint sequence this link advances the state to.
    pub seq: u64,
    /// The donor-claimed full-state digest after applying this link.
    /// Intermediate links are cross-checked against quorum-stable
    /// digests where the receiver knows them; the final link must match
    /// the quorum-stable target digest unconditionally.
    pub digest: Digest,
    /// Delta links: the `(seq, digest)` base this link applies on.
    /// `None` marks a full-snapshot link (a complete record list).
    pub base: Option<(u64, Digest)>,
    /// Number of `StateChunk` slices this link's records arrive in.
    pub chunks: u32,
}

/// A fully reassembled state transfer: the plan's links with their
/// records, ready to fold and verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainTransfer {
    /// The quorum-stable checkpoint the transfer targets.
    pub target_seq: u64,
    /// The quorum-stable digest of the target checkpoint.
    pub target_digest: Digest,
    /// The chain links in application order, each with its reassembled
    /// (globally key-ascending) record list.
    pub links: Vec<(PlanLink, Vec<RecordEntry>)>,
    /// The donor's ledger height at the target checkpoint.
    pub ledger_height: u64,
    /// The donor's chain head hash at the target checkpoint.
    pub ledger_head: Digest,
}

/// Why a chain transfer was refused before install.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainError {
    /// The plan carried no links.
    Empty,
    /// The first link is a delta whose base does not match the state
    /// the receiver holds.
    BaseMismatch,
    /// A link's base does not match the digest of the state folded so
    /// far — the chain is not contiguous.
    Discontinuity { seq: u64 },
    /// A folded link's recomputed digest differs from the digest the
    /// plan claimed for it (corrupt or forged records).
    LinkDigestMismatch { seq: u64 },
    /// A folded link's digest contradicts a quorum-stable digest the
    /// receiver observed for that checkpoint.
    StableDigestMismatch { seq: u64 },
    /// The folded end state does not carry the quorum-stable target
    /// digest.
    TargetMismatch,
}

impl ChainTransfer {
    /// True when every link is a delta (no full record list shipped).
    pub fn is_delta_only(&self) -> bool {
        !self.links.is_empty() && self.links.iter().all(|(l, _)| l.base.is_some())
    }

    /// Folds the chain and verifies every link, returning the full
    /// snapshot at the target checkpoint.
    ///
    /// * A chain starting with a delta link folds onto `local_base`,
    ///   which must hold exactly the `(seq, digest)` state the link
    ///   names (the receiver's own last checkpoint store).
    /// * After each link the full-state digest is recomputed and
    ///   checked against the plan's claim, against `known_stable`
    ///   (quorum-observed digests) where available, and — for the final
    ///   link — against the quorum-stable target digest. A single
    ///   flipped byte anywhere in any link's records therefore fails
    ///   verification before anything is installed.
    pub fn fold_verified(
        &self,
        shard: ShardId,
        local_base: Option<(u64, Digest, &KvStore)>,
        known_stable: impl Fn(u64) -> Option<Digest>,
    ) -> Result<Snapshot, ChainError> {
        if self.links.is_empty() {
            return Err(ChainError::Empty);
        }
        let mut store: Option<KvStore> = None;
        let mut folded: Option<(u64, Digest)> = None;
        for (link, records) in &self.links {
            match link.base {
                // A full link (re)starts the fold from scratch.
                None => {
                    let mut kv = KvStore::new();
                    apply(records, &mut kv);
                    store = Some(kv);
                }
                Some(base) => match store.as_mut() {
                    // The chain's first delta folds onto the local base.
                    None => {
                        let Some((bseq, bdigest, bstore)) = local_base else {
                            return Err(ChainError::BaseMismatch);
                        };
                        if base != (bseq, bdigest) {
                            return Err(ChainError::BaseMismatch);
                        }
                        let mut kv = bstore.clone();
                        apply(records, &mut kv);
                        store = Some(kv);
                    }
                    // Later links must chain onto what we just folded.
                    Some(kv) => {
                        if Some(base) != folded {
                            return Err(ChainError::Discontinuity { seq: link.seq });
                        }
                        apply(records, kv);
                    }
                },
            }
            let kv = store.as_ref().expect("just folded");
            let digest = Snapshot::digest_of_store(shard, link.seq, kv);
            if digest != link.digest {
                return Err(ChainError::LinkDigestMismatch { seq: link.seq });
            }
            if known_stable(link.seq).is_some_and(|k| k != digest) {
                return Err(ChainError::StableDigestMismatch { seq: link.seq });
            }
            folded = Some((link.seq, digest));
        }
        if folded != Some((self.target_seq, self.target_digest)) {
            return Err(ChainError::TargetMismatch);
        }
        Ok(Snapshot::capture(
            shard,
            self.target_seq,
            &store.expect("non-empty chain"),
            self.ledger_height,
            self.ledger_head,
        ))
    }
}

fn apply(records: &[RecordEntry], kv: &mut KvStore) {
    for r in records {
        kv.insert_record(
            r.key,
            Record {
                value: r.value,
                version: r.version,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(writes: &[(Key, Value)]) -> KvStore {
        let mut kv = KvStore::new();
        for &(k, v) in writes {
            kv.put(k, v);
        }
        kv
    }

    #[test]
    fn digest_is_insertion_order_independent() {
        let a = store_with(&[(1, 10), (2, 20), (3, 30)]);
        let b = store_with(&[(3, 30), (1, 10), (2, 20)]);
        let sa = Snapshot::capture(ShardId(0), 8, &a, 4, [7; 32]);
        let sb = Snapshot::capture(ShardId(0), 8, &b, 9, [9; 32]);
        // Same records → same digest, even though ledger metadata differs
        // (it is excluded on purpose).
        assert_eq!(sa.digest(), sb.digest());
    }

    #[test]
    fn digest_commits_to_state_seq_and_shard() {
        let kv = store_with(&[(1, 10)]);
        let base = Snapshot::capture(ShardId(0), 8, &kv, 0, [0; 32]);
        let other_value = Snapshot::capture(ShardId(0), 8, &store_with(&[(1, 11)]), 0, [0; 32]);
        assert_ne!(base.digest(), other_value.digest());
        let other_seq = Snapshot::capture(ShardId(0), 16, &kv, 0, [0; 32]);
        assert_ne!(base.digest(), other_seq.digest());
        let other_shard = Snapshot::capture(ShardId(1), 8, &kv, 0, [0; 32]);
        assert_ne!(base.digest(), other_shard.digest());
    }

    #[test]
    fn digest_of_store_matches_capture_digest() {
        let mut kv = store_with(&[(5, 50), (1, 10), (9, 90)]);
        kv.put(5, 51);
        let snap = Snapshot::capture(ShardId(3), 16, &kv, 2, [4; 32]);
        assert_eq!(
            Snapshot::digest_of_store(ShardId(3), 16, &kv),
            snap.digest()
        );
        assert_ne!(
            Snapshot::digest_of_store(ShardId(3), 17, &kv),
            snap.digest()
        );
    }

    #[test]
    fn delta_capture_and_fold_reproduce_the_full_state() {
        let mut kv = store_with(&[(1, 10), (2, 20), (3, 30)]);
        let base = Snapshot::capture(ShardId(0), 4, &kv, 0, [0; 32]);
        let base_digest = base.digest();
        // Window 4→8 writes two keys (one of them twice).
        kv.put(2, 21);
        kv.put(2, 22);
        kv.put(7, 70);
        let delta =
            DeltaSnapshot::capture(ShardId(0), 4, base_digest, 8, [2u64, 2, 7], &kv, 1, [1; 32]);
        assert_eq!(delta.records.len(), 2, "dirty keys dedup");
        let mut folded = base.restore_store();
        delta.fold_into(&mut folded);
        assert_eq!(
            Snapshot::digest_of_store(ShardId(0), 8, &folded),
            Snapshot::capture(ShardId(0), 8, &kv, 1, [1; 32]).digest()
        );
    }

    #[test]
    fn chain_fold_verifies_and_rejects_tampering() {
        let shard = ShardId(0);
        let mut kv = store_with(&[(1, 10), (2, 20)]);
        let base = Snapshot::capture(shard, 4, &kv, 0, [0; 32]);
        let d0 = base.digest();
        kv.put(1, 11);
        let delta1 = DeltaSnapshot::capture(shard, 4, d0, 8, [1u64], &kv, 1, [1; 32]);
        let d1 = Snapshot::digest_of_store(shard, 8, &kv);
        kv.put(2, 21);
        kv.put(3, 30);
        let delta2 = DeltaSnapshot::capture(shard, 8, d1, 12, [2u64, 3], &kv, 2, [2; 32]);
        let d2 = Snapshot::digest_of_store(shard, 12, &kv);

        let transfer = ChainTransfer {
            target_seq: 12,
            target_digest: d2,
            links: vec![
                (
                    PlanLink {
                        seq: 8,
                        digest: d1,
                        base: Some((4, d0)),
                        chunks: 1,
                    },
                    delta1.records.clone(),
                ),
                (
                    PlanLink {
                        seq: 12,
                        digest: d2,
                        base: Some((8, d1)),
                        chunks: 1,
                    },
                    delta2.records.clone(),
                ),
            ],
            ledger_height: 2,
            ledger_head: [2; 32],
        };
        let base_store = base.restore_store();
        let folded = transfer
            .fold_verified(shard, Some((4, d0, &base_store)), |_| None)
            .expect("verified chain folds");
        assert_eq!(folded.digest(), d2);
        assert_eq!(folded.seq, 12);
        assert!(transfer.is_delta_only());

        // Tampered record in the middle link: rejected at that link.
        let mut bad = transfer.clone();
        bad.links[0].1[0].value ^= 1;
        assert_eq!(
            bad.fold_verified(shard, Some((4, d0, &base_store)), |_| None),
            Err(ChainError::LinkDigestMismatch { seq: 8 })
        );
        // Wrong local base: rejected before folding anything.
        assert_eq!(
            transfer.fold_verified(shard, Some((4, [9; 32], &base_store)), |_| None),
            Err(ChainError::BaseMismatch)
        );
        // A quorum-stable digest contradiction on an intermediate link.
        assert_eq!(
            transfer.fold_verified(shard, Some((4, d0, &base_store)), |s| (s == 8)
                .then_some([7; 32])),
            Err(ChainError::StableDigestMismatch { seq: 8 })
        );
    }

    #[test]
    fn chain_fold_full_link_needs_no_local_base() {
        let shard = ShardId(1);
        let mut kv = store_with(&[(1, 10)]);
        let full = Snapshot::capture(shard, 4, &kv, 0, [0; 32]);
        let d0 = full.digest();
        kv.put(4, 40);
        let delta = DeltaSnapshot::capture(shard, 4, d0, 8, [4u64], &kv, 1, [1; 32]);
        let d1 = Snapshot::digest_of_store(shard, 8, &kv);
        let transfer = ChainTransfer {
            target_seq: 8,
            target_digest: d1,
            links: vec![
                (
                    PlanLink {
                        seq: 4,
                        digest: d0,
                        base: None,
                        chunks: 1,
                    },
                    full.records.clone(),
                ),
                (
                    PlanLink {
                        seq: 8,
                        digest: d1,
                        base: Some((4, d0)),
                        chunks: 1,
                    },
                    delta.records.clone(),
                ),
            ],
            ledger_height: 1,
            ledger_head: [1; 32],
        };
        assert!(!transfer.is_delta_only());
        let folded = transfer
            .fold_verified(shard, None, |_| None)
            .expect("folds");
        assert_eq!(folded.digest(), d1);
    }

    #[test]
    fn restore_round_trips_including_versions() {
        let mut kv = store_with(&[(1, 10), (2, 20)]);
        kv.put(1, 11); // version bump
        let snap = Snapshot::capture(ShardId(0), 4, &kv, 1, [1; 32]);
        let restored = snap.restore_store();
        assert_eq!(restored.state_fingerprint(), kv.state_fingerprint());
        assert_eq!(restored.get(1).unwrap().version, 2);
        // Re-capturing the restored store reproduces the digest.
        let again = Snapshot::capture(ShardId(0), 4, &restored, 1, [1; 32]);
        assert_eq!(again.digest(), snap.digest());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// snapshot → digest → restore → re-snapshot is the identity on
        /// the digest, for arbitrary write histories applied in two
        /// different orders.
        #[test]
        fn snapshot_digest_install_deterministic(
            seed in 0u64..u64::MAX,
            n_writes in 1usize..200,
        ) {
            let mut rng = proptest::rng_for(&format!("snap-{seed}"));
            let writes: Vec<(Key, Value)> = (0..n_writes)
                .map(|_| {
                    let k = Strategy::generate(&(0u64..64), &mut rng);
                    let v = Strategy::generate(&(0u64..1_000_000), &mut rng);
                    (k, v)
                })
                .collect();
            // Applying the same per-key write sequences with interleaved
            // order of *distinct* keys must not change the digest. Build
            // store A in given order, store B keyed-grouped.
            let mut a = KvStore::new();
            for &(k, v) in &writes {
                a.put(k, v);
            }
            let mut b = KvStore::new();
            let mut keys: Vec<Key> = writes.iter().map(|w| w.0).collect();
            keys.sort_unstable();
            keys.dedup();
            for k in keys {
                for &(wk, v) in &writes {
                    if wk == k {
                        b.put(k, v);
                    }
                }
            }
            let sa = Snapshot::capture(ShardId(2), 32, &a, 0, [0; 32]);
            let sb = Snapshot::capture(ShardId(2), 32, &b, 0, [0; 32]);
            prop_assert_eq!(sa.digest(), sb.digest());

            // Install on a blank store and re-capture: digest preserved.
            let restored = sa.restore_store();
            let rs = Snapshot::capture(ShardId(2), 32, &restored, 0, [0; 32]);
            prop_assert_eq!(rs.digest(), sa.digest());
        }
    }

    /// Builds a random multi-window history: a base snapshot at window
    /// 0 plus one verified delta per later window, with the final full
    /// store returned for ground truth.
    fn churn_chain(
        seed: u64,
        windows: usize,
        writes_per_window: usize,
    ) -> (Snapshot, Vec<(PlanLink, Vec<RecordEntry>)>, KvStore) {
        let shard = ShardId(1);
        let interval = 8u64;
        let mut rng = proptest::rng_for(&format!("churn-{seed}"));
        let mut kv = KvStore::new();
        for k in 0..64u64 {
            kv.put(k, k * 3 + 1);
        }
        let base = Snapshot::capture(shard, interval, &kv, 0, [0; 32]);
        let mut prev = (interval, base.digest());
        let mut links = Vec::new();
        for w in 1..=windows {
            let seq = interval * (w as u64 + 1);
            let mut dirty = Vec::new();
            for _ in 0..writes_per_window {
                let k = Strategy::generate(&(0u64..96), &mut rng);
                let v = Strategy::generate(&(0u64..1_000_000), &mut rng);
                kv.put(k, v);
                dirty.push(k);
            }
            let delta = DeltaSnapshot::capture(
                shard,
                prev.0,
                prev.1,
                seq,
                dirty,
                &kv,
                w as u64,
                [w as u8; 32],
            );
            let digest = Snapshot::digest_of_store(shard, seq, &kv);
            links.push((
                PlanLink {
                    seq,
                    digest,
                    base: Some(prev),
                    chunks: 1,
                },
                delta.records,
            ));
            prev = (seq, digest);
        }
        (base, links, kv)
    }

    proptest! {
        /// Tentpole acceptance: for random write churn across ≥ 3
        /// checkpoint windows, folding the delta chain onto the base
        /// store reproduces `Snapshot::capture`'s digest exactly.
        #[test]
        fn delta_chain_fold_matches_full_capture(
            seed in 0u64..u64::MAX,
            windows in 3usize..7,
            writes in 1usize..40,
        ) {
            let (base, links, full_kv) = churn_chain(seed, windows, writes);
            let (tseq, tdigest) = {
                let last = &links.last().expect("windows >= 3").0;
                (last.seq, last.digest)
            };
            let transfer = ChainTransfer {
                target_seq: tseq,
                target_digest: tdigest,
                links,
                ledger_height: windows as u64,
                ledger_head: [windows as u8; 32],
            };
            let base_store = base.restore_store();
            let folded = transfer
                .fold_verified(
                    ShardId(1),
                    Some((base.seq, base.digest(), &base_store)),
                    |_| None,
                )
                .expect("honest chain verifies");
            let truth = Snapshot::capture(ShardId(1), tseq, &full_kv, 0, [0; 32]);
            prop_assert_eq!(folded.digest(), truth.digest());
            prop_assert_eq!(folded.records, truth.records);
        }

        /// Corruption-never-accepted, extended to chains: a single
        /// flipped byte in any record of any delta link fails
        /// verification before install.
        #[test]
        fn flipped_byte_in_any_delta_link_is_rejected(
            seed in 0u64..u64::MAX,
            windows in 3usize..6,
            writes in 1usize..24,
            victim in 0u64..1_000_000,
            field in 0u8..3,
            bit in 0u8..64,
        ) {
            let (base, links, _) = churn_chain(seed, windows, writes);
            let (tseq, tdigest) = {
                let last = &links.last().expect("windows >= 3").0;
                (last.seq, last.digest)
            };
            let mut transfer = ChainTransfer {
                target_seq: tseq,
                target_digest: tdigest,
                links,
                ledger_height: 0,
                ledger_head: [0; 32],
            };
            // Pick a record anywhere in the chain and flip one bit of
            // one of its fields.
            let link = (victim as usize) % transfer.links.len();
            let records = &mut transfer.links[link].1;
            prop_assume!(!records.is_empty());
            let idx = (victim as usize / 7) % records.len();
            let r = &mut records[idx];
            let mask = 1u64 << bit;
            match field {
                0 => r.key ^= mask,
                1 => r.value ^= mask,
                _ => r.version ^= mask,
            }
            let base_store = base.restore_store();
            let verdict = transfer.fold_verified(
                ShardId(1),
                Some((base.seq, base.digest(), &base_store)),
                |_| None,
            );
            prop_assert!(
                verdict.is_err(),
                "tampered link {link} was accepted: {verdict:?}"
            );
        }
    }
}
