//! The checkpoint snapshot: one shard replica's application state at a
//! stable checkpoint, plus the SHA-256 digest the PBFT checkpoint votes
//! agree on.

use ringbft_crypto::{Digest, Sha256};
use ringbft_store::{KvStore, Record};
use ringbft_types::txn::{Key, Value};
use ringbft_types::ShardId;
use serde::{Deserialize, Serialize};

/// One key-value record as it travels inside a state-transfer chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordEntry {
    /// The key.
    pub key: Key,
    /// Current value.
    pub value: Value,
    /// Write-version of the record (bumped on every store write; carried
    /// so the restored store is bit-identical to the donor's, version
    /// counters included).
    pub version: u64,
}

/// A shard replica's state at a stable checkpoint.
///
/// `records` is sorted by key, giving the snapshot a canonical encoding:
/// two replicas that executed the same sequence prefix produce the same
/// record list and hence the same [`Snapshot::digest`], regardless of
/// the (allowed) differences in their execution interleaving of
/// non-conflicting transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The shard this state belongs to.
    pub shard: ShardId,
    /// The checkpoint sequence number: every consensus sequence ≤ `seq`
    /// is reflected in `records`, and none above it.
    pub seq: u64,
    /// The key-value partition, ascending by key.
    pub records: Vec<RecordEntry>,
    /// The donor's ledger height at the checkpoint (the installed
    /// ledger's base height — see the crate docs for the trust note).
    pub ledger_height: u64,
    /// The donor's chain head hash at the checkpoint.
    pub ledger_head: Digest,
}

impl Snapshot {
    /// Captures `kv` (plus ledger position) as the state at checkpoint
    /// `seq`.
    pub fn capture(
        shard: ShardId,
        seq: u64,
        kv: &KvStore,
        ledger_height: u64,
        ledger_head: Digest,
    ) -> Snapshot {
        let mut records: Vec<RecordEntry> = kv
            .iter()
            .map(|(key, r)| RecordEntry {
                key,
                value: r.value,
                version: r.version,
            })
            .collect();
        records.sort_unstable_by_key(|r| r.key);
        Snapshot {
            shard,
            seq,
            records,
            ledger_height,
            ledger_head,
        }
    }

    /// The state digest the shard's `Checkpoint` votes carry: SHA-256
    /// over the canonical encoding of `(shard, seq, records)`.
    ///
    /// The ledger fields are deliberately excluded: §7 lets replicas of
    /// one shard order non-conflicting cross-shard blocks differently,
    /// so chain heads are replica-local and must not block checkpoint
    /// agreement.
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ringbft-snapshot");
        h.update(&self.shard.0.to_le_bytes());
        h.update(&self.seq.to_le_bytes());
        h.update(&(self.records.len() as u64).to_le_bytes());
        for r in &self.records {
            h.update(&r.key.to_le_bytes());
            h.update(&r.value.to_le_bytes());
            h.update(&r.version.to_le_bytes());
        }
        h.finalize()
    }

    /// Rebuilds the key-value store this snapshot captured.
    pub fn restore_store(&self) -> KvStore {
        let mut kv = KvStore::new();
        for r in &self.records {
            kv.insert_record(
                r.key,
                Record {
                    value: r.value,
                    version: r.version,
                },
            );
        }
        kv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(writes: &[(Key, Value)]) -> KvStore {
        let mut kv = KvStore::new();
        for &(k, v) in writes {
            kv.put(k, v);
        }
        kv
    }

    #[test]
    fn digest_is_insertion_order_independent() {
        let a = store_with(&[(1, 10), (2, 20), (3, 30)]);
        let b = store_with(&[(3, 30), (1, 10), (2, 20)]);
        let sa = Snapshot::capture(ShardId(0), 8, &a, 4, [7; 32]);
        let sb = Snapshot::capture(ShardId(0), 8, &b, 9, [9; 32]);
        // Same records → same digest, even though ledger metadata differs
        // (it is excluded on purpose).
        assert_eq!(sa.digest(), sb.digest());
    }

    #[test]
    fn digest_commits_to_state_seq_and_shard() {
        let kv = store_with(&[(1, 10)]);
        let base = Snapshot::capture(ShardId(0), 8, &kv, 0, [0; 32]);
        let other_value = Snapshot::capture(ShardId(0), 8, &store_with(&[(1, 11)]), 0, [0; 32]);
        assert_ne!(base.digest(), other_value.digest());
        let other_seq = Snapshot::capture(ShardId(0), 16, &kv, 0, [0; 32]);
        assert_ne!(base.digest(), other_seq.digest());
        let other_shard = Snapshot::capture(ShardId(1), 8, &kv, 0, [0; 32]);
        assert_ne!(base.digest(), other_shard.digest());
    }

    #[test]
    fn restore_round_trips_including_versions() {
        let mut kv = store_with(&[(1, 10), (2, 20)]);
        kv.put(1, 11); // version bump
        let snap = Snapshot::capture(ShardId(0), 4, &kv, 1, [1; 32]);
        let restored = snap.restore_store();
        assert_eq!(restored.state_fingerprint(), kv.state_fingerprint());
        assert_eq!(restored.get(1).unwrap().version, 2);
        // Re-capturing the restored store reproduces the digest.
        let again = Snapshot::capture(ShardId(0), 4, &restored, 1, [1; 32]);
        assert_eq!(again.digest(), snap.digest());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// snapshot → digest → restore → re-snapshot is the identity on
        /// the digest, for arbitrary write histories applied in two
        /// different orders.
        #[test]
        fn snapshot_digest_install_deterministic(
            seed in 0u64..u64::MAX,
            n_writes in 1usize..200,
        ) {
            let mut rng = proptest::rng_for(&format!("snap-{seed}"));
            let writes: Vec<(Key, Value)> = (0..n_writes)
                .map(|_| {
                    let k = Strategy::generate(&(0u64..64), &mut rng);
                    let v = Strategy::generate(&(0u64..1_000_000), &mut rng);
                    (k, v)
                })
                .collect();
            // Applying the same per-key write sequences with interleaved
            // order of *distinct* keys must not change the digest. Build
            // store A in given order, store B keyed-grouped.
            let mut a = KvStore::new();
            for &(k, v) in &writes {
                a.put(k, v);
            }
            let mut b = KvStore::new();
            let mut keys: Vec<Key> = writes.iter().map(|w| w.0).collect();
            keys.sort_unstable();
            keys.dedup();
            for k in keys {
                for &(wk, v) in &writes {
                    if wk == k {
                        b.put(k, v);
                    }
                }
            }
            let sa = Snapshot::capture(ShardId(2), 32, &a, 0, [0; 32]);
            let sb = Snapshot::capture(ShardId(2), 32, &b, 0, [0; 32]);
            prop_assert_eq!(sa.digest(), sb.digest());

            // Install on a blank store and re-capture: digest preserved.
            let restored = sa.restore_store();
            let rs = Snapshot::capture(ShardId(2), 32, &restored, 0, [0; 32]);
            prop_assert_eq!(rs.digest(), sa.digest());
        }
    }
}
