//! The sans-io recovery state machine: serves checkpoints to lagging
//! same-shard peers and fetches them when this replica is the laggard.
//!
//! Transfers are negotiated as *chains* (PR 4, incremental snapshots):
//! a [`RecoveryMsg::StateRequest`] advertises the requester's last
//! checkpoint `(seq, digest)` base; a donor that recognizes that base
//! in its retained delta chain answers with the shortest chain of
//! O(churn) [`DeltaSnapshot`] links, and falls back to a full snapshot
//! link (plus any newer deltas) otherwise. The donor announces the plan
//! ([`RecoveryMsg::StatePlan`]), streams each link's records in
//! [`RecoveryMsg::StateChunk`] slices, and the receiver reassembles,
//! folds, and verifies every link's chained digest before anything is
//! installed ([`ChainTransfer::fold_verified`]).

use crate::snapshot::{ChainTransfer, DeltaSnapshot, PlanLink, RecordEntry, Snapshot};
use ringbft_crypto::Digest;
use ringbft_types::sansio::ProtocolNode;
use ringbft_types::{wire, Action, Duration, Instant, NodeId, Outbox, ReplicaId, TimerKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Timer token of the recovery probe watchdog (on [`TimerKind::Client`]),
/// chosen from the RingBFT-level token space so it never collides with
/// PBFT sequence-number tokens or the replica's cst watchdogs.
pub const RECOVERY_PROBE_TOKEN: u64 = (1 << 62) - 2;

/// How many distinct stable-checkpoint digests the manager remembers for
/// validating inbound transfer offers — and how many checkpoint windows
/// of delta snapshots a donor retains for serving chains. Delta chains
/// longer than this lose their quorum anchors; `SystemConfig::validate`
/// caps `full_snapshot_every` at the same shared constant.
const KNOWN_STABLE_KEEP: usize = ringbft_types::DELTA_CHAIN_KEEP;

/// State-transfer messages, exchanged only between replicas of one shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryMsg {
    /// "Send me state newer than `from_seq`" — unicast to a single peer
    /// at a time (linear-primitive discipline; the probe timer rotates
    /// the donor). `base` names the checkpoint state the requester
    /// already holds verified, so the donor can answer with a delta
    /// chain instead of a full snapshot; `None` (blank restart, or a
    /// requester whose previous chain was rejected) forces the full
    /// fallback.
    StateRequest {
        /// The requester's current execution watermark.
        from_seq: u64,
        /// The requester's last checkpoint `(seq, digest)`, if any.
        base: Option<(u64, Digest)>,
    },
    /// Transfer header: the chain of links about to be streamed, the
    /// quorum-stable target they reach, and the donor's ledger base at
    /// the target (not part of the digest — see the crate docs' ledger
    /// trust note).
    StatePlan {
        /// Checkpoint sequence the chain reaches.
        target_seq: u64,
        /// The target's state digest (must match a quorum-stable
        /// checkpoint digest the receiver observed).
        target_digest: Digest,
        /// The chain links in application order.
        links: Vec<PlanLink>,
        /// Donor's ledger height at the target checkpoint.
        ledger_height: u64,
        /// Donor's chain head hash at the target checkpoint.
        ledger_head: Digest,
    },
    /// One slice of one chain link's record list.
    StateChunk {
        /// Checkpoint sequence the transfer's chain reaches.
        target_seq: u64,
        /// The transfer's quorum-stable target digest.
        target_digest: Digest,
        /// The chain link this slice belongs to (its endpoint seq).
        link_seq: u64,
        /// True when the link is a delta (used for byte accounting; the
        /// authoritative link metadata travels in the plan).
        delta: bool,
        /// Zero-based chunk index within the link (the link's chunk
        /// count travels authoritatively in the plan).
        chunk: u32,
        /// The records of this slice (ascending by key within the link).
        records: Vec<RecordEntry>,
    },
    /// Single-sequence commit-certificate fetch (see [`crate::hole`]):
    /// "send me the commit certificate and batch for this sequence".
    HoleRequest(ringbft_types::hole::HoleRequest),
    /// A donor's certificate + batch answer. The host verifies the
    /// `nf`-strong certificate and the batch digest before installing.
    HoleReply(ringbft_types::hole::HoleReply),
}

impl RecoveryMsg {
    /// Short tag for logging/metrics.
    pub fn tag(&self) -> &'static str {
        match self {
            RecoveryMsg::StateRequest { .. } => "state-request",
            RecoveryMsg::StatePlan { .. } => "state-plan",
            RecoveryMsg::StateChunk { .. } => "state-chunk",
            RecoveryMsg::HoleRequest(_) => "hole-request",
            RecoveryMsg::HoleReply(_) => "hole-reply",
        }
    }
}

/// Outputs of the manager for the hosting replica to act on.
#[derive(Debug)]
pub enum RecoveryEvent {
    /// A transfer arrived complete and admission-checked against a
    /// quorum-stable target: the host folds the chain onto its own
    /// checkpoint store, verifies every link
    /// ([`ChainTransfer::fold_verified`]), and installs the result —
    /// reporting back via [`RecoveryManager::confirm_install`] or
    /// [`RecoveryManager::chain_rejected`].
    InstallChain(ChainTransfer),
}

/// Counters for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// StateRequests this replica sent.
    pub requests_sent: u64,
    /// StateRequests this replica answered with a transfer.
    pub transfers_served: u64,
    /// Transfers served as pure delta chains (no full link shipped).
    pub delta_transfers_served: u64,
    /// Chunks received (accepted into an assembly).
    pub chunks_received: u64,
    /// Completed transfers whose folded chain verified (whether or not
    /// the host then installed — it may refuse a verified snapshot that
    /// races local state).
    pub transfers_verified: u64,
    /// Snapshots the *host* actually installed.
    pub installs: u64,
    /// Installs whose transfer was a pure delta chain.
    pub delta_installs: u64,
    /// Installs whose transfer shipped a full snapshot link.
    pub full_installs: u64,
    /// Completed transfers rejected for a digest/chain mismatch.
    pub bad_digests: u64,
    /// Honest transfers dropped because they raced this replica's own
    /// progress: the chain was built for a base the replica has since
    /// advanced past. Not an integrity failure — the next request
    /// advertises the new base.
    pub stale_chains: u64,
    /// Modeled wire bytes of accepted full-snapshot chunks.
    pub bytes_full: u64,
    /// Modeled wire bytes of accepted delta chunks.
    pub bytes_delta: u64,
}

impl RecoveryStats {
    /// Total modeled state-transfer bytes this replica accepted.
    pub fn transfer_bytes(&self) -> u64 {
        self.bytes_full + self.bytes_delta
    }
}

/// A transfer being reassembled.
#[derive(Debug)]
struct Assembly {
    target_seq: u64,
    target_digest: Digest,
    /// The plan, once it arrived: links + the donor's ledger base.
    plan: Option<(Vec<PlanLink>, u64, Digest)>,
    /// Received slices, keyed by `(link_seq, is_delta, chunk index)`.
    /// The delta flag keeps one donor's *full* link at a boundary from
    /// colliding with another donor's *delta* link at the same boundary
    /// when a stalled transfer is retried; honest same-kind slices are
    /// interchangeable (delta and full captures of one checkpoint are
    /// replica-deterministic, and the chunking stride is a cluster-wide
    /// knob).
    chunks: BTreeMap<(u64, bool, u32), Vec<RecordEntry>>,
}

impl Assembly {
    fn progress(&self) -> usize {
        self.chunks.len() + usize::from(self.plan.is_some())
    }
}

/// One retained chain entry on the donor side.
#[derive(Debug)]
struct RetainedDelta {
    delta: Arc<DeltaSnapshot>,
    /// Full-state digest after applying the delta.
    digest: Digest,
}

/// The recovery state machine of one shard replica. Sans-io: every
/// entry point takes an [`Outbox`] and the hosting replica performs the
/// sends/timers (directly, or lifted into its own message space).
pub struct RecoveryManager {
    me: ReplicaId,
    chunk_records: usize,
    probe_interval: Duration,
    /// The latest *full* snapshot this replica can serve (captured every
    /// `full_snapshot_every` windows, or installed), with its digest.
    base: Option<(Arc<Snapshot>, Digest)>,
    /// Verified delta snapshots of recent checkpoint windows, oldest
    /// first, each continuous with its predecessor (and with `base`
    /// where their ranges overlap). Bounded to [`KNOWN_STABLE_KEEP`]
    /// windows.
    deltas: VecDeque<RetainedDelta>,
    /// Quorum-stable `(seq, digest)` pairs observed via PBFT checkpoint
    /// stabilization — the only targets inbound transfers are accepted
    /// for.
    known_stable: BTreeMap<u64, Digest>,
    /// The stable checkpoint sequence this replica is trying to reach
    /// (None = caught up).
    target: Option<u64>,
    /// This replica's execution watermark as last reported by the host.
    local_floor: u64,
    /// The checkpoint `(seq, digest)` the host's canonical stable store
    /// currently holds — advertised as the delta base in StateRequests.
    local_base: Option<(u64, Digest)>,
    /// Set after a chain rejection: the *next* request omits the base
    /// so that donor falls back to a full snapshot (defence in depth if
    /// this replica's own base state is bad). One-shot — consumed by a
    /// single request — so a Byzantine peer forging rejected chains can
    /// only downgrade one probe at a time, never durably force a
    /// delta-capable laggard onto O(state) transfers.
    force_full: bool,
    assembly: Option<Assembly>,
    /// Assembly progress observed at the last probe tick, used to
    /// suppress redundant full retransfers while one is arriving.
    last_probe_progress: Option<(u64, usize)>,
    donors: crate::hole::DonorRotation,
    probing: bool,
    events: Vec<RecoveryEvent>,
    /// Counters.
    pub stats: RecoveryStats,
}

impl RecoveryManager {
    /// Creates the manager for replica `me` of a shard of `n` replicas.
    /// `chunk_records` bounds the records per [`RecoveryMsg::StateChunk`];
    /// `probe_interval` paces donor rotation while behind.
    pub fn new(me: ReplicaId, n: usize, chunk_records: usize, probe_interval: Duration) -> Self {
        RecoveryManager {
            me,
            chunk_records: chunk_records.max(1),
            probe_interval,
            base: None,
            deltas: VecDeque::new(),
            known_stable: BTreeMap::new(),
            target: None,
            local_floor: 0,
            local_base: None,
            force_full: false,
            assembly: None,
            last_probe_progress: None,
            donors: crate::hole::DonorRotation::new(me, n),
            probing: false,
            events: Vec::new(),
            stats: RecoveryStats::default(),
        }
    }

    /// The `(seq, digest)` of the newest state this replica can serve.
    fn tip(&self) -> Option<(u64, Digest)> {
        let delta_tip = self.deltas.back().map(|d| (d.delta.seq, d.digest));
        let base_tip = self.base.as_ref().map(|(s, d)| (s.seq, *d));
        match (delta_tip, base_tip) {
            (Some(d), Some(b)) => Some(if d.0 >= b.0 { d } else { b }),
            (d, b) => d.or(b),
        }
    }

    /// Remembers `snap` as the full snapshot this replica serves to
    /// laggards whose base it does not recognize. Retained deltas stay
    /// servable when they are continuous with the new base (same tip);
    /// a jump (snapshot install) breaks the chain and drops them.
    pub fn retain(&mut self, snap: Arc<Snapshot>) {
        let tip = self.tip();
        if tip.is_some_and(|(s, _)| s > snap.seq) {
            return; // older than what we already serve
        }
        let digest = snap.digest();
        if tip.is_some_and(|(s, _)| s < snap.seq) {
            // The full snapshot is ahead of every retained delta: the
            // chain no longer reaches it, so the deltas are useless.
            self.deltas.clear();
        }
        self.base = Some((snap, digest));
    }

    /// Remembers a verified delta checkpoint (this replica's digest won
    /// the quorum vote, or the chain it arrived in verified against
    /// one). `resulting_digest` is the full-state digest after the
    /// delta. A delta that does not chain onto the current tip restarts
    /// the retained chain.
    pub fn retain_delta(&mut self, delta: Arc<DeltaSnapshot>, resulting_digest: Digest) {
        let tip = self.tip();
        if tip.is_some_and(|(s, _)| s >= delta.seq) {
            return; // stale
        }
        if tip != Some((delta.base_seq, delta.base_digest)) {
            // Chain break (divergence, missed window): older deltas can
            // no longer extend to this one.
            self.deltas.clear();
            // The full base can still anchor the new delta if it is the
            // delta's base; otherwise the delta is unservable alone.
            if self
                .base
                .as_ref()
                .is_none_or(|(s, d)| (s.seq, *d) != (delta.base_seq, delta.base_digest))
            {
                return;
            }
        }
        self.deltas.push_back(RetainedDelta {
            delta,
            digest: resulting_digest,
        });
        while self.deltas.len() > KNOWN_STABLE_KEEP {
            self.deltas.pop_front();
        }
    }

    /// Checkpoint sequence of the newest retained state, if any.
    pub fn retained_seq(&self) -> Option<u64> {
        self.tip().map(|(s, _)| s)
    }

    /// Number of retained delta windows (diagnostics).
    pub fn retained_delta_windows(&self) -> usize {
        self.deltas.len()
    }

    /// Records a quorum-stable `(seq, digest)` pair (from the PBFT
    /// `StableCheckpoint` event) for transfer validation.
    pub fn note_stable(&mut self, seq: u64, digest: Digest) {
        self.known_stable.insert(seq, digest);
        while self.known_stable.len() > KNOWN_STABLE_KEEP {
            let oldest = *self.known_stable.keys().next().expect("non-empty");
            self.known_stable.remove(&oldest);
        }
    }

    /// The quorum-stable digest observed for checkpoint `seq`, if still
    /// remembered — the per-link anchor for chain verification.
    pub fn stable_digest(&self, seq: u64) -> Option<Digest> {
        self.known_stable.get(&seq).copied()
    }

    /// The host's canonical stable store advanced to checkpoint
    /// `(seq, digest)`: advertised as the delta base of future
    /// StateRequests. Clears any full-fallback override — the base is
    /// fresh again.
    pub fn set_local_base(&mut self, seq: u64, digest: Digest) {
        self.local_base = Some((seq, digest));
        self.force_full = false;
    }

    /// The host's own checkpoint state turned out to be corrupt (its
    /// announced digest lost a checkpoint quorum vote): stop
    /// advertising it as a delta base and force the next request onto
    /// the full-snapshot path. Unlike [`RecoveryManager::chain_rejected`]
    /// this counts no integrity failure — the donors did nothing wrong.
    pub fn invalidate_base(&mut self) {
        self.local_base = None;
        self.force_full = true;
    }

    /// The host fell behind the stable checkpoint `seq`: remember the
    /// catch-up target and make sure the probe timer is running. The
    /// probe fires after `probe_interval` — a healthy replica that was
    /// merely mid-flight catches up before then and the probe no-ops.
    pub fn set_behind(&mut self, seq: u64, watermark: u64, out: &mut Outbox<RecoveryMsg>) {
        self.local_floor = watermark;
        self.target = Some(self.target.unwrap_or(0).max(seq));
        if !self.probing {
            self.probing = true;
            out.set_timer(TimerKind::Client, RECOVERY_PROBE_TOKEN, self.probe_interval);
        }
    }

    /// The catch-up target, if the replica is behind.
    pub fn target(&self) -> Option<u64> {
        self.target
    }

    /// The host's execution watermark advanced: clears the target once
    /// caught up.
    pub fn caught_up_to(&mut self, watermark: u64) {
        self.local_floor = self.local_floor.max(watermark);
        if self.target.is_some_and(|t| watermark >= t) {
            self.target = None;
            self.assembly = None;
        }
    }

    /// Handles the probe timer: while still behind, ask the next donor
    /// and re-arm. A transfer that made progress since the previous tick
    /// suppresses the request — a large snapshot (hundreds of chunks)
    /// must not trigger a second full O(state) retransfer from another
    /// donor just because it outlasts one probe interval.
    pub fn on_probe_timer(&mut self, out: &mut Outbox<RecoveryMsg>) {
        if self.target.is_none() {
            self.probing = false;
            self.last_probe_progress = None;
            return;
        }
        let progress = self.assembly.as_ref().map(|a| (a.target_seq, a.progress()));
        let advancing = progress.is_some() && progress != self.last_probe_progress;
        self.last_probe_progress = progress;
        if !advancing {
            // A stalled assembly is abandoned before asking the next
            // donor: its plan (from a donor that may have died
            // mid-stream) would otherwise pin the transfer shape
            // forever — later donors may legitimately answer with a
            // different chain for the same target (e.g. a full fallback
            // after they cleared their own deltas), and `on_plan` keeps
            // only the first plan per target.
            self.assembly = None;
            self.last_probe_progress = None;
            if let Some(donor) = self.donors.next_donor() {
                let base = if std::mem::take(&mut self.force_full) {
                    None
                } else {
                    self.local_base
                };
                out.send(
                    donor,
                    RecoveryMsg::StateRequest {
                        from_seq: self.local_floor,
                        base,
                    },
                );
                self.stats.requests_sent += 1;
            }
        }
        out.set_timer(TimerKind::Client, RECOVERY_PROBE_TOKEN, self.probe_interval);
    }

    /// Handles a recovery message from same-shard replica `from`.
    pub fn on_message(&mut self, from: ReplicaId, msg: RecoveryMsg, out: &mut Outbox<RecoveryMsg>) {
        if from.shard != self.me.shard || from == self.me {
            return;
        }
        match msg {
            RecoveryMsg::StateRequest { from_seq, base } => self.serve(from, from_seq, base, out),
            RecoveryMsg::StatePlan {
                target_seq,
                target_digest,
                links,
                ledger_height,
                ledger_head,
            } => self.on_plan(target_seq, target_digest, links, ledger_height, ledger_head),
            RecoveryMsg::StateChunk {
                target_seq,
                target_digest,
                link_seq,
                delta,
                chunk,
                records,
            } => self.on_chunk(target_seq, target_digest, link_seq, delta, chunk, records),
            // Hole fetch is handled by the hosting replica (it owns the
            // PBFT log the certificates come from); see `crate::hole`.
            RecoveryMsg::HoleRequest(_) | RecoveryMsg::HoleReply(_) => {}
        }
    }

    /// Answers a state request with the shortest chain that reaches the
    /// retained tip: a pure delta chain when the requester's base is a
    /// point of our retained chain, the full snapshot plus newer deltas
    /// otherwise.
    fn serve(
        &mut self,
        to: ReplicaId,
        from_seq: u64,
        req_base: Option<(u64, Digest)>,
        out: &mut Outbox<RecoveryMsg>,
    ) {
        let Some((tip_seq, tip_digest)) = self.tip() else {
            return;
        };
        if tip_seq <= from_seq {
            return; // nothing newer to offer; the requester rotates on
        }
        // Delta path: the requester's base is a chain point we retain.
        let mut links: Vec<(PlanLink, &[RecordEntry])> = Vec::new();
        if let Some(b) = req_base {
            if let Some(idx) = self
                .deltas
                .iter()
                .position(|d| (d.delta.base_seq, d.delta.base_digest) == b)
            {
                for d in self.deltas.iter().skip(idx) {
                    links.push((
                        PlanLink {
                            seq: d.delta.seq,
                            digest: d.digest,
                            base: Some((d.delta.base_seq, d.delta.base_digest)),
                            chunks: chunk_count(d.delta.records.len(), self.chunk_records),
                        },
                        &d.delta.records,
                    ));
                }
            }
        }
        // Full fallback: the base snapshot plus every newer delta.
        let delta_only = !links.is_empty();
        if !delta_only {
            let Some((snap, digest)) = &self.base else {
                return; // only deltas retained and no usable base
            };
            links.push((
                PlanLink {
                    seq: snap.seq,
                    digest: *digest,
                    base: None,
                    chunks: chunk_count(snap.records.len(), self.chunk_records),
                },
                &snap.records,
            ));
            let mut prev = (snap.seq, *digest);
            let floor = snap.seq;
            for d in self.deltas.iter().filter(move |d| d.delta.seq > floor) {
                if (d.delta.base_seq, d.delta.base_digest) != prev {
                    break; // defensive: never ship a discontinuous chain
                }
                links.push((
                    PlanLink {
                        seq: d.delta.seq,
                        digest: d.digest,
                        base: Some(prev),
                        chunks: chunk_count(d.delta.records.len(), self.chunk_records),
                    },
                    &d.delta.records,
                ));
                prev = (d.delta.seq, d.digest);
            }
        }
        let (target_seq, target_digest) = links
            .last()
            .map(|(l, _)| (l.seq, l.digest))
            .expect("links non-empty");
        // Normally the chain reaches the retained tip; after a chain
        // break (divergence, or a full-capture cadence outliving the
        // delta memory) the longest continuous prefix is still a valid,
        // shorter offer — its endpoint was a stable checkpoint too.
        let _ = (tip_seq, tip_digest);
        // Ledger base of the chain's endpoint entry.
        let (ledger_height, ledger_head) = self
            .deltas
            .iter()
            .find(|d| d.delta.seq == target_seq)
            .map(|d| (d.delta.ledger_height, d.delta.ledger_head))
            .or_else(|| {
                self.base
                    .as_ref()
                    .map(|(s, _)| (s.ledger_height, s.ledger_head))
            })
            .expect("chain endpoint is a retained entry");
        let to = NodeId::Replica(to);
        out.send(
            to,
            RecoveryMsg::StatePlan {
                target_seq,
                target_digest,
                links: links.iter().map(|(l, _)| *l).collect(),
                ledger_height,
                ledger_head,
            },
        );
        for (link, records) in links {
            for (i, slice) in records.chunks(self.chunk_records).enumerate() {
                out.send(
                    to,
                    RecoveryMsg::StateChunk {
                        target_seq,
                        target_digest,
                        link_seq: link.seq,
                        delta: link.base.is_some(),
                        chunk: i as u32,
                        records: slice.to_vec(),
                    },
                );
            }
        }
        self.stats.transfers_served += 1;
        if delta_only {
            self.stats.delta_transfers_served += 1;
        }
    }

    /// Is a transfer toward `(seq, digest)` acceptable right now? Only
    /// state a checkpoint quorum (or weak certificate) vouched for, and
    /// only above the host's watermark. A transfer *below* the catch-up
    /// target is still progress — donors serve their verified stable
    /// tip, which may trail a weakly-evidenced boundary this replica
    /// learned about; refusing it would wedge recovery exactly when the
    /// shard's checkpoint cadence is wedged too.
    fn admissible(&self, target_seq: u64, target_digest: Digest) -> bool {
        if self.target.is_none() {
            return false; // not recovering
        }
        target_seq > self.local_floor && self.known_stable.get(&target_seq) == Some(&target_digest)
    }

    /// (Re)points the assembly at the given target, dropping a stale one.
    fn assembly_for(&mut self, target_seq: u64, target_digest: Digest) -> &mut Assembly {
        let restart = self
            .assembly
            .as_ref()
            .is_none_or(|a| a.target_seq != target_seq || a.target_digest != target_digest);
        if restart {
            self.assembly = Some(Assembly {
                target_seq,
                target_digest,
                plan: None,
                chunks: BTreeMap::new(),
            });
        }
        self.assembly.as_mut().expect("just ensured")
    }

    fn on_plan(
        &mut self,
        target_seq: u64,
        target_digest: Digest,
        links: Vec<PlanLink>,
        ledger_height: u64,
        ledger_head: Digest,
    ) {
        if !self.admissible(target_seq, target_digest) || links.is_empty() {
            return;
        }
        // The plan must actually end at its claimed target.
        if links.last().map(|l| (l.seq, l.digest)) != Some((target_seq, target_digest)) {
            return;
        }
        // Link sequences must be strictly ascending — in particular
        // distinct: reassembly keys chunks by (link seq, index), so a
        // forged plan with two links sharing a seq could otherwise pass
        // the per-link completion check against one shared chunk set
        // and panic the receiver when the second link finds the slots
        // already drained. Forged transfers are rejected, never fatal.
        if links.windows(2).any(|w| w[0].seq >= w[1].seq) {
            return;
        }
        let a = self.assembly_for(target_seq, target_digest);
        if a.plan.is_none() {
            a.plan = Some((links, ledger_height, ledger_head));
        }
        self.try_complete();
    }

    fn on_chunk(
        &mut self,
        target_seq: u64,
        target_digest: Digest,
        link_seq: u64,
        delta: bool,
        chunk: u32,
        records: Vec<RecordEntry>,
    ) {
        if !self.admissible(target_seq, target_digest) {
            return;
        }
        let bytes = wire::state_chunk_bytes(records.len());
        let a = self.assembly_for(target_seq, target_digest);
        if a.chunks.insert((link_seq, delta, chunk), records).is_none() {
            self.stats.chunks_received += 1;
            if delta {
                self.stats.bytes_delta += bytes;
            } else {
                self.stats.bytes_full += bytes;
            }
        }
        self.try_complete();
    }

    /// Completes the assembly once the plan and every link's chunks
    /// arrived, handing the chain to the host for fold + verification.
    fn try_complete(&mut self) {
        let done = {
            let Some(a) = &self.assembly else { return };
            match &a.plan {
                None => false,
                Some((links, _, _)) => links.iter().all(|l| {
                    (0..l.chunks).all(|i| a.chunks.contains_key(&(l.seq, l.base.is_some(), i)))
                }),
            }
        };
        if !done {
            return;
        }
        let mut a = self.assembly.take().expect("checked above");
        let (links, ledger_height, ledger_head) = a.plan.take().expect("checked above");
        let links = links
            .into_iter()
            .map(|l| {
                let mut records = Vec::new();
                for i in 0..l.chunks {
                    records.append(
                        &mut a
                            .chunks
                            .remove(&(l.seq, l.base.is_some(), i))
                            .expect("checked above"),
                    );
                }
                (l, records)
            })
            .collect();
        self.events.push(RecoveryEvent::InstallChain(ChainTransfer {
            target_seq: a.target_seq,
            target_digest: a.target_digest,
            links,
            ledger_height,
            ledger_head,
        }));
    }

    /// The host folded and verified an [`RecoveryEvent::InstallChain`]
    /// transfer and installed the result. `delta` reports whether the
    /// chain was delta-only.
    pub fn confirm_install(&mut self, delta: bool) {
        self.stats.transfers_verified += 1;
        self.stats.installs += 1;
        if delta {
            self.stats.delta_installs += 1;
        } else {
            self.stats.full_installs += 1;
        }
    }

    /// The host verified a transfer but refused to install it (it raced
    /// local progress).
    pub fn verified_not_installed(&mut self) {
        self.stats.transfers_verified += 1;
    }

    /// The host's fold + verification rejected a completed transfer on
    /// a digest or continuity check (corrupt or forged): count it and
    /// force the next request onto the full path — the probe timer
    /// keeps rotating donors.
    pub fn chain_rejected(&mut self) {
        self.stats.bad_digests += 1;
        self.force_full = true;
    }

    /// A completed transfer was chained onto a base this replica has
    /// since advanced past (its own checkpoint moved while the chunks
    /// were in flight). Honest and harmless — nothing installs, and the
    /// next request advertises the fresh base, so no full fallback is
    /// forced and no integrity counter moves.
    pub fn chain_stale(&mut self) {
        self.stats.stale_chains += 1;
    }

    /// Drains events produced by the last entry-point call.
    pub fn take_events(&mut self) -> Vec<RecoveryEvent> {
        std::mem::take(&mut self.events)
    }
}

fn chunk_count(records: usize, per_chunk: usize) -> u32 {
    records.div_ceil(per_chunk) as u32
}

/// The manager is itself a driver-hostable protocol node, so it can be
/// unit-driven (or hosted standalone) through the same contract the
/// simulator and the TCP runtime speak.
impl ProtocolNode<RecoveryMsg> for RecoveryManager {
    fn on_start(&mut self, _now: Instant) -> Vec<Action<RecoveryMsg>> {
        Vec::new()
    }

    fn on_message(
        &mut self,
        _now: Instant,
        from: NodeId,
        msg: RecoveryMsg,
    ) -> Vec<Action<RecoveryMsg>> {
        let NodeId::Replica(r) = from else {
            return Vec::new();
        };
        let mut out = Outbox::new();
        self.on_message(r, msg, &mut out);
        out.take()
    }

    fn on_timer(&mut self, _now: Instant, kind: TimerKind, token: u64) -> Vec<Action<RecoveryMsg>> {
        let mut out = Outbox::new();
        if kind == TimerKind::Client && token == RECOVERY_PROBE_TOKEN {
            self.on_probe_timer(&mut out);
        }
        out.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringbft_store::KvStore;
    use ringbft_types::ShardId;

    fn rep(i: u32) -> ReplicaId {
        ReplicaId::new(ShardId(0), i)
    }

    fn mgr(i: u32, chunk: usize) -> RecoveryManager {
        RecoveryManager::new(rep(i), 4, chunk, Duration::from_millis(100))
    }

    fn store(keys: u64) -> KvStore {
        let mut kv = KvStore::new();
        for k in 0..keys {
            kv.put(k, k * 7 + 1);
        }
        kv
    }

    fn snapshot(seq: u64, keys: u64) -> Snapshot {
        Snapshot::capture(ShardId(0), seq, &store(keys), 3, [5; 32])
    }

    /// Routes every Send in `out` into `to`, collecting its own sends.
    fn route(from: u32, out: &mut Outbox<RecoveryMsg>, to: &mut RecoveryManager) {
        let mut sink = Outbox::new();
        for a in out.take() {
            if let Action::Send { msg, .. } = a {
                to.on_message(rep(from), msg, &mut sink);
            }
        }
    }

    /// Runs a full donor → laggard transfer through the two managers,
    /// returning the laggard and its events.
    fn transfer(chunk_records: usize, keys: u64) -> (RecoveryManager, Vec<RecoveryEvent>) {
        let snap = snapshot(8, keys);
        let digest = snap.digest();
        let mut donor = mgr(1, chunk_records);
        donor.retain(Arc::new(snap));
        let mut laggard = mgr(2, chunk_records);
        laggard.note_stable(8, digest);
        let mut out = Outbox::new();
        laggard.set_behind(8, 0, &mut out);
        laggard.on_probe_timer(&mut out);
        let mut donor_out = Outbox::new();
        for a in out.take() {
            if let Action::Send { msg, .. } = a {
                donor.on_message(rep(2), msg, &mut donor_out);
            }
        }
        route(1, &mut donor_out, &mut laggard);
        let events = laggard.take_events();
        (laggard, events)
    }

    /// Folds + verifies an InstallChain event the way the host does.
    fn fold(events: &[RecoveryEvent]) -> Snapshot {
        let [RecoveryEvent::InstallChain(t)] = events else {
            panic!("expected one InstallChain, got {events:?}");
        };
        t.fold_verified(ShardId(0), None, |_| None)
            .expect("chain verifies")
    }

    #[test]
    fn chunked_transfer_assembles_verified_full_snapshot() {
        for chunk in [1usize, 3, 100] {
            let (laggard, events) = transfer(chunk, 10);
            let snap = fold(&events);
            assert_eq!(snap.seq, 8, "chunk size {chunk}");
            assert_eq!(snap.records.len(), 10);
            assert_eq!(snap.ledger_height, 3);
            assert_eq!(laggard.stats.bad_digests, 0);
            assert!(laggard.stats.bytes_full > 0);
            assert_eq!(laggard.stats.bytes_delta, 0);
        }
    }

    #[test]
    fn empty_store_transfers_with_plan_only() {
        let (_, events) = transfer(16, 0);
        let snap = fold(&events);
        assert!(snap.records.is_empty());
    }

    #[test]
    fn delta_chain_served_when_base_recognized() {
        let shard = ShardId(0);
        let mut kv = store(10);
        let base = Arc::new(Snapshot::capture(shard, 8, &kv, 1, [1; 32]));
        let d0 = base.digest();
        kv.put(3, 999);
        let delta = Arc::new(DeltaSnapshot::capture(
            shard,
            8,
            d0,
            16,
            [3u64],
            &kv,
            2,
            [2; 32],
        ));
        let d1 = Snapshot::digest_of_store(shard, 16, &kv);

        let mut donor = mgr(1, 4);
        donor.retain(Arc::clone(&base));
        donor.retain_delta(Arc::clone(&delta), d1);
        assert_eq!(donor.retained_seq(), Some(16));
        assert_eq!(donor.retained_delta_windows(), 1);

        // The laggard holds the base state and advertises it.
        let mut laggard = mgr(2, 4);
        laggard.note_stable(16, d1);
        laggard.set_local_base(8, d0);
        let mut out = Outbox::new();
        laggard.set_behind(16, 8, &mut out);
        laggard.on_probe_timer(&mut out);
        let mut donor_out = Outbox::new();
        for a in out.take() {
            if let Action::Send { msg, .. } = a {
                assert!(
                    matches!(msg, RecoveryMsg::StateRequest { base: Some((8, d)), .. } if d == d0),
                    "request must advertise the base"
                );
                donor.on_message(rep(2), msg, &mut donor_out);
            }
        }
        route(1, &mut donor_out, &mut laggard);
        assert_eq!(donor.stats.delta_transfers_served, 1);

        let events = laggard.take_events();
        let [RecoveryEvent::InstallChain(t)] = events.as_slice() else {
            panic!("expected InstallChain, got {events:?}");
        };
        assert!(t.is_delta_only());
        assert_eq!(t.links.len(), 1);
        let base_store = base.restore_store();
        let folded = t
            .fold_verified(shard, Some((8, d0, &base_store)), |_| None)
            .expect("delta chain verifies");
        assert_eq!(folded.digest(), d1);
        assert_eq!(folded.ledger_height, 2);
        assert!(laggard.stats.bytes_delta > 0);
        assert_eq!(laggard.stats.bytes_full, 0);
    }

    #[test]
    fn unrecognized_base_falls_back_to_full_chain() {
        let shard = ShardId(0);
        let mut kv = store(6);
        let base = Arc::new(Snapshot::capture(shard, 8, &kv, 1, [1; 32]));
        let d0 = base.digest();
        kv.put(2, 222);
        let delta = Arc::new(DeltaSnapshot::capture(
            shard,
            8,
            d0,
            16,
            [2u64],
            &kv,
            2,
            [2; 32],
        ));
        let d1 = Snapshot::digest_of_store(shard, 16, &kv);
        let mut donor = mgr(1, 4);
        donor.retain(Arc::clone(&base));
        donor.retain_delta(delta, d1);

        // Blank restart: no base to advertise.
        let mut laggard = mgr(2, 4);
        laggard.note_stable(16, d1);
        let mut out = Outbox::new();
        laggard.set_behind(16, 0, &mut out);
        laggard.on_probe_timer(&mut out);
        let mut donor_out = Outbox::new();
        for a in out.take() {
            if let Action::Send { msg, .. } = a {
                assert!(matches!(msg, RecoveryMsg::StateRequest { base: None, .. }));
                donor.on_message(rep(2), msg, &mut donor_out);
            }
        }
        route(1, &mut donor_out, &mut laggard);
        assert_eq!(donor.stats.transfers_served, 1);
        assert_eq!(donor.stats.delta_transfers_served, 0);

        let events = laggard.take_events();
        let [RecoveryEvent::InstallChain(t)] = events.as_slice() else {
            panic!("expected InstallChain, got {events:?}");
        };
        assert!(!t.is_delta_only(), "must ship a full link");
        assert_eq!(t.links.len(), 2, "full base + one delta");
        let folded = t
            .fold_verified(shard, None, |_| None)
            .expect("full chain verifies");
        assert_eq!(folded.digest(), d1);
        assert!(laggard.stats.bytes_full > 0);
    }

    #[test]
    fn unknown_digest_offers_are_ignored() {
        let snap = snapshot(8, 4);
        let mut donor = mgr(1, 2);
        donor.retain(Arc::new(snap));
        let mut laggard = mgr(2, 2);
        // note_stable with a *different* digest: the quorum agreed on
        // something else, so the donor's offer must be dropped.
        laggard.note_stable(8, [0xAB; 32]);
        let mut out = Outbox::new();
        laggard.set_behind(8, 0, &mut out);
        laggard.on_probe_timer(&mut out);
        let mut donor_out = Outbox::new();
        for a in out.take() {
            if let Action::Send { msg, .. } = a {
                donor.on_message(rep(2), msg, &mut donor_out);
            }
        }
        route(1, &mut donor_out, &mut laggard);
        assert!(laggard.take_events().is_empty());
        assert_eq!(laggard.stats.chunks_received, 0);
    }

    #[test]
    fn rejected_chain_forces_full_fallback_request() {
        let mut m = mgr(2, 8);
        m.set_local_base(8, [1; 32]);
        let mut out = Outbox::new();
        m.set_behind(16, 8, &mut out);
        m.chain_rejected();
        assert_eq!(m.stats.bad_digests, 1);
        let mut o = Outbox::new();
        m.on_probe_timer(&mut o);
        let sends: Vec<_> = o
            .take()
            .into_iter()
            .filter_map(|a| match a {
                Action::Send { msg, .. } => Some(msg),
                _ => None,
            })
            .collect();
        assert!(
            matches!(sends[0], RecoveryMsg::StateRequest { base: None, .. }),
            "after a rejection the request must omit the base: {sends:?}"
        );
        // A fresh local base re-enables the delta path.
        m.set_local_base(16, [2; 32]);
        let mut o = Outbox::new();
        m.on_probe_timer(&mut o);
        let sends: Vec<_> = o
            .take()
            .into_iter()
            .filter_map(|a| match a {
                Action::Send { msg, .. } => Some(msg),
                _ => None,
            })
            .collect();
        assert!(matches!(
            sends[0],
            RecoveryMsg::StateRequest {
                base: Some((16, _)),
                ..
            }
        ));
    }

    #[test]
    fn probe_suppressed_while_transfer_progresses() {
        let snap = snapshot(8, 6);
        let digest = snap.digest();
        let mut m = mgr(2, 2);
        m.note_stable(8, digest);
        let mut out = Outbox::new();
        m.set_behind(8, 0, &mut out);
        let count_requests = |m: &mut RecoveryManager| {
            let mut o = Outbox::new();
            m.on_probe_timer(&mut o);
            o.take()
                .iter()
                .filter(|a| matches!(a, Action::Send { .. }))
                .count()
        };
        // No assembly yet: the probe requests.
        assert_eq!(count_requests(&mut m), 1);
        // A chunk arrives: the next probe sees progress and stays quiet.
        let mut sink = Outbox::new();
        m.on_message(
            rep(1),
            RecoveryMsg::StateChunk {
                target_seq: 8,
                target_digest: digest,
                link_seq: 8,
                delta: false,
                chunk: 0,
                records: snap.records[..2].to_vec(),
            },
            &mut sink,
        );
        assert_eq!(count_requests(&mut m), 0, "transfer advancing");
        // No further progress before the next tick: rotate and re-ask.
        assert_eq!(count_requests(&mut m), 1, "transfer stalled");
    }

    #[test]
    fn donors_rotate_and_skip_self() {
        let mut m = mgr(2, 8);
        let mut out = Outbox::new();
        m.set_behind(8, 0, &mut out);
        let mut donors = Vec::new();
        for _ in 0..6 {
            let mut o = Outbox::new();
            m.on_probe_timer(&mut o);
            for a in o.take() {
                if let Action::Send { to, .. } = a {
                    donors.push(to);
                }
            }
        }
        assert_eq!(donors.len(), 6);
        assert!(
            donors.iter().all(|d| *d != NodeId::Replica(rep(2))),
            "never asks itself"
        );
        // All three peers get asked within one rotation.
        let distinct: std::collections::HashSet<_> = donors.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn caught_up_clears_target_and_probe_stops() {
        let mut m = mgr(2, 8);
        let mut out = Outbox::new();
        m.set_behind(8, 0, &mut out);
        assert_eq!(m.target(), Some(8));
        m.caught_up_to(8);
        assert_eq!(m.target(), None);
        let mut o = Outbox::new();
        m.on_probe_timer(&mut o);
        // No request, no re-arm: the probe dies out.
        assert!(o.take().is_empty());
    }

    #[test]
    fn out_of_order_chunks_and_late_plan_assemble() {
        let snap = snapshot(8, 5);
        let digest = snap.digest();
        let mut m = mgr(2, 2);
        m.note_stable(8, digest);
        let mut out = Outbox::new();
        m.set_behind(8, 0, &mut out);
        let slices: Vec<Vec<RecordEntry>> = snap.records.chunks(2).map(|c| c.to_vec()).collect();
        let total = slices.len() as u32;
        let mut sink = Outbox::new();
        // Chunks first, in reverse order; the plan arrives last.
        for (i, records) in slices.into_iter().enumerate().rev() {
            m.on_message(
                rep(3),
                RecoveryMsg::StateChunk {
                    target_seq: 8,
                    target_digest: digest,
                    link_seq: 8,
                    delta: false,
                    chunk: i as u32,
                    records,
                },
                &mut sink,
            );
        }
        assert!(m.take_events().is_empty(), "no plan yet");
        m.on_message(
            rep(3),
            RecoveryMsg::StatePlan {
                target_seq: 8,
                target_digest: digest,
                links: vec![PlanLink {
                    seq: 8,
                    digest,
                    base: None,
                    chunks: total,
                }],
                ledger_height: 3,
                ledger_head: [5; 32],
            },
            &mut sink,
        );
        let events = m.take_events();
        let got = fold(&events);
        assert_eq!(got.digest(), digest);
    }

    #[test]
    fn forged_plan_with_duplicate_link_seqs_is_dropped_not_fatal() {
        let snap = snapshot(8, 4);
        let digest = snap.digest();
        let mut m = mgr(2, 100);
        m.note_stable(8, digest);
        let mut out = Outbox::new();
        m.set_behind(8, 0, &mut out);
        let mut sink = Outbox::new();
        // One chunk, claimed by two links sharing the same seq — the
        // completion check must not be satisfiable by the shared slot
        // (and must certainly not panic during reassembly).
        m.on_message(
            rep(1),
            RecoveryMsg::StateChunk {
                target_seq: 8,
                target_digest: digest,
                link_seq: 8,
                delta: false,
                chunk: 0,
                records: snap.records.clone(),
            },
            &mut sink,
        );
        m.on_message(
            rep(1),
            RecoveryMsg::StatePlan {
                target_seq: 8,
                target_digest: digest,
                links: vec![
                    PlanLink {
                        seq: 8,
                        digest: [1; 32],
                        base: None,
                        chunks: 1,
                    },
                    PlanLink {
                        seq: 8,
                        digest,
                        base: Some((8, [1; 32])),
                        chunks: 1,
                    },
                ],
                ledger_height: 0,
                ledger_head: [0; 32],
            },
            &mut sink,
        );
        assert!(m.take_events().is_empty(), "forged plan must be dropped");
    }

    #[test]
    fn retention_caps_delta_windows_and_survives_full_refresh() {
        let shard = ShardId(0);
        let mut kv = store(4);
        let mut donor = mgr(1, 8);
        let mut prev_seq = 8u64;
        donor.retain(Arc::new(Snapshot::capture(
            shard, prev_seq, &kv, 0, [0; 32],
        )));
        let mut prev_digest = Snapshot::digest_of_store(shard, prev_seq, &kv);
        for w in 1..=12u64 {
            let seq = 8 + 8 * w;
            kv.put(w % 4, w * 100);
            let delta = Arc::new(DeltaSnapshot::capture(
                shard,
                prev_seq,
                prev_digest,
                seq,
                [w % 4],
                &kv,
                w,
                [0; 32],
            ));
            let digest = Snapshot::digest_of_store(shard, seq, &kv);
            donor.retain_delta(delta, digest);
            if w == 6 {
                // A full refresh at the current tip keeps the chain.
                donor.retain(Arc::new(Snapshot::capture(shard, seq, &kv, 0, [0; 32])));
                assert!(donor.retained_delta_windows() > 0, "chain survives");
            }
            prev_seq = seq;
            prev_digest = digest;
        }
        assert!(donor.retained_delta_windows() <= 8, "delta memory bounded");
        assert_eq!(donor.retained_seq(), Some(8 + 8 * 12));
    }
}
