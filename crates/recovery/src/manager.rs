//! The sans-io recovery state machine: serves checkpoints to lagging
//! same-shard peers and fetches them when this replica is the laggard.

use crate::snapshot::{RecordEntry, Snapshot};
use ringbft_crypto::Digest;
use ringbft_types::sansio::ProtocolNode;
use ringbft_types::{Action, Duration, Instant, NodeId, Outbox, ReplicaId, TimerKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Timer token of the recovery probe watchdog (on [`TimerKind::Client`]),
/// chosen from the RingBFT-level token space so it never collides with
/// PBFT sequence-number tokens or the replica's cst watchdogs.
pub const RECOVERY_PROBE_TOKEN: u64 = (1 << 62) - 2;

/// How many distinct stable-checkpoint digests the manager remembers for
/// validating inbound chunk offers.
const KNOWN_STABLE_KEEP: usize = 8;

/// State-transfer messages, exchanged only between replicas of one shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryMsg {
    /// "Send me a snapshot newer than `from_seq`" — unicast to a single
    /// peer at a time (linear-primitive discipline; the probe timer
    /// rotates the donor).
    StateRequest {
        /// The requester's current execution watermark.
        from_seq: u64,
    },
    /// One slice of a snapshot's record list.
    StateChunk {
        /// Checkpoint sequence the snapshot covers.
        seq: u64,
        /// The snapshot's state digest (must match a quorum-stable
        /// checkpoint digest the receiver observed).
        digest: Digest,
        /// Zero-based chunk index.
        chunk: u32,
        /// Total chunks of this transfer.
        total: u32,
        /// The records of this slice (globally ascending by key).
        records: Vec<RecordEntry>,
    },
    /// Transfer trailer carrying the snapshot metadata that is not part
    /// of the digest (see the crate docs' ledger trust note).
    StateDone {
        /// Checkpoint sequence the snapshot covers.
        seq: u64,
        /// The snapshot's state digest.
        digest: Digest,
        /// Total chunks the transfer used (0 for an empty store).
        total: u32,
        /// Donor's ledger height at the checkpoint.
        ledger_height: u64,
        /// Donor's chain head hash at the checkpoint.
        ledger_head: Digest,
    },
    /// Single-sequence commit-certificate fetch (see [`crate::hole`]):
    /// "send me the commit certificate and batch for this sequence".
    HoleRequest(ringbft_types::hole::HoleRequest),
    /// A donor's certificate + batch answer. The host verifies the
    /// `nf`-strong certificate and the batch digest before installing.
    HoleReply(ringbft_types::hole::HoleReply),
}

impl RecoveryMsg {
    /// Short tag for logging/metrics.
    pub fn tag(&self) -> &'static str {
        match self {
            RecoveryMsg::StateRequest { .. } => "state-request",
            RecoveryMsg::StateChunk { .. } => "state-chunk",
            RecoveryMsg::StateDone { .. } => "state-done",
            RecoveryMsg::HoleRequest(_) => "hole-request",
            RecoveryMsg::HoleReply(_) => "hole-reply",
        }
    }
}

/// Outputs of the manager for the hosting replica to act on.
#[derive(Debug)]
pub enum RecoveryEvent {
    /// A snapshot arrived complete and verified against a quorum-stable
    /// digest: install it (replace store/locks/ledger, fast-forward the
    /// execution watermark).
    Install(Snapshot),
}

/// Counters for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// StateRequests this replica sent.
    pub requests_sent: u64,
    /// StateRequests this replica answered with a transfer.
    pub transfers_served: u64,
    /// Chunks received (accepted into an assembly).
    pub chunks_received: u64,
    /// Completed transfers whose reassembled digest matched (handed to
    /// the host as an [`RecoveryEvent::Install`]).
    pub transfers_verified: u64,
    /// Snapshots the *host* actually installed (it may refuse a
    /// verified snapshot that races local state; see
    /// [`RecoveryManager::confirm_install`]).
    pub installs: u64,
    /// Completed transfers rejected for a digest mismatch.
    pub bad_digests: u64,
}

/// A transfer being reassembled.
#[derive(Debug)]
struct Assembly {
    seq: u64,
    digest: Digest,
    chunks: BTreeMap<u32, Vec<RecordEntry>>,
    total: Option<u32>,
    trailer: Option<(u64, Digest)>,
}

/// The recovery state machine of one shard replica. Sans-io: every
/// entry point takes an [`Outbox`] and the hosting replica performs the
/// sends/timers (directly, or lifted into its own message space).
pub struct RecoveryManager {
    me: ReplicaId,
    chunk_records: usize,
    probe_interval: Duration,
    /// The latest stable snapshot this replica can serve, with its
    /// precomputed digest.
    retained: Option<(Arc<Snapshot>, Digest)>,
    /// Quorum-stable `(seq, digest)` pairs observed via PBFT checkpoint
    /// stabilization — the only digests inbound chunks are accepted for.
    known_stable: BTreeMap<u64, Digest>,
    /// The stable checkpoint sequence this replica is trying to reach
    /// (None = caught up).
    target: Option<u64>,
    /// This replica's execution watermark as last reported by the host.
    local_floor: u64,
    assembly: Option<Assembly>,
    /// Assembly progress `(seq, parts)` observed at the last probe tick,
    /// used to suppress redundant full retransfers while one is
    /// arriving.
    last_probe_progress: Option<(u64, usize)>,
    donors: crate::hole::DonorRotation,
    probing: bool,
    events: Vec<RecoveryEvent>,
    /// Counters.
    pub stats: RecoveryStats,
}

impl RecoveryManager {
    /// Creates the manager for replica `me` of a shard of `n` replicas.
    /// `chunk_records` bounds the records per [`RecoveryMsg::StateChunk`];
    /// `probe_interval` paces donor rotation while behind.
    pub fn new(me: ReplicaId, n: usize, chunk_records: usize, probe_interval: Duration) -> Self {
        RecoveryManager {
            me,
            chunk_records: chunk_records.max(1),
            probe_interval,
            retained: None,
            known_stable: BTreeMap::new(),
            target: None,
            local_floor: 0,
            assembly: None,
            last_probe_progress: None,
            donors: crate::hole::DonorRotation::new(me, n),
            probing: false,
            events: Vec::new(),
            stats: RecoveryStats::default(),
        }
    }

    /// Remembers `snap` as the snapshot this replica serves to laggards.
    pub fn retain(&mut self, snap: Arc<Snapshot>) {
        let digest = snap.digest();
        if self
            .retained
            .as_ref()
            .is_none_or(|(cur, _)| cur.seq < snap.seq)
        {
            self.retained = Some((snap, digest));
        }
    }

    /// Checkpoint sequence of the retained snapshot, if any.
    pub fn retained_seq(&self) -> Option<u64> {
        self.retained.as_ref().map(|(s, _)| s.seq)
    }

    /// Records a quorum-stable `(seq, digest)` pair (from the PBFT
    /// `StableCheckpoint` event) for chunk validation.
    pub fn note_stable(&mut self, seq: u64, digest: Digest) {
        self.known_stable.insert(seq, digest);
        while self.known_stable.len() > KNOWN_STABLE_KEEP {
            let oldest = *self.known_stable.keys().next().expect("non-empty");
            self.known_stable.remove(&oldest);
        }
    }

    /// The host fell behind the stable checkpoint `seq`: remember the
    /// catch-up target and make sure the probe timer is running. The
    /// probe fires after `probe_interval` — a healthy replica that was
    /// merely mid-flight catches up before then and the probe no-ops.
    pub fn set_behind(&mut self, seq: u64, watermark: u64, out: &mut Outbox<RecoveryMsg>) {
        self.local_floor = watermark;
        self.target = Some(self.target.unwrap_or(0).max(seq));
        if !self.probing {
            self.probing = true;
            out.set_timer(TimerKind::Client, RECOVERY_PROBE_TOKEN, self.probe_interval);
        }
    }

    /// The catch-up target, if the replica is behind.
    pub fn target(&self) -> Option<u64> {
        self.target
    }

    /// The host's execution watermark advanced: clears the target once
    /// caught up.
    pub fn caught_up_to(&mut self, watermark: u64) {
        self.local_floor = self.local_floor.max(watermark);
        if self.target.is_some_and(|t| watermark >= t) {
            self.target = None;
            self.assembly = None;
        }
    }

    /// Handles the probe timer: while still behind, ask the next donor
    /// and re-arm. A transfer that made progress since the previous tick
    /// suppresses the request — a large snapshot (hundreds of chunks)
    /// must not trigger a second full O(state) retransfer from another
    /// donor just because it outlasts one probe interval.
    pub fn on_probe_timer(&mut self, out: &mut Outbox<RecoveryMsg>) {
        if self.target.is_none() {
            self.probing = false;
            self.last_probe_progress = None;
            return;
        }
        let progress = self
            .assembly
            .as_ref()
            .map(|a| (a.seq, a.chunks.len() + usize::from(a.trailer.is_some())));
        let advancing = progress.is_some() && progress != self.last_probe_progress;
        self.last_probe_progress = progress;
        if !advancing {
            if let Some(donor) = self.next_donor() {
                out.send(
                    donor,
                    RecoveryMsg::StateRequest {
                        from_seq: self.local_floor,
                    },
                );
                self.stats.requests_sent += 1;
            }
        }
        out.set_timer(TimerKind::Client, RECOVERY_PROBE_TOKEN, self.probe_interval);
    }

    /// The next same-shard peer to ask (shared rotation discipline with
    /// the hole fetcher).
    fn next_donor(&mut self) -> Option<NodeId> {
        self.donors.next_donor()
    }

    /// Handles a recovery message from same-shard replica `from`.
    pub fn on_message(&mut self, from: ReplicaId, msg: RecoveryMsg, out: &mut Outbox<RecoveryMsg>) {
        if from.shard != self.me.shard || from == self.me {
            return;
        }
        match msg {
            RecoveryMsg::StateRequest { from_seq } => self.serve(from, from_seq, out),
            RecoveryMsg::StateChunk {
                seq,
                digest,
                chunk,
                total,
                records,
            } => self.on_chunk(seq, digest, chunk, Some(total), Some(records), None),
            RecoveryMsg::StateDone {
                seq,
                digest,
                total,
                ledger_height,
                ledger_head,
            } => self.on_chunk(
                seq,
                digest,
                0,
                Some(total),
                None,
                Some((ledger_height, ledger_head)),
            ),
            // Hole fetch is handled by the hosting replica (it owns the
            // PBFT log the certificates come from); see `crate::hole`.
            RecoveryMsg::HoleRequest(_) | RecoveryMsg::HoleReply(_) => {}
        }
    }

    /// Answers a state request with a chunked transfer of the retained
    /// snapshot, when it is newer than the requester's watermark.
    fn serve(&mut self, to: ReplicaId, from_seq: u64, out: &mut Outbox<RecoveryMsg>) {
        let Some((snap, digest)) = &self.retained else {
            return;
        };
        if snap.seq <= from_seq {
            return; // nothing newer to offer; the requester rotates on
        }
        let to = NodeId::Replica(to);
        let total = snap.records.len().div_ceil(self.chunk_records) as u32;
        for (i, slice) in snap.records.chunks(self.chunk_records).enumerate() {
            out.send(
                to,
                RecoveryMsg::StateChunk {
                    seq: snap.seq,
                    digest: *digest,
                    chunk: i as u32,
                    total,
                    records: slice.to_vec(),
                },
            );
        }
        out.send(
            to,
            RecoveryMsg::StateDone {
                seq: snap.seq,
                digest: *digest,
                total,
                ledger_height: snap.ledger_height,
                ledger_head: snap.ledger_head,
            },
        );
        self.stats.transfers_served += 1;
    }

    /// Folds one transfer message (chunk or trailer) into the assembly.
    fn on_chunk(
        &mut self,
        seq: u64,
        digest: Digest,
        chunk: u32,
        total: Option<u32>,
        records: Option<Vec<RecordEntry>>,
        trailer: Option<(u64, Digest)>,
    ) {
        let Some(target) = self.target else {
            return; // not recovering
        };
        if seq < target {
            return; // stale offer below our catch-up target
        }
        // Accept only state a checkpoint quorum vouched for.
        if self.known_stable.get(&seq) != Some(&digest) {
            return;
        }
        // (Re)start the assembly when a newer transfer supersedes it.
        let restart = self
            .assembly
            .as_ref()
            .is_none_or(|a| a.seq != seq || a.digest != digest);
        if restart {
            self.assembly = Some(Assembly {
                seq,
                digest,
                chunks: BTreeMap::new(),
                total: None,
                trailer: None,
            });
        }
        let a = self.assembly.as_mut().expect("just ensured");
        if let Some(t) = total {
            a.total = Some(t);
        }
        if let Some(r) = records {
            if a.chunks.insert(chunk, r).is_none() {
                self.stats.chunks_received += 1;
            }
        }
        if let Some(t) = trailer {
            a.trailer = Some(t);
        }
        self.try_complete();
    }

    /// Completes the assembly once every chunk and the trailer arrived;
    /// verifies the reassembled snapshot against the agreed digest.
    fn try_complete(&mut self) {
        let done = {
            let Some(a) = &self.assembly else { return };
            matches!(a.total, Some(t) if a.chunks.len() as u32 == t) && a.trailer.is_some()
        };
        if !done {
            return;
        }
        let a = self.assembly.take().expect("checked above");
        let (ledger_height, ledger_head) = a.trailer.expect("checked above");
        let mut records = Vec::new();
        for (_, mut slice) in a.chunks {
            records.append(&mut slice);
        }
        let snapshot = Snapshot {
            shard: self.me.shard,
            seq: a.seq,
            records,
            ledger_height,
            ledger_head,
        };
        if snapshot.digest() != a.digest {
            // Corrupt or forged transfer: drop it and keep probing (the
            // probe timer rotates to another donor).
            self.stats.bad_digests += 1;
            return;
        }
        self.stats.transfers_verified += 1;
        self.events.push(RecoveryEvent::Install(snapshot));
    }

    /// The host applied an [`RecoveryEvent::Install`] snapshot. Counted
    /// here rather than at verification time because the host may refuse
    /// a verified snapshot that races its own local progress.
    pub fn confirm_install(&mut self) {
        self.stats.installs += 1;
    }

    /// Drains events produced by the last entry-point call.
    pub fn take_events(&mut self) -> Vec<RecoveryEvent> {
        std::mem::take(&mut self.events)
    }
}

/// The manager is itself a driver-hostable protocol node, so it can be
/// unit-driven (or hosted standalone) through the same contract the
/// simulator and the TCP runtime speak.
impl ProtocolNode<RecoveryMsg> for RecoveryManager {
    fn on_start(&mut self, _now: Instant) -> Vec<Action<RecoveryMsg>> {
        Vec::new()
    }

    fn on_message(
        &mut self,
        _now: Instant,
        from: NodeId,
        msg: RecoveryMsg,
    ) -> Vec<Action<RecoveryMsg>> {
        let NodeId::Replica(r) = from else {
            return Vec::new();
        };
        let mut out = Outbox::new();
        self.on_message(r, msg, &mut out);
        out.take()
    }

    fn on_timer(&mut self, _now: Instant, kind: TimerKind, token: u64) -> Vec<Action<RecoveryMsg>> {
        let mut out = Outbox::new();
        if kind == TimerKind::Client && token == RECOVERY_PROBE_TOKEN {
            self.on_probe_timer(&mut out);
        }
        out.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringbft_store::KvStore;
    use ringbft_types::ShardId;

    fn rep(i: u32) -> ReplicaId {
        ReplicaId::new(ShardId(0), i)
    }

    fn mgr(i: u32, chunk: usize) -> RecoveryManager {
        RecoveryManager::new(rep(i), 4, chunk, Duration::from_millis(100))
    }

    fn snapshot(seq: u64, keys: u64) -> Snapshot {
        let mut kv = KvStore::new();
        for k in 0..keys {
            kv.put(k, k * 7 + 1);
        }
        Snapshot::capture(ShardId(0), seq, &kv, 3, [5; 32])
    }

    /// Runs a full donor → laggard transfer through the two managers.
    fn transfer(chunk_records: usize, keys: u64) -> (RecoveryManager, Vec<RecoveryEvent>) {
        let snap = snapshot(8, keys);
        let digest = snap.digest();
        let mut donor = mgr(1, chunk_records);
        donor.retain(Arc::new(snap));
        let mut laggard = mgr(2, chunk_records);
        laggard.note_stable(8, digest);
        let mut out = Outbox::new();
        laggard.set_behind(8, 0, &mut out);
        laggard.on_probe_timer(&mut out);
        // Route the request to the donor, then the chunks back.
        let mut donor_out = Outbox::new();
        for a in out.take() {
            if let Action::Send { msg, .. } = a {
                donor.on_message(rep(2), msg, &mut donor_out);
            }
        }
        let mut sink = Outbox::new();
        for a in donor_out.take() {
            if let Action::Send { msg, .. } = a {
                laggard.on_message(rep(1), msg, &mut sink);
            }
        }
        let events = laggard.take_events();
        (laggard, events)
    }

    #[test]
    fn chunked_transfer_installs_verified_snapshot() {
        for chunk in [1usize, 3, 100] {
            let (laggard, events) = transfer(chunk, 10);
            assert_eq!(events.len(), 1, "chunk size {chunk}");
            let RecoveryEvent::Install(snap) = &events[0];
            assert_eq!(snap.seq, 8);
            assert_eq!(snap.records.len(), 10);
            assert_eq!(snap.ledger_height, 3);
            assert_eq!(laggard.stats.transfers_verified, 1);
            assert_eq!(laggard.stats.bad_digests, 0);
        }
    }

    #[test]
    fn empty_store_transfers_with_trailer_only() {
        let (_, events) = transfer(16, 0);
        assert_eq!(events.len(), 1);
        let RecoveryEvent::Install(snap) = &events[0];
        assert!(snap.records.is_empty());
    }

    #[test]
    fn unknown_digest_offers_are_ignored() {
        let snap = snapshot(8, 4);
        let mut donor = mgr(1, 2);
        donor.retain(Arc::new(snap));
        let mut laggard = mgr(2, 2);
        // note_stable with a *different* digest: the quorum agreed on
        // something else, so the donor's offer must be dropped.
        laggard.note_stable(8, [0xAB; 32]);
        let mut out = Outbox::new();
        laggard.set_behind(8, 0, &mut out);
        laggard.on_probe_timer(&mut out);
        let mut donor_out = Outbox::new();
        for a in out.take() {
            if let Action::Send { msg, .. } = a {
                donor.on_message(rep(2), msg, &mut donor_out);
            }
        }
        let mut sink = Outbox::new();
        for a in donor_out.take() {
            if let Action::Send { msg, .. } = a {
                laggard.on_message(rep(1), msg, &mut sink);
            }
        }
        assert!(laggard.take_events().is_empty());
        assert_eq!(laggard.stats.transfers_verified, 0);
    }

    #[test]
    fn probe_suppressed_while_transfer_progresses() {
        let snap = snapshot(8, 6);
        let digest = snap.digest();
        let mut m = mgr(2, 2);
        m.note_stable(8, digest);
        let mut out = Outbox::new();
        m.set_behind(8, 0, &mut out);
        let count_requests = |m: &mut RecoveryManager| {
            let mut o = Outbox::new();
            m.on_probe_timer(&mut o);
            o.take()
                .iter()
                .filter(|a| matches!(a, Action::Send { .. }))
                .count()
        };
        // No assembly yet: the probe requests.
        assert_eq!(count_requests(&mut m), 1);
        // A chunk arrives: the next probe sees progress and stays quiet.
        let mut sink = Outbox::new();
        m.on_message(
            rep(1),
            RecoveryMsg::StateChunk {
                seq: 8,
                digest,
                chunk: 0,
                total: 3,
                records: snap.records[..2].to_vec(),
            },
            &mut sink,
        );
        assert_eq!(count_requests(&mut m), 0, "transfer advancing");
        // No further progress before the next tick: rotate and re-ask.
        assert_eq!(count_requests(&mut m), 1, "transfer stalled");
    }

    #[test]
    fn tampered_chunk_fails_the_digest_check() {
        let snap = snapshot(8, 6);
        let digest = snap.digest();
        let mut laggard = mgr(2, 100);
        laggard.note_stable(8, digest);
        let mut out = Outbox::new();
        laggard.set_behind(8, 0, &mut out);
        // Hand-craft a transfer whose records were tampered with but
        // whose claimed digest matches the stable one.
        let mut records: Vec<RecordEntry> = snap.records.clone();
        records[0].value ^= 1;
        let mut sink = Outbox::new();
        laggard.on_message(
            rep(1),
            RecoveryMsg::StateChunk {
                seq: 8,
                digest,
                chunk: 0,
                total: 1,
                records,
            },
            &mut sink,
        );
        laggard.on_message(
            rep(1),
            RecoveryMsg::StateDone {
                seq: 8,
                digest,
                total: 1,
                ledger_height: 0,
                ledger_head: [0; 32],
            },
            &mut sink,
        );
        assert!(laggard.take_events().is_empty());
        assert_eq!(laggard.stats.bad_digests, 1);
    }

    #[test]
    fn donors_rotate_and_skip_self() {
        let mut m = mgr(2, 8);
        let mut out = Outbox::new();
        m.set_behind(8, 0, &mut out);
        let mut donors = Vec::new();
        for _ in 0..6 {
            let mut o = Outbox::new();
            m.on_probe_timer(&mut o);
            for a in o.take() {
                if let Action::Send { to, .. } = a {
                    donors.push(to);
                }
            }
        }
        assert_eq!(donors.len(), 6);
        assert!(
            donors.iter().all(|d| *d != NodeId::Replica(rep(2))),
            "never asks itself"
        );
        // All three peers get asked within one rotation.
        let distinct: std::collections::HashSet<_> = donors.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn caught_up_clears_target_and_probe_stops() {
        let mut m = mgr(2, 8);
        let mut out = Outbox::new();
        m.set_behind(8, 0, &mut out);
        assert_eq!(m.target(), Some(8));
        m.caught_up_to(8);
        assert_eq!(m.target(), None);
        let mut o = Outbox::new();
        m.on_probe_timer(&mut o);
        // No request, no re-arm: the probe dies out.
        assert!(o.take().is_empty());
    }

    #[test]
    fn out_of_order_chunks_and_early_trailer_assemble() {
        let snap = snapshot(8, 5);
        let digest = snap.digest();
        let mut m = mgr(2, 2);
        m.note_stable(8, digest);
        let mut out = Outbox::new();
        m.set_behind(8, 0, &mut out);
        let slices: Vec<Vec<RecordEntry>> = snap.records.chunks(2).map(|c| c.to_vec()).collect();
        let total = slices.len() as u32;
        let mut sink = Outbox::new();
        // Trailer first, then chunks in reverse order.
        m.on_message(
            rep(3),
            RecoveryMsg::StateDone {
                seq: 8,
                digest,
                total,
                ledger_height: 3,
                ledger_head: [5; 32],
            },
            &mut sink,
        );
        for (i, records) in slices.into_iter().enumerate().rev() {
            m.on_message(
                rep(3),
                RecoveryMsg::StateChunk {
                    seq: 8,
                    digest,
                    chunk: i as u32,
                    total,
                    records,
                },
                &mut sink,
            );
        }
        let events = m.take_events();
        assert_eq!(events.len(), 1);
        let RecoveryEvent::Install(got) = &events[0];
        assert_eq!(got.digest(), digest);
    }
}
