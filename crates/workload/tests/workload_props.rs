//! Property tests for the workload engine: the Zipf sampler stays
//! in-range and deterministic across the whole parameter space, the
//! generated cross-shard ratio converges on the configured rate, and
//! open-loop arrival processes realize their target mean rate.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use ringbft_types::{ClientId, ProtocolKind, SystemConfig};
use ringbft_workload::arrivals::{ArrivalGen, ArrivalProcess};
use ringbft_workload::zipf::Zipf;
use ringbft_workload::WorkloadGen;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every Zipf sample lands in `0..n`, for any table size, any
    /// exponent in the YCSB-relevant range, and any seed — including
    /// the n > 10 000 regime where the zeta constant switches to the
    /// integral approximation.
    #[test]
    fn zipf_samples_stay_in_range(
        seed in 0u64..u64::MAX,
        n_kind in 0u64..4,
        n_small in 1u64..100,
        theta_milli in 0u64..995,
    ) {
        // Cover tiny tables, both sides of the zeta-approximation
        // switch at n = 10 000, and the paper's 600 k-record table.
        let n = match n_kind {
            0 => n_small,
            1 => 9_999,
            2 => 10_001,
            _ => 600_000,
        };
        let mut z = Zipf::new(n, theta_milli as f64 / 1000.0);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for _ in 0..500 {
            let r = z.sample(&mut rng);
            prop_assert!(r < n, "rank {} out of range 0..{}", r, n);
        }
    }

    /// The sampler is a pure function of the seed: two instances over
    /// the same distribution and rng stream produce identical ranks.
    #[test]
    fn zipf_deterministic_per_seed(seed in 0u64..u64::MAX, n in 2u64..50_000) {
        let mut a = Zipf::new(n, 0.99);
        let mut b = Zipf::new(n, 0.99);
        let mut rng_a = ChaCha12Rng::seed_from_u64(seed);
        let mut rng_b = ChaCha12Rng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert_eq!(a.sample(&mut rng_a), b.sample(&mut rng_b));
        }
    }

    /// The generated cross-shard fraction converges on the configured
    /// `cross_shard_rate` (±5 points over 4 000 transactions), for any
    /// rate and shard count that can express cross-shard work.
    #[test]
    fn cross_shard_ratio_converges(
        seed in 0u64..u64::MAX,
        rate_pct in 5u64..96,
        z in 2usize..6,
    ) {
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, z, 4);
        cfg.cross_shard_rate = rate_pct as f64 / 100.0;
        cfg.involved_shards = z;
        cfg.num_keys = 1_000 * z as u64;
        let mut g = WorkloadGen::new(cfg, seed);
        let n = 4_000u64;
        let cst = (0..n)
            .filter(|i| !g.next_txn(ClientId(*i)).is_single_shard())
            .count();
        let observed = cst as f64 / n as f64;
        let want = rate_pct as f64 / 100.0;
        prop_assert!(
            (observed - want).abs() < 0.05,
            "cross-shard ratio {} for configured {}",
            observed,
            want
        );
    }

    /// Open-loop arrivals realize their target mean rate (within 15 %
    /// over 5 000 samples) for both Poisson and bursty processes, and
    /// every interarrival is positive and finite.
    #[test]
    fn arrival_mean_rate_converges(
        seed in 0u64..u64::MAX,
        rate in 10u64..5_000,
        duty_pct in 10u64..101,
    ) {
        let process = if duty_pct >= 100 {
            ArrivalProcess::Poisson { rate_tps: rate as f64 }
        } else {
            ArrivalProcess::Bursty {
                rate_tps: rate as f64,
                duty: duty_pct as f64 / 100.0,
                cycle_s: 0.25,
            }
        };
        let mut g = ArrivalGen::new(process, seed);
        let n = 5_000;
        let mut total = 0.0f64;
        for _ in 0..n {
            let gap = g.next_interarrival().as_secs_f64();
            prop_assert!(gap.is_finite() && gap >= 0.0, "bad gap {}", gap);
            total += gap;
        }
        let observed = n as f64 / total;
        let want = rate as f64;
        prop_assert!(
            (observed - want).abs() / want < 0.15,
            "mean rate {} for target {}",
            observed,
            want
        );
    }
}
