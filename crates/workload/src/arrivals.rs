//! Open-loop arrival processes (ROADMAP "open-loop workload engine").
//!
//! Closed-loop clients (one transaction in flight per logical client)
//! self-throttle: when the system slows down, the offered load drops
//! with it, which hides the throughput knee — the regime that matters
//! at production traffic. An *open-loop* client issues transactions on
//! a schedule drawn from an arrival process, regardless of completions,
//! so overload shows up as unbounded latency instead of a flattering
//! throughput plateau.
//!
//! Two processes are modelled:
//!
//! * [`ArrivalProcess::Poisson`] — exponential interarrivals at a fixed
//!   target rate, the standard open-loop reference load.
//! * [`ArrivalProcess::Bursty`] — an on/off modulated Poisson process:
//!   arrivals only occur during the burst window of each cycle, at a
//!   rate scaled up so the *mean* rate still equals the target. Same
//!   average load as Poisson, much harsher queueing.
//!
//! Sampling is deterministic in the seed (ChaCha12, like
//! [`crate::WorkloadGen`]), so a sweep re-run with the same seed issues
//! at identical simulated instants.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use ringbft_types::Duration;

/// The arrival schedule an open-loop client draws from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential interarrivals with mean
    /// `1 / rate_tps`.
    Poisson {
        /// Target mean arrival rate, transactions per second.
        rate_tps: f64,
    },
    /// On/off modulated Poisson: each cycle of `cycle_s` seconds opens
    /// with a burst window `duty * cycle_s` long during which arrivals
    /// occur at `rate_tps / duty`; the rest of the cycle is silent.
    /// The long-run mean rate is therefore still `rate_tps`.
    Bursty {
        /// Target *mean* arrival rate, transactions per second.
        rate_tps: f64,
        /// Fraction of each cycle that carries traffic, in `(0, 1]`.
        /// `duty = 1.0` degenerates to Poisson.
        duty: f64,
        /// Modulation cycle length in seconds.
        cycle_s: f64,
    },
}

impl ArrivalProcess {
    /// The process's long-run mean rate in transactions per second.
    pub fn rate_tps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_tps } => rate_tps,
            ArrivalProcess::Bursty { rate_tps, .. } => rate_tps,
        }
    }

    /// Returns the same process at a different mean rate (sweeps
    /// rescale one template process across target loads).
    pub fn with_rate(self, rate_tps: f64) -> ArrivalProcess {
        match self {
            ArrivalProcess::Poisson { .. } => ArrivalProcess::Poisson { rate_tps },
            ArrivalProcess::Bursty { duty, cycle_s, .. } => ArrivalProcess::Bursty {
                rate_tps,
                duty,
                cycle_s,
            },
        }
    }
}

/// Deterministic interarrival sampler for one [`ArrivalProcess`].
pub struct ArrivalGen {
    rng: ChaCha12Rng,
    process: ArrivalProcess,
    /// Burst-local position (seconds since the current burst window
    /// opened); only advanced by the bursty process.
    burst_pos: f64,
}

impl ArrivalGen {
    /// Creates a sampler. Panics on non-positive rates, a duty cycle
    /// outside `(0, 1]`, or a non-positive cycle length — all of which
    /// would make the schedule meaningless.
    pub fn new(process: ArrivalProcess, seed: u64) -> ArrivalGen {
        assert!(
            process.rate_tps() > 0.0,
            "arrival rate must be positive, got {}",
            process.rate_tps()
        );
        if let ArrivalProcess::Bursty { duty, cycle_s, .. } = process {
            assert!(
                duty > 0.0 && duty <= 1.0,
                "duty cycle must be in (0, 1], got {duty}"
            );
            assert!(
                cycle_s > 0.0,
                "cycle length must be positive, got {cycle_s}"
            );
        }
        ArrivalGen {
            rng: ChaCha12Rng::seed_from_u64(seed),
            process,
            burst_pos: 0.0,
        }
    }

    /// The process being sampled.
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }

    /// One exponential sample with the given rate (inverse-CDF on a
    /// uniform draw; `1 - u` keeps the log argument in `(0, 1]`).
    fn exp(&mut self, rate: f64) -> f64 {
        let u: f64 = self.rng.random();
        -(1.0 - u).ln() / rate
    }

    /// Draws the wall-clock gap until the next arrival.
    pub fn next_interarrival(&mut self) -> Duration {
        let secs = match self.process {
            ArrivalProcess::Poisson { rate_tps } => self.exp(rate_tps),
            ArrivalProcess::Bursty {
                rate_tps,
                duty,
                cycle_s,
            } => {
                // Arrivals exist only inside burst windows: sample the
                // gap in burst-local time, then pay one idle gap for
                // every window boundary the sample crossed.
                let burst_len = duty * cycle_s;
                let idle_len = cycle_s - burst_len;
                let gap = self.exp(rate_tps / duty);
                let pos = self.burst_pos + gap;
                let crossings = (pos / burst_len).floor();
                self.burst_pos = pos - crossings * burst_len;
                gap + crossings * idle_len
            }
        };
        Duration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_rate(process: ArrivalProcess, seed: u64, n: usize) -> f64 {
        let mut g = ArrivalGen::new(process, seed);
        let total: f64 = (0..n).map(|_| g.next_interarrival().as_secs_f64()).sum();
        n as f64 / total
    }

    #[test]
    fn poisson_mean_rate_converges() {
        let rate = mean_rate(ArrivalProcess::Poisson { rate_tps: 500.0 }, 7, 20_000);
        assert!((450.0..550.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn bursty_mean_rate_matches_target() {
        let p = ArrivalProcess::Bursty {
            rate_tps: 500.0,
            duty: 0.2,
            cycle_s: 0.5,
        };
        let rate = mean_rate(p, 7, 20_000);
        assert!((450.0..550.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = ArrivalProcess::Poisson { rate_tps: 100.0 };
        let mut a = ArrivalGen::new(p, 42);
        let mut b = ArrivalGen::new(p, 42);
        for _ in 0..100 {
            assert_eq!(a.next_interarrival(), b.next_interarrival());
        }
        let mut c = ArrivalGen::new(p, 43);
        let diff = (0..100)
            .filter(|_| a.next_interarrival() != c.next_interarrival())
            .count();
        assert!(diff > 0);
    }

    #[test]
    fn bursty_duty_one_is_poisson() {
        let mut a = ArrivalGen::new(ArrivalProcess::Poisson { rate_tps: 200.0 }, 5);
        let mut b = ArrivalGen::new(
            ArrivalProcess::Bursty {
                rate_tps: 200.0,
                duty: 1.0,
                cycle_s: 1.0,
            },
            5,
        );
        for _ in 0..100 {
            assert_eq!(a.next_interarrival(), b.next_interarrival());
        }
    }

    #[test]
    fn with_rate_rescales() {
        let p = ArrivalProcess::Bursty {
            rate_tps: 100.0,
            duty: 0.5,
            cycle_s: 1.0,
        };
        match p.with_rate(700.0) {
            ArrivalProcess::Bursty {
                rate_tps,
                duty,
                cycle_s,
            } => {
                assert_eq!(rate_tps, 700.0);
                assert_eq!(duty, 0.5);
                assert_eq!(cycle_s, 1.0);
            }
            other => panic!("process kind changed: {other:?}"),
        }
    }
}
