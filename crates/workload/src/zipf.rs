//! Zipfian sampler, following the rejection-inversion-free approach used
//! by YCSB (Gray et al.'s "quickly generating billion-record synthetic
//! databases" algorithm): O(1) sampling after an O(1) setup using the
//! standard zeta-approximation constants.

use rand::Rng;

/// A Zipf(θ) distribution over `{0, 1, …, n−1}` where rank 0 is hottest.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a sampler over `n` items with exponent `theta` (YCSB's
    /// default is 0.99; θ = 0 degenerates to uniform).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        assert!(
            (0.0..1.0).contains(&theta) || theta >= 0.0,
            "theta must be ≥ 0"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; Euler–Maclaurin style approximation for big n
        // keeps setup O(1) on 600 k-key tables.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // ∫_{10000}^{n} x^{-θ} dx
            let a = 10_000f64;
            let b = n as f64;
            head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn ranks_in_range() {
        let mut z = Zipf::new(1000, 0.99);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn hottest_rank_dominates() {
        let mut z = Zipf::new(10_000, 0.99);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut zero = 0usize;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        // Rank 0 probability under Zipf(0.99, 10k) ≈ 1/ζ ≈ 9-11%.
        let p = zero as f64 / n as f64;
        assert!((0.05..0.20).contains(&p), "p(rank 0) = {p}");
    }

    #[test]
    fn single_item_always_zero() {
        let mut z = Zipf::new(1, 0.99);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn big_n_setup_is_fast_and_sane() {
        let mut z = Zipf::new(600_000, 0.99);
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let mut max_seen = 0;
        for _ in 0..10_000 {
            max_seen = max_seen.max(z.sample(&mut rng));
        }
        assert!(max_seen < 600_000);
        assert!(max_seen > 1_000, "tail never sampled: {max_seen}");
    }
}
