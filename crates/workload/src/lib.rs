//! YCSB-style workload generation (§8 "Benchmark").
//!
//! The paper drives every experiment with the Yahoo Cloud Serving
//! Benchmark from the BlockBench suite: a 600 k-record table of
//! read-modify-write transactions. The knobs the evaluation varies are all
//! here:
//!
//! * the fraction of cross-shard transactions (Fig 8 V–VI),
//! * the number of involved shards per cst (Fig 8 IX–X) — involved shards
//!   are chosen *consecutively* in ring order, as in §8.5 ("our clients
//!   select consecutive shards"),
//! * the number of remote-read dependencies per complex cst (Fig 10),
//! * key skew (uniform or zipfian, the YCSB default).

pub mod arrivals;
pub mod zipf;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use ringbft_types::txn::{Operation, OperationKind, RemoteRead, Transaction};
use ringbft_types::{ClientId, ShardId, SystemConfig, TxnId};
use zipf::Zipf;

/// Key-selection skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Uniform over each shard's partition.
    Uniform,
    /// Zipfian with the given exponent (YCSB default 0.99). Higher skew
    /// raises conflict rates between concurrent transactions.
    Zipfian(f64),
}

/// Deterministic transaction generator.
pub struct WorkloadGen {
    cfg: SystemConfig,
    rng: ChaCha12Rng,
    dist: KeyDistribution,
    zipf: Option<Zipf>,
    next_txn: u64,
}

impl WorkloadGen {
    /// Creates a generator for `cfg` with the given seed.
    pub fn new(cfg: SystemConfig, seed: u64) -> Self {
        Self::with_distribution(cfg, seed, KeyDistribution::Uniform)
    }

    /// Creates a generator with an explicit key distribution.
    pub fn with_distribution(cfg: SystemConfig, seed: u64, dist: KeyDistribution) -> Self {
        let per_shard = cfg.num_keys.div_ceil(cfg.z() as u64);
        let zipf = match dist {
            KeyDistribution::Uniform => None,
            KeyDistribution::Zipfian(theta) => Some(Zipf::new(per_shard, theta)),
        };
        WorkloadGen {
            cfg,
            rng: ChaCha12Rng::seed_from_u64(seed),
            dist,
            zipf,
            next_txn: 1,
        }
    }

    /// Namespaces transaction ids: subsequent transactions get ids
    /// starting at `ns << 24`. Needed when several generators feed one
    /// system (e.g. one per client host) — replica-side duplicate
    /// filtering requires globally unique transaction ids.
    pub fn set_txn_namespace(&mut self, ns: u64) {
        self.next_txn = (ns << 24) | 1;
    }

    fn pick_key(&mut self, shard: ShardId) -> u64 {
        let range = self.cfg.key_range(shard);
        let span = range.end - range.start;
        let off = match self.dist {
            KeyDistribution::Uniform => self.rng.random_range(0..span),
            KeyDistribution::Zipfian(_) => {
                self.zipf
                    .as_mut()
                    .expect("zipf sampler")
                    .sample(&mut self.rng)
                    % span
            }
        };
        range.start + off
    }

    /// Generates the next transaction for `client`: cross-shard with
    /// probability `cfg.cross_shard_rate`, single-shard otherwise.
    pub fn next_txn(&mut self, client: ClientId) -> Transaction {
        let is_cst = self.cfg.z() > 1
            && self.cfg.involved_shards > 1
            && self.rng.random::<f64>() < self.cfg.cross_shard_rate;
        if is_cst {
            self.next_cst(client)
        } else {
            self.next_single(client)
        }
    }

    /// A single-shard read-modify-write transaction on a random shard.
    pub fn next_single(&mut self, client: ClientId) -> Transaction {
        let shard = ShardId(self.rng.random_range(0..self.cfg.z() as u32));
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let key = self.pick_key(shard);
        Transaction::new(
            id,
            client,
            vec![Operation {
                shard,
                key,
                kind: OperationKind::ReadModifyWrite,
            }],
        )
    }

    /// A cross-shard transaction over `cfg.involved_shards` *consecutive*
    /// shards (§8.5), one key-value pair per involved shard (§8: "if a
    /// transaction accesses three regions, then it accesses three
    /// key-value pairs"), plus `cfg.remote_reads` random dependencies for
    /// complex csts (§8.8).
    pub fn next_cst(&mut self, client: ClientId) -> Transaction {
        let z = self.cfg.z() as u32;
        let m = self.cfg.involved_shards.min(self.cfg.z()) as u32;
        let start = self.rng.random_range(0..z);
        let shards: Vec<ShardId> = (0..m).map(|i| ShardId((start + i) % z)).collect();
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let ops: Vec<Operation> = shards
            .iter()
            .map(|&shard| Operation {
                shard,
                key: self.pick_key(shard),
                kind: OperationKind::ReadModifyWrite,
            })
            .collect();
        let mut txn = Transaction::new(id, client, ops);
        // Remote reads: a random involved shard reads a key owned by a
        // different random involved shard ("distributed randomly across
        // shards", §8.8).
        for _ in 0..self.cfg.remote_reads {
            if shards.len() < 2 {
                break;
            }
            let ri = self.rng.random_range(0..shards.len());
            let mut oi = self.rng.random_range(0..shards.len());
            while oi == ri {
                oi = self.rng.random_range(0..shards.len());
            }
            let owner = shards[oi];
            let key = self.pick_key(owner);
            txn.remote_reads.push(RemoteRead {
                reader: shards[ri],
                owner,
                key,
            });
        }
        txn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringbft_types::ProtocolKind;

    fn cfg(z: usize, rate: f64, involved: usize, remote: usize) -> SystemConfig {
        let mut c = SystemConfig::uniform(ProtocolKind::RingBft, z, 4);
        c.cross_shard_rate = rate;
        c.involved_shards = involved;
        c.remote_reads = remote;
        c.num_keys = 6_000;
        c
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = WorkloadGen::new(cfg(5, 0.3, 5, 0), 42);
        let mut b = WorkloadGen::new(cfg(5, 0.3, 5, 0), 42);
        for i in 0..100 {
            assert_eq!(a.next_txn(ClientId(i)), b.next_txn(ClientId(i)));
        }
        let mut c = WorkloadGen::new(cfg(5, 0.3, 5, 0), 43);
        let diffs = (0..100)
            .filter(|i| a.next_txn(ClientId(*i)) != c.next_txn(ClientId(*i)))
            .count();
        assert!(diffs > 0);
    }

    #[test]
    fn cross_shard_rate_respected() {
        let mut g = WorkloadGen::new(cfg(5, 0.3, 5, 0), 1);
        let n = 10_000;
        let cst = (0..n)
            .filter(|i| !g.next_txn(ClientId(*i)).is_single_shard())
            .count();
        let rate = cst as f64 / n as f64;
        assert!((0.27..0.33).contains(&rate), "rate {rate}");
    }

    #[test]
    fn zero_and_full_rates() {
        let mut g0 = WorkloadGen::new(cfg(5, 0.0, 5, 0), 1);
        assert!((0..500).all(|i| g0.next_txn(ClientId(i)).is_single_shard()));
        let mut g1 = WorkloadGen::new(cfg(5, 1.0, 5, 0), 1);
        assert!((0..500).all(|i| !g1.next_txn(ClientId(i)).is_single_shard()));
    }

    #[test]
    fn involved_shards_are_consecutive() {
        let mut g = WorkloadGen::new(cfg(7, 1.0, 3, 0), 9);
        for i in 0..200 {
            let t = g.next_cst(ClientId(i));
            let inv = t.involved_shards();
            assert_eq!(inv.len(), 3);
            // Consecutive mod 7: the set {s, s+1, s+2} for some s.
            let ids: std::collections::BTreeSet<u32> = inv.iter().map(|s| s.0).collect();
            let ok = (0..7u32).any(|s| {
                let want: std::collections::BTreeSet<u32> = (0..3).map(|k| (s + k) % 7).collect();
                want == ids
            });
            assert!(ok, "not consecutive: {ids:?}");
            // One key-value pair per involved shard.
            assert_eq!(t.ops.len(), 3);
        }
    }

    #[test]
    fn keys_belong_to_declared_shards() {
        let c = cfg(5, 1.0, 4, 0);
        let mut g = WorkloadGen::new(c.clone(), 3);
        for i in 0..200 {
            let t = g.next_txn(ClientId(i));
            for op in &t.ops {
                assert_eq!(c.shard_of_key(op.key), op.shard);
            }
        }
    }

    #[test]
    fn remote_reads_generated_for_complex_csts() {
        let mut g = WorkloadGen::new(cfg(5, 1.0, 5, 8), 4);
        for i in 0..50 {
            let t = g.next_cst(ClientId(i));
            assert_eq!(t.remote_reads.len(), 8);
            assert!(t.is_complex());
            for rr in &t.remote_reads {
                assert_ne!(rr.reader, rr.owner);
            }
        }
    }

    #[test]
    fn zipfian_skews_towards_low_offsets() {
        let c = cfg(1, 0.0, 1, 0);
        let mut g = WorkloadGen::with_distribution(c.clone(), 5, KeyDistribution::Zipfian(0.99));
        let mut low = 0usize;
        let n = 5_000;
        for i in 0..n {
            let t = g.next_txn(ClientId(i));
            let off = t.ops[0].key - c.key_range(ShardId(0)).start;
            if off < c.num_keys / 100 {
                low += 1;
            }
        }
        // Zipf(0.99): the hottest 1% of keys should draw far more than 1%
        // of accesses.
        assert!(low as f64 / n as f64 > 0.10, "zipf not skewed: {low}/{n}");
    }
}
