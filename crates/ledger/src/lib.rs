//! The immutable append-only ledger of §7.
//!
//! Fully-replicated protocols keep one blockchain; sharded protocols keep
//! a **partial blockchain** `𝔏ₛ` per shard, and the complete system state
//! is the union `𝔏S₁ ∪ … ∪ 𝔏S_z`. Each block is
//! `𝔅ₖ = {k, Δ, p_Sᵢ, H(𝔅ₖ₋₁)}` (eq. 3): the sequence number, the Merkle
//! root of the batch, the proposing primary, and the hash of the previous
//! block. Chains start from an agreed-upon genesis block.
//!
//! A block containing cross-shard transactions is appended to the ledger
//! of *every* involved shard; the relative order of two such blocks may
//! differ across ledgers **unless** the blocks conflict, in which case all
//! involved shards must order them identically — checked by
//! [`consistent_conflict_order`].

use ringbft_crypto::{sha256_concat, Digest, MerkleTree};
use ringbft_types::ShardId;

pub mod block;

pub use block::{Block, BlockBody};

/// The partial blockchain maintained by the replicas of one shard.
///
/// To keep memory bounded on a long-running replica, the chain prefix up
/// to the last stable checkpoint can be pruned
/// ([`Ledger::prune_through_seq`]): pruned blocks are discarded but their
/// place in the chain is remembered as `(base_height, base_hash)`, so
/// `verify` still proves the retained tail chains onto the pruned
/// history and `height` keeps counting absolutely.
#[derive(Debug, Clone)]
pub struct Ledger {
    shard: ShardId,
    /// Number of pruned blocks preceding `blocks[0]`.
    base_height: u64,
    /// Hash of the last pruned block (all-zero for an unpruned chain,
    /// matching genesis's `prev_hash`).
    base_hash: Digest,
    blocks: Vec<Block>,
}

/// Errors raised when appending or validating blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// The block's `prev_hash` does not match the current head.
    BrokenChain {
        /// Height at which the mismatch occurred.
        height: usize,
    },
    /// A block's stored hash does not match its recomputed hash.
    CorruptBlock {
        /// Height of the corrupt block.
        height: usize,
    },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::BrokenChain { height } => {
                write!(f, "prev-hash mismatch at height {height}")
            }
            LedgerError::CorruptBlock { height } => {
                write!(f, "block hash mismatch at height {height}")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

impl Ledger {
    /// Creates the ledger of `shard`, containing only the genesis block
    /// (the "agreed upon dummy block" of §7, identical across replicas).
    pub fn new(shard: ShardId) -> Self {
        Ledger {
            shard,
            base_height: 0,
            base_hash: [0u8; 32],
            blocks: vec![Block::genesis(shard)],
        }
    }

    /// Creates a ledger whose history up to `base_height` is opaque —
    /// used when a recovering replica installs a checkpoint snapshot:
    /// the chain resumes from the donor's head hash at the checkpoint.
    pub fn from_checkpoint(shard: ShardId, base_height: u64, base_hash: Digest) -> Self {
        Ledger {
            shard,
            base_height,
            base_hash,
            blocks: Vec::new(),
        }
    }

    /// The shard this ledger belongs to.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Absolute chain height including pruned blocks (and genesis).
    pub fn height(&self) -> usize {
        self.base_height as usize + self.blocks.len()
    }

    /// Number of blocks actually retained in memory.
    pub fn retained_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Height of the pruned (or snapshot-installed) prefix.
    pub fn base_height(&self) -> u64 {
        self.base_height
    }

    /// The chain contains at least genesis (possibly pruned away).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The newest retained block, if any survives pruning.
    pub fn head(&self) -> Option<&Block> {
        self.blocks.last()
    }

    /// Hash of the chain head: the newest retained block's hash, or the
    /// pruned base hash when everything up to the checkpoint was pruned.
    pub fn head_hash(&self) -> Digest {
        self.blocks.last().map_or(self.base_hash, |b| b.hash())
    }

    /// Block at absolute `height` (0 = genesis), if still retained.
    pub fn block(&self, height: usize) -> Option<&Block> {
        height
            .checked_sub(self.base_height as usize)
            .and_then(|i| self.blocks.get(i))
    }

    /// The retained blocks, oldest first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Appends a block built from `body`, chaining it to the current head.
    /// Returns the appended block's hash.
    pub fn append(&mut self, body: BlockBody) -> Digest {
        let prev_hash = self.head_hash();
        let block = Block::new(body, prev_hash);
        let h = block.hash();
        self.blocks.push(block);
        h
    }

    /// Verifies the retained chain: the first retained block chains onto
    /// the pruned base, and every later block onto its predecessor.
    pub fn verify(&self) -> Result<(), LedgerError> {
        if let Some(first) = self.blocks.first() {
            if first.prev_hash != self.base_hash {
                return Err(LedgerError::BrokenChain {
                    height: self.base_height as usize,
                });
            }
        }
        for i in 1..self.blocks.len() {
            if self.blocks[i].prev_hash != self.blocks[i - 1].hash() {
                return Err(LedgerError::BrokenChain {
                    height: self.base_height as usize + i,
                });
            }
        }
        Ok(())
    }

    /// Drops the longest retained prefix of blocks whose consensus
    /// sequence number is at or below the stable checkpoint `seq`,
    /// remembering the pruned head so the chain still verifies. Blocks
    /// executed ahead of the checkpoint (out-of-order complex csts) stop
    /// the prune and are retained.
    pub fn prune_through_seq(&mut self, seq: u64) -> usize {
        let cut = self
            .blocks
            .iter()
            .position(|b| b.body.seq.0 > seq)
            .unwrap_or(self.blocks.len());
        if cut == 0 {
            return 0;
        }
        self.base_hash = self.blocks[cut - 1].hash();
        self.base_height += cut as u64;
        self.blocks.drain(..cut);
        cut
    }

    /// Positions (absolute heights) of the retained blocks whose Merkle
    /// root is `delta`.
    pub fn find_by_root(&self, delta: &Digest) -> Vec<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| &b.body.merkle_root == delta)
            .map(|(i, _)| self.base_height as usize + i)
            .collect()
    }

    /// Test-only hook: mutable block access for tamper-evidence tests.
    #[doc(hidden)]
    pub fn block_mut(&mut self, height: usize) -> Option<&mut Block> {
        height
            .checked_sub(self.base_height as usize)
            .and_then(|i| self.blocks.get_mut(i))
    }
}

/// §7's cross-ledger consistency rule: "if two blocks 𝔅ₓ and 𝔅ᵧ include
/// conflicting transactions that access intersecting sets of shards, and
/// consensus on 𝔅ₓ happens before 𝔅ᵧ, then in each ledger 𝔅ₓ is appended
/// before 𝔅ᵧ." Given two ledgers and two block roots, checks that both
/// ledgers order them the same way (when both contain both).
pub fn consistent_conflict_order(a: &Ledger, b: &Ledger, x: &Digest, y: &Digest) -> bool {
    let order_in = |l: &Ledger| -> Option<std::cmp::Ordering> {
        let px = *l.find_by_root(x).first()?;
        let py = *l.find_by_root(y).first()?;
        Some(px.cmp(&py))
    };
    match (order_in(a), order_in(b)) {
        (Some(oa), Some(ob)) => oa == ob,
        // If either ledger lacks one of the blocks, no violation is proven.
        _ => true,
    }
}

/// Builds the Merkle root `Δ` of a batch from its transaction payload
/// encodings (§7: "a Merkle Root helps to optimize the size of each
/// block").
pub fn batch_merkle_root<'a, I: IntoIterator<Item = &'a [u8]>>(payloads: I) -> Digest {
    MerkleTree::from_payloads(payloads).root()
}

/// Digest of arbitrary chain metadata (used by tests and the harness).
pub fn chain_digest(parts: &[&[u8]]) -> Digest {
    sha256_concat(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringbft_types::{ReplicaId, SeqNum};

    fn body(shard: u32, seq: u64, root_seed: u8) -> BlockBody {
        BlockBody {
            seq: SeqNum(seq),
            merkle_root: [root_seed; 32],
            proposer: ReplicaId::new(ShardId(shard), 0),
            txn_count: 100,
            involved: vec![ShardId(shard)],
        }
    }

    #[test]
    fn genesis_identical_across_replicas() {
        let a = Ledger::new(ShardId(3));
        let b = Ledger::new(ShardId(3));
        assert_eq!(a.head_hash(), b.head_hash());
        // Different shards have different genesis blocks.
        let c = Ledger::new(ShardId(4));
        assert_ne!(a.head_hash(), c.head_hash());
    }

    #[test]
    fn append_chains_blocks() {
        let mut l = Ledger::new(ShardId(0));
        let h1 = l.append(body(0, 1, 1));
        let h2 = l.append(body(0, 2, 2));
        assert_ne!(h1, h2);
        assert_eq!(l.height(), 3);
        assert_eq!(l.block(2).unwrap().prev_hash, h1);
        l.verify().unwrap();
    }

    #[test]
    fn tampering_breaks_verification() {
        let mut l = Ledger::new(ShardId(0));
        l.append(body(0, 1, 1));
        l.append(body(0, 2, 2));
        // Tamper with the middle block's root.
        l.block_mut(1).unwrap().body.merkle_root = [0xff; 32];
        assert_eq!(l.verify(), Err(LedgerError::BrokenChain { height: 2 }));
    }

    #[test]
    fn find_by_root() {
        let mut l = Ledger::new(ShardId(0));
        l.append(body(0, 1, 7));
        l.append(body(0, 2, 8));
        l.append(body(0, 3, 7));
        assert_eq!(l.find_by_root(&[7u8; 32]), vec![1, 3]);
        assert_eq!(l.find_by_root(&[9u8; 32]), Vec::<usize>::new());
    }

    #[test]
    fn conflict_order_detection() {
        let x = [1u8; 32];
        let y = [2u8; 32];
        let mk = |first: &Digest, second: &Digest, shard: u32| {
            let mut l = Ledger::new(ShardId(shard));
            l.append(BlockBody {
                seq: SeqNum(1),
                merkle_root: *first,
                proposer: ReplicaId::new(ShardId(shard), 0),
                txn_count: 1,
                involved: vec![ShardId(0), ShardId(1)],
            });
            l.append(BlockBody {
                seq: SeqNum(2),
                merkle_root: *second,
                proposer: ReplicaId::new(ShardId(shard), 0),
                txn_count: 1,
                involved: vec![ShardId(0), ShardId(1)],
            });
            l
        };
        let a = mk(&x, &y, 0);
        let b = mk(&x, &y, 1);
        assert!(consistent_conflict_order(&a, &b, &x, &y));
        let c = mk(&y, &x, 1);
        assert!(!consistent_conflict_order(&a, &c, &x, &y));
        // Missing blocks prove nothing.
        let empty = Ledger::new(ShardId(2));
        assert!(consistent_conflict_order(&a, &empty, &x, &y));
    }

    #[test]
    fn pruning_keeps_height_and_verification() {
        let mut l = Ledger::new(ShardId(0));
        for seq in 1..=6 {
            l.append(body(0, seq, seq as u8));
        }
        assert_eq!(l.height(), 7);
        let head = l.head_hash();
        // Prune everything at or below the stable checkpoint seq 4
        // (genesis has seq 0, so 5 blocks go).
        let dropped = l.prune_through_seq(4);
        assert_eq!(dropped, 5);
        assert_eq!(l.height(), 7, "absolute height unchanged");
        assert_eq!(l.retained_blocks(), 2);
        assert_eq!(l.base_height(), 5);
        assert_eq!(l.head_hash(), head, "head untouched by pruning");
        l.verify().unwrap();
        // Appending still chains onto the retained tail.
        l.append(body(0, 7, 9));
        l.verify().unwrap();
        assert_eq!(l.find_by_root(&[6u8; 32]), vec![6]);
        assert!(l.block(3).is_none(), "pruned blocks are gone");
        assert!(l.block(6).is_some());
        // Pruning again at the same checkpoint is a no-op prefix-wise
        // (remaining blocks have seq > 4).
        assert_eq!(l.prune_through_seq(4), 0);
    }

    #[test]
    fn prune_stops_at_out_of_order_tail() {
        // A complex cst executed ahead: block order seq 1, 3, 2. Pruning
        // through seq 2 must stop before the seq-3 block.
        let mut l = Ledger::new(ShardId(0));
        l.append(body(0, 1, 1));
        l.append(body(0, 3, 3));
        l.append(body(0, 2, 2));
        let dropped = l.prune_through_seq(2);
        assert_eq!(dropped, 2, "genesis + seq-1 block only");
        assert_eq!(l.retained_blocks(), 2);
        l.verify().unwrap();
    }

    #[test]
    fn fully_pruned_ledger_supports_append_from_base() {
        let mut l = Ledger::new(ShardId(0));
        l.append(body(0, 1, 1));
        let head = l.head_hash();
        l.prune_through_seq(10);
        assert!(l.head().is_none());
        assert_eq!(l.head_hash(), head);
        l.append(body(0, 2, 2));
        l.verify().unwrap();
        assert_eq!(l.blocks()[0].prev_hash, head);
    }

    #[test]
    fn checkpoint_installed_ledger_chains_from_donor_head() {
        let installed = Ledger::from_checkpoint(ShardId(1), 12, [7u8; 32]);
        assert_eq!(installed.height(), 12);
        assert_eq!(installed.head_hash(), [7u8; 32]);
        let mut l = installed;
        l.append(body(1, 13, 1));
        l.verify().unwrap();
        assert_eq!(l.height(), 13);
    }

    #[test]
    fn batch_root_is_order_sensitive() {
        let r1 = batch_merkle_root([b"t1".as_slice(), b"t2".as_slice()]);
        let r2 = batch_merkle_root([b"t2".as_slice(), b"t1".as_slice()]);
        assert_ne!(r1, r2);
    }
}
