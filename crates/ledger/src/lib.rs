//! The immutable append-only ledger of §7.
//!
//! Fully-replicated protocols keep one blockchain; sharded protocols keep
//! a **partial blockchain** `𝔏ₛ` per shard, and the complete system state
//! is the union `𝔏S₁ ∪ … ∪ 𝔏S_z`. Each block is
//! `𝔅ₖ = {k, Δ, p_Sᵢ, H(𝔅ₖ₋₁)}` (eq. 3): the sequence number, the Merkle
//! root of the batch, the proposing primary, and the hash of the previous
//! block. Chains start from an agreed-upon genesis block.
//!
//! A block containing cross-shard transactions is appended to the ledger
//! of *every* involved shard; the relative order of two such blocks may
//! differ across ledgers **unless** the blocks conflict, in which case all
//! involved shards must order them identically — checked by
//! [`consistent_conflict_order`].

use ringbft_crypto::{sha256_concat, Digest, MerkleTree};
use ringbft_types::ShardId;

pub mod block;

pub use block::{Block, BlockBody};

/// The partial blockchain maintained by the replicas of one shard.
#[derive(Debug, Clone)]
pub struct Ledger {
    shard: ShardId,
    blocks: Vec<Block>,
}

/// Errors raised when appending or validating blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// The block's `prev_hash` does not match the current head.
    BrokenChain {
        /// Height at which the mismatch occurred.
        height: usize,
    },
    /// A block's stored hash does not match its recomputed hash.
    CorruptBlock {
        /// Height of the corrupt block.
        height: usize,
    },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::BrokenChain { height } => {
                write!(f, "prev-hash mismatch at height {height}")
            }
            LedgerError::CorruptBlock { height } => {
                write!(f, "block hash mismatch at height {height}")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

impl Ledger {
    /// Creates the ledger of `shard`, containing only the genesis block
    /// (the "agreed upon dummy block" of §7, identical across replicas).
    pub fn new(shard: ShardId) -> Self {
        Ledger {
            shard,
            blocks: vec![Block::genesis(shard)],
        }
    }

    /// The shard this ledger belongs to.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Number of blocks including genesis.
    pub fn height(&self) -> usize {
        self.blocks.len()
    }

    /// The ledger never has fewer blocks than genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The newest block.
    pub fn head(&self) -> &Block {
        self.blocks.last().expect("genesis always present")
    }

    /// Block at `height` (0 = genesis).
    pub fn block(&self, height: usize) -> Option<&Block> {
        self.blocks.get(height)
    }

    /// All blocks, genesis first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Appends a block built from `body`, chaining it to the current head.
    /// Returns the appended block's hash.
    pub fn append(&mut self, body: BlockBody) -> Digest {
        let prev_hash = self.head().hash();
        let block = Block::new(body, prev_hash);
        let h = block.hash();
        self.blocks.push(block);
        h
    }

    /// Verifies the whole chain: every block's `prev_hash` equals the hash
    /// of its predecessor.
    pub fn verify(&self) -> Result<(), LedgerError> {
        for i in 1..self.blocks.len() {
            if self.blocks[i].prev_hash != self.blocks[i - 1].hash() {
                return Err(LedgerError::BrokenChain { height: i });
            }
        }
        Ok(())
    }

    /// Positions (heights) of the blocks whose Merkle root is `delta`.
    pub fn find_by_root(&self, delta: &Digest) -> Vec<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| &b.body.merkle_root == delta)
            .map(|(i, _)| i)
            .collect()
    }

    /// Test-only hook: mutable block access for tamper-evidence tests.
    #[doc(hidden)]
    pub fn block_mut(&mut self, height: usize) -> Option<&mut Block> {
        self.blocks.get_mut(height)
    }
}

/// §7's cross-ledger consistency rule: "if two blocks 𝔅ₓ and 𝔅ᵧ include
/// conflicting transactions that access intersecting sets of shards, and
/// consensus on 𝔅ₓ happens before 𝔅ᵧ, then in each ledger 𝔅ₓ is appended
/// before 𝔅ᵧ." Given two ledgers and two block roots, checks that both
/// ledgers order them the same way (when both contain both).
pub fn consistent_conflict_order(a: &Ledger, b: &Ledger, x: &Digest, y: &Digest) -> bool {
    let order_in = |l: &Ledger| -> Option<std::cmp::Ordering> {
        let px = *l.find_by_root(x).first()?;
        let py = *l.find_by_root(y).first()?;
        Some(px.cmp(&py))
    };
    match (order_in(a), order_in(b)) {
        (Some(oa), Some(ob)) => oa == ob,
        // If either ledger lacks one of the blocks, no violation is proven.
        _ => true,
    }
}

/// Builds the Merkle root `Δ` of a batch from its transaction payload
/// encodings (§7: "a Merkle Root helps to optimize the size of each
/// block").
pub fn batch_merkle_root<'a, I: IntoIterator<Item = &'a [u8]>>(payloads: I) -> Digest {
    MerkleTree::from_payloads(payloads).root()
}

/// Digest of arbitrary chain metadata (used by tests and the harness).
pub fn chain_digest(parts: &[&[u8]]) -> Digest {
    sha256_concat(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringbft_types::{ReplicaId, SeqNum};

    fn body(shard: u32, seq: u64, root_seed: u8) -> BlockBody {
        BlockBody {
            seq: SeqNum(seq),
            merkle_root: [root_seed; 32],
            proposer: ReplicaId::new(ShardId(shard), 0),
            txn_count: 100,
            involved: vec![ShardId(shard)],
        }
    }

    #[test]
    fn genesis_identical_across_replicas() {
        let a = Ledger::new(ShardId(3));
        let b = Ledger::new(ShardId(3));
        assert_eq!(a.head().hash(), b.head().hash());
        // Different shards have different genesis blocks.
        let c = Ledger::new(ShardId(4));
        assert_ne!(a.head().hash(), c.head().hash());
    }

    #[test]
    fn append_chains_blocks() {
        let mut l = Ledger::new(ShardId(0));
        let h1 = l.append(body(0, 1, 1));
        let h2 = l.append(body(0, 2, 2));
        assert_ne!(h1, h2);
        assert_eq!(l.height(), 3);
        assert_eq!(l.block(2).unwrap().prev_hash, h1);
        l.verify().unwrap();
    }

    #[test]
    fn tampering_breaks_verification() {
        let mut l = Ledger::new(ShardId(0));
        l.append(body(0, 1, 1));
        l.append(body(0, 2, 2));
        // Tamper with the middle block's root.
        l.block_mut(1).unwrap().body.merkle_root = [0xff; 32];
        assert_eq!(l.verify(), Err(LedgerError::BrokenChain { height: 2 }));
    }

    #[test]
    fn find_by_root() {
        let mut l = Ledger::new(ShardId(0));
        l.append(body(0, 1, 7));
        l.append(body(0, 2, 8));
        l.append(body(0, 3, 7));
        assert_eq!(l.find_by_root(&[7u8; 32]), vec![1, 3]);
        assert_eq!(l.find_by_root(&[9u8; 32]), Vec::<usize>::new());
    }

    #[test]
    fn conflict_order_detection() {
        let x = [1u8; 32];
        let y = [2u8; 32];
        let mk = |first: &Digest, second: &Digest, shard: u32| {
            let mut l = Ledger::new(ShardId(shard));
            l.append(BlockBody {
                seq: SeqNum(1),
                merkle_root: *first,
                proposer: ReplicaId::new(ShardId(shard), 0),
                txn_count: 1,
                involved: vec![ShardId(0), ShardId(1)],
            });
            l.append(BlockBody {
                seq: SeqNum(2),
                merkle_root: *second,
                proposer: ReplicaId::new(ShardId(shard), 0),
                txn_count: 1,
                involved: vec![ShardId(0), ShardId(1)],
            });
            l
        };
        let a = mk(&x, &y, 0);
        let b = mk(&x, &y, 1);
        assert!(consistent_conflict_order(&a, &b, &x, &y));
        let c = mk(&y, &x, 1);
        assert!(!consistent_conflict_order(&a, &c, &x, &y));
        // Missing blocks prove nothing.
        let empty = Ledger::new(ShardId(2));
        assert!(consistent_conflict_order(&a, &empty, &x, &y));
    }

    #[test]
    fn batch_root_is_order_sensitive() {
        let r1 = batch_merkle_root([b"t1".as_slice(), b"t2".as_slice()]);
        let r2 = batch_merkle_root([b"t2".as_slice(), b"t1".as_slice()]);
        assert_ne!(r1, r2);
    }
}
