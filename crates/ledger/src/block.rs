//! Block structure: `𝔅ₖ = {k, Δ, p, H(𝔅ₖ₋₁)}` (§7, eq. 3).

use ringbft_crypto::{sha256_concat, Digest};
use ringbft_types::{ReplicaId, SeqNum, ShardId};

/// The consensus-determined content of a block (everything except the
/// chain linkage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockBody {
    /// Shard-local sequence number `k` the batch committed at.
    pub seq: SeqNum,
    /// Merkle root `Δ` of the batch's transactions.
    pub merkle_root: Digest,
    /// The primary that proposed the batch.
    pub proposer: ReplicaId,
    /// Number of transactions in the batch.
    pub txn_count: u32,
    /// Involved shards; a cross-shard block is appended to every involved
    /// shard's ledger (§7).
    pub involved: Vec<ShardId>,
}

/// A chained block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Content.
    pub body: BlockBody,
    /// Hash of the previous block, `H(𝔅ₖ₋₁)`.
    pub prev_hash: Digest,
}

impl Block {
    /// Chains `body` onto a predecessor with hash `prev_hash`.
    pub fn new(body: BlockBody, prev_hash: Digest) -> Self {
        Block { body, prev_hash }
    }

    /// The genesis block of a shard: an agreed-upon dummy block (§7).
    pub fn genesis(shard: ShardId) -> Self {
        Block {
            body: BlockBody {
                seq: SeqNum(0),
                merkle_root: sha256_concat(&[b"ringbft-genesis", &shard.0.to_le_bytes()]),
                proposer: ReplicaId::new(shard, 0),
                txn_count: 0,
                involved: vec![shard],
            },
            prev_hash: [0u8; 32],
        }
    }

    /// Hash of this block, committing to body and linkage.
    pub fn hash(&self) -> Digest {
        let mut involved_bytes = Vec::with_capacity(self.body.involved.len() * 4);
        for s in &self.body.involved {
            involved_bytes.extend_from_slice(&s.0.to_le_bytes());
        }
        sha256_concat(&[
            b"ringbft-block",
            &self.body.seq.0.to_le_bytes(),
            &self.body.merkle_root,
            &self.body.proposer.shard.0.to_le_bytes(),
            &self.body.proposer.index.to_le_bytes(),
            &self.body.txn_count.to_le_bytes(),
            &involved_bytes,
            &self.prev_hash,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_body() -> BlockBody {
        BlockBody {
            seq: SeqNum(5),
            merkle_root: [3u8; 32],
            proposer: ReplicaId::new(ShardId(1), 2),
            txn_count: 100,
            involved: vec![ShardId(0), ShardId(1)],
        }
    }

    #[test]
    fn hash_commits_to_every_field() {
        let base = Block::new(sample_body(), [9u8; 32]);
        let h = base.hash();

        let mut b = base.clone();
        b.body.seq = SeqNum(6);
        assert_ne!(b.hash(), h);

        let mut b = base.clone();
        b.body.merkle_root = [4u8; 32];
        assert_ne!(b.hash(), h);

        let mut b = base.clone();
        b.body.proposer = ReplicaId::new(ShardId(1), 3);
        assert_ne!(b.hash(), h);

        let mut b = base.clone();
        b.body.txn_count = 99;
        assert_ne!(b.hash(), h);

        let mut b = base.clone();
        b.body.involved.push(ShardId(2));
        assert_ne!(b.hash(), h);

        let mut b = base.clone();
        b.prev_hash = [8u8; 32];
        assert_ne!(b.hash(), h);
    }

    #[test]
    fn genesis_is_deterministic_per_shard() {
        assert_eq!(
            Block::genesis(ShardId(0)).hash(),
            Block::genesis(ShardId(0)).hash()
        );
        assert_ne!(
            Block::genesis(ShardId(0)).hash(),
            Block::genesis(ShardId(1)).hash()
        );
        assert_eq!(Block::genesis(ShardId(0)).body.txn_count, 0);
    }
}
