//! The sequence-ordered lock manager of §4.3.5 and Example 4.4.
//!
//! RingBFT lets replicas process Prepare/Commit messages out of order, but
//! requires locks to be acquired in *transactional sequence order*. Each
//! replica tracks `k_max`, the sequence number of the last transaction to
//! lock data. A transaction committing at sequence `k > k_max + 1` is
//! stored in the pending list `π` until its turn. When the `k_max + 1`-th
//! transaction acquires its locks, the replica "gradually releases
//! transactions in π until there is a transaction that wishes to lock
//! already locked data-fragments" — i.e. admission proceeds strictly in
//! sequence order and stalls on the first lock conflict (Example 4.4: even
//! a conflict-free T4 waits behind a conflicting T3).
//!
//! This strict ordering is the shard-local half of the deadlock-freedom
//! argument (Theorem 6.2); the cross-shard half is the ring order itself.

use ringbft_types::txn::Key;
use std::collections::{BTreeMap, HashMap};

/// Outcome of offering a committed transaction to the lock manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admission {
    /// Sequence numbers that acquired their locks as a result of this
    /// call, in acquisition order. May be empty (queued or stalled), and
    /// may include later sequence numbers released from `π`.
    pub acquired: Vec<u64>,
}

#[derive(Debug, Clone)]
struct Waiting {
    /// Keys locked in shared mode (reads, including remote-read keys a
    /// shard serves to other shards — their values must stay stable, but
    /// concurrent readers do not conflict).
    reads: Vec<Key>,
    /// Keys locked exclusively (writes).
    writes: Vec<Key>,
}

#[derive(Debug, Clone)]
enum LockState {
    /// Held exclusively by one sequence number.
    Exclusive(u64),
    /// Held shared by a set of sequence numbers (reader count per seq).
    Shared(HashMap<u64, u32>),
}

/// Sequence-ordered lock manager for one shard replica, with shared read
/// locks and exclusive write locks.
#[derive(Debug, Default)]
pub struct LockManager {
    /// Sequence number of the last transaction to acquire locks.
    k_max: u64,
    /// Locks currently held.
    locked: HashMap<Key, LockState>,
    /// The pending list `π`: committed transactions waiting their turn,
    /// keyed by sequence number.
    pi: BTreeMap<u64, Waiting>,
    /// Lock sets of transactions currently holding locks (for release).
    held: HashMap<u64, Waiting>,
}

impl LockManager {
    /// Fresh manager; sequence numbers start at 1 (`k_max = 0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// A manager whose admission order starts *after* `k_max` — used when
    /// a replica installs a checkpoint snapshot: every sequence number up
    /// to the checkpoint is already reflected in the installed state, so
    /// admission resumes at `k_max + 1` with no locks held.
    pub fn starting_at(k_max: u64) -> Self {
        LockManager {
            k_max,
            ..Self::default()
        }
    }

    /// Sequence number of the last admitted transaction.
    pub fn k_max(&self) -> u64 {
        self.k_max
    }

    /// Is `key` currently locked (in any mode)?
    pub fn is_locked(&self, key: Key) -> bool {
        self.locked.contains_key(&key)
    }

    /// Which sequence number holds the exclusive lock on `key`?
    pub fn holder(&self, key: Key) -> Option<u64> {
        match self.locked.get(&key) {
            Some(LockState::Exclusive(s)) => Some(*s),
            _ => None,
        }
    }

    /// Number of shared holders of `key`.
    pub fn shared_holders(&self, key: Key) -> usize {
        match self.locked.get(&key) {
            Some(LockState::Shared(s)) => s.len(),
            _ => 0,
        }
    }

    /// Number of transactions waiting in `π`.
    pub fn pending_len(&self) -> usize {
        self.pi.len()
    }

    /// Number of transactions currently holding locks.
    pub fn held_len(&self) -> usize {
        self.held.len()
    }

    /// Highest sequence number currently holding locks, if any.
    pub fn max_held_seq(&self) -> Option<u64> {
        self.held.keys().max().copied()
    }

    /// A transaction at `seq` finished its local commit phase (received
    /// `nf` Commit messages), locking `keys` exclusively. Shorthand for
    /// [`LockManager::commit_rw`] with an empty read set.
    pub fn commit(&mut self, seq: u64, keys: Vec<Key>) -> Admission {
        self.commit_rw(seq, Vec::new(), keys)
    }

    /// Full form: `reads` take shared locks, `writes` exclusive locks.
    /// Attempts admission in sequence order; returns every sequence
    /// number that acquired locks as a result (the offered one and/or
    /// successors drained from `π`).
    ///
    /// Duplicate offers for an already-admitted or already-pending
    /// sequence number are ignored (idempotent).
    pub fn commit_rw(&mut self, seq: u64, mut reads: Vec<Key>, writes: Vec<Key>) -> Admission {
        if seq <= self.k_max || self.held.contains_key(&seq) {
            return Admission { acquired: vec![] };
        }
        // A key both read and written needs only the exclusive lock.
        reads.retain(|k| !writes.contains(k));
        self.pi.entry(seq).or_insert(Waiting { reads, writes });
        self.drain()
    }

    /// Releases the locks held by `seq` (its fragment executed and, for
    /// csts, rotation two passed through). Returns newly admitted
    /// successors from `π`.
    pub fn release(&mut self, seq: u64) -> Admission {
        if let Some(Waiting { reads, writes }) = self.held.remove(&seq) {
            for k in writes {
                if matches!(self.locked.get(&k), Some(LockState::Exclusive(s)) if *s == seq) {
                    self.locked.remove(&k);
                }
            }
            for k in reads {
                if let Some(LockState::Shared(holders)) = self.locked.get_mut(&k) {
                    holders.remove(&seq);
                    if holders.is_empty() {
                        self.locked.remove(&k);
                    }
                }
            }
        }
        self.drain()
    }

    fn conflicts(&self, w: &Waiting) -> bool {
        // Writes conflict with any existing lock; reads only with
        // exclusive locks.
        w.writes.iter().any(|k| self.locked.contains_key(k))
            || w.reads
                .iter()
                .any(|k| matches!(self.locked.get(k), Some(LockState::Exclusive(_))))
    }

    /// Admits transactions from `π` strictly in sequence order, stopping
    /// at the first gap or lock conflict.
    fn drain(&mut self) -> Admission {
        let mut acquired = Vec::new();
        loop {
            let next_seq = self.k_max + 1;
            let Some(waiting) = self.pi.get(&next_seq) else {
                break; // gap: next-in-order transaction has not committed
            };
            if self.conflicts(waiting) {
                break; // Example 4.4: stall on first conflict
            }
            let waiting = self.pi.remove(&next_seq).expect("checked above");
            for &k in &waiting.writes {
                self.locked.insert(k, LockState::Exclusive(next_seq));
            }
            for &k in &waiting.reads {
                match self
                    .locked
                    .entry(k)
                    .or_insert_with(|| LockState::Shared(HashMap::new()))
                {
                    LockState::Shared(holders) => {
                        *holders.entry(next_seq).or_default() += 1;
                    }
                    LockState::Exclusive(_) => unreachable!("conflict checked above"),
                }
            }
            self.held.insert(next_seq, waiting);
            self.k_max = next_seq;
            acquired.push(next_seq);
        }
        Admission { acquired }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_admission() {
        let mut lm = LockManager::new();
        assert_eq!(lm.commit(1, vec![10]).acquired, vec![1]);
        assert_eq!(lm.commit(2, vec![20]).acquired, vec![2]);
        assert_eq!(lm.k_max(), 2);
        assert!(lm.is_locked(10));
        assert_eq!(lm.holder(20), Some(2));
    }

    /// The paper's Example 4.4: T1 locks a, T2 locks b, T3 wants a
    /// (conflict → stall), T4 wants c but must wait behind T3.
    #[test]
    fn example_4_4() {
        let (a, b, c) = (100, 200, 300);
        let mut lm = LockManager::new();
        // Out-of-order commits: T2, T3, T4 arrive before T1.
        assert!(lm.commit(2, vec![b]).acquired.is_empty());
        assert!(lm.commit(3, vec![a]).acquired.is_empty());
        assert!(lm.commit(4, vec![c]).acquired.is_empty());
        assert_eq!(lm.pending_len(), 3);
        // T1 commits: T1 and T2 admitted, T3 stalls on a, T4 behind T3.
        assert_eq!(lm.commit(1, vec![a]).acquired, vec![1, 2]);
        assert_eq!(lm.k_max(), 2);
        assert_eq!(lm.pending_len(), 2);
        assert_eq!(lm.holder(a), Some(1));
        // Releasing T1 unblocks T3, then T4.
        assert_eq!(lm.release(1).acquired, vec![3, 4]);
        assert_eq!(lm.holder(a), Some(3));
        assert!(lm.is_locked(c));
        assert_eq!(lm.k_max(), 4);
    }

    #[test]
    fn gap_blocks_admission() {
        let mut lm = LockManager::new();
        assert!(lm.commit(2, vec![1]).acquired.is_empty());
        assert!(lm.commit(3, vec![2]).acquired.is_empty());
        // Nothing admitted until seq 1 arrives.
        assert_eq!(lm.k_max(), 0);
        assert_eq!(lm.commit(1, vec![3]).acquired, vec![1, 2, 3]);
    }

    #[test]
    fn multi_key_all_or_nothing() {
        let mut lm = LockManager::new();
        assert_eq!(lm.commit(1, vec![1, 2]).acquired, vec![1]);
        // T2 needs {2,3}: 2 is held → stall.
        assert!(lm.commit(2, vec![2, 3]).acquired.is_empty());
        assert!(!lm.is_locked(3), "partial acquisition is forbidden");
        assert_eq!(lm.release(1).acquired, vec![2]);
        assert!(lm.is_locked(3));
    }

    #[test]
    fn duplicate_commits_are_idempotent() {
        let mut lm = LockManager::new();
        assert_eq!(lm.commit(1, vec![5]).acquired, vec![1]);
        assert!(lm.commit(1, vec![5]).acquired.is_empty());
        assert_eq!(lm.held_len(), 1);
        // Re-offer while pending.
        assert!(lm.commit(3, vec![6]).acquired.is_empty());
        assert!(lm.commit(3, vec![6]).acquired.is_empty());
        assert_eq!(lm.pending_len(), 1);
    }

    #[test]
    fn release_unknown_seq_is_noop() {
        let mut lm = LockManager::new();
        assert_eq!(lm.commit(1, vec![5]).acquired, vec![1]);
        assert!(lm.release(99).acquired.is_empty());
        assert!(lm.is_locked(5));
    }

    #[test]
    fn same_key_sequential_transactions() {
        let mut lm = LockManager::new();
        assert_eq!(lm.commit(1, vec![7]).acquired, vec![1]);
        assert!(lm.commit(2, vec![7]).acquired.is_empty());
        assert!(lm.commit(3, vec![7]).acquired.is_empty());
        assert_eq!(lm.release(1).acquired, vec![2]);
        assert_eq!(lm.release(2).acquired, vec![3]);
        assert_eq!(lm.release(3).acquired, Vec::<u64>::new());
        assert!(!lm.is_locked(7));
        assert_eq!(lm.k_max(), 3);
    }

    #[test]
    fn empty_lock_set_admits_trivially() {
        // Read-only or remote-only fragments lock nothing locally.
        let mut lm = LockManager::new();
        assert_eq!(lm.commit(1, vec![]).acquired, vec![1]);
        assert_eq!(lm.release(1).acquired, Vec::<u64>::new());
        assert_eq!(lm.k_max(), 1);
    }

    #[test]
    fn shared_reads_do_not_conflict() {
        let mut lm = LockManager::new();
        assert_eq!(lm.commit_rw(1, vec![7], vec![]).acquired, vec![1]);
        assert_eq!(lm.commit_rw(2, vec![7], vec![]).acquired, vec![2]);
        assert_eq!(lm.shared_holders(7), 2);
        // A writer of the shared key must wait.
        assert!(lm.commit_rw(3, vec![], vec![7]).acquired.is_empty());
        assert!(lm.release(1).acquired.is_empty());
        assert_eq!(lm.release(2).acquired, vec![3]);
        assert_eq!(lm.holder(7), Some(3));
    }

    #[test]
    fn reader_waits_for_writer() {
        let mut lm = LockManager::new();
        assert_eq!(lm.commit_rw(1, vec![], vec![9]).acquired, vec![1]);
        assert!(lm.commit_rw(2, vec![9], vec![]).acquired.is_empty());
        assert_eq!(lm.release(1).acquired, vec![2]);
        assert_eq!(lm.shared_holders(9), 1);
        assert_eq!(lm.holder(9), None);
    }

    #[test]
    fn read_write_same_key_upgrades_to_exclusive() {
        let mut lm = LockManager::new();
        // Key 5 appears in both sets: only the exclusive lock is taken.
        assert_eq!(lm.commit_rw(1, vec![5], vec![5]).acquired, vec![1]);
        assert_eq!(lm.holder(5), Some(1));
        assert_eq!(lm.shared_holders(5), 0);
        assert!(lm.release(1).acquired.is_empty());
        assert!(!lm.is_locked(5));
    }

    #[test]
    fn mixed_shared_exclusive_pipeline() {
        let mut lm = LockManager::new();
        // Readers of a, writer of b; then writer of a stalls behind readers.
        assert_eq!(lm.commit_rw(1, vec![100], vec![200]).acquired, vec![1]);
        assert_eq!(lm.commit_rw(2, vec![100], vec![201]).acquired, vec![2]);
        assert!(lm.commit_rw(3, vec![], vec![100]).acquired.is_empty());
        // Head-of-line: 4 waits behind 3 even though conflict-free.
        assert!(lm.commit_rw(4, vec![], vec![300]).acquired.is_empty());
        lm.release(1);
        assert_eq!(lm.release(2).acquired, vec![3, 4]);
    }
}
