//! The write-ahead log substrate: an append-only record log with
//! explicit durability boundaries, behind the [`Storage`] trait so the
//! replica's persistence hooks are backend-agnostic.
//!
//! Two backends ship:
//!
//! * [`MemWal`] — an in-memory log backed by a shared [`MemWalHandle`],
//!   used by the deterministic simulator. The handle survives the node
//!   it is attached to, and [`MemWalHandle::crash`] models a power-loss
//!   kill -9: everything past the last `sync` watermark is discarded,
//!   exactly the bytes a real disk may lose.
//! * [`FileWal`] — a real file. `append` writes through to the OS file
//!   (surviving a process kill), `sync` calls `fdatasync` (surviving
//!   power loss), and `open` replays the existing log, truncating a
//!   torn tail.
//!
//! ## Record framing
//!
//! Every record is framed as
//!
//! ```text
//! [len: u32 LE][checksum: u64 LE][kind: u8][payload: len bytes]
//! ```
//!
//! where the checksum covers `len`, `kind` *and* the payload. Replay
//! scans from the start and stops at the first frame that is
//! incomplete or fails its checksum — the *torn tail* a crash mid-write
//! leaves behind. The torn suffix is truncated, never replayed: a
//! record is either durable in full or it never happened.

use std::fs;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Frame header bytes: `len (4) + checksum (8) + kind (1)`.
const FRAME_HEADER: usize = 4 + 8 + 1;

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Record kind tag (meaning assigned by the layer above).
    pub kind: u8,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// A cheap deterministic 64-bit mixer (splitmix64 finalizer) — the same
/// construction `KvStore::state_fingerprint` uses.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Per-record checksum over `(len, kind, payload)`. Not cryptographic —
/// the WAL is a local-integrity device (torn writes, bit rot), not a
/// trust boundary; state fetched from peers is verified against
/// quorum-stable SHA-256 digests instead.
fn checksum(kind: u8, payload: &[u8]) -> u64 {
    let mut h = mix(
        0x57414c_u64, // "WAL"
        (payload.len() as u64) << 8 | kind as u64,
    );
    for chunk in payload.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(buf));
    }
    h
}

/// Encodes one framed record.
fn encode(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&checksum(kind, payload).to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(payload);
    frame
}

/// Scans `bytes` for the longest valid record prefix. Returns the
/// decoded records and the byte length of the valid prefix; everything
/// past it is a torn tail to truncate.
pub fn scan(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let Some(end) = at.checked_add(FRAME_HEADER + len) else {
            break;
        };
        if end > bytes.len() {
            break; // incomplete frame: torn tail
        }
        let sum = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
        let kind = bytes[at + 12];
        let payload = &bytes[at + FRAME_HEADER..end];
        if checksum(kind, payload) != sum {
            break; // corrupt frame: torn tail
        }
        records.push(WalRecord {
            kind,
            payload: payload.to_vec(),
        });
        at = end;
    }
    (records, at)
}

/// An append-only record log with explicit durability boundaries.
///
/// `append` buffers a record into the log; `sync` makes everything
/// appended so far durable (fsync, or the simulator's modeled
/// equivalent). What "a crash loses" is backend-specific: [`FileWal`]
/// keeps non-synced appends across a *process* kill (the OS holds
/// them), while [`MemWalHandle::crash`] models the stricter power-loss
/// contract where only synced bytes survive.
pub trait Storage: Send {
    /// Appends one record. Durable only after the next [`Storage::sync`].
    fn append(&mut self, kind: u8, payload: &[u8]) -> std::io::Result<()>;

    /// Makes every appended record durable.
    fn sync(&mut self) -> std::io::Result<()>;

    /// Number of syncs performed over the log's lifetime.
    fn syncs(&self) -> u64;

    /// Bytes currently in the log (framing included).
    fn len_bytes(&self) -> u64;

    /// True when at least one append happened since the last sync.
    fn dirty(&self) -> bool;

    /// Atomically replaces the log's contents with `records` and syncs
    /// (checkpoint compaction). On return the log holds exactly
    /// `records`, durably.
    fn compact(&mut self, records: &[(u8, Vec<u8>)]) -> std::io::Result<()>;
}

// ---------------------------------------------------------------------
// In-memory backend (simulator)
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemInner {
    bytes: Vec<u8>,
    /// Durable watermark: everything below survives [`MemWalHandle::crash`].
    synced: usize,
    syncs: u64,
}

/// The shared buffer behind a [`MemWal`]: clone-cheap, survives the
/// node that writes to it, so a simulated restart can reopen the log
/// the crashed node left behind.
#[derive(Debug, Clone, Default)]
pub struct MemWalHandle(Arc<Mutex<MemInner>>);

impl MemWalHandle {
    /// Fresh empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Models a power-loss crash: discards every byte past the last
    /// sync watermark. Always lands on a record boundary because the
    /// watermark is only ever advanced by `sync`.
    pub fn crash(&self) {
        let mut inner = self.0.lock().expect("wal lock");
        let synced = inner.synced;
        inner.bytes.truncate(synced);
    }

    /// Bytes currently in the log (diagnostics).
    pub fn len_bytes(&self) -> u64 {
        self.0.lock().expect("wal lock").bytes.len() as u64
    }

    /// Syncs performed over the log's lifetime (modeled fsync count).
    pub fn syncs(&self) -> u64 {
        self.0.lock().expect("wal lock").syncs
    }

    /// Raw log bytes (test corruption hooks).
    pub fn bytes(&self) -> Vec<u8> {
        self.0.lock().expect("wal lock").bytes.clone()
    }

    /// Replaces the raw log bytes (test corruption hooks); marks
    /// everything present as synced.
    pub fn set_bytes(&self, bytes: Vec<u8>) {
        let mut inner = self.0.lock().expect("wal lock");
        inner.synced = bytes.len();
        inner.bytes = bytes;
    }
}

/// In-memory [`Storage`] backend over a shared [`MemWalHandle`].
#[derive(Debug)]
pub struct MemWal {
    handle: MemWalHandle,
}

impl MemWal {
    /// Opens the log in `handle`: validates the existing bytes,
    /// truncates any torn tail, and returns the backend plus the valid
    /// records for replay.
    pub fn open(handle: MemWalHandle) -> (MemWal, Vec<WalRecord>) {
        let records = {
            let mut inner = handle.0.lock().expect("wal lock");
            let (records, valid) = scan(&inner.bytes);
            inner.bytes.truncate(valid);
            inner.synced = inner.synced.min(valid);
            records
        };
        (MemWal { handle }, records)
    }
}

impl Storage for MemWal {
    fn append(&mut self, kind: u8, payload: &[u8]) -> std::io::Result<()> {
        let frame = encode(kind, payload);
        self.handle
            .0
            .lock()
            .expect("wal lock")
            .bytes
            .extend_from_slice(&frame);
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        let mut inner = self.handle.0.lock().expect("wal lock");
        inner.synced = inner.bytes.len();
        inner.syncs += 1;
        Ok(())
    }

    fn syncs(&self) -> u64 {
        self.handle.syncs()
    }

    fn len_bytes(&self) -> u64 {
        self.handle.len_bytes()
    }

    fn dirty(&self) -> bool {
        let inner = self.handle.0.lock().expect("wal lock");
        inner.bytes.len() > inner.synced
    }

    fn compact(&mut self, records: &[(u8, Vec<u8>)]) -> std::io::Result<()> {
        let mut bytes = Vec::new();
        for (kind, payload) in records {
            bytes.extend_from_slice(&encode(*kind, payload));
        }
        let mut inner = self.handle.0.lock().expect("wal lock");
        inner.synced = bytes.len();
        inner.bytes = bytes;
        inner.syncs += 1;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// File backend
// ---------------------------------------------------------------------

/// File-backed [`Storage`] backend.
#[derive(Debug)]
pub struct FileWal {
    path: PathBuf,
    file: fs::File,
    len: u64,
    dirty: bool,
    syncs: u64,
}

impl FileWal {
    /// Opens (or creates) the log at `path`: replays the existing
    /// bytes, truncates any torn tail off the file, and returns the
    /// backend positioned for append plus the valid records.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<(FileWal, Vec<WalRecord>)> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid) = scan(&bytes);
        if valid < bytes.len() {
            // Torn tail: cut it off so the next append extends a clean
            // record boundary.
            file.set_len(valid as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid as u64))?;
        Ok((
            FileWal {
                path,
                file,
                len: valid as u64,
                dirty: false,
                syncs: 0,
            },
            records,
        ))
    }

    /// The path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Storage for FileWal {
    fn append(&mut self, kind: u8, payload: &[u8]) -> std::io::Result<()> {
        let frame = encode(kind, payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.dirty = true;
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()?;
        self.dirty = false;
        self.syncs += 1;
        Ok(())
    }

    fn syncs(&self) -> u64 {
        self.syncs
    }

    fn len_bytes(&self) -> u64 {
        self.len
    }

    fn dirty(&self) -> bool {
        self.dirty
    }

    fn compact(&mut self, records: &[(u8, Vec<u8>)]) -> std::io::Result<()> {
        // Write-new / fsync / rename-over: the log is never in a state
        // where a crash leaves neither the old nor the new contents.
        let tmp = self.path.with_extension("wal.tmp");
        let mut out = fs::File::create(&tmp)?;
        let mut len = 0u64;
        for (kind, payload) in records {
            let frame = encode(*kind, payload);
            out.write_all(&frame)?;
            len += frame.len() as u64;
        }
        out.sync_data()?;
        fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Ok(d) = fs::File::open(dir) {
                    let _ = d.sync_all(); // durability of the rename itself
                }
            }
        }
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.len = len;
        self.dirty = false;
        self.syncs += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records_of(bytes: &[(u8, Vec<u8>)]) -> Vec<WalRecord> {
        bytes
            .iter()
            .map(|(kind, payload)| WalRecord {
                kind: *kind,
                payload: payload.clone(),
            })
            .collect()
    }

    #[test]
    fn mem_wal_round_trips_records() {
        let handle = MemWalHandle::new();
        let (mut wal, replayed) = MemWal::open(handle.clone());
        assert!(replayed.is_empty());
        wal.append(1, b"alpha").unwrap();
        wal.append(2, b"").unwrap();
        wal.append(3, &[0xFF; 100]).unwrap();
        wal.sync().unwrap();
        let (_, replayed) = MemWal::open(handle);
        assert_eq!(
            replayed,
            records_of(&[
                (1, b"alpha".to_vec()),
                (2, Vec::new()),
                (3, vec![0xFF; 100])
            ])
        );
    }

    #[test]
    fn mem_wal_crash_discards_unsynced_suffix() {
        let handle = MemWalHandle::new();
        let (mut wal, _) = MemWal::open(handle.clone());
        wal.append(1, b"durable").unwrap();
        wal.sync().unwrap();
        wal.append(2, b"lost").unwrap();
        assert!(wal.dirty());
        handle.crash();
        let (wal, replayed) = MemWal::open(handle);
        assert_eq!(replayed, records_of(&[(1, b"durable".to_vec())]));
        assert!(!wal.dirty());
    }

    #[test]
    fn torn_tail_is_truncated_not_replayed() {
        let handle = MemWalHandle::new();
        let (mut wal, _) = MemWal::open(handle.clone());
        wal.append(1, b"first").unwrap();
        wal.append(2, b"second").unwrap();
        wal.sync().unwrap();
        // Tear the final record: drop its last byte.
        let mut bytes = handle.bytes();
        bytes.pop();
        handle.set_bytes(bytes);
        let (_, replayed) = MemWal::open(handle.clone());
        assert_eq!(replayed, records_of(&[(1, b"first".to_vec())]));
        // The reopen truncated the torn bytes off the log itself.
        let (_, valid) = scan(&handle.bytes());
        assert_eq!(valid as u64, handle.len_bytes());
    }

    #[test]
    fn compact_replaces_contents() {
        let handle = MemWalHandle::new();
        let (mut wal, _) = MemWal::open(handle.clone());
        for i in 0..10u8 {
            wal.append(i, &[i; 16]).unwrap();
        }
        wal.compact(&[(7, b"only".to_vec())]).unwrap();
        assert!(!wal.dirty());
        let (_, replayed) = MemWal::open(handle);
        assert_eq!(replayed, records_of(&[(7, b"only".to_vec())]));
    }

    #[test]
    fn file_wal_survives_reopen_and_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("ringbft-wal-test-{}", std::process::id()));
        let path = dir.join("replica.wal");
        let _ = fs::remove_file(&path);
        {
            let (mut wal, replayed) = FileWal::open(&path).unwrap();
            assert!(replayed.is_empty());
            wal.append(1, b"one").unwrap();
            wal.append(2, b"two").unwrap();
            wal.sync().unwrap();
            assert_eq!(wal.syncs(), 1);
        }
        // Clean reopen: both records replay.
        {
            let (wal, replayed) = FileWal::open(&path).unwrap();
            assert_eq!(
                replayed,
                records_of(&[(1, b"one".to_vec()), (2, b"two".to_vec())])
            );
            assert_eq!(wal.len_bytes(), fs::metadata(&path).unwrap().len());
        }
        // Tear the tail on disk: flip a payload byte of the last record.
        {
            let mut bytes = fs::read(&path).unwrap();
            let n = bytes.len();
            bytes[n - 1] ^= 0x40;
            fs::write(&path, &bytes).unwrap();
        }
        {
            let (mut wal, replayed) = FileWal::open(&path).unwrap();
            assert_eq!(replayed, records_of(&[(1, b"one".to_vec())]));
            // And appending after the truncation produces a clean log.
            wal.append(3, b"three").unwrap();
            wal.sync().unwrap();
        }
        {
            let (_, replayed) = FileWal::open(&path).unwrap();
            assert_eq!(
                replayed,
                records_of(&[(1, b"one".to_vec()), (3, b"three".to_vec())])
            );
        }
        // Compaction rewrites the file atomically.
        {
            let (mut wal, _) = FileWal::open(&path).unwrap();
            wal.compact(&[(9, b"base".to_vec())]).unwrap();
            wal.append(4, b"delta").unwrap();
            wal.sync().unwrap();
        }
        {
            let (_, replayed) = FileWal::open(&path).unwrap();
            assert_eq!(
                replayed,
                records_of(&[(9, b"base".to_vec()), (4, b"delta".to_vec())])
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_garbage_logs_scan_to_nothing() {
        assert_eq!(scan(&[]).1, 0);
        let garbage = vec![0xAB; 7]; // shorter than a header
        assert_eq!(scan(&garbage), (Vec::new(), 0));
        // A header-sized run of random bytes fails its checksum.
        let garbage = vec![0x11; 64];
        assert_eq!(scan(&garbage), (Vec::new(), 0));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Torn-tail contract: flipping any single byte anywhere inside
        /// the *final* record's frame makes replay stop exactly at the
        /// previous record — recovery succeeds from the durable prefix,
        /// and the corrupt tail is never replayed.
        #[test]
        fn corrupt_tail_byte_recovers_previous_records(
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..8),
            flip_at in any::<usize>(),
            flip_bit in 0u8..8,
        ) {
            let handle = MemWalHandle::new();
            let (mut wal, _) = MemWal::open(handle.clone());
            for (i, p) in payloads.iter().enumerate() {
                wal.append(i as u8, p).unwrap();
            }
            wal.sync().unwrap();
            let mut bytes = handle.bytes();
            // Frame boundary of the last record.
            let last_frame = FRAME_HEADER + payloads.last().expect("non-empty").len();
            let tail_start = bytes.len() - last_frame;
            let victim = tail_start + flip_at % last_frame;
            bytes[victim] ^= 1 << flip_bit;
            handle.set_bytes(bytes);
            let (_, replayed) = MemWal::open(handle);
            prop_assert_eq!(replayed.len(), payloads.len() - 1, "tail never replayed");
            for (i, rec) in replayed.iter().enumerate() {
                prop_assert_eq!(rec.kind, i as u8);
                prop_assert_eq!(&rec.payload, &payloads[i]);
            }
        }

        /// Replay is the identity on whatever record sequence was
        /// appended, across sync boundaries.
        #[test]
        fn replay_round_trips(
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 0..16),
        ) {
            let handle = MemWalHandle::new();
            let (mut wal, _) = MemWal::open(handle.clone());
            for (i, p) in payloads.iter().enumerate() {
                wal.append((i % 251) as u8, p).unwrap();
                if i % 3 == 0 {
                    wal.sync().unwrap();
                }
            }
            wal.sync().unwrap();
            let (_, replayed) = MemWal::open(handle);
            prop_assert_eq!(replayed.len(), payloads.len());
            for (i, rec) in replayed.iter().enumerate() {
                prop_assert_eq!(rec.kind, (i % 251) as u8);
                prop_assert_eq!(&rec.payload, &payloads[i]);
            }
        }
    }
}
