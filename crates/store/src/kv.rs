//! The YCSB-style key-value table each shard manages (§8 "Benchmark").
//!
//! "Each client transaction queries a YCSB table with an active set of
//! 600k records ... transactions that read and modify existing records.
//! Prior to each experiment, each replica initializes an identical copy of
//! the YCSB table." A shard holds only its own partition of the key space.

use ringbft_types::txn::{Key, Operation, OperationKind, Transaction, Value};
use ringbft_types::ShardId;
use std::collections::HashMap;
use std::ops::Range;

/// A versioned record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Current value.
    pub value: Value,
    /// Monotonic version, bumped on every write (used to validate
    /// deterministic replay across replicas).
    pub version: u64,
}

/// One shard's partition of the table.
#[derive(Debug, Clone, Default)]
pub struct KvStore {
    records: HashMap<Key, Record>,
}

/// Result of executing a transaction fragment: the updated write set this
/// shard contributes to `Σ` (§4.3.7), plus the values it read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FragmentResult {
    /// Keys written with their new values (the shard's slice of `Σ`).
    pub writes: Vec<(Key, Value)>,
    /// Keys read with the values observed.
    pub reads: Vec<(Key, Value)>,
}

impl KvStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Initializes the shard's partition: every key in `range` gets a
    /// deterministic initial value, identical across replicas.
    pub fn init_partition(range: Range<Key>) -> Self {
        let mut records = HashMap::with_capacity((range.end - range.start) as usize);
        for key in range {
            records.insert(
                key,
                Record {
                    value: initial_value(key),
                    version: 0,
                },
            );
        }
        KvStore { records }
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Reads a record.
    pub fn get(&self, key: Key) -> Option<Record> {
        self.records.get(&key).copied()
    }

    /// Iterates all `(key, record)` pairs in unspecified order (snapshot
    /// capture sorts; see `ringbft-recovery`).
    pub fn iter(&self) -> impl Iterator<Item = (Key, Record)> + '_ {
        self.records.iter().map(|(k, r)| (*k, *r))
    }

    /// Installs a record verbatim, version included — used when
    /// restoring a checkpoint snapshot, where the donor's version
    /// counters must be preserved exactly.
    pub fn insert_record(&mut self, key: Key, record: Record) {
        self.records.insert(key, record);
    }

    /// Writes a record, bumping its version. Inserts if missing.
    pub fn put(&mut self, key: Key, value: Value) {
        let rec = self.records.entry(key).or_insert(Record {
            value: 0,
            version: 0,
        });
        rec.value = value;
        rec.version += 1;
    }

    /// Executes the fragment of `txn` owned by `shard`, deterministically.
    ///
    /// * `Read` observes the current value.
    /// * `Write` stores a value derived from `(txn id, key)`.
    /// * `ReadModifyWrite` stores a value derived from the old value and
    ///   the transaction id — so all replicas that execute the same
    ///   transactions in the same order hold identical state.
    ///
    /// `remote_values` supplies values of remote keys for complex csts
    /// (resolved from `Σ`); fragment execution folds them into the written
    /// values so a dependency change propagates into state.
    pub fn execute_fragment(
        &mut self,
        txn: &Transaction,
        shard: ShardId,
        remote_values: &[(Key, Value)],
    ) -> FragmentResult {
        let remote_sum: Value = remote_values
            .iter()
            .map(|(k, v)| v.wrapping_add(*k))
            .fold(0, Value::wrapping_add);
        let mut result = FragmentResult::default();
        for op in txn.ops.iter().filter(|o| o.shard == shard) {
            match op.kind {
                OperationKind::Read => {
                    let v = self.get(op.key).map(|r| r.value).unwrap_or_default();
                    result.reads.push((op.key, v));
                }
                OperationKind::Write => {
                    let v = mix(txn.id.0, op.key).wrapping_add(remote_sum);
                    self.put(op.key, v);
                    result.writes.push((op.key, v));
                }
                OperationKind::ReadModifyWrite => {
                    let old = self.get(op.key).map(|r| r.value).unwrap_or_default();
                    result.reads.push((op.key, old));
                    let v = mix(txn.id.0, old).wrapping_add(remote_sum);
                    self.put(op.key, v);
                    result.writes.push((op.key, v));
                }
            }
        }
        result
    }

    /// A content digest input: deterministic fold over `(key, value,
    /// version)` for state-equality checks in tests. (Order-independent.)
    pub fn state_fingerprint(&self) -> u64 {
        self.records
            .iter()
            .map(|(k, r)| mix(mix(*k, r.value), r.version))
            .fold(0u64, u64::wrapping_add)
    }
}

/// Deterministic initial value of a key (same on every replica).
fn initial_value(key: Key) -> Value {
    mix(key, 0x9e3779b97f4a7c15)
}

/// A cheap deterministic 64-bit mixer (splitmix64 finalizer).
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Convenience: build the operations of a read-modify-write transaction
/// over the given keys (the paper's standard workload).
pub fn rmw_ops(keys_by_shard: &[(ShardId, Key)]) -> Vec<Operation> {
    keys_by_shard
        .iter()
        .map(|&(shard, key)| Operation {
            shard,
            key,
            kind: OperationKind::ReadModifyWrite,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringbft_types::{ClientId, TxnId};

    #[test]
    fn init_partition_is_deterministic() {
        let a = KvStore::init_partition(0..100);
        let b = KvStore::init_partition(0..100);
        assert_eq!(a.len(), 100);
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        assert_eq!(a.get(7), b.get(7));
        assert!(a.get(100).is_none());
    }

    #[test]
    fn put_bumps_version() {
        let mut kv = KvStore::init_partition(0..10);
        let before = kv.get(3).unwrap();
        kv.put(3, 42);
        let after = kv.get(3).unwrap();
        assert_eq!(after.value, 42);
        assert_eq!(after.version, before.version + 1);
    }

    #[test]
    fn rmw_execution_is_replica_deterministic() {
        let shard = ShardId(0);
        let txn = Transaction::new(TxnId(9), ClientId(1), rmw_ops(&[(shard, 1), (shard, 2)]));
        let mut kv1 = KvStore::init_partition(0..10);
        let mut kv2 = KvStore::init_partition(0..10);
        let r1 = kv1.execute_fragment(&txn, shard, &[]);
        let r2 = kv2.execute_fragment(&txn, shard, &[]);
        assert_eq!(r1, r2);
        assert_eq!(kv1.state_fingerprint(), kv2.state_fingerprint());
        assert_eq!(r1.writes.len(), 2);
        assert_eq!(r1.reads.len(), 2);
    }

    #[test]
    fn fragment_only_touches_own_shard() {
        let txn = Transaction::new(
            TxnId(1),
            ClientId(1),
            rmw_ops(&[(ShardId(0), 1), (ShardId(1), 5)]),
        );
        let mut kv = KvStore::init_partition(0..4); // shard 0's keys only
        let before = kv.get(1).unwrap();
        let r = kv.execute_fragment(&txn, ShardId(0), &[]);
        assert_eq!(r.writes.len(), 1);
        assert_eq!(r.writes[0].0, 1);
        assert_ne!(kv.get(1).unwrap().value, before.value);
    }

    #[test]
    fn remote_values_change_written_state() {
        let shard = ShardId(0);
        let txn = Transaction::new(TxnId(5), ClientId(2), rmw_ops(&[(shard, 1)]));
        let mut kv_a = KvStore::init_partition(0..4);
        let mut kv_b = KvStore::init_partition(0..4);
        let ra = kv_a.execute_fragment(&txn, shard, &[(99, 1000)]);
        let rb = kv_b.execute_fragment(&txn, shard, &[(99, 2000)]);
        assert_ne!(ra.writes, rb.writes, "dependency values must matter");
    }

    #[test]
    fn order_matters_for_state() {
        // Two conflicting RMW transactions applied in different orders
        // leave different state — exactly why consistence (§ Def 4.1)
        // requires identical ordering on all replicas.
        let shard = ShardId(0);
        let t1 = Transaction::new(TxnId(1), ClientId(1), rmw_ops(&[(shard, 1)]));
        let t2 = Transaction::new(TxnId(2), ClientId(2), rmw_ops(&[(shard, 1)]));
        let mut kv12 = KvStore::init_partition(0..4);
        kv12.execute_fragment(&t1, shard, &[]);
        kv12.execute_fragment(&t2, shard, &[]);
        let mut kv21 = KvStore::init_partition(0..4);
        kv21.execute_fragment(&t2, shard, &[]);
        kv21.execute_fragment(&t1, shard, &[]);
        assert_ne!(kv12.state_fingerprint(), kv21.state_fingerprint());
    }
}
