//! Per-shard storage substrate: the YCSB-style key-value partition and the
//! sequence-ordered lock manager with the paper's pending list `π`.
//!
//! * [`kv`] — deterministic, versioned key-value records; fragment
//!   execution with `Σ`-supplied remote values for complex csts.
//! * [`locks`] — `k_max`-ordered lock admission (§4.3.5, Example 4.4),
//!   the shard-local half of RingBFT's deadlock-freedom argument.
//! * [`wal`] — the append-only write-ahead log substrate behind the
//!   [`Storage`](wal::Storage) trait: checksummed record framing with
//!   torn-tail truncation, an in-memory backend for the deterministic
//!   simulator and a file backend for real deployments.

pub mod kv;
pub mod locks;
pub mod wal;

pub use kv::{rmw_ops, FragmentResult, KvStore, Record};
pub use locks::{Admission, LockManager};
pub use wal::{FileWal, MemWal, MemWalHandle, Storage, WalRecord};
