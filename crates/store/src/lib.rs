//! Per-shard storage substrate: the YCSB-style key-value partition and the
//! sequence-ordered lock manager with the paper's pending list `π`.
//!
//! * [`kv`] — deterministic, versioned key-value records; fragment
//!   execution with `Σ`-supplied remote values for complex csts.
//! * [`locks`] — `k_max`-ordered lock admission (§4.3.5, Example 4.4),
//!   the shard-local half of RingBFT's deadlock-freedom argument.

pub mod kv;
pub mod locks;

pub use kv::{rmw_ops, FragmentResult, KvStore, Record};
pub use locks::{Admission, LockManager};
