//! Fixed-capacity event-trace ring.
//!
//! Every node keeps a small ring of recent structured events (view changes,
//! checkpoint votes, hole fetches, state-transfer installs, reconnects...).
//! Pushes are O(1) and never allocate beyond the event's own small field
//! vector; when the ring is full the oldest event is dropped and counted.
//! The ring dumps as JSON-lines — one object per event, in order — which is
//! what fault-scenario failures attach as a CI artifact.

use crate::json::ObjectWriter;
use std::collections::VecDeque;

/// One compact structured event: a kind tag plus numeric fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event time, nanoseconds since the driver's epoch.
    pub t_ns: u64,
    /// Static event kind, e.g. `"view_entered"`.
    pub kind: &'static str,
    /// Named numeric payload fields, in emission order.
    pub fields: Vec<(&'static str, u64)>,
}

/// Bounded ring of [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct TraceRing {
    cap: usize,
    buf: VecDeque<(u64, TraceEvent)>,
    next_seq: u64,
    dropped: u64,
}

impl TraceRing {
    /// A ring holding at most `cap` events (`cap ≥ 1`).
    pub fn new(cap: usize) -> TraceRing {
        TraceRing {
            cap: cap.max(1),
            buf: VecDeque::with_capacity(cap.clamp(1, 1024)),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full. O(1).
    pub fn push(&mut self, t_ns: u64, kind: &'static str, fields: &[(&'static str, u64)]) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buf.push_back((
            seq,
            TraceEvent {
                t_ns,
                kind,
                fields: fields.to_vec(),
            },
        ));
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained events oldest-first as `(sequence, event)`.
    /// Sequence numbers are global (they keep counting across evictions),
    /// so gaps at the front reveal how much history was lost.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &TraceEvent)> {
        self.buf.iter().map(|(s, e)| (*s, e))
    }

    /// Dumps the ring as JSON-lines, oldest event first:
    /// `{"i":<seq>,"t_ns":<ns>,"ev":"<kind>",<fields...>}` per line.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, ev) in self.iter() {
            let mut w = ObjectWriter::new();
            w.field_u64("i", seq)
                .field_u64("t_ns", ev.t_ns)
                .field_str("ev", ev.kind);
            for (k, v) in &ev.fields {
                w.field_u64(k, *v);
            }
            out.push_str(&w.finish());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        let mut r = TraceRing::new(4);
        for i in 0..6u64 {
            r.push(i * 10, "tick", &[("n", i)]);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        let seqs: Vec<u64> = r.iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
        let dump = r.dump_jsonl();
        assert_eq!(dump.lines().count(), 4);
        assert!(dump.starts_with(r#"{"i":2,"t_ns":20,"ev":"tick","n":2}"#));
        assert!(!dump.contains(r#""i":1,"#));
    }

    #[test]
    fn empty_ring_dumps_nothing() {
        let r = TraceRing::new(8);
        assert!(r.is_empty());
        assert_eq!(r.dump_jsonl(), "");
        assert_eq!(r.dropped(), 0);
    }
}
