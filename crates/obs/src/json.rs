//! Minimal JSON emission helpers.
//!
//! The obs crate is dependency-free by design (it sits below the vendored
//! serde shims in the crate graph), so snapshots are built with a tiny
//! hand-rolled writer. Output is deterministic: object keys are emitted in
//! the order callers provide them, and floats use shortest-roundtrip `{}`
//! formatting.

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental writer for one JSON object: `{"k": v, ...}`.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> ObjectWriter {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (finite values only; NaN/inf become 0).
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        let v = if v.is_finite() { v } else { 0.0 };
        self.buf.push_str(&format!("{v}"));
        self
    }

    /// Adds a string field (escaped).
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn field_raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(&mut self) -> String {
        let mut out = std::mem::take(&mut self.buf);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_mixed_fields() {
        let mut w = ObjectWriter::new();
        w.field_u64("a", 1)
            .field_str("b", "x\"y")
            .field_f64("c", 0.5)
            .field_raw("d", "[1,2]");
        assert_eq!(w.finish(), r#"{"a":1,"b":"x\"y","c":0.5,"d":[1,2]}"#);
    }

    #[test]
    fn escapes_control_chars() {
        assert_eq!(escape("a\nb\u{1}"), "a\\nb\\u0001");
    }
}
