//! HDR-style log-linear histogram over `u64` values.
//!
//! Layout for `sub_bits = B`:
//!
//! * values `v < 2^B` land in exact unit buckets `[0, 2^B)`;
//! * for `k ≥ 0`, the range `[2^(B+k), 2^(B+k+1))` is split into
//!   `2^(B-1)` sub-buckets of width `2^(k+1)`.
//!
//! Every bucket's width is at most `2^(1-B)` of its lower bound, so a
//! quantile query — which returns the containing bucket's inclusive upper
//! bound — never under-reports and over-reports by at most that relative
//! error (plus nothing at all in the exact region). Two histograms with the
//! same `sub_bits` merge by adding slot counts, which preserves quantile
//! error bounds exactly; this is what lets per-replica phase timers be
//! combined into one cluster-wide distribution.

/// Default sub-bucket resolution: 1/64 (≈1.6%) relative quantile error.
pub const DEFAULT_SUB_BITS: u32 = 7;

/// A mergeable log-linear histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    sub_bits: u32,
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

// A summary, not the raw slot array — the latter is thousands of mostly
// zero counts and drowns any assertion message embedding a histogram.
impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("mean", &self.mean())
            .field("p50", &self.value_at_quantile(0.50))
            .field("p99", &self.value_at_quantile(0.99))
            .finish()
    }
}

impl Histogram {
    /// A histogram at the default resolution ([`DEFAULT_SUB_BITS`]).
    pub fn new() -> Histogram {
        Histogram::with_sub_bits(DEFAULT_SUB_BITS)
    }

    /// A histogram with `2^(sub_bits-1)` sub-buckets per power of two.
    /// `sub_bits` must be in `2..=16` (memory is `O(2^sub_bits)` slots).
    pub fn with_sub_bits(sub_bits: u32) -> Histogram {
        assert!((2..=16).contains(&sub_bits), "sub_bits out of range");
        let sub = 1usize << sub_bits;
        let slots = sub + (64 - sub_bits as usize) * (sub / 2);
        Histogram {
            sub_bits,
            counts: vec![0; slots],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// The resolution this histogram was built with.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// Worst-case relative over-estimate of a quantile query: `2^(1-sub_bits)`.
    pub fn relative_error_bound(&self) -> f64 {
        1.0 / (1u64 << (self.sub_bits - 1)) as f64
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact; the sum is kept at full width).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Records one sample. O(1).
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v`. O(1).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let i = self.index_of(v);
        self.counts[i] += n;
        self.total += n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128 * n as u128;
    }

    /// Adds every sample of `other` into `self`. Both histograms must share
    /// the same `sub_bits`.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "cannot merge histograms of different resolution"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// The value at quantile `q ∈ [0, 1]`: the inclusive upper bound of the
    /// bucket containing the sample of rank `ceil(q · count)` (rank 1 for
    /// `q = 0`). Returns 0 when empty. The result is ≥ the true order
    /// statistic and ≤ `true · (1 + relative_error_bound())`; for values in
    /// the top power-of-two range the bound saturates at `u64::MAX`.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // Never report a bound outside the observed range.
                return self.slot_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Iterates non-empty buckets as `(inclusive upper bound, count)`.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.slot_upper(i), c))
    }

    fn index_of(&self, v: u64) -> usize {
        let b = self.sub_bits;
        let sub = 1u64 << b;
        if v < sub {
            return v as usize;
        }
        let e = 63 - v.leading_zeros() as u64; // e >= b
        let k = e - b as u64;
        let half = sub / 2;
        let offset = (v - (1u64 << e)) >> (k + 1);
        (sub + k * half + offset) as usize
    }

    fn slot_upper(&self, i: usize) -> u64 {
        let b = self.sub_bits;
        let sub = 1usize << b;
        if i < sub {
            return i as u64; // exact region: bucket == value
        }
        let half = (sub / 2) as u64;
        let k = (i - sub) as u64 / half;
        let off = (i - sub) as u64 % half;
        let base = 1u128 << (b as u64 + k);
        let upper = base + ((off as u128 + 1) << (k + 1)) - 1;
        upper.min(u64::MAX as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.value_at_quantile(1.0), 0);
    }

    #[test]
    fn single_value_every_quantile_is_that_value() {
        let mut h = Histogram::new();
        h.record(42);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.value_at_quantile(q), 42);
        }
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        assert_eq!(h.mean(), 42.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn exact_region_is_exact() {
        let mut h = Histogram::new();
        for v in 0..128 {
            h.record(v);
        }
        // Unit buckets below 2^7: quantiles are exact order statistics.
        assert_eq!(h.value_at_quantile(0.5), 63);
        assert_eq!(h.value_at_quantile(1.0), 127);
        assert_eq!(h.value_at_quantile(0.0), 0);
    }

    #[test]
    fn saturating_record_near_u64_max() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1u64 << 63);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        // The top bucket's upper bound saturates instead of wrapping, and the
        // query clamps to the observed max.
        assert_eq!(h.value_at_quantile(1.0), u64::MAX);
        assert!(h.value_at_quantile(0.01) >= 1u64 << 63);
    }

    #[test]
    fn quantile_bound_holds_for_log_region() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (0..1000).map(|i| 1_000 + i * 977).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let eps = h.relative_error_bound();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let got = h.value_at_quantile(q);
            assert!(got >= exact, "q={q}: {got} < exact {exact}");
            assert!(
                got as f64 <= exact as f64 * (1.0 + eps) + 1.0,
                "q={q}: {got} exceeds error bound over {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut all = Histogram::new();
        let mut parts: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        for i in 0..10_000u64 {
            let v = i.wrapping_mul(2_654_435_761) % 5_000_000;
            all.record(v);
            parts[(i % 4) as usize].record(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, all);
    }

    #[test]
    #[should_panic(expected = "different resolution")]
    fn merge_rejects_mismatched_resolution() {
        let mut a = Histogram::with_sub_bits(7);
        let b = Histogram::with_sub_bits(8);
        a.merge(&b);
    }
}
