//! Observability primitives for the RingBFT reproduction.
//!
//! Three layers, all allocation-light and dependency-free so every crate in
//! the workspace (including the sans-io protocol cores) can use them:
//!
//! * [`Registry`] — named monotonic counters, gauges, and histograms with a
//!   stable JSON snapshot. Replicas and runtimes register instruments once
//!   at construction and update them through copyable handles.
//! * [`Histogram`] — an HDR-style log-linear histogram: exact buckets below
//!   `2^sub_bits`, then power-of-two ranges each split into `2^(sub_bits-1)`
//!   equal sub-buckets. Records are O(1), merges are slot-wise adds, and
//!   quantile queries return a bucket upper bound that over-estimates the
//!   true order statistic by at most a factor of `1 + 2^(1-sub_bits)`
//!   (1/64 ≈ 1.6% at the default `sub_bits = 7`).
//! * [`TraceRing`] — a fixed-capacity ring of compact structured events
//!   ([`TraceEvent`]), O(1) per push, dumped as JSON-lines on demand (e.g.
//!   when a fault scenario fails).
//!
//! Values are plain `u64`s; latency instruments store nanoseconds, matching
//! the workspace's simulated-time convention.

mod hist;
mod registry;
mod span;
mod trace;

pub mod json;

pub use hist::Histogram;
pub use registry::{histogram_json, CounterId, GaugeId, HistId, Registry};
pub use span::{SpanCollector, SpanRecord, SpanTimeline};
pub use trace::{TraceEvent, TraceRing};
