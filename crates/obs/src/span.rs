//! Cross-shard span assembly: per-transaction causal timelines.
//!
//! Replicas stamp `"span"` events into their [`crate::TraceRing`]s — one
//! per timed pipeline phase of a *sampled* transaction, carrying the
//! 64-bit trace id, the replica's ring-hop position, a phase index, and
//! node-local start/duration nanoseconds. The [`SpanCollector`] ingests
//! those events from any number of rings (live [`crate::TraceEvent`]s or
//! parsed JSON-line dumps, in any order) and assembles one
//! [`SpanTimeline`] per trace id.
//!
//! Ordering is **hop-relative**: spans sort by `(hop, phase, shard,
//! replica)`, never by comparing the node-local clocks of different
//! nodes. Replicas have no synchronized time base (the TCP driver's
//! reactors each count from their own epoch), so cross-node `t_ns`
//! comparisons are meaningless; the hop counter carried by the Forward
//! chain is the causal order the ring topology guarantees. Within one
//! node the start/duration pair is still meaningful and is what the
//! per-phase breakdown reports.

use std::collections::BTreeMap;

/// One timed pipeline phase of a sampled transaction at one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The transaction's 64-bit trace id (never 0).
    pub trace_id: u64,
    /// Ring-hop position of the stamping shard (0 = initiator).
    pub hop: u32,
    /// Phase index (the stamping crate's pipeline order; RingBFT uses
    /// `ringbft_core::Phase::ALL` positions).
    pub phase: u64,
    /// Stamping replica's shard.
    pub shard: u64,
    /// Stamping replica's index within the shard.
    pub replica: u64,
    /// Node-local monotonic start, nanoseconds. Only comparable to
    /// other spans from the *same* replica.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
}

/// The assembled causal timeline of one traced transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTimeline {
    /// The transaction's trace id.
    pub trace_id: u64,
    /// Spans in hop-relative order: `(hop, phase, shard, replica)`.
    pub spans: Vec<SpanRecord>,
}

impl SpanTimeline {
    /// Highest ring-hop position observed.
    pub fn max_hop(&self) -> u32 {
        self.spans.iter().map(|s| s.hop).max().unwrap_or(0)
    }

    /// Distinct shards that stamped at least one span.
    pub fn shards(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.spans.iter().map(|s| s.shard).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct phase indices stamped by `shard`.
    pub fn phases_of(&self, shard: u64) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .spans
            .iter()
            .filter(|s| s.shard == shard)
            .map(|s| s.phase)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Critical-path estimate: within each `(hop, phase)` step the
    /// *maximum* duration any replica reported (consensus steps complete
    /// when their slowest contributor does), summed across steps. Hops
    /// pipeline in causal order, so the sum bounds end-to-end ring time
    /// without ever comparing clocks across nodes.
    pub fn critical_path_ns(&self) -> u64 {
        let mut worst: BTreeMap<(u32, u64), u64> = BTreeMap::new();
        for s in &self.spans {
            let w = worst.entry((s.hop, s.phase)).or_insert(0);
            *w = (*w).max(s.dur_ns);
        }
        worst.values().sum()
    }
}

/// Span dedup key within one trace: `(hop, phase, shard, replica)`.
type SpanKey = (u32, u64, u64, u64);

/// Assembles [`SpanTimeline`]s from span events arriving in any order,
/// possibly duplicated (a ring dumped twice, a replica's dump re-read).
#[derive(Debug, Default)]
pub struct SpanCollector {
    /// trace id → dedup key → record.
    by_trace: BTreeMap<u64, BTreeMap<SpanKey, SpanRecord>>,
    duplicates: u64,
    ignored: u64,
}

impl SpanCollector {
    /// An empty collector.
    pub fn new() -> SpanCollector {
        SpanCollector::default()
    }

    /// Adds one span record. Duplicates — same `(trace, hop, phase,
    /// shard, replica)` — are dropped and counted; the first arrival
    /// wins (replicas never re-stamp a span with different timings, so
    /// arrival order does not matter).
    pub fn add(&mut self, rec: SpanRecord) {
        if rec.trace_id == 0 {
            self.ignored += 1;
            return;
        }
        let key = (rec.hop, rec.phase, rec.shard, rec.replica);
        let slot = self.by_trace.entry(rec.trace_id).or_default();
        match slot.entry(key) {
            std::collections::btree_map::Entry::Occupied(_) => self.duplicates += 1,
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(rec);
            }
        }
    }

    /// Ingests one live trace event; non-`"span"` kinds are counted as
    /// ignored. Returns whether the event was a span.
    pub fn ingest_event(&mut self, ev: &crate::TraceEvent) -> bool {
        if ev.kind != "span" {
            self.ignored += 1;
            return false;
        }
        let get = |name: &str| {
            ev.fields
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        self.add(SpanRecord {
            trace_id: get("trace"),
            hop: get("hop") as u32,
            phase: get("phase"),
            shard: get("shard"),
            replica: get("replica"),
            start_ns: get("start_ns"),
            dur_ns: get("dur_ns"),
        });
        true
    }

    /// Ingests a [`crate::TraceRing::dump_jsonl`] dump: one event per
    /// line, `{"i":..,"t_ns":..,"ev":"kind",fields...}`. Lines that are
    /// not span events (or not parseable as our dump format) are counted
    /// as ignored, so a mixed ring dumps straight into the collector.
    pub fn ingest_dump(&mut self, dump: &str) {
        for line in dump.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match parse_dump_line(line) {
                Some(rec) => self.add(rec),
                None => self.ignored += 1,
            }
        }
    }

    /// Span events dropped because an identical one was already held.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Events skipped (non-span kinds, unparseable lines, zero ids).
    pub fn ignored(&self) -> u64 {
        self.ignored
    }

    /// Distinct trace ids with at least one span.
    pub fn len(&self) -> usize {
        self.by_trace.len()
    }

    /// True when no spans were collected.
    pub fn is_empty(&self) -> bool {
        self.by_trace.is_empty()
    }

    /// The assembled timeline for one trace id.
    pub fn timeline(&self, trace_id: u64) -> Option<SpanTimeline> {
        self.by_trace.get(&trace_id).map(|m| SpanTimeline {
            trace_id,
            spans: m.values().copied().collect(),
        })
    }

    /// All timelines, ordered by trace id; spans within each ordered
    /// hop-relatively (the dedup key *is* the sort key).
    pub fn timelines(&self) -> Vec<SpanTimeline> {
        self.by_trace
            .keys()
            .map(|&t| self.timeline(t).expect("key present"))
            .collect()
    }
}

/// Parses one dump line of our own JSONL format into a span record.
/// Returns `None` for anything that is not a span event. This is not a
/// general JSON parser: it relies on `ObjectWriter`'s output shape
/// (flat object, `"key":value` pairs, no nesting, no whitespace).
fn parse_dump_line(line: &str) -> Option<SpanRecord> {
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    if !body.contains("\"ev\":\"span\"") {
        return None;
    }
    let field = |name: &str| -> Option<u64> {
        let pat = format!("\"{name}\":");
        let at = body.find(&pat)? + pat.len();
        let rest = &body[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].parse::<u64>().ok()
    };
    Some(SpanRecord {
        trace_id: field("trace")?,
        hop: field("hop")? as u32,
        phase: field("phase")?,
        shard: field("shard")?,
        replica: field("replica")?,
        start_ns: field("start_ns")?,
        dur_ns: field("dur_ns")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRing;

    fn rec(trace: u64, hop: u32, phase: u64, shard: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            hop,
            phase,
            shard,
            replica: 0,
            start_ns: 1_000,
            dur_ns: dur,
        }
    }

    #[test]
    fn out_of_order_arrival_assembles_hop_ordered_timeline() {
        let mut c = SpanCollector::new();
        // Arrive scrambled: hop 1 before hop 0, late phase before early.
        c.add(rec(7, 1, 5, 1, 30));
        c.add(rec(7, 0, 1, 0, 10));
        c.add(rec(7, 1, 1, 1, 20));
        c.add(rec(7, 0, 0, 0, 5));
        let t = c.timeline(7).expect("assembled");
        let order: Vec<(u32, u64)> = t.spans.iter().map(|s| (s.hop, s.phase)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 1), (1, 5)]);
        assert_eq!(t.max_hop(), 1);
        assert_eq!(t.shards(), vec![0, 1]);
    }

    #[test]
    fn clock_skew_across_shards_does_not_affect_order() {
        let mut c = SpanCollector::new();
        // Shard 1's clock is wildly ahead of shard 0's: hop order must
        // still win over any start_ns comparison.
        let mut early_hop_late_clock = rec(9, 0, 1, 0, 10);
        early_hop_late_clock.start_ns = 0;
        let mut late_hop_early_clock = rec(9, 1, 1, 1, 10);
        late_hop_early_clock.start_ns = u64::MAX / 2;
        c.add(late_hop_early_clock);
        c.add(early_hop_late_clock);
        let t = c.timeline(9).expect("assembled");
        assert_eq!(t.spans[0].hop, 0);
        assert_eq!(t.spans[1].hop, 1);
    }

    #[test]
    fn duplicates_are_dropped_and_counted() {
        let mut c = SpanCollector::new();
        c.add(rec(3, 0, 1, 0, 10));
        c.add(rec(3, 0, 1, 0, 10)); // same ring dumped twice
        c.add(rec(3, 0, 1, 1, 10)); // different shard: kept
        assert_eq!(c.duplicates(), 1);
        assert_eq!(c.timeline(3).expect("assembled").spans.len(), 2);
    }

    #[test]
    fn distinct_replicas_of_one_shard_are_kept_for_critical_path() {
        let mut c = SpanCollector::new();
        for (replica, dur) in [(0u64, 10u64), (1, 40), (2, 20)] {
            c.add(SpanRecord {
                replica,
                ..rec(4, 0, 1, 0, dur)
            });
        }
        let t = c.timeline(4).expect("assembled");
        assert_eq!(t.spans.len(), 3);
        // One (hop, phase) step: critical path is its slowest replica.
        assert_eq!(t.critical_path_ns(), 40);
    }

    #[test]
    fn critical_path_sums_worst_replica_per_step() {
        let mut c = SpanCollector::new();
        c.add(rec(5, 0, 1, 0, 100));
        c.add(SpanRecord {
            replica: 1,
            ..rec(5, 0, 1, 0, 300)
        });
        c.add(rec(5, 1, 1, 1, 50));
        assert_eq!(
            c.timeline(5).expect("assembled").critical_path_ns(),
            300 + 50
        );
    }

    #[test]
    fn zero_trace_ids_are_ignored() {
        let mut c = SpanCollector::new();
        c.add(rec(0, 0, 1, 0, 10));
        assert!(c.is_empty());
        assert_eq!(c.ignored(), 1);
    }

    #[test]
    fn ring_dump_round_trips_through_the_parser() {
        let mut ring = TraceRing::new(16);
        ring.push(500, "view_entered", &[("view", 3)]); // ignored
        ring.push(
            1_000,
            "span",
            &[
                ("trace", 77),
                ("hop", 1),
                ("phase", 4),
                ("shard", 2),
                ("replica", 3),
                ("start_ns", 900),
                ("dur_ns", 100),
            ],
        );
        let mut c = SpanCollector::new();
        c.ingest_dump(&ring.dump_jsonl());
        assert_eq!(c.ignored(), 1);
        let t = c.timeline(77).expect("assembled");
        assert_eq!(
            t.spans[0],
            SpanRecord {
                trace_id: 77,
                hop: 1,
                phase: 4,
                shard: 2,
                replica: 3,
                start_ns: 900,
                dur_ns: 100,
            }
        );
        // Live ingestion of the same ring is idempotent with the dump.
        for (_, ev) in ring.iter() {
            c.ingest_event(ev);
        }
        assert_eq!(c.duplicates(), 1);
        assert_eq!(c.timeline(77).expect("assembled").spans.len(), 1);
    }
}
