//! Named-instrument registry.
//!
//! An owner (a replica, a network runtime) registers counters, gauges, and
//! histograms once at construction, keeps the returned copyable handles, and
//! updates through them on the hot path — an update is one `Vec` index plus
//! an add. `snapshot_json` renders all instruments in a stable form:
//! instruments are sorted by name, histogram sections report count / min /
//! max / mean / p50 / p95 / p99 / p99.9 (values in the unit recorded,
//! nanoseconds by convention).

use crate::hist::Histogram;
use crate::json::ObjectWriter;

/// Handle to a registered monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge (set-to-value semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// A set of named instruments owned by one component.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, u64)>,
    hists: Vec<(&'static str, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or looks up) the counter `name`.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or looks up) the gauge `name`.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| *n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name, 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or looks up) the histogram `name` at default resolution.
    pub fn histogram(&mut self, name: &'static str) -> HistId {
        if let Some(i) = self.hists.iter().position(|(n, _)| *n == name) {
            return HistId(i);
        }
        self.hists.push((name, Histogram::new()));
        HistId(self.hists.len() - 1)
    }

    /// Increments a counter by 1.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Increments a counter by `n`.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Sets a gauge to `v`.
    pub fn set_gauge(&mut self, id: GaugeId, v: u64) {
        self.gauges[id.0].1 = v;
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.0].1
    }

    /// Read-only counter lookup by name (harness-side aggregation over
    /// registries it did not build).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Read-only gauge lookup by name.
    pub fn gauge_by_name(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Records a sample into a histogram.
    pub fn record(&mut self, id: HistId, v: u64) {
        self.hists[id.0].1.record(v);
    }

    /// Read access to a histogram.
    pub fn hist(&self, id: HistId) -> &Histogram {
        &self.hists[id.0].1
    }

    /// Iterates all histograms as `(name, histogram)`.
    pub fn iter_hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.hists.iter().map(|(n, h)| (*n, h))
    }

    /// Renders every instrument as one stable JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` with
    /// names sorted within each section.
    pub fn snapshot_json(&self) -> String {
        let mut counters: Vec<_> = self.counters.clone();
        counters.sort_by_key(|(n, _)| *n);
        let mut cw = ObjectWriter::new();
        for (n, v) in &counters {
            cw.field_u64(n, *v);
        }

        let mut gauges: Vec<_> = self.gauges.clone();
        gauges.sort_by_key(|(n, _)| *n);
        let mut gw = ObjectWriter::new();
        for (n, v) in &gauges {
            gw.field_u64(n, *v);
        }

        let mut hists: Vec<_> = self.hists.iter().map(|(n, h)| (*n, h)).collect();
        hists.sort_by_key(|(n, _)| *n);
        let mut hw = ObjectWriter::new();
        for (n, h) in &hists {
            hw.field_raw(n, &histogram_json(h));
        }

        let mut w = ObjectWriter::new();
        w.field_raw("counters", &cw.finish())
            .field_raw("gauges", &gw.finish())
            .field_raw("histograms", &hw.finish());
        w.finish()
    }
}

/// Standard JSON summary of one histogram (count / min / max / mean /
/// p50 / p95 / p99 / p99.9).
pub fn histogram_json(h: &Histogram) -> String {
    let mut w = ObjectWriter::new();
    w.field_u64("count", h.count())
        .field_u64("min", h.min())
        .field_u64("max", h.max())
        .field_f64("mean", h.mean())
        .field_u64("p50", h.value_at_quantile(0.50))
        .field_u64("p95", h.value_at_quantile(0.95))
        .field_u64("p99", h.value_at_quantile(0.99))
        .field_u64("p999", h.value_at_quantile(0.999));
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_update_and_snapshot_is_sorted() {
        let mut r = Registry::new();
        let b = r.counter("b.count");
        let a = r.counter("a.count");
        let g = r.gauge("occupancy");
        let h = r.histogram("lat");
        r.inc(b);
        r.add(a, 5);
        r.set_gauge(g, 9);
        r.record(h, 1000);
        assert_eq!(r.counter_value(a), 5);
        assert_eq!(r.gauge_value(g), 9);
        assert_eq!(r.hist(h).count(), 1);
        let json = r.snapshot_json();
        let a_pos = json.find("a.count").unwrap();
        let b_pos = json.find("b.count").unwrap();
        assert!(a_pos < b_pos, "counters must be name-sorted: {json}");
        assert!(json.contains(r#""occupancy":9"#));
        assert!(json.contains(r#""p99":1000"#));
    }

    #[test]
    fn reregistering_a_name_returns_the_same_handle() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.inc(a);
        r.inc(b);
        assert_eq!(r.counter_value(a), 2);
    }
}
