//! Property tests for the log-linear histogram: merged-histogram quantiles
//! must match exact sorted-sample quantiles within one bucket's relative
//! error bound, and merging must be exactly equivalent to recording every
//! sample into a single histogram.

use proptest::prelude::*;
use ringbft_obs::Histogram;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merged_quantiles_match_exact_within_bucket_error(
        values in proptest::collection::vec(0u64..100_000_000_000, 1..400),
        shards in 1usize..8,
        qs in proptest::collection::vec(0u64..=1000, 1..8),
    ) {
        // Scatter the samples across `shards` histograms, then merge.
        let mut parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].record(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        let eps = merged.relative_error_bound();
        for &qm in &qs {
            let q = qm as f64 / 1000.0;
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let got = merged.value_at_quantile(q);
            // The histogram returns the containing bucket's upper bound:
            // never below the true order statistic, and within the relative
            // error bound above it (exact in the unit-bucket region).
            prop_assert!(got >= exact, "q={} got {} < exact {}", q, got, exact);
            prop_assert!(
                got as f64 <= exact as f64 * (1.0 + eps) + 1.0,
                "q={} got {} exceeds bound over exact {}", q, got, exact
            );
        }
    }

    #[test]
    fn merge_is_equivalent_to_single_histogram(
        values in proptest::collection::vec(0u64..10_000_000, 0..300),
        shards in 1usize..6,
    ) {
        let mut single = Histogram::new();
        let mut parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            single.record(v);
            parts[i % shards].record(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged, single);
    }
}
