//! AHL (Dang et al., SIGMOD'19): sharding with a designated **reference
//! committee** that globally orders every cross-shard transaction and
//! drives two-phase commit against the involved shards (§2).
//!
//! Flow reproduced here:
//!
//! 1. clients send csts to the committee's primary; the committee runs
//!    PBFT to order the cst;
//! 2. committee replicas fan `PrepareReq` out to *every* replica of every
//!    involved shard (all-to-all);
//! 3. each involved shard runs PBFT on the request and sends its 2PC
//!    vote to *every* committee replica (all-to-all);
//! 4. the committee runs a second PBFT round to agree on the decision;
//! 5. committee replicas fan the `Decision` out to the involved shards,
//!    which execute; the lowest-id involved shard answers the client.
//!
//! Single-shard transactions bypass the committee entirely (plain PBFT
//! inside the owning shard), exactly as in the paper's evaluation setup.
//!
//! Scope note (DESIGN.md): the baselines reproduce AHL's *communication
//! pattern and phase structure*, which determine its Figure 8 performance;
//! state-machine storage effects are modeled only for RingBFT.

use crate::messages::ShardedMsg;
use ringbft_crypto::Digest;
use ringbft_pbft::{PbftConfig, PbftCore, PbftEvent, PbftMsg};
use ringbft_types::txn::{Batch, Transaction};
use ringbft_types::{
    Action, BatchId, ClientId, Instant, NodeId, Outbox, ReplicaId, SeqNum, ShardId, SystemConfig,
    TimerKind, TxnId,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

const FLUSH_TOKEN: u64 = (1 << 62) - 1;

/// Is this node a data-shard replica or a reference-committee member?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AhlRole {
    /// Replica of a data shard.
    Shard,
    /// Member of the reference committee.
    Committee,
}

#[derive(Debug, Default)]
struct CommitteeTxn {
    batch: Option<Arc<Batch>>,
    involved: Vec<ShardId>,
    /// PBFT rounds completed at the committee: 1 = ordered, 2 = decided.
    rounds: u8,
    /// 2PC votes: shard → distinct shard-replica senders.
    votes: HashMap<ShardId, HashSet<u32>>,
    decision_proposed: bool,
    decided: bool,
}

#[derive(Debug, Default)]
struct ShardTxn {
    batch: Option<Arc<Batch>>,
    /// Distinct committee senders of PrepareReq.
    prepare_from: HashSet<u32>,
    proposed: bool,
    voted: bool,
    /// Distinct committee senders of Decision.
    decision_from: HashSet<u32>,
    executed: bool,
}

/// An AHL node (shard replica or committee member).
pub struct AhlReplica {
    cfg: SystemConfig,
    me: ReplicaId,
    role: AhlRole,
    /// Committee pseudo-shard id = `z` (one past the data shards).
    committee_shard: ShardId,
    pbft: PbftCore,
    /// Single-shard pools (shard primaries) / cst pool (committee primary).
    pool: Vec<Transaction>,
    pool_flush_armed: bool,
    next_batch: u64,
    committee_txns: HashMap<Digest, CommitteeTxn>,
    shard_txns: HashMap<Digest, ShardTxn>,
    /// Executed batches (diagnostics).
    pub executed: u64,
}

impl AhlReplica {
    /// Creates a node. Committee members use `ShardId(cfg.z())` as their
    /// pseudo-shard with the same replication degree as shard 0.
    pub fn new(cfg: SystemConfig, me: ReplicaId, role: AhlRole) -> Self {
        let committee_shard = ShardId(cfg.z() as u32);
        let n = match role {
            AhlRole::Shard => cfg.shard(me.shard).n,
            AhlRole::Committee => cfg.shards[0].n,
        };
        let pbft = PbftCore::new(
            me,
            PbftConfig {
                n,
                checkpoint_interval: 128,
                external_checkpoints: false,
                local_timeout: cfg.timers.local,
            },
        );
        AhlReplica {
            committee_shard,
            pbft,
            pool: Vec::new(),
            pool_flush_armed: false,
            next_batch: ((me.shard.0 as u64) << 40) | ((role == AhlRole::Committee) as u64) << 56,
            committee_txns: HashMap::new(),
            shard_txns: HashMap::new(),
            executed: 0,
            cfg,
            me,
            role,
        }
    }

    /// The committee's pseudo-shard id for a system of `z` shards.
    pub fn committee_shard_of(cfg: &SystemConfig) -> ShardId {
        ShardId(cfg.z() as u32)
    }

    /// Committee size (same as shard 0's replication degree).
    pub fn committee_size(cfg: &SystemConfig) -> usize {
        cfg.shards[0].n
    }

    fn committee_members(&self) -> impl Iterator<Item = NodeId> + '_ {
        let shard = self.committee_shard;
        let n = Self::committee_size(&self.cfg) as u32;
        (0..n).map(move |i| NodeId::Replica(ReplicaId::new(shard, i)))
    }

    fn involved_replicas<'a>(
        &'a self,
        involved: &'a [ShardId],
    ) -> impl Iterator<Item = NodeId> + 'a {
        involved.iter().flat_map(move |s| {
            let n = self.cfg.shard(*s).n as u32;
            (0..n).map(move |i| NodeId::Replica(ReplicaId::new(*s, i)))
        })
    }

    fn drive<F>(&mut self, _now: Instant, f: F, out: &mut Outbox<ShardedMsg>)
    where
        F: FnOnce(&mut PbftCore, &mut Outbox<PbftMsg>, &mut Vec<PbftEvent>),
    {
        let mut pout = Outbox::new();
        let mut events = Vec::new();
        f(&mut self.pbft, &mut pout, &mut events);
        for a in pout.take() {
            match a.map_msg(ShardedMsg::Pbft) {
                Action::Send { to, msg } => out.send(to, msg),
                Action::SendMany { tos, msg } => out.send_many(tos, msg),
                Action::SetTimer { kind, token, after } => out.set_timer(kind, token, after),
                Action::CancelTimer { kind, token } => out.cancel_timer(kind, token),
                Action::Executed { seq, txns } => out.executed(seq, txns),
                Action::ViewChanged { view } => out.view_changed(view),
            }
        }
        for e in events {
            if let PbftEvent::Committed {
                seq, digest, batch, ..
            } = e
            {
                self.on_local_commit(seq, digest, batch, out);
            }
        }
    }

    /// Handles a delivered message.
    pub fn on_message(
        &mut self,
        now: Instant,
        from: NodeId,
        msg: ShardedMsg,
        out: &mut Outbox<ShardedMsg>,
    ) {
        match msg {
            ShardedMsg::Request { txn, relayed } => self.on_request(now, txn, relayed, out),
            ShardedMsg::Pbft(m) => {
                let NodeId::Replica(r) = from else { return };
                if r.shard != self.me.shard {
                    return;
                }
                self.drive(now, |p, po, ev| p.on_message(now, r, m, po, ev), out);
            }
            ShardedMsg::PrepareReq { digest, batch } => {
                let NodeId::Replica(r) = from else { return };
                if self.role != AhlRole::Shard || r.shard != self.committee_shard {
                    return;
                }
                self.on_prepare_req(now, digest, batch, r.index, out);
            }
            ShardedMsg::Vote2pc {
                digest,
                shard,
                commit,
            } => {
                let NodeId::Replica(r) = from else { return };
                if self.role != AhlRole::Committee || r.shard != shard {
                    return;
                }
                self.on_vote(now, digest, shard, commit, r.index, out);
            }
            ShardedMsg::Decision { digest, commit } => {
                let NodeId::Replica(r) = from else { return };
                if self.role != AhlRole::Shard || r.shard != self.committee_shard {
                    return;
                }
                self.on_decision(digest, commit, r.index, out);
            }
            _ => {}
        }
    }

    /// Handles a timer.
    pub fn on_timer(
        &mut self,
        now: Instant,
        kind: TimerKind,
        token: u64,
        out: &mut Outbox<ShardedMsg>,
    ) {
        if kind == TimerKind::Client && token == FLUSH_TOKEN {
            self.pool_flush_armed = false;
            self.flush_pool(now, true, out);
            return;
        }
        if kind == TimerKind::Local {
            self.drive(
                now,
                |p, po, ev| {
                    p.on_timer(kind, token, po, ev);
                },
                out,
            );
        }
    }

    fn on_request(
        &mut self,
        now: Instant,
        txn: Arc<Transaction>,
        relayed: bool,
        out: &mut Outbox<ShardedMsg>,
    ) {
        let involved = txn.involved_shards();
        let is_cst = involved.len() > 1;
        // Route: csts belong to the committee; single-shard to the shard.
        let belongs_here = match self.role {
            AhlRole::Committee => is_cst,
            AhlRole::Shard => !is_cst && involved.first() == Some(&self.me.shard),
        };
        if !belongs_here {
            if !relayed {
                let target = if is_cst {
                    ReplicaId::new(self.committee_shard, 0)
                } else {
                    ReplicaId::new(involved[0], 0)
                };
                out.send(
                    NodeId::Replica(target),
                    ShardedMsg::Request { txn, relayed: true },
                );
            }
            return;
        }
        if !self.pbft.is_primary() {
            let primary = ReplicaId::new(self.me.shard, self.pbft.primary_index());
            out.send(
                NodeId::Replica(primary),
                ShardedMsg::Request { txn, relayed: true },
            );
            return;
        }
        self.pool.push((*txn).clone());
        self.flush_pool(now, false, out);
        if !self.pool.is_empty() && !self.pool_flush_armed {
            self.pool_flush_armed = true;
            out.set_timer(TimerKind::Client, FLUSH_TOKEN, self.cfg.timers.local / 4);
        }
    }

    fn flush_pool(&mut self, now: Instant, force: bool, out: &mut Outbox<ShardedMsg>) {
        // Group pooled transactions by involved-shard set (blocks must
        // share involvement, §7) and cut batches.
        while !self.pool.is_empty() {
            let key = self.pool[0].involved_shards();
            let mut group: Vec<Transaction> = Vec::new();
            let mut rest: Vec<Transaction> = Vec::new();
            for t in self.pool.drain(..) {
                if t.involved_shards() == key && group.len() < self.cfg.batch_size {
                    group.push(t);
                } else {
                    rest.push(t);
                }
            }
            self.pool = rest;
            if group.len() < self.cfg.batch_size && !force {
                // Put the partial group back and wait for more.
                self.pool.extend(group);
                break;
            }
            let id = BatchId(self.next_batch);
            self.next_batch += 1;
            let batch = Arc::new(Batch::new(id, group));
            self.drive(
                now,
                |p, po, ev| {
                    p.propose(batch, po, ev);
                },
                out,
            );
            if !force {
                break;
            }
        }
    }

    fn on_local_commit(
        &mut self,
        seq: SeqNum,
        digest: Digest,
        batch: Arc<Batch>,
        out: &mut Outbox<ShardedMsg>,
    ) {
        match self.role {
            AhlRole::Committee => {
                let (rounds, decided, involved) = {
                    let entry = self.committee_txns.entry(digest).or_default();
                    entry.batch = Some(Arc::clone(&batch));
                    entry.involved = batch.involved_shards();
                    entry.rounds += 1;
                    (entry.rounds, entry.decided, entry.involved.clone())
                };
                if rounds == 1 {
                    // Ordered: fan PrepareReq out to all involved replicas.
                    let msg = ShardedMsg::PrepareReq {
                        digest,
                        batch: Arc::clone(&batch),
                    };
                    out.multicast(self.involved_replicas(&involved), &msg);
                } else if rounds == 2 && !decided {
                    // Decision agreed: fan it out.
                    self.committee_txns
                        .get_mut(&digest)
                        .expect("entry exists")
                        .decided = true;
                    let msg = ShardedMsg::Decision {
                        digest,
                        commit: true,
                    };
                    out.multicast(self.involved_replicas(&involved), &msg);
                }
            }
            AhlRole::Shard => {
                let involved = batch.involved_shards();
                if involved.len() <= 1 {
                    // Single-shard: execute and reply directly.
                    self.executed += 1;
                    out.executed(seq.0, batch.len() as u32);
                    reply_clients(out, digest, &batch);
                    return;
                }
                // Cross-shard vote consensus finished: vote to committee.
                let entry = self.shard_txns.entry(digest).or_default();
                if entry.voted {
                    return;
                }
                entry.voted = true;
                entry.batch = Some(batch);
                let vote = ShardedMsg::Vote2pc {
                    digest,
                    shard: self.me.shard,
                    commit: true,
                };
                out.multicast(self.committee_members(), &vote);
            }
        }
    }

    fn on_prepare_req(
        &mut self,
        now: Instant,
        digest: Digest,
        batch: Arc<Batch>,
        from: u32,
        out: &mut Outbox<ShardedMsg>,
    ) {
        let committee_f = (Self::committee_size(&self.cfg) - 1) / 3;
        let entry = self.shard_txns.entry(digest).or_default();
        entry.prepare_from.insert(from);
        if entry.batch.is_none() {
            entry.batch = Some(Arc::clone(&batch));
        }
        if entry.proposed || entry.prepare_from.len() <= committee_f {
            return;
        }
        entry.proposed = true;
        if self.pbft.is_primary() {
            self.drive(
                now,
                |p, po, ev| {
                    p.propose(batch, po, ev);
                },
                out,
            );
        }
    }

    fn on_vote(
        &mut self,
        now: Instant,
        digest: Digest,
        shard: ShardId,
        commit: bool,
        from: u32,
        out: &mut Outbox<ShardedMsg>,
    ) {
        if !commit {
            return; // deterministic YCSB votes never abort in this setup
        }
        let (involved, vote_counts, rounds, decision_proposed, batch) = {
            let entry = self.committee_txns.entry(digest).or_default();
            entry.votes.entry(shard).or_default().insert(from);
            let counts: Vec<(ShardId, usize)> = entry
                .involved
                .iter()
                .map(|s| (*s, entry.votes.get(s).map_or(0, |v| v.len())))
                .collect();
            (
                entry.involved.clone(),
                counts,
                entry.rounds,
                entry.decision_proposed,
                entry.batch.clone(),
            )
        };
        // A shard's vote counts once f+1 of its replicas agree.
        let all_voted =
            !involved.is_empty() && vote_counts.iter().all(|(s, c)| *c > self.cfg.shard(*s).f());
        if !all_voted || decision_proposed || rounds < 1 {
            return;
        }
        self.committee_txns
            .get_mut(&digest)
            .expect("entry exists")
            .decision_proposed = true;
        // Second committee PBFT round on the decision.
        if self.pbft.is_primary() {
            if let Some(batch) = batch {
                self.drive(
                    now,
                    |p, po, ev| {
                        p.propose(batch, po, ev);
                    },
                    out,
                );
            }
        }
    }

    fn on_decision(
        &mut self,
        digest: Digest,
        commit: bool,
        from: u32,
        out: &mut Outbox<ShardedMsg>,
    ) {
        if !commit {
            return;
        }
        let committee_f = (Self::committee_size(&self.cfg) - 1) / 3;
        let entry = self.shard_txns.entry(digest).or_default();
        entry.decision_from.insert(from);
        if entry.executed || entry.decision_from.len() <= committee_f {
            return;
        }
        entry.executed = true;
        self.executed += 1;
        let Some(batch) = entry.batch.clone() else {
            return;
        };
        out.executed(0, batch.len() as u32);
        // The lowest-id involved shard answers the client.
        if batch.involved_shards().first() == Some(&self.me.shard) {
            reply_clients(out, digest, &batch);
        }
    }
}

/// Sends one `Reply` per distinct client of `batch`.
fn reply_clients(out: &mut Outbox<ShardedMsg>, digest: Digest, batch: &Batch) {
    let mut by_client: BTreeMap<ClientId, Vec<TxnId>> = BTreeMap::new();
    for t in &batch.txns {
        by_client.entry(t.client).or_default().push(t.id);
    }
    for (client, txn_ids) in by_client {
        out.send(
            NodeId::Client(client),
            ShardedMsg::Reply {
                client,
                digest,
                txn_ids,
            },
        );
    }
}
