//! Message vocabulary shared by the sharded baselines AHL and SharPer.

use ringbft_crypto::Digest;
use ringbft_pbft::PbftMsg;
use ringbft_types::txn::{Batch, Transaction};
use ringbft_types::{ClientId, ShardId, TxnId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Messages of the sharded baseline protocols. AHL uses the
/// `PrepareReq`/`Vote2pc`/`Decision` 2PC triple driven by its reference
/// committee (§2 "Designated Committee"); SharPer uses the global
/// `XPreprepare`/`XPrepare`/`XCommit` phases driven by the initiator
/// shard's primary (§2 "Initiator Shard").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardedMsg {
    /// Client request or relay.
    Request {
        /// The transaction.
        txn: Arc<Transaction>,
        /// Relayed by a replica.
        relayed: bool,
    },
    /// Intra-cluster PBFT (inside a shard or inside AHL's committee).
    Pbft(PbftMsg),
    /// AHL: committee replica asks the involved shards to prepare/lock.
    /// Sent all-to-all: every committee replica to every involved
    /// replica (the 2PC fan-out the paper charges AHL for).
    PrepareReq {
        /// Ordered batch digest.
        digest: Digest,
        /// The cross-shard batch.
        batch: Arc<Batch>,
    },
    /// AHL: a shard replica's 2PC vote back to the committee (all-to-all).
    Vote2pc {
        /// Batch digest.
        digest: Digest,
        /// Voting shard.
        shard: ShardId,
        /// Commit (true) or abort.
        commit: bool,
    },
    /// AHL: the committee's decision fan-out to involved replicas.
    Decision {
        /// Batch digest.
        digest: Digest,
        /// Commit (true) or abort.
        commit: bool,
    },
    /// SharPer: the initiator primary's global proposal to every replica
    /// of every involved shard.
    XPreprepare {
        /// Global sequence assigned by the initiator primary.
        gseq: u64,
        /// Batch digest.
        digest: Digest,
        /// The batch.
        batch: Arc<Batch>,
    },
    /// SharPer: global prepare vote, broadcast to all involved replicas.
    XPrepare {
        /// Global sequence.
        gseq: u64,
        /// Batch digest.
        digest: Digest,
        /// Voting replica's shard (per-shard quorums).
        shard: ShardId,
    },
    /// SharPer: global commit vote, broadcast to all involved replicas.
    XCommit {
        /// Global sequence.
        gseq: u64,
        /// Batch digest.
        digest: Digest,
        /// Voting replica's shard.
        shard: ShardId,
    },
    /// Reply to a client.
    Reply {
        /// The client.
        client: ClientId,
        /// Executed batch digest.
        digest: Digest,
        /// Executed transactions.
        txn_ids: Vec<TxnId>,
    },
}

impl ShardedMsg {
    /// Short tag for metrics.
    pub fn tag(&self) -> &'static str {
        match self {
            ShardedMsg::Request { .. } => "request",
            ShardedMsg::Pbft(m) => m.tag(),
            ShardedMsg::PrepareReq { .. } => "prepare-req",
            ShardedMsg::Vote2pc { .. } => "vote-2pc",
            ShardedMsg::Decision { .. } => "decision",
            ShardedMsg::XPreprepare { .. } => "x-preprepare",
            ShardedMsg::XPrepare { .. } => "x-prepare",
            ShardedMsg::XCommit { .. } => "x-commit",
            ShardedMsg::Reply { .. } => "reply",
        }
    }
}
