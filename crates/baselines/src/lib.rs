//! Sharded BFT baselines the paper evaluates RingBFT against (§2, §8):
//! **AHL** (reference committee + 2PC) and **SharPer** (initiator-primary
//! global consensus). Both reuse the intra-shard PBFT engine, exactly as
//! in the paper ("all three protocols have identical implementations for
//! replicating single-shard transactions").

pub mod ahl;
pub mod messages;
pub mod sharper;

pub use ahl::{AhlReplica, AhlRole};
pub use messages::ShardedMsg;
pub use sharper::{sharper_initiator, SharperReplica};

#[cfg(test)]
mod tests {
    use super::*;
    use ringbft_store::rmw_ops;
    use ringbft_types::txn::Transaction;
    use ringbft_types::{
        Action, ClientId, Instant, NodeId, Outbox, ProtocolKind, ReplicaId, ShardId, SystemConfig,
        TimerKind, TxnId,
    };
    use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
    use std::sync::Arc;

    enum Node {
        Ahl(AhlReplica),
        Sharper(SharperReplica),
    }

    impl Node {
        fn on_message(
            &mut self,
            now: Instant,
            from: NodeId,
            msg: ShardedMsg,
            out: &mut Outbox<ShardedMsg>,
        ) {
            match self {
                Node::Ahl(r) => r.on_message(now, from, msg, out),
                Node::Sharper(r) => r.on_message(now, from, msg, out),
            }
        }
        fn on_timer(
            &mut self,
            now: Instant,
            kind: TimerKind,
            token: u64,
            out: &mut Outbox<ShardedMsg>,
        ) {
            match self {
                Node::Ahl(r) => r.on_timer(now, kind, token, out),
                Node::Sharper(r) => r.on_timer(now, kind, token, out),
            }
        }
    }

    struct Net {
        nodes: BTreeMap<ReplicaId, Node>,
        queue: VecDeque<(NodeId, NodeId, ShardedMsg)>,
        timers: HashSet<(ReplicaId, TimerKind, u64)>,
        replies: HashMap<ClientId, HashMap<[u8; 32], HashSet<ReplicaId>>>,
    }

    impl Net {
        fn ahl(cfg: &SystemConfig) -> Self {
            let mut nodes = BTreeMap::new();
            for shard in &cfg.shards {
                for r in shard.replicas() {
                    nodes.insert(
                        r,
                        Node::Ahl(AhlReplica::new(cfg.clone(), r, AhlRole::Shard)),
                    );
                }
            }
            let cshard = AhlReplica::committee_shard_of(cfg);
            for i in 0..AhlReplica::committee_size(cfg) as u32 {
                let r = ReplicaId::new(cshard, i);
                nodes.insert(
                    r,
                    Node::Ahl(AhlReplica::new(cfg.clone(), r, AhlRole::Committee)),
                );
            }
            Net::new(nodes)
        }

        fn sharper(cfg: &SystemConfig) -> Self {
            let mut nodes = BTreeMap::new();
            for shard in &cfg.shards {
                for r in shard.replicas() {
                    nodes.insert(r, Node::Sharper(SharperReplica::new(cfg.clone(), r)));
                }
            }
            Net::new(nodes)
        }

        fn new(nodes: BTreeMap<ReplicaId, Node>) -> Self {
            Net {
                nodes,
                queue: VecDeque::new(),
                timers: HashSet::new(),
                replies: HashMap::new(),
            }
        }

        fn client_send(&mut self, client: u64, target: ReplicaId, txn: Transaction) {
            self.queue.push_back((
                NodeId::Client(ClientId(client)),
                NodeId::Replica(target),
                ShardedMsg::Request {
                    txn: Arc::new(txn),
                    relayed: false,
                },
            ));
        }

        fn absorb(&mut self, from: ReplicaId, actions: Vec<Action<ShardedMsg>>) {
            for a in actions {
                match a {
                    Action::Send { to, msg } => {
                        self.queue.push_back((NodeId::Replica(from), to, msg))
                    }
                    Action::SendMany { tos, msg } => {
                        for to in tos {
                            self.queue
                                .push_back((NodeId::Replica(from), to, msg.clone()));
                        }
                    }
                    Action::SetTimer { kind, token, .. } => {
                        self.timers.insert((from, kind, token));
                    }
                    Action::CancelTimer { kind, token } => {
                        self.timers.remove(&(from, kind, token));
                    }
                    _ => {}
                }
            }
        }

        fn settle(&mut self) {
            loop {
                while let Some((from, to, msg)) = self.queue.pop_front() {
                    match to {
                        NodeId::Replica(r) => {
                            let Some(node) = self.nodes.get_mut(&r) else {
                                continue;
                            };
                            let mut out = Outbox::new();
                            node.on_message(Instant::ZERO, from, msg, &mut out);
                            self.absorb(r, out.take());
                        }
                        NodeId::Client(c) => {
                            if let ShardedMsg::Reply { digest, .. } = msg {
                                let NodeId::Replica(sender) = from else {
                                    continue;
                                };
                                self.replies
                                    .entry(c)
                                    .or_default()
                                    .entry(digest)
                                    .or_default()
                                    .insert(sender);
                            }
                        }
                    }
                }
                let armed: Vec<(ReplicaId, TimerKind, u64)> = self
                    .timers
                    .iter()
                    .filter(|(_, k, _)| *k == TimerKind::Client)
                    .copied()
                    .collect();
                if armed.is_empty() {
                    break;
                }
                for (r, k, t) in armed {
                    self.timers.remove(&(r, k, t));
                    let mut out = Outbox::new();
                    self.nodes
                        .get_mut(&r)
                        .expect("node")
                        .on_timer(Instant::ZERO, k, t, &mut out);
                    self.absorb(r, out.take());
                }
            }
        }

        fn confirmed(&self, c: u64, quorum: usize) -> bool {
            self.replies
                .get(&ClientId(c))
                .map(|d| d.values().any(|s| s.len() >= quorum))
                .unwrap_or(false)
        }
    }

    fn cfg() -> SystemConfig {
        let mut c = SystemConfig::uniform(ProtocolKind::Ahl, 3, 4);
        c.num_keys = 300;
        c.batch_size = 2;
        c
    }

    fn single(c: &SystemConfig, id: u64, shard: u32) -> Transaction {
        Transaction::new(
            TxnId(id),
            ClientId(id),
            rmw_ops(&[(ShardId(shard), c.key_range(ShardId(shard)).start + id)]),
        )
    }

    fn cst(c: &SystemConfig, id: u64, shards: &[u32]) -> Transaction {
        let ops: Vec<(ShardId, u64)> = shards
            .iter()
            .map(|&s| (ShardId(s), c.key_range(ShardId(s)).start + id))
            .collect();
        Transaction::new(TxnId(id), ClientId(id), rmw_ops(&ops))
    }

    #[test]
    fn ahl_single_shard_bypasses_committee() {
        let c = cfg();
        let mut net = Net::ahl(&c);
        net.client_send(1, ReplicaId::new(ShardId(0), 0), single(&c, 1, 0));
        net.client_send(2, ReplicaId::new(ShardId(0), 0), single(&c, 2, 0));
        net.settle();
        assert!(net.confirmed(1, 2));
        assert!(net.confirmed(2, 2));
    }

    #[test]
    fn ahl_cross_shard_via_committee_2pc() {
        let c = cfg();
        let committee = AhlReplica::committee_shard_of(&c);
        let mut net = Net::ahl(&c);
        net.client_send(1, ReplicaId::new(committee, 0), cst(&c, 1, &[0, 1, 2]));
        net.client_send(2, ReplicaId::new(committee, 0), cst(&c, 2, &[0, 1, 2]));
        net.settle();
        assert!(net.confirmed(1, 2), "client 1 unconfirmed");
        assert!(net.confirmed(2, 2), "client 2 unconfirmed");
    }

    #[test]
    fn ahl_misrouted_cst_is_relayed_to_committee() {
        let c = cfg();
        let mut net = Net::ahl(&c);
        net.client_send(1, ReplicaId::new(ShardId(1), 0), cst(&c, 1, &[0, 1]));
        net.client_send(2, ReplicaId::new(ShardId(1), 0), cst(&c, 2, &[0, 1]));
        net.settle();
        assert!(net.confirmed(1, 2));
    }

    #[test]
    fn sharper_single_shard_local_pbft() {
        let c = cfg();
        let mut net = Net::sharper(&c);
        net.client_send(1, ReplicaId::new(ShardId(2), 0), single(&c, 1, 2));
        net.client_send(2, ReplicaId::new(ShardId(2), 0), single(&c, 2, 2));
        net.settle();
        assert!(net.confirmed(1, 2));
    }

    #[test]
    fn sharper_cross_shard_global_consensus() {
        let c = cfg();
        let mut net = Net::sharper(&c);
        net.client_send(1, ReplicaId::new(ShardId(0), 0), cst(&c, 1, &[0, 1, 2]));
        net.client_send(2, ReplicaId::new(ShardId(0), 0), cst(&c, 2, &[0, 1, 2]));
        net.settle();
        assert!(net.confirmed(1, 2), "client 1 unconfirmed");
        assert!(net.confirmed(2, 2), "client 2 unconfirmed");
    }

    #[test]
    fn sharper_misrouted_cst_relayed_to_initiator() {
        let c = cfg();
        let mut net = Net::sharper(&c);
        // Initiator is shard 1 (lowest involved); client sends to shard 2.
        net.client_send(1, ReplicaId::new(ShardId(2), 0), cst(&c, 1, &[1, 2]));
        net.client_send(2, ReplicaId::new(ShardId(2), 0), cst(&c, 2, &[1, 2]));
        net.settle();
        assert!(net.confirmed(1, 2));
        // Replies come from the initiator shard.
        let replies = &net.replies[&ClientId(1)];
        for senders in replies.values() {
            assert!(senders.iter().all(|r| r.shard == ShardId(1)));
        }
    }
}
