//! SharPer (Amiri et al.): sharding without a reference committee (§2
//! "Initiator Shard").
//!
//! For a cross-shard transaction, the primary of one involved shard (the
//! initiator) proposes the transaction *globally*: an `XPreprepare` to
//! every replica of every involved shard, followed by two **global
//! all-to-all** vote phases (`XPrepare`, `XCommit`) with per-shard
//! quorums. This flat quadratic communication across shards is exactly
//! what the paper charges SharPer for in Figures 8 I–X.
//!
//! Single-shard transactions run plain PBFT inside the owning shard, as
//! in the paper's evaluation ("all three protocols have identical
//! implementations for replicating single-shard transactions").

use crate::messages::ShardedMsg;
use ringbft_crypto::Digest;
use ringbft_pbft::{batch_digest, PbftConfig, PbftCore, PbftEvent, PbftMsg};
use ringbft_types::txn::{Batch, Transaction};
use ringbft_types::{
    Action, BatchId, ClientId, Instant, NodeId, Outbox, ReplicaId, ShardId, SystemConfig,
    TimerKind, TxnId,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

const FLUSH_TOKEN: u64 = (1 << 62) - 1;

/// SharPer's coordinating (initiator) shard for a transaction: one of the
/// involved shards, spread deterministically by transaction id. Unlike
/// AHL's fixed committee, SharPer lets any involved shard's primary
/// coordinate, which distributes the cross-shard fan-out load.
pub fn sharper_initiator(txn: &Transaction) -> ShardId {
    let involved = txn.involved_shards();
    involved[(txn.id.0 % involved.len() as u64) as usize]
}

#[derive(Debug, Default)]
struct XState {
    batch: Option<Arc<Batch>>,
    involved: Vec<ShardId>,
    prepares: HashMap<ShardId, HashSet<u32>>,
    commits: HashMap<ShardId, HashSet<u32>>,
    prepared: bool,
    executed: bool,
}

/// A SharPer replica.
pub struct SharperReplica {
    cfg: SystemConfig,
    me: ReplicaId,
    pbft: PbftCore,
    pool_single: Vec<Transaction>,
    pool_cst: BTreeMap<Vec<ShardId>, Vec<Transaction>>,
    flush_armed: bool,
    next_batch: u64,
    next_gseq: u64,
    xtxns: HashMap<Digest, XState>,
    /// Batches executed (diagnostics).
    pub executed: u64,
}

impl SharperReplica {
    /// Creates replica `me`.
    pub fn new(cfg: SystemConfig, me: ReplicaId) -> Self {
        let n = cfg.shard(me.shard).n;
        let pbft = PbftCore::new(
            me,
            PbftConfig {
                n,
                checkpoint_interval: 128,
                external_checkpoints: false,
                local_timeout: cfg.timers.local,
            },
        );
        SharperReplica {
            pbft,
            pool_single: Vec::new(),
            pool_cst: BTreeMap::new(),
            flush_armed: false,
            next_batch: (me.shard.0 as u64) << 40,
            next_gseq: 1,
            xtxns: HashMap::new(),
            cfg,
            me,
            executed: 0,
        }
    }

    fn involved_replicas<'a>(
        &'a self,
        involved: &'a [ShardId],
    ) -> impl Iterator<Item = NodeId> + 'a {
        let me = self.me;
        involved.iter().flat_map(move |s| {
            let n = self.cfg.shard(*s).n as u32;
            (0..n)
                .filter(move |i| !(*s == me.shard && *i == me.index))
                .map(move |i| NodeId::Replica(ReplicaId::new(*s, i)))
        })
    }

    fn drive<F>(&mut self, _now: Instant, f: F, out: &mut Outbox<ShardedMsg>)
    where
        F: FnOnce(&mut PbftCore, &mut Outbox<PbftMsg>, &mut Vec<PbftEvent>),
    {
        let mut pout = Outbox::new();
        let mut events = Vec::new();
        f(&mut self.pbft, &mut pout, &mut events);
        for a in pout.take() {
            match a.map_msg(ShardedMsg::Pbft) {
                Action::Send { to, msg } => out.send(to, msg),
                Action::SendMany { tos, msg } => out.send_many(tos, msg),
                Action::SetTimer { kind, token, after } => out.set_timer(kind, token, after),
                Action::CancelTimer { kind, token } => out.cancel_timer(kind, token),
                Action::Executed { seq, txns } => out.executed(seq, txns),
                Action::ViewChanged { view } => out.view_changed(view),
            }
        }
        for e in events {
            if let PbftEvent::Committed {
                seq, digest, batch, ..
            } = e
            {
                // Local consensus only orders single-shard batches.
                self.executed += 1;
                out.executed(seq.0, batch.len() as u32);
                reply_clients(out, digest, &batch);
            }
        }
    }

    /// Handles a delivered message.
    pub fn on_message(
        &mut self,
        now: Instant,
        from: NodeId,
        msg: ShardedMsg,
        out: &mut Outbox<ShardedMsg>,
    ) {
        match msg {
            ShardedMsg::Request { txn, relayed } => self.on_request(now, txn, relayed, out),
            ShardedMsg::Pbft(m) => {
                let NodeId::Replica(r) = from else { return };
                if r.shard != self.me.shard {
                    return;
                }
                self.drive(now, |p, po, ev| p.on_message(now, r, m, po, ev), out);
            }
            ShardedMsg::XPreprepare { digest, batch, .. } => {
                self.on_xpreprepare(digest, batch, out)
            }
            ShardedMsg::XPrepare { digest, shard, .. } => {
                let NodeId::Replica(r) = from else { return };
                if r.shard != shard {
                    return;
                }
                self.on_xprepare(digest, shard, r.index, out);
            }
            ShardedMsg::XCommit { digest, shard, .. } => {
                let NodeId::Replica(r) = from else { return };
                if r.shard != shard {
                    return;
                }
                self.on_xcommit(digest, shard, r.index, out);
            }
            _ => {}
        }
    }

    /// Handles a timer.
    pub fn on_timer(
        &mut self,
        now: Instant,
        kind: TimerKind,
        token: u64,
        out: &mut Outbox<ShardedMsg>,
    ) {
        if kind == TimerKind::Client && token == FLUSH_TOKEN {
            self.flush_armed = false;
            self.flush(now, true, out);
            return;
        }
        if kind == TimerKind::Local {
            self.drive(
                now,
                |p, po, ev| {
                    p.on_timer(kind, token, po, ev);
                },
                out,
            );
        }
    }

    fn on_request(
        &mut self,
        now: Instant,
        txn: Arc<Transaction>,
        relayed: bool,
        out: &mut Outbox<ShardedMsg>,
    ) {
        let involved = txn.involved_shards();
        let initiator = sharper_initiator(&txn);
        if initiator != self.me.shard {
            if !relayed {
                out.send(
                    NodeId::Replica(ReplicaId::new(initiator, 0)),
                    ShardedMsg::Request { txn, relayed: true },
                );
            }
            return;
        }
        if !self.pbft.is_primary() {
            let primary = ReplicaId::new(self.me.shard, self.pbft.primary_index());
            out.send(
                NodeId::Replica(primary),
                ShardedMsg::Request { txn, relayed: true },
            );
            return;
        }
        if involved.len() == 1 {
            self.pool_single.push((*txn).clone());
        } else {
            self.pool_cst
                .entry(involved)
                .or_default()
                .push((*txn).clone());
        }
        self.flush(now, false, out);
        if !self.flush_armed
            && (!self.pool_single.is_empty() || self.pool_cst.values().any(|p| !p.is_empty()))
        {
            self.flush_armed = true;
            out.set_timer(TimerKind::Client, FLUSH_TOKEN, self.cfg.timers.local / 4);
        }
    }

    fn flush(&mut self, now: Instant, force: bool, out: &mut Outbox<ShardedMsg>) {
        let bs = self.cfg.batch_size;
        // Single-shard batches → local PBFT.
        while self.pool_single.len() >= bs || (force && !self.pool_single.is_empty()) {
            let take = self.pool_single.len().min(bs);
            let txns: Vec<Transaction> = self.pool_single.drain(..take).collect();
            let id = BatchId(self.next_batch);
            self.next_batch += 1;
            let batch = Arc::new(Batch::new(id, txns));
            self.drive(
                now,
                |p, po, ev| {
                    p.propose(batch, po, ev);
                },
                out,
            );
        }
        // Cross-shard batches → global consensus.
        let keys: Vec<Vec<ShardId>> = self
            .pool_cst
            .iter()
            .filter(|(_, p)| p.len() >= bs || (force && !p.is_empty()))
            .map(|(k, _)| k.clone())
            .collect();
        for key in keys {
            loop {
                let pool = self.pool_cst.get_mut(&key).expect("pool exists");
                if pool.is_empty() || (pool.len() < bs && !force) {
                    break;
                }
                let take = pool.len().min(bs);
                let txns: Vec<Transaction> = pool.drain(..take).collect();
                let id = BatchId(self.next_batch);
                self.next_batch += 1;
                let batch = Arc::new(Batch::new(id, txns));
                self.propose_global(batch, out);
            }
        }
    }

    fn propose_global(&mut self, batch: Arc<Batch>, out: &mut Outbox<ShardedMsg>) {
        let digest = batch_digest(&batch);
        let gseq = self.next_gseq;
        self.next_gseq += 1;
        let involved = batch.involved_shards();
        let msg = ShardedMsg::XPreprepare {
            gseq,
            digest,
            batch: Arc::clone(&batch),
        };
        out.multicast(self.involved_replicas(&involved), &msg);
        // Handle our own copy directly.
        self.on_xpreprepare(digest, batch, out);
    }

    fn on_xpreprepare(&mut self, digest: Digest, batch: Arc<Batch>, out: &mut Outbox<ShardedMsg>) {
        let involved = batch.involved_shards();
        if !involved.contains(&self.me.shard) {
            return;
        }
        {
            let state = self.xtxns.entry(digest).or_default();
            if state.batch.is_some() {
                return;
            }
            state.batch = Some(batch);
            state.involved = involved.clone();
        }
        // Global prepare: broadcast to every involved replica.
        let msg = ShardedMsg::XPrepare {
            gseq: 0,
            digest,
            shard: self.me.shard,
        };
        out.multicast(self.involved_replicas(&involved), &msg);
        let me = (self.me.shard, self.me.index);
        self.on_xprepare(digest, me.0, me.1, out);
    }

    fn quorums_met(&self, votes: &HashMap<ShardId, HashSet<u32>>, involved: &[ShardId]) -> bool {
        !involved.is_empty()
            && involved
                .iter()
                .all(|s| votes.get(s).map_or(0, |v| v.len()) >= self.cfg.shard(*s).nf())
    }

    fn on_xprepare(
        &mut self,
        digest: Digest,
        shard: ShardId,
        from: u32,
        out: &mut Outbox<ShardedMsg>,
    ) {
        let (ready, involved) = {
            let state = self.xtxns.entry(digest).or_default();
            state.prepares.entry(shard).or_default().insert(from);
            (
                state.batch.is_some() && !state.prepared,
                state.involved.clone(),
            )
        };
        if !ready {
            return;
        }
        let met = {
            let state = &self.xtxns[&digest];
            self.quorums_met(&state.prepares, &involved)
        };
        if !met {
            return;
        }
        self.xtxns.get_mut(&digest).expect("state exists").prepared = true;
        let msg = ShardedMsg::XCommit {
            gseq: 0,
            digest,
            shard: self.me.shard,
        };
        out.multicast(self.involved_replicas(&involved), &msg);
        let me = (self.me.shard, self.me.index);
        self.on_xcommit(digest, me.0, me.1, out);
    }

    fn on_xcommit(
        &mut self,
        digest: Digest,
        shard: ShardId,
        from: u32,
        out: &mut Outbox<ShardedMsg>,
    ) {
        let (ready, involved) = {
            let state = self.xtxns.entry(digest).or_default();
            state.commits.entry(shard).or_default().insert(from);
            (
                state.batch.is_some() && !state.executed,
                state.involved.clone(),
            )
        };
        if !ready {
            return;
        }
        let met = {
            let state = &self.xtxns[&digest];
            self.quorums_met(&state.commits, &involved)
        };
        if !met {
            return;
        }
        let batch = {
            let state = self.xtxns.get_mut(&digest).expect("state exists");
            state.executed = true;
            state.batch.clone().expect("checked ready")
        };
        self.executed += 1;
        out.executed(0, batch.len() as u32);
        // The initiator shard answers the client.
        if involved.first() == Some(&self.me.shard) {
            reply_clients(out, digest, &batch);
        }
    }
}

/// Sends one `Reply` per distinct client of `batch`.
fn reply_clients(out: &mut Outbox<ShardedMsg>, digest: Digest, batch: &Batch) {
    let mut by_client: BTreeMap<ClientId, Vec<TxnId>> = BTreeMap::new();
    for t in &batch.txns {
        by_client.entry(t.client).or_default().push(t.id);
    }
    for (client, txn_ids) in by_client {
        out.send(
            NodeId::Client(client),
            ShardedMsg::Reply {
                client,
                digest,
                txn_ids,
            },
        );
    }
}
