//! Scenario harness: runs any of the nine protocols on the simulated
//! 15-region WAN and reports the metrics the paper plots.
//!
//! * [`msg`] — the unified message type with the paper's wire sizes and a
//!   CPU cost model.
//! * [`client`] — closed-loop clients with latency tracking and the A1
//!   timeout broadcast.
//! * [`nodes`] — adapters binding protocol state machines to the
//!   simulator.
//! * [`scenario`] — the [`Scenario`] builder / [`ScenarioReport`] output.

pub mod client;
pub mod msg;
pub mod nodes;
pub mod scenario;

pub use client::{Completion, SimClient};
pub use msg::AnyMsg;
pub use nodes::AnyNode;
pub use scenario::{
    scenario_quorum, DeltaTransferReport, DivergenceReport, DurableRestartReport, HoleReport,
    PhaseReport, PipelineReport, RecoveryReport, Scenario, ScenarioReport,
};

#[cfg(test)]
mod tests {
    use crate::Scenario;
    use ringbft_simnet::FaultPlan;
    use ringbft_types::{
        Duration, Instant, NodeId, ProtocolKind, ReplicaId, ShardId, SystemConfig,
    };

    fn quick(cfg: &mut SystemConfig) {
        cfg.num_keys = 6_000;
        cfg.clients = 40;
        cfg.batch_size = 10;
    }

    #[test]
    fn ringbft_single_shard_workload_progresses() {
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
        quick(&mut cfg);
        cfg.cross_shard_rate = 0.0;
        let r = Scenario::new(cfg, 1)
            .warmup_secs(0.5)
            .measure_secs(2.0)
            .run();
        assert!(r.completed_txns > 0, "no txns completed: {r:?}");
        assert!(r.avg_latency_s > 0.0);
    }

    #[test]
    fn ringbft_cross_shard_workload_progresses() {
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
        quick(&mut cfg);
        cfg.cross_shard_rate = 0.3;
        let r = Scenario::new(cfg, 1)
            .warmup_secs(0.5)
            .measure_secs(3.0)
            .run();
        assert!(r.completed_txns > 0, "no cst completed: {r:?}");
    }

    #[test]
    fn sharper_and_ahl_progress() {
        for kind in [ProtocolKind::Sharper, ProtocolKind::Ahl] {
            let mut cfg = SystemConfig::uniform(kind, 3, 4);
            quick(&mut cfg);
            cfg.cross_shard_rate = 0.3;
            let r = Scenario::new(cfg, 1)
                .warmup_secs(0.5)
                .measure_secs(3.0)
                .run();
            assert!(r.completed_txns > 0, "{kind:?} made no progress: {r:?}");
        }
    }

    #[test]
    fn single_shard_baselines_progress() {
        for kind in [
            ProtocolKind::Pbft,
            ProtocolKind::Zyzzyva,
            ProtocolKind::Sbft,
            ProtocolKind::Poe,
            ProtocolKind::HotStuff,
            ProtocolKind::Rcc,
        ] {
            let mut cfg = SystemConfig::uniform(kind, 1, 4);
            quick(&mut cfg);
            cfg.cross_shard_rate = 0.0;
            cfg.involved_shards = 1;
            let r = Scenario::new(cfg, 1)
                .warmup_secs(0.5)
                .measure_secs(2.0)
                .run();
            assert!(r.completed_txns > 0, "{kind:?} made no progress");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
            quick(&mut cfg);
            Scenario::new(cfg, 7)
                .warmup_secs(0.5)
                .measure_secs(1.5)
                .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.completed_txns, b.completed_txns);
        assert_eq!(a.messages_sent, b.messages_sent);
        assert_eq!(a.bytes_sent, b.bytes_sent);
    }

    /// The simulator-level determinism twin: a replica hosting a
    /// blocking threaded execution stage (`pipeline_workers = 1`) must
    /// produce the *identical* run to the inline stage when the CPU
    /// model is pinned — real worker threads, same event sequence.
    #[test]
    fn threaded_stage_twin_matches_inline_run() {
        let mk = |workers: usize| {
            let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
            quick(&mut cfg);
            cfg.cross_shard_rate = 0.2;
            cfg.pipeline_workers = workers;
            // Pin the CPU model so only the replica-side stage varies.
            Scenario::new(cfg, 7)
                .warmup_secs(0.5)
                .measure_secs(1.5)
                .model_workers(0)
                .run()
        };
        let inline = mk(0);
        let threaded = mk(1);
        assert_eq!(inline.completed_txns, threaded.completed_txns);
        assert_eq!(inline.messages_sent, threaded.messages_sent);
        assert_eq!(inline.bytes_sent, threaded.bytes_sent);
        assert_eq!(inline.view_changes, threaded.view_changes);
        assert_eq!(threaded.pipeline.replica_workers, 1);
        assert_eq!(inline.pipeline.replica_workers, 0);
        assert_eq!(inline.pipeline.exec_jobs, threaded.pipeline.exec_jobs);
    }

    /// Modelling pipeline workers must raise throughput on a saturated
    /// single-shard workload — the knee the core-scaling CI job gates.
    #[test]
    fn modeled_workers_scale_saturated_throughput() {
        let run = |workers: usize| {
            let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 1, 4);
            cfg.num_keys = 6_000;
            cfg.clients = 3_000;
            cfg.batch_size = 50;
            cfg.cross_shard_rate = 0.0;
            cfg.involved_shards = 1;
            Scenario::new(cfg, 11)
                .warmup_secs(0.5)
                .measure_secs(2.0)
                .local_topology(true)
                .model_workers(workers)
                .run()
        };
        let base = run(0);
        let piped = run(4);
        assert!(base.completed_txns > 0);
        assert!(
            piped.throughput_tps > base.throughput_tps * 1.5,
            "4 modeled workers: {} tps vs {} tps inline",
            piped.throughput_tps,
            base.throughput_tps
        );
    }

    #[test]
    fn primary_crash_recovers_via_view_change() {
        let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
        quick(&mut cfg);
        cfg.cross_shard_rate = 0.0;
        // Tighter timers so recovery fits in the run.
        cfg.timers.local = Duration::from_millis(500);
        cfg.timers.remote = Duration::from_millis(1000);
        cfg.timers.transmit = Duration::from_millis(1500);
        cfg.timers.client = Duration::from_millis(2000);
        let crash_at = Instant::ZERO + Duration::from_secs(2);
        let faults =
            FaultPlan::none().crash(NodeId::Replica(ReplicaId::new(ShardId(0), 0)), crash_at);
        let r = Scenario::new(cfg, 3)
            .warmup_secs(1.0)
            .measure_secs(9.0)
            .with_faults(faults)
            .run();
        assert!(r.view_changes > 0, "no view change happened");
        // Throughput resumed after recovery: completions exist late in
        // the run.
        let late: f64 = r
            .timeline
            .iter()
            .filter(|(t, _)| *t >= 7.0)
            .map(|(_, n)| n)
            .sum();
        assert!(
            late > 0.0,
            "no completions after recovery: {:?}",
            r.timeline
        );
    }
}
