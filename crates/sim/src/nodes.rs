//! Adapters wiring every protocol node plus the clients into the
//! discrete-event simulator's [`SimNode`] interface.

use crate::client::SimClient;
use crate::msg::AnyMsg;
use ringbft_baselines::{AhlReplica, SharperReplica};
use ringbft_core::RingReplica;
use ringbft_protocols::SsReplica;
use ringbft_simnet::SimNode;
use ringbft_types::{Action, Instant, NodeId, Outbox, TimerKind};

/// Any node participating in a simulation.
pub enum AnyNode {
    /// A RingBFT replica.
    Ring(Box<RingReplica>),
    /// An AHL node (shard replica or committee member).
    Ahl(Box<AhlReplica>),
    /// A SharPer replica.
    Sharper(Box<SharperReplica>),
    /// A Figure 1 single-shard baseline replica.
    Ss(Box<SsReplica>),
    /// A client host.
    Client(Box<SimClient>),
}

fn lift<M>(actions: Vec<Action<M>>, wrap: impl Fn(M) -> AnyMsg) -> Vec<Action<AnyMsg>> {
    actions.into_iter().map(|a| a.map_msg(&wrap)).collect()
}

impl SimNode<AnyMsg> for AnyNode {
    fn on_start(&mut self, now: Instant) -> Vec<Action<AnyMsg>> {
        match self {
            AnyNode::Client(c) => {
                let mut out = Outbox::new();
                c.on_start(now, &mut out);
                out.take()
            }
            _ => vec![],
        }
    }

    fn on_message(&mut self, now: Instant, from: NodeId, msg: AnyMsg) -> Vec<Action<AnyMsg>> {
        match (self, msg) {
            (AnyNode::Ring(r), AnyMsg::Ring(m)) => {
                let mut out = Outbox::new();
                r.on_message(now, from, m, &mut out);
                lift(out.take(), AnyMsg::Ring)
            }
            (AnyNode::Ahl(r), AnyMsg::Sharded(m)) => {
                let mut out = Outbox::new();
                r.on_message(now, from, m, &mut out);
                lift(out.take(), AnyMsg::Sharded)
            }
            (AnyNode::Sharper(r), AnyMsg::Sharded(m)) => {
                let mut out = Outbox::new();
                r.on_message(now, from, m, &mut out);
                lift(out.take(), AnyMsg::Sharded)
            }
            (AnyNode::Ss(r), AnyMsg::Ss(m)) => {
                let mut out = Outbox::new();
                r.on_message(now, from, m, &mut out);
                lift(out.take(), AnyMsg::Ss)
            }
            (AnyNode::Client(c), m) => {
                let mut out = Outbox::new();
                c.on_message(now, from, m, &mut out);
                out.take()
            }
            _ => vec![], // mismatched protocol traffic is dropped
        }
    }

    fn on_timer(&mut self, now: Instant, kind: TimerKind, token: u64) -> Vec<Action<AnyMsg>> {
        match self {
            AnyNode::Ring(r) => {
                let mut out = Outbox::new();
                r.on_timer(now, kind, token, &mut out);
                lift(out.take(), AnyMsg::Ring)
            }
            AnyNode::Ahl(r) => {
                let mut out = Outbox::new();
                r.on_timer(now, kind, token, &mut out);
                lift(out.take(), AnyMsg::Sharded)
            }
            AnyNode::Sharper(r) => {
                let mut out = Outbox::new();
                r.on_timer(now, kind, token, &mut out);
                lift(out.take(), AnyMsg::Sharded)
            }
            AnyNode::Ss(r) => {
                let mut out = Outbox::new();
                r.on_timer(now, kind, token, &mut out);
                lift(out.take(), AnyMsg::Ss)
            }
            AnyNode::Client(c) => {
                let mut out = Outbox::new();
                c.on_timer(now, kind, token, &mut out);
                out.take()
            }
        }
    }
}
