//! Adapters wiring every protocol node plus the clients into the
//! discrete-event simulator's [`SimNode`] interface.

use crate::client::SimClient;
use crate::msg::AnyMsg;
use ringbft_baselines::{AhlReplica, SharperReplica};
use ringbft_core::RingReplica;
use ringbft_protocols::SsReplica;
use ringbft_simnet::SimNode;
use ringbft_types::{Action, Instant, NodeId, Outbox, Region, ReplicaId, TimerKind};

/// Any node participating in a simulation.
pub enum AnyNode {
    /// A RingBFT replica.
    Ring(Box<RingReplica>),
    /// An AHL node (shard replica or committee member).
    Ahl(Box<AhlReplica>),
    /// A SharPer replica.
    Sharper(Box<SharperReplica>),
    /// A Figure 1 single-shard baseline replica.
    Ss(Box<SsReplica>),
    /// A client host.
    Client(Box<SimClient>),
}

/// Builds the full replica deployment for `cfg`: every replica node the
/// configured protocol needs (including AHL's reference committee),
/// paired with the region hosting it.
///
/// Both drivers use this one factory — the discrete-event scenario
/// harness places each node in its region on the simulated WAN, while
/// `ringbft-net` hosts each node on a socket and ignores the region.
pub fn deployment(cfg: &ringbft_types::SystemConfig) -> Vec<(ReplicaId, Region, AnyNode)> {
    use ringbft_baselines::AhlRole;
    use ringbft_types::{ProtocolKind, ShardId};

    let mut nodes = Vec::new();
    match cfg.protocol {
        ProtocolKind::RingBft => {
            for shard in &cfg.shards {
                for r in shard.replicas() {
                    nodes.push((
                        r,
                        shard.region,
                        AnyNode::Ring(Box::new(RingReplica::new(cfg.clone(), r, false))),
                    ));
                }
            }
        }
        ProtocolKind::Sharper => {
            for shard in &cfg.shards {
                for r in shard.replicas() {
                    nodes.push((
                        r,
                        shard.region,
                        AnyNode::Sharper(Box::new(SharperReplica::new(cfg.clone(), r))),
                    ));
                }
            }
        }
        ProtocolKind::Ahl => {
            for shard in &cfg.shards {
                for r in shard.replicas() {
                    nodes.push((
                        r,
                        shard.region,
                        AnyNode::Ahl(Box::new(AhlReplica::new(cfg.clone(), r, AhlRole::Shard))),
                    ));
                }
            }
            // The reference committee lives in the first region.
            let cshard = AhlReplica::committee_shard_of(cfg);
            for i in 0..AhlReplica::committee_size(cfg) as u32 {
                let r = ReplicaId::new(cshard, i);
                nodes.push((
                    r,
                    cfg.shards[0].region,
                    AnyNode::Ahl(Box::new(AhlReplica::new(
                        cfg.clone(),
                        r,
                        AhlRole::Committee,
                    ))),
                ));
            }
        }
        // Fully-replicated baselines: one group spread over regions.
        kind => {
            let n = cfg.shards[0].n;
            for i in 0..n as u32 {
                let r = ReplicaId::new(ShardId(0), i);
                nodes.push((
                    r,
                    Region::ALL[i as usize % Region::ALL.len()],
                    AnyNode::Ss(Box::new(SsReplica::new(
                        kind,
                        r,
                        n,
                        cfg.batch_size,
                        cfg.timers.local,
                    ))),
                ));
            }
        }
    }
    nodes
}

impl AnyNode {
    /// Registry snapshot of this node's metrics as stable JSON, when the
    /// protocol is instrumented (RingBFT replicas for now).
    pub fn metrics_json(&self) -> Option<String> {
        match self {
            AnyNode::Ring(r) => Some(r.metrics_json()),
            _ => None,
        }
    }

    /// This node's event trace as JSON lines, when instrumented.
    pub fn trace_jsonl(&self) -> Option<String> {
        match self {
            AnyNode::Ring(r) => Some(r.trace_jsonl()),
            _ => None,
        }
    }

    /// Read access to a RingBFT replica's phase histograms.
    pub fn ring_obs(&self) -> Option<&ringbft_core::ReplicaObs> {
        match self {
            AnyNode::Ring(r) => Some(r.obs()),
            _ => None,
        }
    }
}

fn lift<M>(actions: Vec<Action<M>>, wrap: impl Fn(M) -> AnyMsg) -> Vec<Action<AnyMsg>> {
    actions.into_iter().map(|a| a.map_msg(&wrap)).collect()
}

impl SimNode<AnyMsg> for AnyNode {
    fn on_start(&mut self, now: Instant) -> Vec<Action<AnyMsg>> {
        match self {
            AnyNode::Client(c) => {
                let mut out = Outbox::new();
                c.on_start(now, &mut out);
                out.take()
            }
            _ => vec![],
        }
    }

    fn on_message(&mut self, now: Instant, from: NodeId, msg: AnyMsg) -> Vec<Action<AnyMsg>> {
        match (self, msg) {
            (AnyNode::Ring(r), AnyMsg::Ring(m)) => {
                let mut out = Outbox::new();
                r.on_message(now, from, m, &mut out);
                lift(out.take(), AnyMsg::Ring)
            }
            (AnyNode::Ahl(r), AnyMsg::Sharded(m)) => {
                let mut out = Outbox::new();
                r.on_message(now, from, m, &mut out);
                lift(out.take(), AnyMsg::Sharded)
            }
            (AnyNode::Sharper(r), AnyMsg::Sharded(m)) => {
                let mut out = Outbox::new();
                r.on_message(now, from, m, &mut out);
                lift(out.take(), AnyMsg::Sharded)
            }
            (AnyNode::Ss(r), AnyMsg::Ss(m)) => {
                let mut out = Outbox::new();
                r.on_message(now, from, m, &mut out);
                lift(out.take(), AnyMsg::Ss)
            }
            (AnyNode::Client(c), m) => {
                let mut out = Outbox::new();
                c.on_message(now, from, m, &mut out);
                out.take()
            }
            _ => vec![], // mismatched protocol traffic is dropped
        }
    }

    fn on_pump(&mut self, now: Instant) -> Vec<Action<AnyMsg>> {
        match self {
            AnyNode::Ring(r) => {
                let mut out = Outbox::new();
                r.pump(now, &mut out);
                lift(out.take(), AnyMsg::Ring)
            }
            // No other node hosts an off-thread stage.
            _ => vec![],
        }
    }

    fn on_timer(&mut self, now: Instant, kind: TimerKind, token: u64) -> Vec<Action<AnyMsg>> {
        match self {
            AnyNode::Ring(r) => {
                let mut out = Outbox::new();
                r.on_timer(now, kind, token, &mut out);
                lift(out.take(), AnyMsg::Ring)
            }
            AnyNode::Ahl(r) => {
                let mut out = Outbox::new();
                r.on_timer(now, kind, token, &mut out);
                lift(out.take(), AnyMsg::Sharded)
            }
            AnyNode::Sharper(r) => {
                let mut out = Outbox::new();
                r.on_timer(now, kind, token, &mut out);
                lift(out.take(), AnyMsg::Sharded)
            }
            AnyNode::Ss(r) => {
                let mut out = Outbox::new();
                r.on_timer(now, kind, token, &mut out);
                lift(out.take(), AnyMsg::Ss)
            }
            AnyNode::Client(c) => {
                let mut out = Outbox::new();
                c.on_timer(now, kind, token, &mut out);
                out.take()
            }
        }
    }
}
