//! Simulated clients: closed-loop request issue, reply-quorum collection,
//! latency recording, and the A1 timeout-broadcast fallback (§5).
//!
//! One [`SimClient`] node hosts many *logical* clients (the paper runs up
//! to 50 k): each logical client keeps one transaction in flight; when a
//! transaction completes (f+1 matching replies — protocol-dependent
//! quorum), the hosting node immediately issues that client's next
//! transaction. Total in-flight load therefore equals
//! `SystemConfig::clients`, the knob of Fig 8 XI–XII.
//!
//! [`SimClient::set_open_loop`] switches the host to *open-loop*
//! issue: transactions are injected on an [`ArrivalProcess`] schedule
//! (Poisson or bursty), independent of completions, so offered load no
//! longer self-throttles when the system slows down — the mode that
//! exposes the throughput knee. Open-loop hosts round-robin arrivals
//! over their logical clients and skip the per-transaction A1 retry
//! timer: a retry would add load the arrival process didn't offer,
//! corrupting the latency-vs-offered-load curve at overload.

use crate::msg::AnyMsg;
use ringbft_baselines::{sharper_initiator, AhlReplica, ShardedMsg};
use ringbft_core::RingMsg;
use ringbft_crypto::Digest;
use ringbft_protocols::{SsMsg, SsReplica};
use ringbft_types::txn::Transaction;
use ringbft_types::{
    ClientId, Instant, NodeId, Outbox, ProtocolKind, ReplicaId, RingOrder, ShardId, SystemConfig,
    TimerKind, TxnId,
};
use ringbft_workload::arrivals::{ArrivalGen, ArrivalProcess};
use ringbft_workload::WorkloadGen;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Timer token reserved for the open-loop arrival tick. Transaction
/// ids are namespaced (`ns << 24 | counter`, `ns ≥ 1`), so token 0 can
/// never collide with a per-transaction retry timer.
const ARRIVAL_TOKEN: u64 = 0;

/// A completed transaction's timing.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// When the request was first sent.
    pub sent: Instant,
    /// When the reply quorum completed.
    pub done: Instant,
    /// The trace context the client stamped on the transaction, when it
    /// was sampled (`SystemConfig::trace_sample_rate`).
    pub trace: Option<ringbft_types::TraceContext>,
    /// True when the transaction involved more than one shard.
    pub cross_shard: bool,
}

struct InFlight {
    sent: Instant,
    client: ClientId,
    target_shard: ShardId,
    /// Kept for the A1 re-broadcast.
    txn: Arc<Transaction>,
}

/// A client host node.
pub struct SimClient {
    cfg: SystemConfig,
    gen: WorkloadGen,
    ring: RingOrder,
    /// Logical clients hosted here.
    logical: Vec<ClientId>,
    quorum: usize,
    in_flight: HashMap<TxnId, InFlight>,
    reply_votes: HashMap<Digest, HashSet<ReplicaId>>,
    reply_txns: HashMap<Digest, Vec<TxnId>>,
    // (extended as replies arrive)
    confirmed: HashSet<Digest>,
    /// Preferred replica index per shard: rotated when requests to that
    /// shard time out, so clients stop addressing a crashed primary
    /// (replicas relay to whoever the current primary is, §5 A1).
    preferred: HashMap<ShardId, u32>,
    /// Completed transactions with timings.
    pub completions: Vec<Completion>,
    /// Enable the A1 timeout broadcast.
    pub retry_enabled: bool,
    req_counter: u64,
    /// Open-loop issue state (`None` = closed loop).
    open_loop: Option<OpenLoop>,
    /// When each transaction was issued (open-loop hosts only; the
    /// scenario counts these inside the measurement window to report
    /// the rate actually offered).
    pub issued: Vec<Instant>,
}

/// Arrival-driven issue state of an open-loop host.
struct OpenLoop {
    arrivals: ArrivalGen,
    /// Round-robin cursor over `logical`.
    next_client: usize,
}

impl SimClient {
    /// Creates a host for logical clients `first_id..first_id+count`.
    pub fn new(cfg: SystemConfig, seed: u64, first_id: u64, count: u64) -> Self {
        let quorum = reply_quorum(&cfg);
        let ring = cfg.ring_order();
        let mut gen = WorkloadGen::new(cfg.clone(), seed);
        gen.set_txn_namespace(first_id);
        SimClient {
            gen,
            ring,
            logical: (first_id..first_id + count).map(ClientId).collect(),
            quorum,
            in_flight: HashMap::new(),
            reply_votes: HashMap::new(),
            reply_txns: HashMap::new(),
            confirmed: HashSet::new(),
            preferred: HashMap::new(),
            completions: Vec::new(),
            retry_enabled: true,
            req_counter: 0,
            open_loop: None,
            issued: Vec::new(),
            cfg,
        }
    }

    /// Switches this host to open-loop issue: transactions arrive on
    /// `process`'s schedule (deterministic in `seed`) instead of one
    /// per completed predecessor. Call before the host is started.
    pub fn set_open_loop(&mut self, process: ArrivalProcess, seed: u64) {
        self.open_loop = Some(OpenLoop {
            arrivals: ArrivalGen::new(process, seed),
            next_client: 0,
        });
    }

    /// Node ids of every replica of `shard` (for the A1 broadcast).
    /// Handles AHL's committee pseudo-shard (id = z).
    fn shard_replicas(&self, shard: ShardId) -> Vec<NodeId> {
        if shard.index() >= self.cfg.z() {
            let n = AhlReplica::committee_size(&self.cfg) as u32;
            return (0..n)
                .map(|i| NodeId::Replica(ReplicaId::new(shard, i)))
                .collect();
        }
        self.cfg
            .shard(shard)
            .replicas()
            .map(NodeId::Replica)
            .collect()
    }

    fn wrap(&self, txn: Arc<Transaction>, relayed: bool) -> AnyMsg {
        match self.cfg.protocol {
            ProtocolKind::RingBft => AnyMsg::Ring(RingMsg::Request { txn, relayed }),
            ProtocolKind::Ahl | ProtocolKind::Sharper => {
                AnyMsg::Sharded(ShardedMsg::Request { txn, relayed })
            }
            _ => AnyMsg::Ss(SsMsg::Request { txn, relayed }),
        }
    }

    fn preferred_index(&self, shard: ShardId) -> u32 {
        self.preferred.get(&shard).copied().unwrap_or(0)
    }

    /// Where a fresh transaction must be sent (§4.3.1 and the baselines'
    /// §2 routing rules). Clients remember a preferred replica per shard
    /// and rotate it when requests time out.
    fn target_for(&mut self, txn: &Transaction) -> ReplicaId {
        let involved = txn.involved_shards();
        match self.cfg.protocol {
            ProtocolKind::RingBft => {
                let shard = self.ring.first(&involved);
                ReplicaId::new(shard, self.preferred_index(shard))
            }
            ProtocolKind::Sharper => {
                let shard = sharper_initiator(txn);
                ReplicaId::new(shard, self.preferred_index(shard))
            }
            ProtocolKind::Ahl => {
                if involved.len() > 1 {
                    let shard = AhlReplica::committee_shard_of(&self.cfg);
                    ReplicaId::new(shard, self.preferred_index(shard))
                } else {
                    ReplicaId::new(involved[0], self.preferred_index(involved[0]))
                }
            }
            kind => {
                self.req_counter += 1;
                let n = self.cfg.shards[0].n;
                ReplicaId::new(
                    ShardId(0),
                    SsReplica::request_target(kind, n, self.req_counter),
                )
            }
        }
    }

    fn issue(&mut self, now: Instant, client: ClientId, out: &mut Outbox<AnyMsg>) {
        let mut txn = self.gen.next_txn(client);
        // Causal tracing: deterministically sample by transaction id so
        // every driver (sim, TCP, tests) agrees on which transactions
        // carry a trace without coordination.
        if ringbft_types::trace::sampled(txn.id.0, self.cfg.trace_sample_rate) {
            txn.trace = Some(ringbft_types::TraceContext::new(
                ringbft_types::trace::trace_id_for(txn.id.0),
            ));
        }
        let id = txn.id;
        let target = self.target_for(&txn);
        let txn = Arc::new(txn);
        self.in_flight.insert(
            id,
            InFlight {
                sent: now,
                client,
                target_shard: target.shard,
                txn: Arc::clone(&txn),
            },
        );
        out.send(NodeId::Replica(target), self.wrap(Arc::clone(&txn), false));
        if self.open_loop.is_some() {
            self.issued.push(now);
        } else if self.retry_enabled {
            out.set_timer(TimerKind::Client, id.0, self.cfg.timers.client);
        }
    }

    /// Starts issue: the initial closed-loop window (one transaction
    /// per logical client), or the first open-loop arrival tick.
    pub fn on_start(&mut self, now: Instant, out: &mut Outbox<AnyMsg>) {
        if self.open_loop.is_some() {
            self.schedule_arrival(out);
            return;
        }
        let clients: Vec<ClientId> = self.logical.clone();
        for c in clients {
            self.issue(now, c, out);
        }
    }

    /// Arms the timer for the next open-loop arrival.
    fn schedule_arrival(&mut self, out: &mut Outbox<AnyMsg>) {
        let ol = self.open_loop.as_mut().expect("open-loop host");
        let gap = ol.arrivals.next_interarrival();
        out.set_timer(TimerKind::Client, ARRIVAL_TOKEN, gap);
    }

    /// Handles a reply.
    pub fn on_message(
        &mut self,
        now: Instant,
        from: NodeId,
        msg: AnyMsg,
        out: &mut Outbox<AnyMsg>,
    ) {
        let (digest, txn_ids) = match msg {
            AnyMsg::Ring(RingMsg::Reply {
                digest, txn_ids, ..
            })
            | AnyMsg::Sharded(ShardedMsg::Reply {
                digest, txn_ids, ..
            })
            | AnyMsg::Ss(SsMsg::Reply {
                digest, txn_ids, ..
            }) => (digest, txn_ids),
            _ => return,
        };
        let NodeId::Replica(sender) = from else {
            return;
        };
        // Remember a live replica of this shard: replies prove liveness,
        // so later requests stop addressing a crashed ex-primary.
        self.preferred.insert(sender.shard, sender.index);
        // A host serves many logical clients; replicas reply per client,
        // so several distinct replies share one batch digest. Once the
        // digest reaches its quorum, every transaction it covers —
        // including ones named only by later replies — is complete.
        if self.confirmed.contains(&digest) {
            self.complete(now, txn_ids, out);
            return;
        }
        let votes = self.reply_votes.entry(digest).or_default();
        votes.insert(sender);
        let votes_len = votes.len();
        self.reply_txns.entry(digest).or_default().extend(txn_ids);
        if votes_len < self.quorum {
            return;
        }
        self.confirmed.insert(digest);
        self.reply_votes.remove(&digest);
        let ids = self.reply_txns.remove(&digest).unwrap_or_default();
        self.complete(now, ids, out);
    }

    fn complete(&mut self, now: Instant, ids: Vec<TxnId>, out: &mut Outbox<AnyMsg>) {
        let open_loop = self.open_loop.is_some();
        for id in ids {
            let Some(fl) = self.in_flight.remove(&id) else {
                continue; // already completed via an earlier reply
            };
            if !open_loop {
                out.cancel_timer(TimerKind::Client, id.0);
            }
            self.completions.push(Completion {
                sent: fl.sent,
                done: now,
                trace: fl.txn.trace,
                cross_shard: fl.txn.involved_shards().len() > 1,
            });
            // Closed loop: the logical client immediately issues its next
            // transaction. (Open loop: the arrival process alone decides
            // when the next transaction goes out.)
            if !open_loop {
                self.issue(now, fl.client, out);
            }
        }
    }

    /// Handles the per-transaction response timer (A1): on expiry the
    /// client "broadcasts Tℑ to all the replicas" of the target shard.
    pub fn on_timer(
        &mut self,
        now: Instant,
        kind: TimerKind,
        token: u64,
        out: &mut Outbox<AnyMsg>,
    ) {
        if kind != TimerKind::Client {
            return;
        }
        if token == ARRIVAL_TOKEN {
            if let Some(ol) = self.open_loop.as_mut() {
                let client = self.logical[ol.next_client % self.logical.len()];
                ol.next_client = ol.next_client.wrapping_add(1);
                self.issue(now, client, out);
                self.schedule_arrival(out);
            }
            return;
        }
        let id = TxnId(token);
        let Some(fl) = self.in_flight.get(&id) else {
            return; // completed meanwhile
        };
        let shard = fl.target_shard;
        let txn = Arc::clone(&fl.txn);
        // A1: broadcast the original transaction to every replica of the
        // target shard; non-primary replicas relay it to their current
        // primary and watch it (§5).
        for node in self.shard_replicas(shard) {
            out.send(node, self.wrap(Arc::clone(&txn), false));
        }
        // Rotate the preferred replica for this shard: the old target may
        // be crashed; any live replica relays to the real primary.
        let n = if shard.index() >= self.cfg.z() {
            AhlReplica::committee_size(&self.cfg) as u32
        } else {
            self.cfg.shard(shard).n as u32
        };
        let e = self.preferred.entry(shard).or_insert(0);
        *e = (*e + 1) % n;
        let _ = now;
        out.set_timer(TimerKind::Client, token, self.cfg.timers.client);
    }

    /// Number of transactions still in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }
}

/// Reply quorum per protocol (§4: `f + 1` identical responses; Zyzzyva's
/// fast path needs all `n`; SBFT's collector sends one certified reply).
pub fn reply_quorum(cfg: &SystemConfig) -> usize {
    let n = cfg.shards[0].n;
    match cfg.protocol {
        ProtocolKind::RingBft | ProtocolKind::Ahl | ProtocolKind::Sharper => cfg.shards[0].f() + 1,
        kind => SsReplica::reply_quorum(kind, n),
    }
}
