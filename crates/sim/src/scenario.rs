//! The scenario runner: builds a full deployment (replicas, AHL's
//! committee, client hosts), runs it on the simulated WAN, and reports
//! the metrics the paper's figures plot — throughput, average latency,
//! a per-second throughput timeline (Fig 9), and view-change counts.

use crate::client::{reply_quorum, SimClient};
use crate::msg::AnyMsg;
use crate::nodes::AnyNode;
use ringbft_core::RingReplica;
use ringbft_core::{Phase, RingMsg};
use ringbft_obs::{Histogram, SpanCollector, SpanTimeline};
use ringbft_pbft::PbftMsg;
use ringbft_recovery::ReplicaWal;
use ringbft_simnet::{FaultPlan, Topology, World};
use ringbft_store::MemWalHandle;
use ringbft_types::{ClientId, Duration, Instant, NodeId, Region, ReplicaId, SystemConfig};

/// Metrics of a crash + blank-restart recovery pass (set when the
/// scenario was built with [`Scenario::with_blank_restart`]).
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// When the replica was restarted blank (seconds into the run).
    pub restart_s: f64,
    /// Seconds from the blank restart to the replica's first post-restart
    /// execution (it installed a snapshot and re-entered the execution
    /// path); `None` if it never caught up within the run.
    pub catchup_s: Option<f64>,
    /// Client throughput over the window after the restart, txn/s.
    pub post_restart_tps: f64,
    /// Installs whose transfer shipped a full snapshot link. A blank
    /// restart advertises no base, so donors must answer with the full
    /// fallback — this stays ≥ 1 under delta checkpointing.
    pub full_installs: u64,
    /// Installs recovered via a pure delta chain.
    pub delta_installs: u64,
    /// Transfers the restarted replica rejected at verification (must
    /// stay 0 with correct donors).
    pub bad_digests: u64,
}

/// Metrics of a crash + *durable* restart pass (set when the scenario
/// was built with [`Scenario::with_durable_restart`]): the victim ran
/// with a write-ahead ledger, was killed mid-batch (its log's unsynced
/// tail lost — power-loss semantics, strictly harder than a process
/// kill), and restarted by replaying the local log and topping up only
/// the tail via the existing delta-chain transfer.
#[derive(Debug, Clone, Copy)]
pub struct DurableRestartReport {
    /// The replica that was killed and durably restarted.
    pub replica: ReplicaId,
    /// When it was restarted (seconds into the run).
    pub restart_s: f64,
    /// Seconds from the restart to its first post-restart execution;
    /// `None` if it never caught up within the run.
    pub catchup_s: Option<f64>,
    /// Bytes replayed from the local durable log at restart (what a
    /// blank restart would instead have pulled over the wire).
    pub restart_bytes_local: u64,
    /// Checkpoint sequence the local replay restored (0 = no durable
    /// checkpoint survived; blank-restart semantics applied).
    pub recovered_seq: u64,
    /// Modeled wire bytes of state transfer the restarted incarnation
    /// accepted — the tail top-up only.
    pub restart_bytes_transferred: u64,
    /// Modeled wire bytes a *blank* restart would have transferred (a
    /// full-snapshot chain over the victim's final store) — the
    /// baseline the tail top-up is gated against.
    pub blank_baseline_bytes: u64,
    /// Snapshot installs by the restarted incarnation.
    pub installs: u64,
    /// … of which pure delta chains (the expected tail top-up path).
    pub delta_installs: u64,
    /// … and full-snapshot fallbacks.
    pub full_installs: u64,
    /// Transfers the restarted replica rejected at verification.
    pub bad_digests: u64,
    /// Syncs the restarted incarnation's log performed (group-commit
    /// cadence under batched durability).
    pub wal_syncs: u64,
    /// Bytes in the log at the end of the run.
    pub wal_len_bytes: u64,
    /// The victim ended on a stable checkpoint whose store fingerprint
    /// matches a same-shard peer at the same checkpoint sequence.
    pub fingerprint_ok: bool,
    /// The victim's execution watermark at the end of the run.
    pub exec_watermark: u64,
    /// The highest same-shard peer watermark at the end of the run.
    pub peer_max_watermark: u64,
}

/// Post-run state of one checkpoint-divergence pass (set per
/// [`Scenario::with_divergence`]): one replica's store was corrupted in
/// place mid-run, its next checkpoint announcement lost the quorum
/// vote, and the rollback-and-refetch path must reconverge it onto
/// verified quorum state.
#[derive(Debug, Clone, Copy)]
pub struct DivergenceReport {
    /// The replica whose store was corrupted.
    pub replica: ReplicaId,
    /// When the corruption was injected (seconds into the run).
    pub at_s: f64,
    /// Divergent checkpoint votes the victim observed (≥ 1 once the
    /// corrupt window reached a quorum decision).
    pub divergences: u64,
    /// Snapshot installs by the victim — the refetch path ran.
    pub installs: u64,
    /// Transfers the victim rejected at verification.
    pub bad_digests: u64,
    /// Still in rolled-back (diverged) mode at the end of the run.
    pub diverged_at_end: bool,
    /// The victim ended on a stable checkpoint whose store fingerprint
    /// matches a same-shard peer at the same checkpoint sequence.
    pub fingerprint_ok: bool,
    /// The victim's last stable checkpoint at the end of the run.
    pub stable_seq: u64,
    /// The victim's execution watermark at the end of the run.
    pub exec_watermark: u64,
    /// The highest same-shard peer watermark at the end of the run.
    pub peer_max_watermark: u64,
}

/// Post-run state of one delta state-transfer pass (set per
/// [`Scenario::with_delta_transfer`]): the victim was partitioned from
/// all inbound traffic for a window, fell behind its shard's stable
/// checkpoint frontier, and must catch up via a *delta chain* — moving
/// O(churn) bytes, not O(state).
#[derive(Debug, Clone, Copy)]
pub struct DeltaTransferReport {
    /// The replica that was made dark.
    pub replica: ReplicaId,
    /// Darkness start (seconds into the run).
    pub dark_from_s: f64,
    /// Darkness end.
    pub dark_until_s: f64,
    /// Installs recovered via a pure delta chain.
    pub delta_installs: u64,
    /// Installs that fell back to a full snapshot link (should stay 0
    /// when the victim's base is one window behind).
    pub full_installs: u64,
    /// Modeled wire bytes of delta chunks the victim accepted.
    pub delta_bytes: u64,
    /// Modeled wire bytes of full-snapshot chunks the victim accepted.
    pub full_bytes: u64,
    /// Modeled wire bytes a *full* snapshot transfer of the victim's
    /// final store would have moved (plan + chunked records) — the
    /// baseline the delta bytes are gated against.
    pub full_baseline_bytes: u64,
    /// Transfers rejected at verification (must stay 0 with correct
    /// donors).
    pub bad_digests: u64,
    /// The victim's execution watermark at the end of the run.
    pub exec_watermark: u64,
    /// The highest same-shard peer watermark at the end of the run.
    pub peer_max_watermark: u64,
    /// The victim's last stable checkpoint at the end of the run.
    pub stable_seq: u64,
}

impl DeltaTransferReport {
    /// Total modeled state-transfer bytes the victim accepted.
    pub fn transfer_bytes(&self) -> u64 {
        self.delta_bytes + self.full_bytes
    }
}

/// Post-run state of one injected commit hole (set per
/// [`Scenario::with_commit_hole`]): did the victim repair the missed
/// sequence via hole fetch (certificate recovery) rather than waiting
/// for checkpoint state transfer, and did checkpoint cadence survive?
#[derive(Debug, Clone, Copy)]
pub struct HoleReport {
    /// The replica whose quorum traffic was suppressed.
    pub replica: ReplicaId,
    /// The sequence number it was made to miss.
    pub seq: u64,
    /// Seconds into the run when the victim executed the held sequence
    /// (`None` = it never recovered within the run).
    pub resumed_s: Option<f64>,
    /// Commit certificates the victim fetched and installed.
    pub holes_filled: u64,
    /// HoleRequests the victim sent.
    pub hole_requests: u64,
    /// Forged/corrupt replies the victim rejected (must stay 0 with
    /// correct donors).
    pub bad_replies: u64,
    /// Checkpoint snapshots the victim installed (0 = it recovered via
    /// hole fetch alone, never falling back to full state transfer).
    pub snapshot_installs: u64,
    /// The victim's execution watermark at the end of the run.
    pub exec_watermark: u64,
    /// The victim's last stable checkpoint at the end of the run —
    /// cadence survived iff this advanced past `seq`.
    pub stable_seq: u64,
}

/// Latency summary of one consensus phase, merged across every
/// instrumented replica in the deployment.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Stable phase-timer name (e.g. `phase.preprepare_commit`).
    pub name: &'static str,
    /// Samples recorded across all replicas.
    pub count: u64,
    /// Mean phase latency in seconds.
    pub mean_s: f64,
    /// Median phase latency in seconds.
    pub p50_s: f64,
    /// 99th-percentile phase latency in seconds.
    pub p99_s: f64,
}

/// One sampled cross-shard transaction's assembled ring-hop timeline.
#[derive(Debug, Clone)]
pub struct CstTimeline {
    /// The transaction's 64-bit trace id.
    pub trace_id: u64,
    /// Client-observed end-to-end latency in seconds (`None` when the
    /// transaction completed outside the run or its completion record
    /// was not matched).
    pub client_s: Option<f64>,
    /// Highest ring-hop position stamped.
    pub hops: u32,
    /// Shards that stamped at least one span.
    pub shards: Vec<u64>,
    /// Ring-hop breakdown in causal order: per `(hop, phase)` step the
    /// worst duration any replica reported, in seconds.
    pub steps: Vec<(u32, &'static str, f64)>,
    /// Critical-path estimate (sum of the steps), seconds.
    pub critical_path_s: f64,
    /// The raw assembled spans, for callers wanting other cuts.
    pub timeline: SpanTimeline,
}

/// Cross-shard causal-tracing summary of one run.
#[derive(Debug, Clone, Default)]
pub struct TracingReport {
    /// Configured sample rate (`SystemConfig::trace_sample_rate`; 0 =
    /// tracing off, and the rest of this report is empty).
    pub sample_rate: u64,
    /// Completed transactions that carried a trace context.
    pub sampled_txns: u64,
    /// Sampled *cross-shard* transactions with an assembled timeline.
    pub sampled_csts: u64,
    /// Mean highest-hop across sampled cst timelines.
    pub mean_hops: f64,
    /// Duplicate span events dropped during assembly.
    pub duplicate_spans: u64,
    /// Assembled sampled-cst timelines, ordered by trace id.
    pub csts: Vec<CstTimeline>,
    /// Critical-path summary of the p99 client-latency bucket: per
    /// `(hop, phase)` step, the mean worst-replica duration (seconds)
    /// across the sampled csts at or above the p99 latency.
    pub p99_critical_path: Vec<(u32, &'static str, f64)>,
}

/// Registry name of a span's phase index (RingBFT pipeline order).
fn phase_name(idx: u64) -> &'static str {
    Phase::ALL
        .get(idx as usize)
        .map(|p| p.name())
        .unwrap_or("phase.unknown")
}

/// Ring-hop breakdown of one timeline: per `(hop, phase)` step the
/// worst duration any replica reported, in causal order.
fn timeline_steps(t: &SpanTimeline) -> Vec<(u32, &'static str, f64)> {
    let mut worst: std::collections::BTreeMap<(u32, u64), u64> = std::collections::BTreeMap::new();
    for s in &t.spans {
        let w = worst.entry((s.hop, s.phase)).or_insert(0);
        *w = (*w).max(s.dur_ns);
    }
    worst
        .into_iter()
        .map(|((hop, phase), ns)| (hop, phase_name(phase), ns as f64 / 1e9))
        .collect()
}

/// Execution-pipeline accounting of one run: what the CPU model
/// offloaded and what the replicas' execution stages did.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineReport {
    /// Pipeline workers modelled by the simulator's CPU scheduler
    /// ([`ringbft_simnet::World::set_workers`]).
    pub modeled_workers: usize,
    /// Largest `pipeline.workers` gauge across replicas (the execution
    /// stage threads each replica actually hosts; 0 = inline).
    pub replica_workers: u64,
    /// Batches run through the execution stage, summed over replicas.
    pub exec_jobs: u64,
    /// Submissions that found another batch already in flight (only an
    /// async stage overlaps, so this stays 0 for inline/blocking runs).
    pub exec_parallel_batches: u64,
    /// Frames whose verification ran on a worker, summed over replicas.
    pub verify_offloaded: u64,
    /// Frames verified inline on the reactor thread.
    pub verify_inline: u64,
    /// Cumulative worker busy nanoseconds, summed over replicas.
    pub worker_busy_ns: u64,
    /// Cumulative worker idle nanoseconds, summed over replicas.
    pub worker_idle_ns: u64,
    /// Sub-`batch_size` batches cut early by the adaptive controller
    /// because the consensus pipe was idle, summed over replicas
    /// (stays 0 unless `adaptive_batching` is on).
    pub batch_adaptive_flushes: u64,
}

/// Metrics of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Completed transactions inside the measurement window.
    pub completed_txns: u64,
    /// Client-observed throughput, transactions per second.
    pub throughput_tps: f64,
    /// Average client latency in seconds.
    pub avg_latency_s: f64,
    /// Median client latency in seconds.
    pub p50_latency_s: f64,
    /// 95th-percentile client latency in seconds.
    pub p95_latency_s: f64,
    /// 99th-percentile client latency in seconds.
    pub p99_latency_s: f64,
    /// 99.9th-percentile client latency in seconds.
    pub p999_latency_s: f64,
    /// Mergeable log-bucketed histogram behind the quantiles above
    /// (nanosecond values), for callers that want other cuts.
    pub latency_hist: Histogram,
    /// Per-phase consensus latency breakdown, merged across replicas.
    /// Empty for protocols without phase instrumentation.
    pub phases: Vec<PhaseReport>,
    /// Per-node event traces (node label, JSON lines), one entry per
    /// instrumented replica with a non-empty ring. The fault matrix
    /// dumps these when a scenario assertion fails.
    pub traces: Vec<(String, String)>,
    /// Per-second throughput timeline over the whole run (Fig 9).
    pub timeline: Vec<(f64, f64)>,
    /// Distinct view-change events observed.
    pub view_changes: usize,
    /// Messages sent on the simulated network.
    pub messages_sent: u64,
    /// Bytes sent on the simulated network.
    pub bytes_sent: u64,
    /// Cross-shard causal-tracing summary (sampled-cst timelines and
    /// the p99 critical path). Empty when `trace_sample_rate` is 0.
    pub tracing: TracingReport,
    /// Crash/blank-restart recovery metrics, when configured.
    pub recovery: Option<RecoveryReport>,
    /// Crash/durable-restart recovery metrics, when configured.
    pub durable_restart: Option<DurableRestartReport>,
    /// Checkpoint-divergence repair metrics, one per corrupted replica.
    pub divergences: Vec<DivergenceReport>,
    /// Commit-hole repair metrics, one per injected hole.
    pub holes: Vec<HoleReport>,
    /// Delta state-transfer metrics, one per darkened replica.
    pub delta_transfers: Vec<DeltaTransferReport>,
    /// Execution-pipeline accounting (workers, offload, overlap).
    pub pipeline: PipelineReport,
    /// Open-loop arrival accounting, when the scenario was built with
    /// [`Scenario::open_loop`]. `None` for closed-loop runs.
    pub open_loop: Option<OpenLoopReport>,
}

/// Arrival accounting of an open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopReport {
    /// Configured target arrival rate, transactions per second.
    pub offered_tps: f64,
    /// Transactions the hosts actually injected inside the measurement
    /// window (the realized offered load — converges on
    /// `offered_tps × measure_secs` as the window grows).
    pub issued_txns: u64,
    /// Transactions still awaiting their reply quorum at the end of
    /// the run. Growth past the issue/completion balance point is the
    /// overload signature closed-loop clients cannot show.
    pub in_flight_at_end: u64,
}

/// A configurable experiment.
pub struct Scenario {
    cfg: SystemConfig,
    seed: u64,
    warmup: Duration,
    measure: Duration,
    faults: FaultPlan,
    local_topology: bool,
    clients_per_host: u64,
    bandwidth_divisor: u64,
    blank_restart: Option<(f64, f64, ReplicaId)>,
    durable_restart: Option<(f64, f64, ReplicaId)>,
    divergences: Vec<(ReplicaId, f64)>,
    commit_holes: Vec<(ReplicaId, u64)>,
    delta_transfers: Vec<(ReplicaId, f64, f64)>,
    model_workers: Option<usize>,
    open_loop: Option<ringbft_workload::arrivals::ArrivalProcess>,
}

impl Scenario {
    /// New scenario over `cfg` with a deterministic seed.
    pub fn new(cfg: SystemConfig, seed: u64) -> Self {
        Scenario {
            cfg,
            seed,
            warmup: Duration::from_secs(1),
            measure: Duration::from_secs(3),
            faults: FaultPlan::none(),
            local_topology: false,
            clients_per_host: 200,
            bandwidth_divisor: 1,
            blank_restart: None,
            durable_restart: None,
            divergences: Vec::new(),
            commit_holes: Vec::new(),
            delta_transfers: Vec::new(),
            model_workers: None,
            open_loop: None,
        }
    }

    /// Drives the clients open-loop: transactions arrive on `process`'s
    /// schedule (its rate split evenly across the client hosts) instead
    /// of one-per-completion. The report's `open_loop` field records
    /// the realized offered load; sweeping the rate and reading where
    /// throughput stops tracking it locates the knee.
    pub fn open_loop(mut self, process: ringbft_workload::arrivals::ArrivalProcess) -> Self {
        self.open_loop = Some(process);
        self
    }

    /// Overrides the number of pipeline workers the simulator's CPU
    /// scheduler models (offloadable message costs overlap with the
    /// ordering core). Defaults to the config's `pipeline_workers`, so
    /// a threaded deployment is modelled faithfully; the determinism
    /// twin pins the model while varying the replica-side stage.
    pub fn model_workers(mut self, n: usize) -> Self {
        self.model_workers = Some(n);
        self
    }

    /// Warmup phase length (completions here are discarded).
    pub fn warmup_secs(mut self, s: f64) -> Self {
        self.warmup = Duration::from_secs_f64(s);
        self
    }

    /// Measurement window length.
    pub fn measure_secs(mut self, s: f64) -> Self {
        self.measure = Duration::from_secs_f64(s);
        self
    }

    /// Inject faults (crashes, drops).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Crashes `replica` at `crash_s` and restarts it *blank* at
    /// `restart_s` (empty store, fresh consensus state): the replica must
    /// catch up via checkpoint state transfer. The report's `recovery`
    /// field measures the time to its first post-restart execution and
    /// the post-restart throughput.
    pub fn with_blank_restart(mut self, crash_s: f64, restart_s: f64, replica: ReplicaId) -> Self {
        assert!(crash_s < restart_s, "restart must follow the crash");
        self.faults = self.faults.crash(
            NodeId::Replica(replica),
            Instant::ZERO + Duration::from_secs_f64(crash_s),
        );
        self.blank_restart = Some((crash_s, restart_s, replica));
        self
    }

    /// Crashes `replica` at `crash_s` — kill -9 mid-batch: the replica
    /// runs with a write-ahead ledger under the config's `durability`
    /// policy, and the crash drops its log's unsynced tail (power-loss
    /// semantics) — and restarts it *durably* at `restart_s`: the new
    /// incarnation replays the surviving log, restores the last durable
    /// stable checkpoint locally, and fetches only the tail from peers.
    /// The report's `durable_restart` field gates the transferred bytes
    /// against the blank-restart baseline.
    pub fn with_durable_restart(
        mut self,
        crash_s: f64,
        restart_s: f64,
        replica: ReplicaId,
    ) -> Self {
        assert!(crash_s < restart_s, "restart must follow the crash");
        self.faults = self.faults.crash(
            NodeId::Replica(replica),
            Instant::ZERO + Duration::from_secs_f64(crash_s),
        );
        self.durable_restart = Some((crash_s, restart_s, replica));
        self
    }

    /// Corrupts `replica`'s live and checkpoint stores in place at
    /// `at_s` (a bit-flipped executor): its next checkpoint
    /// announcement loses the quorum vote, and the divergence
    /// rollback-and-refetch path must reconverge it onto verified
    /// quorum state. The report's `divergences` entries measure the
    /// repair.
    pub fn with_divergence(mut self, replica: ReplicaId, at_s: f64) -> Self {
        self.divergences.push((replica, at_s));
        self
    }

    /// Suppresses every Preprepare/Prepare/Commit for sequence `seq`
    /// addressed to `replica` — the replica misses that one commit
    /// entirely while its shard moves on, wedging its sequence-ordered
    /// admission until the hole-fetch subsystem repairs it. Call once
    /// per victim (up to `f` per shard keeps the shard live). The
    /// report's `holes` entries measure the repair.
    pub fn with_commit_hole(mut self, replica: ReplicaId, seq: u64) -> Self {
        self.commit_holes.push((replica, seq));
        self
    }

    /// Partitions `replica` from *all* inbound traffic during
    /// `[dark_from_s, dark_until_s)` — it keeps its state but misses at
    /// least one checkpoint window, so when the darkness lifts it is a
    /// laggard behind its shard's stable frontier and must catch up via
    /// state transfer. Under delta checkpointing the donors recognize
    /// its (pre-darkness) checkpoint base and ship a delta chain; the
    /// report's `delta_transfers` entries measure bytes moved and
    /// install kinds.
    pub fn with_delta_transfer(
        mut self,
        replica: ReplicaId,
        dark_from_s: f64,
        dark_until_s: f64,
    ) -> Self {
        assert!(dark_from_s < dark_until_s, "darkness must have an end");
        self.delta_transfers
            .push((replica, dark_from_s, dark_until_s));
        self
    }

    /// Use a single-datacenter topology instead of the 15-region WAN.
    pub fn local_topology(mut self, yes: bool) -> Self {
        self.local_topology = yes;
        self
    }

    /// Logical clients per client-host node.
    pub fn clients_per_host(mut self, k: u64) -> Self {
        self.clients_per_host = k.max(1);
        self
    }

    /// Divides every link's bandwidth by `d`. Used by quick-scale figure
    /// regeneration: with shard counts and replication scaled down ~7×,
    /// scaling bandwidth down keeps the saturation points — where the
    /// paper's quadratic baselines collapse — inside the scaled-down
    /// operating range (see DESIGN.md).
    pub fn bandwidth_divisor(mut self, d: u64) -> Self {
        self.bandwidth_divisor = d.max(1);
        self
    }

    /// The configuration under test.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs the scenario to completion and reports metrics.
    pub fn run(self) -> ScenarioReport {
        let cfg = self.cfg.clone();
        cfg.validate().expect("valid scenario config");
        let mut topology = if self.local_topology {
            Topology::local()
        } else {
            Topology::gcp()
        };
        topology.intra_region_bps /= self.bandwidth_divisor;
        topology.wan_bps /= self.bandwidth_divisor;
        let mut world: World<AnyMsg, AnyNode> =
            World::new(topology, self.faults.clone(), self.seed);
        let modeled_workers = self.model_workers.unwrap_or(cfg.pipeline_workers);
        world.set_workers(modeled_workers);

        // --- targeted faults: commit holes and darkness windows ---
        if !self.commit_holes.is_empty() || !self.delta_transfers.is_empty() {
            let holes = self.commit_holes.clone();
            let darks: Vec<(NodeId, Instant, Instant)> = self
                .delta_transfers
                .iter()
                .map(|(r, from, until)| {
                    (
                        NodeId::Replica(*r),
                        Instant::ZERO + Duration::from_secs_f64(*from),
                        Instant::ZERO + Duration::from_secs_f64(*until),
                    )
                })
                .collect();
            world.set_drop_filter(move |now, _from, to, msg| {
                // Darkness: the victim receives nothing at all.
                if darks
                    .iter()
                    .any(|(n, a, b)| to == *n && now >= *a && now < *b)
                {
                    return true;
                }
                // Commit holes: suppress one sequence's quorum traffic.
                let AnyMsg::Ring(RingMsg::Pbft(p)) = msg else {
                    return false;
                };
                let seq = match p {
                    PbftMsg::Preprepare { seq, .. }
                    | PbftMsg::Prepare { seq, .. }
                    | PbftMsg::Commit { seq, .. } => seq.0,
                    _ => return false,
                };
                holes
                    .iter()
                    .any(|(r, s)| *s == seq && to == NodeId::Replica(*r))
            });
        }

        // --- replicas (one factory shared with the ringbft-net runtime) ---
        // The durable-restart victim shares one in-memory log handle
        // across its incarnations (the sim twin of a `--data-dir`).
        let durable_wal = self
            .durable_restart
            .map(|(_, _, replica)| (replica, MemWalHandle::new()));
        for (r, region, mut node) in crate::nodes::deployment(&cfg) {
            if let Some((victim, handle)) = &durable_wal {
                if r == *victim {
                    if let AnyNode::Ring(ring) = &mut node {
                        let (wal, recovered) = ReplicaWal::open_mem(handle.clone(), cfg.durability);
                        ring.attach_wal(wal, &recovered);
                    }
                }
            }
            world.add_node(NodeId::Replica(r), region, node);
        }

        // --- blank restart (recovery scenarios) ---
        if let Some((_, restart_s, replica)) = self.blank_restart {
            let (_, _, fresh) = crate::nodes::deployment(&cfg)
                .into_iter()
                .find(|(r, _, _)| *r == replica)
                .expect("restarted replica is part of the deployment");
            world.schedule_restart(
                Instant::ZERO + Duration::from_secs_f64(restart_s),
                NodeId::Replica(replica),
                fresh,
            );
        }

        // --- durable restart (crash-consistent recovery scenarios) ---
        // The replacement is built lazily when the restart fires, so it
        // opens the log exactly as the crash left it. `(bytes, seq)` of
        // the replay are smuggled out for the report.
        let durable_restored = std::rc::Rc::new(std::cell::Cell::new((0u64, 0u64)));
        if let Some((_, restart_s, replica)) = self.durable_restart {
            let (_, handle) = durable_wal.as_ref().expect("handle built above").clone();
            let cfg2 = cfg.clone();
            let restored = std::rc::Rc::clone(&durable_restored);
            world.schedule_restart_with(
                Instant::ZERO + Duration::from_secs_f64(restart_s),
                NodeId::Replica(replica),
                Box::new(move || {
                    // The kill dropped everything not yet synced: model
                    // power loss, strictly harder than a process kill
                    // (where OS-buffered appends survive).
                    handle.crash();
                    let (wal, recovered) = ReplicaWal::open_mem(handle, cfg2.durability);
                    let seq = recovered.fold(replica.shard).map(|t| t.seq).unwrap_or(0);
                    restored.set((wal.len_bytes(), seq));
                    let mut r = RingReplica::new(cfg2, replica, false);
                    r.attach_wal(wal, &recovered);
                    AnyNode::Ring(Box::new(r))
                }),
            );
        }

        // --- checkpoint divergence (corrupt-executor scenarios) ---
        for (replica, at_s) in &self.divergences {
            let key = cfg.key_range(replica.shard).start;
            world.schedule_mutation(
                Instant::ZERO + Duration::from_secs_f64(*at_s),
                NodeId::Replica(*replica),
                Box::new(move |n: &mut AnyNode| {
                    if let AnyNode::Ring(ring) = n {
                        ring.corrupt_store_for_test(key);
                    }
                }),
            );
        }

        // --- clients, spread equally over the regions in use (§8) ---
        let regions: Vec<Region> = if cfg.protocol.is_sharded() {
            cfg.shards.iter().map(|s| s.region).collect()
        } else {
            Region::ALL
                .iter()
                .copied()
                .take(cfg.shards[0].n.min(Region::ALL.len()))
                .collect()
        };
        let total_clients = cfg.clients as u64;
        let host_count = total_clients.div_ceil(self.clients_per_host).max(1);
        // Open loop: each host runs an independent arrival sampler at
        // an even share of the target rate (superposed Poisson streams
        // compose back to the target).
        let per_host_arrivals = self
            .open_loop
            .map(|p| p.with_rate(p.rate_tps() / host_count as f64));
        let mut assigned = 0u64;
        for h in 0..host_count {
            let count = self.clients_per_host.min(total_clients - assigned);
            if count == 0 {
                break;
            }
            let first_id = 1_000_000 + assigned;
            let mut client = SimClient::new(cfg.clone(), self.seed ^ (h + 1), first_id, count);
            if let Some(p) = per_host_arrivals {
                client.set_open_loop(p, self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(h));
            }
            let host = NodeId::Client(ClientId(first_id));
            world.add_node(
                host,
                regions[(h as usize) % regions.len()],
                AnyNode::Client(Box::new(client)),
            );
            // Replies address logical client ids; route them to the host.
            for c in first_id + 1..first_id + count {
                world.add_alias(NodeId::Client(ClientId(c)), host);
            }
            assigned += count;
        }

        // --- run ---
        let end = Instant::ZERO + self.warmup + self.measure;
        world.start();
        world.run_until(end);

        // --- collect ---
        let mut completions = Vec::new();
        let mut issued: Vec<Instant> = Vec::new();
        let mut in_flight_at_end = 0u64;
        for (_, node) in world.nodes() {
            if let AnyNode::Client(c) = node {
                completions.extend(c.completions.iter().copied());
                issued.extend(c.issued.iter().copied());
                in_flight_at_end += c.in_flight_len() as u64;
            }
        }
        let w_start = Instant::ZERO + self.warmup;
        // Exact sum for the average; a mergeable log-bucketed histogram
        // for the quantiles (bounded relative error, no full sort).
        let mut latency_hist = Histogram::new();
        let mut lat_sum = 0.0f64;
        for c in completions
            .iter()
            .filter(|c| c.done >= w_start && c.done <= end)
        {
            let d = c.done.since(c.sent);
            latency_hist.record(d.as_nanos());
            lat_sum += d.as_secs_f64();
        }
        let completed = latency_hist.count();
        let measure_s = self.measure.as_secs_f64();
        let throughput = completed as f64 / measure_s;
        let avg = if completed == 0 {
            0.0
        } else {
            lat_sum / completed as f64
        };
        let pct = |p: f64| -> f64 { latency_hist.value_at_quantile(p) as f64 / 1e9 };

        // Per-phase consensus timers, merged across every instrumented
        // replica so the report reflects the whole deployment.
        let mut phase_hists: Vec<(&'static str, Histogram)> = Phase::ALL
            .iter()
            .map(|p| (p.name(), Histogram::new()))
            .collect();
        for (_, node) in world.nodes() {
            if let Some(obs) = node.ring_obs() {
                for (i, p) in Phase::ALL.iter().enumerate() {
                    phase_hists[i].1.merge(obs.phase_hist(*p));
                }
            }
        }
        let mut traces = Vec::new();
        for (id, node) in world.nodes() {
            if let Some(t) = node.trace_jsonl() {
                if !t.is_empty() {
                    traces.push((id.to_string(), t));
                }
            }
        }

        // Cross-shard causal tracing: assemble per-transaction timelines
        // from every replica's trace ring (hop-relative ordering — the
        // collector never compares node-local clocks across replicas).
        let mut spans = SpanCollector::new();
        for (_, node) in world.nodes() {
            if let Some(obs) = node.ring_obs() {
                for (_, ev) in obs.trace.iter() {
                    spans.ingest_event(ev);
                }
            }
        }
        let mut client_lat: std::collections::HashMap<u64, (f64, bool)> =
            std::collections::HashMap::new();
        let mut sampled_txns = 0u64;
        for c in &completions {
            if let Some(t) = c.trace {
                sampled_txns += 1;
                client_lat.insert(
                    t.trace_id,
                    (c.done.since(c.sent).as_secs_f64(), c.cross_shard),
                );
            }
        }
        let csts: Vec<CstTimeline> = spans
            .timelines()
            .into_iter()
            .filter(|t| {
                // Cross-shard: either the client said so, or the spans
                // themselves straddle shards (completion may be missing
                // for txns still in flight at the end of the run).
                client_lat
                    .get(&t.trace_id)
                    .map(|(_, cs)| *cs)
                    .unwrap_or_else(|| t.shards().len() > 1)
            })
            .map(|t| CstTimeline {
                trace_id: t.trace_id,
                client_s: client_lat.get(&t.trace_id).map(|(s, _)| *s),
                hops: t.max_hop(),
                shards: t.shards(),
                steps: timeline_steps(&t),
                critical_path_s: t.critical_path_ns() as f64 / 1e9,
                timeline: t,
            })
            .collect();
        let mean_hops = if csts.is_empty() {
            0.0
        } else {
            csts.iter().map(|c| c.hops as f64).sum::<f64>() / csts.len() as f64
        };
        // p99 bucket: sampled csts at or above the p99 of their own
        // client latencies; summarize the mean worst-replica duration
        // per (hop, phase) step across the bucket.
        let mut lat_sorted: Vec<f64> = csts.iter().filter_map(|c| c.client_s).collect();
        lat_sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let p99_critical_path = if lat_sorted.is_empty() {
            Vec::new()
        } else {
            let thr = lat_sorted[(lat_sorted.len() - 1).min(lat_sorted.len() * 99 / 100)];
            let mut acc: std::collections::BTreeMap<(u32, &'static str), (f64, u64)> =
                std::collections::BTreeMap::new();
            for c in csts.iter().filter(|c| c.client_s.is_some_and(|s| s >= thr)) {
                for (hop, name, s) in &c.steps {
                    let e = acc.entry((*hop, name)).or_insert((0.0, 0));
                    e.0 += s;
                    e.1 += 1;
                }
            }
            acc.into_iter()
                .map(|((hop, name), (sum, n))| (hop, name, sum / n as f64))
                .collect()
        };
        let tracing = TracingReport {
            sample_rate: cfg.trace_sample_rate,
            sampled_txns,
            sampled_csts: csts.len() as u64,
            mean_hops,
            duplicate_spans: spans.duplicates(),
            csts,
            p99_critical_path,
        };
        let phases: Vec<PhaseReport> = phase_hists
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(name, h)| PhaseReport {
                name,
                count: h.count(),
                mean_s: h.mean() / 1e9,
                p50_s: h.value_at_quantile(0.50) as f64 / 1e9,
                p99_s: h.value_at_quantile(0.99) as f64 / 1e9,
            })
            .collect();

        // Timeline: one-second buckets over the full run.
        let total_s = end.as_secs_f64().ceil() as usize;
        let mut buckets = vec![0u64; total_s.max(1)];
        for c in &completions {
            let b = (c.done.as_secs_f64() as usize).min(buckets.len() - 1);
            buckets[b] += 1;
        }
        let timeline: Vec<(f64, f64)> = buckets
            .iter()
            .enumerate()
            .map(|(i, n)| (i as f64, *n as f64))
            .collect();

        // Recovery metrics: first execution by the restarted replica
        // after its blank restart, and throughput since the restart.
        let recovery = self.blank_restart.map(|(_, restart_s, replica)| {
            let restart_at = Instant::ZERO + Duration::from_secs_f64(restart_s);
            let catchup_s = world
                .exec_log
                .iter()
                .filter(|e| e.node == NodeId::Replica(replica) && e.at >= restart_at)
                .map(|e| e.at.since(restart_at).as_secs_f64())
                .next();
            let window_s = (end.since(restart_at)).as_secs_f64().max(1e-9);
            let post = completions
                .iter()
                .filter(|c| c.done >= restart_at && c.done <= end)
                .count();
            let stats = match world.node(NodeId::Replica(replica)) {
                Some(AnyNode::Ring(r)) => r.recovery_stats(),
                _ => Default::default(),
            };
            RecoveryReport {
                restart_s,
                catchup_s,
                post_restart_tps: post as f64 / window_s,
                full_installs: stats.full_installs,
                delta_installs: stats.delta_installs,
                bad_digests: stats.bad_digests,
            }
        });

        // Checkpoint-store convergence: does `replica` end on the same
        // checkpoint store as a same-shard peer at the same checkpoint
        // sequence? (Checkpoints are quorum-agreed, so any two replicas
        // at one sequence must match.)
        let fingerprint_converged = |replica: ReplicaId| -> bool {
            let Some(AnyNode::Ring(v)) = world.node(NodeId::Replica(replica)) else {
                return false;
            };
            let (vseq, vfp) = (v.checkpoint_seq(), v.checkpoint_fingerprint());
            vseq > 0
                && cfg
                    .shard(replica.shard)
                    .replicas()
                    .filter(|r| *r != replica)
                    .any(|r| match world.node(NodeId::Replica(r)) {
                        Some(AnyNode::Ring(p)) => {
                            p.checkpoint_seq() == vseq && p.checkpoint_fingerprint() == vfp
                        }
                        _ => false,
                    })
        };
        let peer_max_watermark_of = |replica: ReplicaId| -> u64 {
            cfg.shard(replica.shard)
                .replicas()
                .filter(|r| *r != replica)
                .filter_map(|r| match world.node(NodeId::Replica(r)) {
                    Some(AnyNode::Ring(n)) => Some(n.exec_watermark()),
                    _ => None,
                })
                .max()
                .unwrap_or(0)
        };
        // Modeled wire bytes of one full-snapshot transfer of a store
        // of `store_len` records (plan + chunked records) — what a
        // blank restart moves.
        let full_transfer_bytes = |store_len: usize| -> u64 {
            let per = cfg.state_chunk_records.max(1);
            let mut bytes = ringbft_types::wire::state_plan_bytes(1);
            let mut left = store_len;
            while left > 0 {
                let take = left.min(per);
                bytes += ringbft_types::wire::state_chunk_bytes(take);
                left -= take;
            }
            bytes
        };

        // Durable-restart metrics: what the local log replay saved over
        // a blank restart, and whether the tail top-up reconverged.
        let durable_restart = self.durable_restart.map(|(_, restart_s, replica)| {
            let restart_at = Instant::ZERO + Duration::from_secs_f64(restart_s);
            let catchup_s = world
                .exec_log
                .iter()
                .filter(|e| e.node == NodeId::Replica(replica) && e.at >= restart_at)
                .map(|e| e.at.since(restart_at).as_secs_f64())
                .next();
            let (restart_bytes_local, recovered_seq) = durable_restored.get();
            let (stats, watermark, store_len, wal_syncs, wal_len_bytes) =
                match world.node(NodeId::Replica(replica)) {
                    Some(AnyNode::Ring(r)) => (
                        r.recovery_stats(),
                        r.exec_watermark(),
                        r.store().len(),
                        r.wal().map(|w| w.syncs()).unwrap_or(0),
                        r.wal().map(|w| w.len_bytes()).unwrap_or(0),
                    ),
                    _ => (Default::default(), 0, 0, 0, 0),
                };
            DurableRestartReport {
                replica,
                restart_s,
                catchup_s,
                restart_bytes_local,
                recovered_seq,
                // The restarted incarnation's stats start at zero, so
                // its post-run transfer bytes are exactly the top-up.
                restart_bytes_transferred: stats.transfer_bytes(),
                blank_baseline_bytes: full_transfer_bytes(store_len),
                installs: stats.installs,
                delta_installs: stats.delta_installs,
                full_installs: stats.full_installs,
                bad_digests: stats.bad_digests,
                wal_syncs,
                wal_len_bytes,
                fingerprint_ok: fingerprint_converged(replica),
                exec_watermark: watermark,
                peer_max_watermark: peer_max_watermark_of(replica),
            }
        });

        // Divergence-repair metrics: did the corrupted replica roll
        // back, refetch quorum state, and reconverge?
        let divergences: Vec<DivergenceReport> = self
            .divergences
            .iter()
            .map(|(replica, at_s)| {
                let (stats, watermark, stable, diverged, obs_div) =
                    match world.node(NodeId::Replica(*replica)) {
                        Some(AnyNode::Ring(r)) => (
                            r.recovery_stats(),
                            r.exec_watermark(),
                            r.last_stable_seq(),
                            r.is_diverged(),
                            r.obs()
                                .reg
                                .counter_by_name("ring.checkpoint_divergences")
                                .unwrap_or(0),
                        ),
                        _ => (Default::default(), 0, 0, false, 0),
                    };
                DivergenceReport {
                    replica: *replica,
                    at_s: *at_s,
                    divergences: obs_div,
                    installs: stats.installs,
                    bad_digests: stats.bad_digests,
                    diverged_at_end: diverged,
                    fingerprint_ok: fingerprint_converged(*replica),
                    stable_seq: stable,
                    exec_watermark: watermark,
                    peer_max_watermark: peer_max_watermark_of(*replica),
                }
            })
            .collect();

        // Delta state-transfer metrics: per darkened victim, what the
        // catch-up actually moved (delta vs full bytes) against the
        // modeled cost of a full snapshot of its final store.
        let delta_transfers: Vec<DeltaTransferReport> = self
            .delta_transfers
            .iter()
            .map(|(replica, dark_from_s, dark_until_s)| {
                let (stats, watermark, stable, store_len) =
                    match world.node(NodeId::Replica(*replica)) {
                        Some(AnyNode::Ring(r)) => (
                            r.recovery_stats(),
                            r.exec_watermark(),
                            r.last_stable_seq(),
                            r.store().len(),
                        ),
                        _ => (Default::default(), 0, 0, 0),
                    };
                let peer_max_watermark = cfg
                    .shard(replica.shard)
                    .replicas()
                    .filter(|r| *r != *replica)
                    .filter_map(|r| match world.node(NodeId::Replica(r)) {
                        Some(AnyNode::Ring(n)) => Some(n.exec_watermark()),
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0);
                // Modeled bytes of one full transfer of the final store.
                let per = cfg.state_chunk_records.max(1);
                let mut full_baseline_bytes = ringbft_types::wire::state_plan_bytes(1);
                let mut left = store_len;
                while left > 0 {
                    let take = left.min(per);
                    full_baseline_bytes += ringbft_types::wire::state_chunk_bytes(take);
                    left -= take;
                }
                DeltaTransferReport {
                    replica: *replica,
                    dark_from_s: *dark_from_s,
                    dark_until_s: *dark_until_s,
                    delta_installs: stats.delta_installs,
                    full_installs: stats.full_installs,
                    delta_bytes: stats.bytes_delta,
                    full_bytes: stats.bytes_full,
                    full_baseline_bytes,
                    bad_digests: stats.bad_digests,
                    exec_watermark: watermark,
                    peer_max_watermark,
                    stable_seq: stable,
                }
            })
            .collect();

        // Hole-repair metrics: per victim, whether the held sequence was
        // fetched (certificate recovery) and executed, and where the
        // victim's watermark and stable checkpoint ended up.
        let holes: Vec<HoleReport> = self
            .commit_holes
            .iter()
            .map(|(replica, seq)| {
                let resumed_s = world
                    .exec_log
                    .iter()
                    .filter(|e| e.node == NodeId::Replica(*replica) && e.seq == *seq)
                    .map(|e| e.at.as_secs_f64())
                    .next();
                let (hole_stats, installs, watermark, stable) =
                    match world.node(NodeId::Replica(*replica)) {
                        Some(AnyNode::Ring(r)) => (
                            r.hole_stats(),
                            r.recovery_stats().installs,
                            r.exec_watermark(),
                            r.last_stable_seq(),
                        ),
                        _ => Default::default(),
                    };
                HoleReport {
                    replica: *replica,
                    seq: *seq,
                    resumed_s,
                    holes_filled: hole_stats.holes_filled,
                    hole_requests: hole_stats.requests_sent,
                    bad_replies: hole_stats.bad_replies,
                    snapshot_installs: installs,
                    exec_watermark: watermark,
                    stable_seq: stable,
                }
            })
            .collect();

        // Pipeline accounting, summed over the instrumented replicas.
        let mut pipeline = PipelineReport {
            modeled_workers,
            ..Default::default()
        };
        for (_, node) in world.nodes() {
            if let Some(obs) = node.ring_obs() {
                let c = |n: &str| obs.reg.counter_by_name(n).unwrap_or(0);
                let g = |n: &str| obs.reg.gauge_by_name(n).unwrap_or(0);
                pipeline.exec_jobs += c("pipeline.exec_jobs");
                pipeline.exec_parallel_batches += c("pipeline.exec_parallel_batches");
                pipeline.verify_offloaded += c("pipeline.verify_offloaded_frames");
                pipeline.verify_inline += c("pipeline.verify_inline_frames");
                pipeline.batch_adaptive_flushes += c("ring.batch_adaptive_flushes");
                pipeline.worker_busy_ns += g("pipeline.worker_busy_ns");
                pipeline.worker_idle_ns += g("pipeline.worker_idle_ns");
                pipeline.replica_workers = pipeline.replica_workers.max(g("pipeline.workers"));
            }
        }

        let open_loop = self.open_loop.map(|p| OpenLoopReport {
            offered_tps: p.rate_tps(),
            issued_txns: issued
                .iter()
                .filter(|t| **t >= w_start && **t <= end)
                .count() as u64,
            in_flight_at_end,
        });

        ScenarioReport {
            completed_txns: completed,
            throughput_tps: throughput,
            avg_latency_s: avg,
            p50_latency_s: pct(0.50),
            p95_latency_s: pct(0.95),
            p99_latency_s: pct(0.99),
            p999_latency_s: pct(0.999),
            latency_hist,
            phases,
            traces,
            timeline,
            view_changes: world.view_log.len(),
            messages_sent: world.stats.messages_sent,
            bytes_sent: world.stats.bytes_sent,
            tracing,
            recovery,
            durable_restart,
            divergences,
            holes,
            delta_transfers,
            pipeline,
            open_loop,
        }
    }
}

/// Convenience: the reply quorum the scenario's clients use.
pub fn scenario_quorum(cfg: &SystemConfig) -> usize {
    reply_quorum(cfg)
}
