//! The unified simulator message: every protocol's messages plus the wire
//! sizes (§8's reported message sizes, via `ringbft_types::wire`) and the
//! per-message CPU cost model.
//!
//! CPU costs approximate ResilientDB's verification work on the paper's
//! 16-core N1 machines: MAC checks are cheap (~2 µs), digital-signature
//! checks an order of magnitude more, batch hashing scales with batch
//! size. Absolute throughput depends on these constants; the cross-
//! protocol *shape* does not (all protocols share the model).

use ringbft_baselines::ShardedMsg;
use ringbft_core::RingMsg;
use ringbft_pbft::PbftMsg;
use ringbft_protocols::SsMsg;
use ringbft_recovery::RecoveryMsg;
use ringbft_simnet::SimMessage;
use ringbft_types::{wire, Duration};
use serde::{Deserialize, Serialize};

/// CPU time charged per delivered message for verifying the frame's
/// HMAC authenticator (§3 authenticated channels; the TCP runtime
/// rejects frames whose MAC fails, and the simulator charges the same
/// hash cost so both drivers model identical per-message overhead).
const FRAME_MAC_VERIFY: Duration = Duration::from_micros(2);

/// All messages flowing through a simulation (and, framed by
/// `ringbft-net`'s codec, over real sockets).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnyMsg {
    /// RingBFT traffic.
    Ring(RingMsg),
    /// AHL / SharPer traffic.
    Sharded(ShardedMsg),
    /// Figure 1 single-shard baseline traffic.
    Ss(SsMsg),
}

fn pbft_bytes(m: &PbftMsg) -> u64 {
    match m {
        PbftMsg::Preprepare { batch, .. } => wire::preprepare_bytes(batch.len()),
        PbftMsg::Prepare { .. } => wire::prepare_bytes(),
        PbftMsg::Commit { .. } => wire::commit_bytes(),
        PbftMsg::Checkpoint { .. } => wire::checkpoint_bytes(),
        PbftMsg::ViewChange { prepared, .. } => wire::view_change_bytes(prepared.len()),
        PbftMsg::NewView { preprepares, .. } => {
            // Re-proposals carry payloads.
            wire::new_view_bytes(preprepares.len())
                + preprepares
                    .iter()
                    .map(|p| {
                        p.batch
                            .as_ref()
                            .map_or(0, |b| wire::preprepare_bytes(b.len()))
                    })
                    .sum::<u64>()
        }
    }
}

fn pbft_cpu(m: &PbftMsg) -> Duration {
    match m {
        PbftMsg::Preprepare { batch, .. } => Duration::from_micros(10 + batch.len() as u64),
        PbftMsg::Prepare { .. } => Duration::from_micros(2),
        // Commits are signed in RingBFT (certificates cross shards).
        PbftMsg::Commit { .. } => Duration::from_micros(5),
        PbftMsg::Checkpoint { .. } => Duration::from_micros(3),
        PbftMsg::ViewChange { .. } => Duration::from_micros(50),
        PbftMsg::NewView { .. } => Duration::from_micros(80),
    }
}

impl SimMessage for AnyMsg {
    fn wire_bytes(&self) -> u64 {
        match self {
            AnyMsg::Ring(m) => match m {
                RingMsg::Request { txn, .. } => wire::client_request_bytes(txn.ops.len()),
                RingMsg::Pbft(p) => pbft_bytes(p),
                RingMsg::Forward(f) | RingMsg::ForwardShare(f) => {
                    wire::forward_bytes(f.batch.len(), f.cert_signers.len())
                        + f.deps.len() as u64 * wire::PER_WRITE_BYTES
                }
                RingMsg::Execute(e) | RingMsg::ExecuteShare(e) => {
                    132 + e.sigma.len() as u64 * wire::PER_WRITE_BYTES
                }
                RingMsg::RemoteView { .. } | RingMsg::RemoteViewShare { .. } => {
                    wire::remote_view_bytes()
                }
                RingMsg::Recovery(m) => match m {
                    RecoveryMsg::StateRequest { .. } => wire::state_request_bytes(),
                    RecoveryMsg::StatePlan { links, .. } => wire::state_plan_bytes(links.len()),
                    RecoveryMsg::StateChunk { records, .. } => {
                        wire::state_chunk_bytes(records.len())
                    }
                    RecoveryMsg::HoleRequest(_) => wire::hole_request_bytes(),
                    RecoveryMsg::HoleReply(r) => {
                        wire::hole_reply_bytes(r.batch.len(), r.cert.signers.len())
                    }
                },
                RingMsg::Reply { .. } => wire::client_response_bytes(),
            },
            AnyMsg::Sharded(m) => match m {
                ShardedMsg::Request { txn, .. } => wire::client_request_bytes(txn.ops.len()),
                ShardedMsg::Pbft(p) => pbft_bytes(p),
                ShardedMsg::PrepareReq { batch, .. } => wire::preprepare_bytes(batch.len()),
                ShardedMsg::Vote2pc { .. } => wire::commit_bytes(),
                ShardedMsg::Decision { .. } => wire::commit_bytes(),
                ShardedMsg::XPreprepare { batch, .. } => wire::preprepare_bytes(batch.len()),
                ShardedMsg::XPrepare { .. } => wire::prepare_bytes(),
                ShardedMsg::XCommit { .. } => wire::commit_bytes(),
                ShardedMsg::Reply { .. } => wire::client_response_bytes(),
            },
            AnyMsg::Ss(m) => match m {
                SsMsg::Request { txn, .. } => wire::client_request_bytes(txn.ops.len()),
                SsMsg::Pbft(p) | SsMsg::Rcc { msg: p, .. } => pbft_bytes(p),
                SsMsg::OrderReq { batch, .. } => wire::preprepare_bytes(batch.len()),
                SsMsg::Propose { batch, .. } => batch
                    .as_ref()
                    .map_or(wire::prepare_bytes(), |b| wire::preprepare_bytes(b.len())),
                SsMsg::Vote { .. } => wire::prepare_bytes(),
                SsMsg::Cert { .. } => wire::commit_bytes(),
                SsMsg::Support { .. } => wire::prepare_bytes(),
                SsMsg::Reply { .. } => wire::client_response_bytes(),
            },
        }
    }

    fn cpu_cost(&self) -> Duration {
        let protocol_cost = match self {
            AnyMsg::Ring(m) => match m {
                RingMsg::Request { .. } => Duration::from_micros(15), // client DS
                RingMsg::Pbft(p) => pbft_cpu(p),
                // Forward: validate nf commit attestations.
                RingMsg::Forward(f) | RingMsg::ForwardShare(f) => {
                    Duration::from_micros(15 + 2 * f.cert_signers.len() as u64)
                }
                RingMsg::Execute(_) | RingMsg::ExecuteShare(_) => Duration::from_micros(10),
                RingMsg::RemoteView { .. } | RingMsg::RemoteViewShare { .. } => {
                    Duration::from_micros(15)
                }
                // Installing/serving state scales with the records moved
                // (hashing for the digest check dominates).
                RingMsg::Recovery(m) => match m {
                    RecoveryMsg::StateRequest { .. } => Duration::from_micros(3),
                    // Plan validation scales with the chain length.
                    RecoveryMsg::StatePlan { links, .. } => {
                        Duration::from_micros(5 + links.len() as u64)
                    }
                    RecoveryMsg::StateChunk { records, .. } => {
                        Duration::from_micros(5 + records.len() as u64 / 8)
                    }
                    RecoveryMsg::HoleRequest(_) => Duration::from_micros(3),
                    // Validate nf commit attestations plus hash the batch.
                    RecoveryMsg::HoleReply(r) => Duration::from_micros(
                        10 + r.batch.len() as u64 + 2 * r.cert.signers.len() as u64,
                    ),
                },
                RingMsg::Reply { .. } => Duration::from_micros(2),
            },
            AnyMsg::Sharded(m) => match m {
                ShardedMsg::Request { .. } => Duration::from_micros(15),
                ShardedMsg::Pbft(p) => pbft_cpu(p),
                ShardedMsg::PrepareReq { batch, .. } => {
                    Duration::from_micros(15 + batch.len() as u64)
                }
                ShardedMsg::Vote2pc { .. } | ShardedMsg::Decision { .. } => {
                    Duration::from_micros(15) // DS across clusters
                }
                ShardedMsg::XPreprepare { batch, .. } => {
                    Duration::from_micros(15 + batch.len() as u64)
                }
                // Cross-shard votes are signed.
                ShardedMsg::XPrepare { .. } | ShardedMsg::XCommit { .. } => {
                    Duration::from_micros(15)
                }
                ShardedMsg::Reply { .. } => Duration::from_micros(2),
            },
            AnyMsg::Ss(m) => match m {
                SsMsg::Request { .. } => Duration::from_micros(15),
                SsMsg::Pbft(p) | SsMsg::Rcc { msg: p, .. } => pbft_cpu(p),
                SsMsg::OrderReq { batch, .. } => Duration::from_micros(10 + batch.len() as u64),
                SsMsg::Propose { batch, .. } => {
                    Duration::from_micros(10 + batch.as_ref().map_or(0, |b| b.len() as u64))
                }
                SsMsg::Vote { .. } | SsMsg::Support { .. } => Duration::from_micros(3),
                SsMsg::Cert { .. } => Duration::from_micros(5),
                SsMsg::Reply { .. } => Duration::from_micros(2),
            },
        };
        protocol_cost + FRAME_MAC_VERIFY
    }

    fn offload_cost(&self) -> Duration {
        // The slice of `cpu_cost` a pipeline worker can absorb: frame-MAC
        // verification on every message, plus the message's crypto/exec
        // work (client DS checks, batch digests, attestation signature
        // validation, fragment execution). Protocol state transitions are
        // the serial remainder. Baseline protocols run without the
        // pipeline, so only RingBFT traffic offloads beyond the MAC.
        let crypto = match self {
            AnyMsg::Ring(m) => match m {
                // Client digital-signature verification (serial: dedup +
                // lock admission).
                RingMsg::Request { .. } => Duration::from_micros(13),
                // Batch digest computation (serial: slot bookkeeping).
                RingMsg::Pbft(PbftMsg::Preprepare { batch, .. }) => {
                    Duration::from_micros(8 + batch.len() as u64)
                }
                // Commit-certificate attestation checks plus batch hash.
                RingMsg::Forward(f) | RingMsg::ForwardShare(f) => {
                    Duration::from_micros(10 + 2 * f.cert_signers.len() as u64)
                }
                // Cross-shard fragment execution off the core.
                RingMsg::Execute(_) | RingMsg::ExecuteShare(_) => Duration::from_micros(6),
                // Attestation checks plus batch hash on repair replies.
                RingMsg::Recovery(RecoveryMsg::HoleReply(r)) => Duration::from_micros(
                    8 + r.batch.len() as u64 + 2 * r.cert.signers.len() as u64,
                ),
                _ => Duration::ZERO,
            },
            AnyMsg::Sharded(_) | AnyMsg::Ss(_) => Duration::ZERO,
        };
        crypto + FRAME_MAC_VERIFY
    }

    fn trace_context(&self) -> Option<ringbft_types::TraceContext> {
        // Only RingBFT traffic is causally traced; the baselines run
        // without instrumentation (their numbers are comparison-only).
        match self {
            AnyMsg::Ring(m) => m.trace_context(),
            AnyMsg::Sharded(_) | AnyMsg::Ss(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringbft_types::txn::{Batch, Operation, OperationKind, Transaction};
    use ringbft_types::{BatchId, ClientId, SeqNum, ShardId, TxnId, ViewNum};
    use std::sync::Arc;

    fn batch(n: usize) -> Arc<Batch> {
        let txns = (0..n as u64)
            .map(|i| {
                Transaction::new(
                    TxnId(i),
                    ClientId(i),
                    vec![Operation {
                        shard: ShardId(0),
                        key: i,
                        kind: OperationKind::ReadModifyWrite,
                    }],
                )
            })
            .collect();
        Arc::new(Batch::new_unchecked(BatchId(0), txns))
    }

    #[test]
    fn standard_settings_match_paper_sizes() {
        let b = batch(100);
        let pp = AnyMsg::Ring(RingMsg::Pbft(PbftMsg::Preprepare {
            view: ViewNum(0),
            seq: SeqNum(1),
            digest: [0; 32],
            batch: Arc::clone(&b),
        }));
        assert_eq!(pp.wire_bytes(), 5408);
        let fwd = AnyMsg::Ring(RingMsg::Forward(ringbft_core::ForwardMsg {
            batch: b,
            digest: [0; 32],
            from_shard: ShardId(0),
            cert_signers: (0..19).collect(),
            deps: vec![],
            hop: 0,
        }));
        assert_eq!(fwd.wire_bytes(), 6147);
        let prep = AnyMsg::Ring(RingMsg::Pbft(PbftMsg::Prepare {
            view: ViewNum(0),
            seq: SeqNum(1),
            digest: [0; 32],
        }));
        assert_eq!(prep.wire_bytes(), 216);
    }

    #[test]
    fn offload_never_exceeds_cpu_cost() {
        let b = batch(100);
        let samples = [
            AnyMsg::Ring(RingMsg::Pbft(PbftMsg::Preprepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: [0; 32],
                batch: Arc::clone(&b),
            })),
            AnyMsg::Ring(RingMsg::Pbft(PbftMsg::Prepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: [0; 32],
            })),
            AnyMsg::Ring(RingMsg::Forward(ringbft_core::ForwardMsg {
                batch: b,
                digest: [0; 32],
                from_shard: ShardId(0),
                cert_signers: (0..19).collect(),
                deps: vec![],
                hop: 0,
            })),
        ];
        for m in &samples {
            assert!(
                m.offload_cost() <= m.cpu_cost(),
                "offload exceeds total cost"
            );
            assert!(m.offload_cost() >= Duration::from_micros(2), "MAC at least");
        }
    }

    #[test]
    fn cpu_scales_with_batch() {
        let small = AnyMsg::Ring(RingMsg::Pbft(PbftMsg::Preprepare {
            view: ViewNum(0),
            seq: SeqNum(1),
            digest: [0; 32],
            batch: batch(10),
        }));
        let big = AnyMsg::Ring(RingMsg::Pbft(PbftMsg::Preprepare {
            view: ViewNum(0),
            seq: SeqNum(1),
            digest: [0; 32],
            batch: batch(1000),
        }));
        assert!(big.cpu_cost() > small.cpu_cost());
    }
}
