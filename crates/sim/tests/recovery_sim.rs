//! Simulator-side acceptance of the recovery subsystem (§5, A3): a
//! replica crashes mid-run, restarts *blank*, and catches back up to its
//! shard via checkpoint state transfer while the cluster keeps
//! committing cross-shard transactions.

use ringbft_sim::{AnyMsg, AnyNode, SimClient};
use ringbft_simnet::{FaultPlan, Topology, World};
use ringbft_types::{
    ClientId, Duration, Instant, NodeId, ProtocolKind, ReplicaId, ShardId, SystemConfig,
};

fn recovery_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 3, 4);
    cfg.num_keys = 3_000;
    cfg.clients = 8;
    cfg.batch_size = 1;
    cfg.cross_shard_rate = 0.3;
    cfg.checkpoint_interval = 4;
    cfg.timers.local = Duration::from_millis(1200);
    cfg.timers.remote = Duration::from_millis(2400);
    cfg.timers.transmit = Duration::from_millis(3600);
    cfg.timers.client = Duration::from_millis(4800);
    cfg
}

fn ring_replica(world: &World<AnyMsg, AnyNode>, r: ReplicaId) -> &ringbft_core::RingReplica {
    match world.node(NodeId::Replica(r)) {
        Some(AnyNode::Ring(n)) => n,
        _ => panic!("ring replica {r} expected"),
    }
}

#[test]
fn blank_restarted_replica_catches_up_via_state_transfer() {
    let cfg = recovery_cfg();
    let victim = ReplicaId::new(ShardId(1), 2); // a backup, not the primary
    let crash_at = Instant::ZERO + Duration::from_secs(2);
    let restart_at = Instant::ZERO + Duration::from_secs(3);

    let faults = FaultPlan::none().crash(NodeId::Replica(victim), crash_at);
    let mut world: World<AnyMsg, AnyNode> = World::new(Topology::gcp(), faults, 7);
    for (r, region, node) in ringbft_sim::nodes::deployment(&cfg) {
        world.add_node(NodeId::Replica(r), region, node);
    }
    // Blank restart: a fresh replica with empty store and fresh PBFT.
    let (_, _, fresh) = ringbft_sim::nodes::deployment(&cfg)
        .into_iter()
        .find(|(r, _, _)| *r == victim)
        .expect("victim in deployment");
    world.schedule_restart(restart_at, NodeId::Replica(victim), fresh);

    // Closed-loop clients keep the shards committing throughout.
    let host = NodeId::Client(ClientId(1_000_000));
    let client = SimClient::new(cfg.clone(), 9, 1_000_000, cfg.clients as u64);
    world.add_node(
        host,
        cfg.shards[0].region,
        AnyNode::Client(Box::new(client)),
    );
    for c in 1_000_001..1_000_000 + cfg.clients as u64 {
        world.add_alias(NodeId::Client(ClientId(c)), host);
    }

    world.start();
    world.run_until(Instant::ZERO + Duration::from_secs(14));

    // The restarted replica fetched and installed at least one verified
    // snapshot from a same-shard donor.
    let revived = ring_replica(&world, victim);
    let stats = revived.recovery_stats();
    assert!(
        stats.installs >= 1,
        "no snapshot installed after blank restart: {stats:?}"
    );
    assert_eq!(stats.bad_digests, 0, "a transfer failed verification");

    // It re-entered consensus/execution: its watermark is within a few
    // checkpoint intervals of its healthiest peer. (Three intervals, not
    // an exact match: the run is cut off at an arbitrary instant while
    // the replica is still executing its admitted backlog — the margin
    // only distinguishes "catching up" from "wedged".)
    let peer_max = (0..4u32)
        .filter(|i| *i != victim.index)
        .map(|i| ring_replica(&world, ReplicaId::new(ShardId(1), i)).exec_watermark())
        .max()
        .expect("peers exist");
    let own = revived.exec_watermark();
    assert!(
        own + 3 * cfg.checkpoint_interval >= peer_max,
        "restarted replica stuck at watermark {own}, peers at {peer_max}"
    );
    assert!(own > 0, "restarted replica never executed");

    // Donors actually served state.
    let served: u64 = (0..4u32)
        .filter(|i| *i != victim.index)
        .map(|i| {
            ring_replica(&world, ReplicaId::new(ShardId(1), i))
                .recovery_stats()
                .transfers_served
        })
        .sum();
    assert!(served >= 1, "no peer served a state transfer");

    // Checkpoints garbage-collect: a healthy replica's in-memory ledger
    // tail is shorter than its absolute chain height.
    let healthy = ring_replica(&world, ReplicaId::new(ShardId(0), 0));
    assert!(
        healthy.ledger().retained_blocks() < healthy.ledger().height(),
        "ledger never truncated: {} blocks retained at height {}",
        healthy.ledger().retained_blocks(),
        healthy.ledger().height()
    );
    healthy.ledger().verify().expect("pruned chain verifies");
}

/// The same path through the `Scenario` front-end: the report surfaces
/// time-to-catch-up and post-restart throughput (used by `bench_json`).
#[test]
fn scenario_reports_recovery_metrics() {
    let cfg = recovery_cfg();
    let report = ringbft_sim::Scenario::new(cfg, 7)
        .warmup_secs(1.0)
        .measure_secs(11.0)
        .local_topology(false)
        .with_blank_restart(2.0, 3.0, ReplicaId::new(ShardId(1), 2))
        .run();
    let rec = report.recovery.expect("recovery metrics requested");
    let catchup = rec
        .catchup_s
        .expect("restarted replica executed again before the run ended");
    assert!(catchup > 0.0);
    assert!(
        rec.post_restart_tps > 0.0,
        "cluster stalled after the restart"
    );
}
