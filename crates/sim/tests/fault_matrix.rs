//! Deterministic fault-scenario matrix (CI runs this file once per
//! seed): the recovery paths — blank restart, commit-hole fetch, and
//! checkpoint cadence under `f` laggards — exercised end-to-end on the
//! discrete-event WAN.
//!
//! The seed comes from `RINGBFT_FAULT_SEED` (default 7); the CI workflow
//! fans the file out across three fixed seeds so every PR exercises the
//! fault machinery under three distinct message interleavings, not just
//! the happy path.

use ringbft_sim::{Scenario, ScenarioReport};
use ringbft_types::{Duration, ProtocolKind, ReplicaId, ShardId, SystemConfig};

/// Panic-armed event-trace dump: `arm` it with a finished report, and if
/// the test thread then panics (a failed assertion), the guard writes
/// every replica's event-trace ring to
/// `target/trace-dumps/<test>-<seed>.jsonl` — one JSON object per line,
/// each tagged with the replica it came from — and prints the path. CI
/// uploads the directory as an artifact when the fault matrix fails, so
/// a red run ships the view-change / checkpoint / hole-fetch timeline
/// that led up to the failure.
struct TraceDump {
    test: &'static str,
    traces: Vec<(String, String)>,
}

impl TraceDump {
    fn new(test: &'static str) -> TraceDump {
        TraceDump {
            test,
            traces: Vec::new(),
        }
    }

    fn arm(&mut self, report: &ScenarioReport) {
        self.traces = report.traces.clone();
    }
}

impl Drop for TraceDump {
    fn drop(&mut self) {
        if !std::thread::panicking() || self.traces.is_empty() {
            return;
        }
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/trace-dumps");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = dir.join(format!("{}-{}.jsonl", self.test, seed()));
        let mut out = String::new();
        for (node, jsonl) in &self.traces {
            for line in jsonl.lines() {
                // Tag each event with its replica: {"i":…} → {"node":"S0r2","i":…}.
                out.push_str(&line.replacen('{', &format!("{{\"node\":\"{node}\","), 1));
                out.push('\n');
            }
        }
        if std::fs::write(&path, out).is_ok() {
            eprintln!("event trace dumped to {}", path.display());
        }
    }
}

/// The deterministic seed under test (CI matrix dimension). A present
/// but unparsable value fails loudly — a malformed workflow edit must
/// not silently collapse the matrix back onto the default seed.
fn seed() -> u64 {
    match std::env::var("RINGBFT_FAULT_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("RINGBFT_FAULT_SEED is not an integer: {s:?}")),
        Err(_) => 7,
    }
}

/// The pipeline-worker dimension of the CI matrix:
/// `RINGBFT_PIPELINE_WORKERS` > 0 hosts a *real* blocking threaded
/// execution stage on every replica (observable event order identical
/// to inline — the determinism twin pins that) and models the worker
/// offload in the simulator's CPU scheduler, so every recovery path is
/// also exercised with worker threads underneath. Same fail-loudly
/// contract as the seed.
fn pipeline_workers() -> usize {
    match std::env::var("RINGBFT_PIPELINE_WORKERS") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("RINGBFT_PIPELINE_WORKERS is not an integer: {s:?}")),
        Err(_) => 0,
    }
}

/// The batching-policy dimension of the CI matrix:
/// `RINGBFT_ADAPTIVE_BATCHING=1` runs every fault scenario with the
/// Nagle-style adaptive flush cut enabled, so recovery is also proven
/// under sub-size batch cadence. Default off — the committed seeds stay
/// byte-identical. Same fail-loudly contract as the seed.
fn adaptive_batching() -> bool {
    match std::env::var("RINGBFT_ADAPTIVE_BATCHING") {
        Ok(s) => match s.trim() {
            "0" | "" => false,
            "1" => true,
            other => panic!("RINGBFT_ADAPTIVE_BATCHING must be 0 or 1: {other:?}"),
        },
        Err(_) => false,
    }
}

/// Small cluster, tight timers: every recovery mechanism fires within a
/// few simulated seconds. The checkpoint window (128 sequences at this
/// traffic rate ≈ a simulated second) is deliberately wider than the
/// hole probe (a third of the 1.2 s local timeout), so the tests can
/// tell certificate fetch apart from checkpoint-based repair.
fn fault_cfg(z: usize) -> SystemConfig {
    let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, z, 4);
    cfg.num_keys = 1_000 * z as u64;
    cfg.clients = 8;
    cfg.batch_size = 1;
    cfg.cross_shard_rate = 0.2;
    cfg.checkpoint_interval = 128;
    cfg.timers.local = Duration::from_millis(1200);
    cfg.timers.remote = Duration::from_millis(2400);
    cfg.timers.transmit = Duration::from_millis(3600);
    cfg.timers.client = Duration::from_millis(4800);
    cfg.pipeline_workers = pipeline_workers();
    cfg.adaptive_batching = adaptive_batching();
    cfg
}

/// Tentpole acceptance: one replica misses the entire quorum traffic for
/// a single sequence (dropped Preprepare/Prepare/Commit — the "lost
/// batch" case, strictly harder than losing only the Commits). The
/// shard moves on, the replica's sequence-ordered admission wedges on
/// the hole — and the hole-fetch subsystem repairs it with a commit
/// certificate from a peer *without* waiting for (or using) checkpoint
/// state transfer.
#[test]
fn commit_hole_repaired_by_certificate_fetch() {
    let cfg = fault_cfg(2);
    let interval = cfg.checkpoint_interval;
    let victim = ReplicaId::new(ShardId(0), 2); // a backup, not the primary
    let hole_seq = 5; // well inside the first checkpoint window
    let mut dump = TraceDump::new("commit_hole_repaired_by_certificate_fetch");
    let report = Scenario::new(cfg, seed())
        .warmup_secs(1.0)
        .measure_secs(7.0)
        .with_commit_hole(victim, hole_seq)
        .run();
    dump.arm(&report);
    assert!(report.completed_txns > 0, "cluster stalled: {report:?}");
    let h = &report.holes[0];
    assert!(
        h.holes_filled >= 1,
        "hole never repaired via certificate fetch: {h:?}"
    );
    assert_eq!(h.bad_replies, 0, "a correct donor's reply failed: {h:?}");
    assert_eq!(
        h.snapshot_installs, 0,
        "fell back to O(state) snapshot transfer for a single lost message: {h:?}"
    );
    assert!(
        h.resumed_s.is_some(),
        "victim never executed the held sequence: {h:?}"
    );
    // Execution resumed *through* the hole and past the checkpoint
    // boundary the hole sat in front of…
    assert!(
        h.exec_watermark >= interval,
        "victim still wedged at watermark {}: {h:?}",
        h.exec_watermark
    );
    // …and checkpoint cadence survived: the victim itself observed new
    // stable checkpoints beyond the hole (so it votes and truncates
    // like any healthy replica again).
    assert!(
        h.stable_seq >= interval,
        "no checkpoint stabilized past the hole: {h:?}"
    );
}

/// The commit-hole repair under the perf-path configuration: open-loop
/// Poisson arrivals (clients issue on a schedule instead of waiting for
/// replies, so the victim's wedge cannot throttle the offered load) with
/// the adaptive batching cut enabled (sub-size batches flush whenever
/// the pipe is idle, so sequences advance on a bursty cadence). The
/// repair path must hold exactly as it does closed-loop: certificate
/// fetch, no snapshot fallback, checkpoint cadence resumes.
#[test]
fn commit_hole_repaired_under_open_loop_adaptive_batching() {
    use ringbft_workload::arrivals::ArrivalProcess;
    let mut cfg = fault_cfg(2);
    cfg.adaptive_batching = true;
    // fault_cfg batches one txn at a time (every batch is "full"); give
    // the adaptive cut real sub-size batches to flush.
    cfg.batch_size = 8;
    let interval = cfg.checkpoint_interval;
    let victim = ReplicaId::new(ShardId(0), 2);
    let hole_seq = 5;
    let mut dump = TraceDump::new("commit_hole_repaired_under_open_loop_adaptive_batching");
    let report = Scenario::new(cfg, seed())
        .warmup_secs(1.0)
        .measure_secs(7.0)
        .open_loop(ArrivalProcess::Poisson { rate_tps: 80.0 })
        .with_commit_hole(victim, hole_seq)
        .run();
    dump.arm(&report);
    let ol = report.open_loop.expect("open-loop scenario configured");
    assert!(
        ol.issued_txns > 0 && report.completed_txns > 0,
        "open-loop cluster stalled: {report:?}"
    );
    // The arrival process kept offering load near the target rate even
    // while the victim was wedged (that's the point of open loop).
    assert!(
        ol.issued_txns >= 7 * 80 * 7 / 10,
        "offered load collapsed: {} issued for 80 tps over 7 s",
        ol.issued_txns
    );
    let h = &report.holes[0];
    assert!(h.holes_filled >= 1, "hole never repaired: {h:?}");
    assert_eq!(h.bad_replies, 0, "a correct donor's reply failed: {h:?}");
    assert_eq!(h.snapshot_installs, 0, "snapshot fallback: {h:?}");
    assert!(h.resumed_s.is_some(), "victim never resumed: {h:?}");
    assert!(
        h.stable_seq >= interval,
        "no checkpoint stabilized past the hole: {h:?}"
    );
    // The adaptive cut actually fired under this light open-loop load —
    // the scenario really ran on sub-size batch cadence.
    assert!(
        report.pipeline.batch_adaptive_flushes > 0,
        "adaptive batching never cut a batch: {:?}",
        report.pipeline
    );
}

/// Extracts a numeric field from one JSON-lines trace event
/// (`{"i":…,"ev":"hole_filled","seq":5,"trace":…}`).
fn event_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Repair observability: with tracing at full sampling, the commit-hole
/// repair is *correlated into the sampled transaction's causal
/// timeline* — the donor stamps `hole_serve` and the victim stamps
/// `hole_filled`, both carrying the repaired batch's trace id, and the
/// span collector assembles a cross-shard timeline for that same id.
/// A short run keeps the early repair events inside every ring.
#[test]
fn commit_hole_repair_is_traced() {
    let mut cfg = fault_cfg(2);
    cfg.cross_shard_rate = 1.0; // the hole batch is certainly a cst
    cfg.involved_shards = 2;
    cfg.trace_sample_rate = 1; // …and certainly sampled
    let victim = ReplicaId::new(ShardId(0), 2);
    let mut dump = TraceDump::new("commit_hole_repair_is_traced");
    let report = Scenario::new(cfg, seed())
        .warmup_secs(1.0)
        .measure_secs(2.0)
        .with_commit_hole(victim, 5)
        .run();
    dump.arm(&report);
    let h = &report.holes[0];
    assert!(h.holes_filled >= 1, "hole never repaired: {h:?}");

    // The victim recorded the repair, tagged with the batch's trace id.
    let victim_name = victim.to_string();
    let (_, victim_ring) = report
        .traces
        .iter()
        .find(|(n, _)| *n == victim_name)
        .expect("victim's trace ring in the report");
    let filled = victim_ring
        .lines()
        .find(|l| l.contains("\"ev\":\"hole_filled\""))
        .expect("hole_filled event evicted from the victim's ring");
    let trace_id =
        event_field(filled, "trace").expect("hole_filled not correlated with the batch's trace id");

    // A donor recorded serving the certificate for the same trace.
    assert!(
        report.traces.iter().any(|(n, ring)| {
            *n != victim_name
                && ring.lines().any(|l| {
                    l.contains("\"ev\":\"hole_serve\"") && event_field(l, "trace") == Some(trace_id)
                })
        }),
        "no donor hole_serve event correlated with trace {trace_id}"
    );

    // And the same trace id assembles into a cross-shard timeline: the
    // repair hop is attributable to a specific sampled cst's journey.
    let t = report
        .tracing
        .csts
        .iter()
        .find(|t| t.trace_id == trace_id)
        .expect("repaired cst's timeline was not assembled");
    assert!(
        t.shards.len() >= 2,
        "repaired txn's timeline never left its shard: {t:?}"
    );
    assert!(
        !t.steps.is_empty() && t.critical_path_s > 0.0,
        "repaired txn's timeline has no timed steps: {t:?}"
    );
}

/// Cadence acceptance: `f` laggards *per shard* (f = 1 at n = 4), each
/// wedged on its own missed sequence, must not stall the checkpoint
/// cadence — and each must recover via hole fetch. This is exactly the
/// deadlock the ROADMAP called out: with more than `f` wedged replicas
/// no checkpoint stabilizes; with `f` of them, the quorum stays alive
/// and hole fetch pulls the laggards back in.
#[test]
fn checkpoint_cadence_survives_f_laggards_per_shard() {
    let cfg = fault_cfg(2);
    let interval = cfg.checkpoint_interval;
    let mut dump = TraceDump::new("checkpoint_cadence_survives_f_laggards_per_shard");
    let report = Scenario::new(cfg, seed())
        .warmup_secs(1.0)
        .measure_secs(8.0)
        .with_commit_hole(ReplicaId::new(ShardId(0), 2), 5)
        .with_commit_hole(ReplicaId::new(ShardId(1), 3), 7)
        .run();
    dump.arm(&report);
    assert!(report.completed_txns > 0, "cluster stalled: {report:?}");
    for h in &report.holes {
        assert!(h.holes_filled >= 1, "laggard never repaired: {h:?}");
        assert_eq!(h.bad_replies, 0);
        assert!(
            h.stable_seq >= 2 * interval,
            "checkpoint cadence broke with f laggards (stable at {}): {h:?}",
            h.stable_seq
        );
        assert!(
            h.exec_watermark >= h.seq,
            "laggard still wedged at {}: {h:?}",
            h.exec_watermark
        );
    }
}

/// Blank-restart recovery (checkpoint state transfer), as already
/// covered by `recovery_sim` on one interleaving — here across the CI
/// seed matrix: the restarted replica catches up and the cluster keeps
/// completing transactions after the restart. Under delta
/// checkpointing this doubles as the full-snapshot fallback test: a
/// blank requester advertises no base digest, so no donor can
/// recognize one, and the catch-up must arrive as a full snapshot
/// chain — never a dangling delta chain.
#[test]
fn blank_restart_catches_up_across_seeds() {
    let mut cfg = fault_cfg(3);
    cfg.cross_shard_rate = 0.3;
    cfg.checkpoint_interval = 4;
    let mut dump = TraceDump::new("blank_restart_catches_up_across_seeds");
    let report = Scenario::new(cfg, seed())
        .warmup_secs(1.0)
        .measure_secs(11.0)
        .with_blank_restart(2.0, 3.0, ReplicaId::new(ShardId(1), 2))
        .run();
    dump.arm(&report);
    let rec = report.recovery.expect("recovery metrics requested");
    assert!(
        rec.catchup_s.is_some(),
        "restarted replica never executed again: {rec:?}"
    );
    assert!(
        rec.post_restart_tps > 0.0,
        "cluster stalled after the restart: {rec:?}"
    );
    // Full-snapshot fallback: donors recognize no base for a blank
    // requester, so at least the first install ships a full link.
    assert!(
        rec.full_installs >= 1,
        "blank restart did not receive a full snapshot: {rec:?}"
    );
    assert_eq!(
        rec.bad_digests, 0,
        "a correct donor's chain failed: {rec:?}"
    );
}

/// Configuration for the delta state-transfer scenarios: a roomy key
/// space, a checkpoint window of ~1 simulated second of traffic, and —
/// deliberately — *wide* local timers: the victim's darkness
/// (inbound-only partition, ~1.2 s ≈ one checkpoint window) plus its
/// recovery must stay clear of per-request watchdogs demanding solo
/// view changes, because a replica wedged in an unjoined view drops
/// live vote traffic and turns a bounded lag into an unbounded one.
/// Real deployments size `timers.local` well above transient partition
/// blips for exactly this reason. The darkness straddles a checkpoint
/// boundary, so by the time the victim's hole probe would fire the
/// donors have stabilized a checkpoint past the gap's first sequence
/// and GC'd its certificate — leaving state transfer as the bulk
/// repair path.
fn delta_cfg() -> SystemConfig {
    let mut cfg = fault_cfg(2);
    cfg.num_keys = 16_000; // 8 000 records per shard partition
    cfg.checkpoint_interval = 256;
    cfg.timers.local = Duration::from_millis(4800);
    cfg.timers.remote = Duration::from_millis(9600);
    cfg.timers.transmit = Duration::from_millis(14400);
    cfg.timers.client = Duration::from_millis(19200);
    cfg
}

/// Tentpole acceptance: a replica partitioned from all inbound traffic
/// across a few checkpoint windows keeps its state, so when the
/// darkness lifts its last announced checkpoint is a chain point every
/// donor retains — catch-up arrives as a *verified delta chain* moving
/// O(churn) bytes (gated at < 25 % of the full-snapshot baseline),
/// with zero full-snapshot installs and zero digest mismatches.
#[test]
fn laggard_recovers_via_verified_delta_chain() {
    let cfg = delta_cfg();
    let interval = cfg.checkpoint_interval;
    let victim = ReplicaId::new(ShardId(0), 2); // a backup, not the primary
    let mut dump = TraceDump::new("laggard_recovers_via_verified_delta_chain");
    let report = Scenario::new(cfg, seed())
        .warmup_secs(1.0)
        .measure_secs(29.0)
        .with_delta_transfer(victim, 2.0, 3.2)
        .run();
    dump.arm(&report);
    assert!(report.completed_txns > 0, "cluster stalled: {report:?}");
    let d = &report.delta_transfers[0];
    assert!(
        d.delta_installs >= 1,
        "laggard never installed a delta chain: {d:?}"
    );
    assert_eq!(
        d.full_installs, 0,
        "fell back to O(state) full transfer for a recognized base: {d:?}"
    );
    assert_eq!(d.bad_digests, 0, "a verified chain was rejected: {d:?}");
    assert!(
        4 * d.transfer_bytes() < d.full_baseline_bytes,
        "delta recovery moved {} bytes, ≥ 25% of the {}-byte full baseline: {d:?}",
        d.transfer_bytes(),
        d.full_baseline_bytes
    );
    // The victim actually caught back up and checkpoints kept flowing.
    assert!(
        d.exec_watermark + 3 * interval >= d.peer_max_watermark,
        "victim still wedged at watermark {}: {d:?}",
        d.exec_watermark
    );
    assert!(
        d.exec_watermark >= 2 * interval && d.stable_seq >= 2 * interval,
        "victim never progressed past the dark window: {d:?}"
    );
}

/// Donor-failure acceptance: the victim's first donor in rotation is
/// killed the moment the darkness lifts — before it can complete a
/// transfer — so repair must route around it (probe rotation to the
/// surviving donors). The kill plus the laggard exhaust `f`, so new
/// checkpoints can only stabilize once the victim rejoins; depending
/// on the interleaving the gap closes via a delta chain from a second
/// donor (anchored, when the original votes are gone, on the §6.2.2
/// weak certificates donors re-send alongside their answers) or via
/// burst-paced certificate fetch — either way nothing unverified is
/// ever installed, the victim rejoins the cadence, and the shard's
/// checkpoints resume.
#[test]
fn delta_transfer_survives_donor_kill_via_rotation() {
    let cfg = delta_cfg();
    let interval = cfg.checkpoint_interval;
    let victim = ReplicaId::new(ShardId(0), 2);
    // The rotation starts at index victim+1: S0r3 is asked first.
    let first_donor = ReplicaId::new(ShardId(0), 3);
    let faults = ringbft_simnet::FaultPlan::none().crash(
        ringbft_types::NodeId::Replica(first_donor),
        ringbft_types::Instant::ZERO + Duration::from_secs_f64(3.2),
    );
    let mut dump = TraceDump::new("delta_transfer_survives_donor_kill_via_rotation");
    let report = Scenario::new(cfg, seed())
        .warmup_secs(1.0)
        .measure_secs(19.0)
        .with_faults(faults)
        .with_delta_transfer(victim, 2.0, 3.2)
        .run();
    dump.arm(&report);
    assert!(report.completed_txns > 0, "cluster stalled: {report:?}");
    let d = &report.delta_transfers[0];
    assert_eq!(d.bad_digests, 0, "a verified chain was rejected: {d:?}");
    assert!(
        d.exec_watermark + 3 * interval >= d.peer_max_watermark,
        "victim still wedged at watermark {} (peers at {}): {d:?}",
        d.exec_watermark,
        d.peer_max_watermark
    );
    // Checkpoint cadence resumed after the kill: with f exhausted,
    // stabilization needs the recovered victim's own votes.
    assert!(
        d.stable_seq >= 4 * interval,
        "checkpoint cadence never resumed after the donor kill: {d:?}"
    );
}

/// Durable-restart acceptance (kill -9 mid-batch): the victim runs with
/// a write-ahead ledger under batched group commit, is crashed between
/// sync points — the log's unsynced tail is lost, power-loss semantics,
/// strictly harder than a process kill — and restarted from the
/// surviving log. The replay must restore a durable stable checkpoint
/// locally, and the wire top-up must move < 25 % of what a blank
/// restart would have transferred; the victim ends fingerprint-equal
/// with its quorum at the same checkpoint sequence.
#[test]
fn durable_restart_replays_log_and_tops_up_tail() {
    let cfg = delta_cfg();
    let interval = cfg.checkpoint_interval;
    let victim = ReplicaId::new(ShardId(0), 2); // a backup, not the primary
    let mut dump = TraceDump::new("durable_restart_replays_log_and_tops_up_tail");
    // Crash late in the run: by then the accumulated store (the blank
    // baseline) is well past the roughly constant tail the restart tops
    // up (probe latency × traffic rate), so the < 25 % gate measures
    // the mechanism rather than scenario luck.
    let report = Scenario::new(cfg, seed())
        .warmup_secs(1.0)
        .measure_secs(19.0)
        .with_durable_restart(10.0, 10.5, victim)
        .run();
    dump.arm(&report);
    assert!(report.completed_txns > 0, "cluster stalled: {report:?}");
    let d = report.durable_restart.expect("durable metrics requested");
    assert!(
        d.catchup_s.is_some(),
        "restarted replica never executed again: {d:?}"
    );
    // The local log survived the crash and carried a stable checkpoint.
    assert!(
        d.recovered_seq >= interval,
        "replay restored no durable checkpoint: {d:?}"
    );
    assert!(
        d.restart_bytes_local > 0,
        "nothing was replayed from the local log: {d:?}"
    );
    // Group commit actually batched: syncs ran, and far fewer of them
    // than appended records.
    assert!(d.wal_syncs > 0, "batched durability never synced: {d:?}");
    // The wire moved only the tail: < 25 % of the blank baseline.
    assert!(
        4 * d.restart_bytes_transferred < d.blank_baseline_bytes,
        "durable restart transferred {} bytes, ≥ 25% of the {}-byte blank baseline: {d:?}",
        d.restart_bytes_transferred,
        d.blank_baseline_bytes
    );
    assert_eq!(d.bad_digests, 0, "a verified chain was rejected: {d:?}");
    assert!(
        d.fingerprint_ok,
        "victim's checkpoint store diverged from its quorum: {d:?}"
    );
    // It rejoined the cadence.
    assert!(
        d.exec_watermark + 3 * interval >= d.peer_max_watermark,
        "victim still wedged at watermark {} (peers at {}): {d:?}",
        d.exec_watermark,
        d.peer_max_watermark
    );
}

/// Divergence-rollback acceptance (the carry-over bugfix): one
/// replica's live and checkpoint stores are corrupted in place — a
/// bit-flipped executor — so its next checkpoint announcement loses
/// the quorum vote. The rollback-and-refetch path must discard the
/// divergent window, refetch verified quorum state (≥ 1 install), and
/// reconverge: the victim ends out of diverged mode, fingerprint-equal
/// with a same-shard peer at the same stable checkpoint, with no
/// safety flag (bad digest) raised along the way.
#[test]
fn divergent_replica_rolls_back_and_reconverges() {
    let cfg = delta_cfg();
    let interval = cfg.checkpoint_interval;
    let victim = ReplicaId::new(ShardId(0), 2); // a backup, not the primary
    let mut dump = TraceDump::new("divergent_replica_rolls_back_and_reconverges");
    let report = Scenario::new(cfg, seed())
        .warmup_secs(1.0)
        .measure_secs(19.0)
        .with_divergence(victim, 3.0)
        .run();
    dump.arm(&report);
    assert!(report.completed_txns > 0, "cluster stalled: {report:?}");
    let d = &report.divergences[0];
    assert!(
        d.divergences >= 1,
        "corruption never surfaced as a checkpoint divergence: {d:?}"
    );
    assert!(
        d.installs >= 1,
        "rollback never refetched quorum state: {d:?}"
    );
    assert!(
        !d.diverged_at_end,
        "victim still in rolled-back mode at the end of the run: {d:?}"
    );
    // Losing a vote is not an integrity failure: nothing was rejected.
    assert_eq!(d.bad_digests, 0, "divergence raised a safety flag: {d:?}");
    assert!(
        d.fingerprint_ok,
        "victim never reconverged onto quorum state: {d:?}"
    );
    assert!(
        d.exec_watermark + 3 * interval >= d.peer_max_watermark,
        "victim still wedged at watermark {} (peers at {}): {d:?}",
        d.exec_watermark,
        d.peer_max_watermark
    );
    assert!(
        d.stable_seq >= 2 * interval,
        "checkpoint cadence never resumed after the rollback: {d:?}"
    );
}
