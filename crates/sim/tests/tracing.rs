//! Cross-shard causal-tracing acceptance on the simulated WAN: sampled
//! transactions produce assembled multi-shard timelines with per-shard
//! phase spans, hop-relative ordering, and a p99 critical-path summary.

use ringbft_sim::Scenario;
use ringbft_types::{ProtocolKind, SystemConfig};

fn tracing_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::uniform(ProtocolKind::RingBft, 2, 4);
    cfg.num_keys = 2_000;
    cfg.clients = 8;
    cfg.batch_size = 1;
    cfg.cross_shard_rate = 1.0; // every transaction crosses shards
    cfg.involved_shards = 2;
    cfg.remote_reads = 1; // complex csts: both ring rotations run
    cfg.trace_sample_rate = 1; // sample everything
    cfg
}

/// Tentpole acceptance (sim half): a sampled cross-shard transaction's
/// timeline assembles from the replica trace rings with ≥ 2 shards and
/// ≥ 3 phases per shard, hops grouped in causal order.
#[test]
fn sim_scenario_assembles_multi_shard_cst_timeline() {
    let report = Scenario::new(tracing_cfg(), 7)
        .warmup_secs(1.0)
        .measure_secs(3.0)
        .run();
    let tr = &report.tracing;
    assert_eq!(tr.sample_rate, 1);
    assert!(tr.sampled_txns > 0, "no sampled completions");
    assert!(tr.sampled_csts > 0, "no sampled cst timelines assembled");
    assert!(tr.mean_hops > 0.0, "csts never left the initiator shard");

    // At least one fully-assembled timeline: both shards stamped at
    // least three pipeline phases for the same transaction.
    let full = tr
        .csts
        .iter()
        .find(|c| {
            c.shards.len() >= 2 && c.shards.iter().all(|&s| c.timeline.phases_of(s).len() >= 3)
        })
        .expect("no timeline with >= 2 shards and >= 3 phases per shard");
    assert!(full.hops >= 1);
    assert!(full.critical_path_s > 0.0);
    // The ring-hop breakdown is causally ordered: hops never decrease.
    let hops: Vec<u32> = full.steps.iter().map(|(h, _, _)| *h).collect();
    assert!(
        hops.windows(2).all(|w| w[0] <= w[1]),
        "steps not hop-ordered: {hops:?}"
    );
    // Every step carries a real duration name and a finite duration.
    for (_, name, secs) in &full.steps {
        assert!(name.starts_with("phase."), "unexpected step name {name}");
        assert!(secs.is_finite() && *secs >= 0.0);
    }

    // The p99 summary exists. (Its bucket may hold old transactions
    // whose spans were partially evicted from the bounded rings, so the
    // forward hop is asserted on the assembled timelines instead.)
    assert!(
        !tr.p99_critical_path.is_empty(),
        "no p99 critical-path summary"
    );
    assert!(
        tr.csts.iter().any(|c| c
            .steps
            .iter()
            .any(|(_, name, _)| *name == "phase.cst_forward")),
        "no timeline recorded the ring-forward step"
    );
}

/// Tracing off (`trace_sample_rate = 0`) stamps nothing: no spans, no
/// timelines, and transactions still complete.
#[test]
fn disabled_sampling_produces_no_timelines() {
    let mut cfg = tracing_cfg();
    cfg.trace_sample_rate = 0;
    let report = Scenario::new(cfg, 7)
        .warmup_secs(1.0)
        .measure_secs(2.0)
        .run();
    assert!(report.completed_txns > 0);
    assert_eq!(report.tracing.sampled_txns, 0);
    assert_eq!(report.tracing.sampled_csts, 0);
    assert!(report.tracing.csts.is_empty());
}

/// Sampling is a rate, not a toggle: at rate N roughly 1/N of the
/// completions carry a trace, and each sampled cst still assembles.
#[test]
fn sparse_sampling_still_assembles() {
    let mut cfg = tracing_cfg();
    cfg.trace_sample_rate = 16;
    let report = Scenario::new(cfg, 11)
        .warmup_secs(1.0)
        .measure_secs(3.0)
        .run();
    assert!(report.completed_txns > 0);
    assert!(
        report.tracing.sampled_txns < report.completed_txns,
        "rate-16 sampling should mark a strict subset"
    );
    assert!(report.tracing.sampled_csts > 0);
}
